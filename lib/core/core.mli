(** The public facade of the system.

    {!System} executes SQL text — DDL, data manipulation, rule
    definition, transaction control — against a set-oriented production
    rule engine, following the paper's model: every externally
    generated operation block is a transaction, and rules are processed
    just before commit (or at explicit [process rules] triggering
    points).

    The lower layers are re-exported for programmatic use. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Handle = Relational.Handle
module Row = Relational.Row
module Table = Relational.Table
module Database = Relational.Database
module Index = Relational.Index
module Errors = Relational.Errors
module Fault = Relational.Fault
module Ast = Sqlf.Ast
module Parser = Sqlf.Parser
module Pretty = Sqlf.Pretty
module Eval = Sqlf.Eval
module Effect = Rules.Effect
module Trans_info = Rules.Trans_info
module Engine = Rules.Engine
module Instance_engine = Rules.Instance_engine
module Analysis = Rules.Analysis
module Constraints = Rules.Constraints
module Procedures = Rules.Procedures
module Selection = Rules.Selection
module Priority = Rules.Priority

val placeholder : unit -> unit
(** Kept for the original scaffold's smoke test; does nothing. *)

module System : sig
  type t

  (** What executing one statement produced. *)
  type exec_result =
    | Msg of string  (** DDL acknowledgements, SHOW RULES text, ... *)
    | Relation of Eval.relation  (** query results *)
    | Outcome of Engine.outcome  (** transaction commit / rollback *)

  val create : ?config:Engine.config -> unit -> t
  (** A fresh system over an empty database. *)

  val of_engine : Engine.t -> t
  val engine : t -> Engine.t
  val database : t -> Database.t

  val register_procedure : t -> string -> Procedures.procedure -> unit
  (** Register an OCaml procedure callable from rule actions
      ([then call name], paper Section 5.2). *)

  val set_ddl_hook : t -> (string -> unit) option -> unit
  (** Install (or remove) the catalog-durability seam: the hook is
      called with each catalog statement's concrete syntax {e before}
      the statement is applied (write-ahead), so a WAL can replay the
      catalog by re-executing the text.  If the hook raises, the
      statement is not executed. *)

  val exec : t -> string -> exec_result list
  (** Execute a [';']-separated script.  Outside an explicit
      transaction each DML statement is its own operation block /
      transaction (autocommit); between [begin] and [commit],
      statements accumulate into one block.  CREATE TABLE constraints
      and CREATE ASSERTION are compiled into production rules. *)

  val exec_one : t -> string -> exec_result
  (** Execute exactly one statement. *)

  val exec_statement : t -> Ast.statement -> exec_result
  (** Execute one already-parsed statement — the statement-granular
      entry point the server's dispatcher builds on. *)

  val is_ddl : Ast.statement -> bool
  (** Whether the statement changes the catalog (tables, rules,
      assertions, priorities, activation, indexes). *)

  val exec_block : t -> string -> Engine.outcome * Eval.relation list
  (** Execute a script of DML statements as ONE externally-generated
      operation block (one transaction), the paper's basic unit. *)

  val query : t -> string -> string list * Row.t list
  (** Evaluate a query; returns column headers and rows. *)

  val query_value : t -> string -> Value.t
  (** A single-cell query result; [Null] when the result is empty. *)

  val analyze : t -> Analysis.report
  (** Static analysis of the installed rule set under the declared
      priorities (paper Section 6). *)

  val render_relation : Eval.relation -> string
  (** Render rows as an aligned text table with a row-count footer. *)

  val render_result : exec_result -> string
end

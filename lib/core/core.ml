(* The public facade of the system.

   [System] executes SQL text — DDL, data manipulation, rule
   definition, transaction control — against a set-oriented production
   rule engine, following the paper's model: every externally-generated
   operation block is a transaction, and rules are processed just
   before commit (or at explicit PROCESS RULES triggering points).

   The lower layers are re-exported for programmatic use:
   {!Relational} types, the {!Sqlf} front-end and the {!Rules}
   engine. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Handle = Relational.Handle
module Row = Relational.Row
module Table = Relational.Table
module Database = Relational.Database
module Index = Relational.Index
module Errors = Relational.Errors
module Fault = Relational.Fault
module Ast = Sqlf.Ast
module Parser = Sqlf.Parser
module Pretty = Sqlf.Pretty
module Eval = Sqlf.Eval
module Compile = Sqlf.Compile
module Effect = Rules.Effect
module Trans_info = Rules.Trans_info
module Engine = Rules.Engine
module Instance_engine = Rules.Instance_engine
module Analysis = Rules.Analysis
module Constraints = Rules.Constraints
module Procedures = Rules.Procedures
module Selection = Rules.Selection
module Priority = Rules.Priority

(* kept for the original scaffold's smoke test *)
let placeholder () = ()

module System = struct
  type t = {
    engine : Engine.t;
    mutable on_ddl : (string -> unit) option;
        (* durability seam: called with a catalog statement's concrete
           syntax before the statement is applied (write-ahead), so a
           WAL can replay the catalog by re-executing the text *)
  }

  type exec_result =
    | Msg of string
    | Relation of Eval.relation
    | Outcome of Engine.outcome

  let create ?config () =
    { engine = Engine.create ?config Database.empty; on_ddl = None }

  let of_engine engine = { engine; on_ddl = None }
  let engine t = t.engine
  let database t = Engine.database t.engine
  let set_ddl_hook t hook = t.on_ddl <- hook

  (* Catalog statements are logged write-ahead: the hook sees the text
     before the statement runs, so a statement that then fails
     validation leaves a record whose replay deterministically fails
     the same way (recovery skips it).  The alternative — logging after
     success — would lose a statement that succeeded just before a
     crash between apply and append. *)
  let is_ddl (stmt : Ast.statement) =
    match stmt with
    | Ast.Stmt_create_table _ | Ast.Stmt_drop_table _ | Ast.Stmt_create_rule _
    | Ast.Stmt_drop_rule _ | Ast.Stmt_priority _ | Ast.Stmt_activate _
    | Ast.Stmt_deactivate _ | Ast.Stmt_create_assertion _
    | Ast.Stmt_drop_assertion _ | Ast.Stmt_create_index _
    | Ast.Stmt_drop_index _ ->
      true
    | Ast.Stmt_begin | Ast.Stmt_commit | Ast.Stmt_rollback
    | Ast.Stmt_process_rules | Ast.Stmt_op _ | Ast.Stmt_show_tables
    | Ast.Stmt_show_rules | Ast.Stmt_explain _ | Ast.Stmt_describe _
    (* prepared-statement management is session state, not catalog
       state: never logged, never replayed *)
    | Ast.Stmt_prepare _ | Ast.Stmt_execute _ | Ast.Stmt_deallocate _ ->
      false

  (* Replay of a logged statement always happens outside a transaction,
     so only statements whose outcome is independent of transaction
     state may be logged.  Catalog-state-dependent failures (duplicate
     table, unknown rule) replay deterministically; the
     rejected-inside-a-transaction failure of table/index DDL does not —
     replay would succeed where the original failed — so those
     statements are not logged while a transaction is open (the engine
     is about to reject them anyway). *)
  let txn_sensitive_ddl (stmt : Ast.statement) =
    match stmt with
    | Ast.Stmt_create_table _ | Ast.Stmt_drop_table _ | Ast.Stmt_create_index _
    | Ast.Stmt_drop_index _ ->
      true
    | _ -> false

  let register_procedure t name fn =
    Engine.register_procedure t.engine name fn

  (* ---- DDL ---- *)

  let schema_of_create_table (ct : Ast.create_table) =
    let columns =
      List.map
        (fun cd ->
          let not_null =
            List.exists
              (fun c ->
                match c with
                | Ast.C_not_null | Ast.C_primary_key -> true
                | Ast.C_unique | Ast.C_default _ | Ast.C_references _
                | Ast.C_check _ -> false)
              cd.Ast.cd_constraints
          in
          let default =
            List.find_map
              (function Ast.C_default v -> Some v | _ -> None)
              cd.Ast.cd_constraints
          in
          Schema.column ~not_null ?default cd.Ast.cd_name cd.Ast.cd_type)
        ct.Ast.ct_columns
    in
    Schema.table ct.Ast.ct_name columns

  let install_constraints t (ct : Ast.create_table) =
    let constraints = Constraints.of_create_table ct in
    List.concat_map
      (fun c ->
        let defs = Constraints.compile c in
        List.iter (fun def -> ignore (Engine.create_rule t.engine def)) defs;
        List.iter
          (fun (high, low) -> Engine.declare_priority t.engine ~high ~low)
          (Constraints.priority_pairs c);
        List.map (fun d -> d.Ast.rule_name) defs)
      constraints

  let create_table t ct =
    Engine.create_table t.engine (schema_of_create_table ct);
    let rules = install_constraints t ct in
    if rules = [] then Msg (Printf.sprintf "table %s created" ct.Ast.ct_name)
    else
      Msg
        (Printf.sprintf "table %s created (constraint rules: %s)" ct.Ast.ct_name
           (String.concat ", " rules))

  (* ---- statement dispatch ---- *)

  (* Run a compiled DML plan through the standard routing: a bare
     select outside a transaction is pure retrieval; anything inside a
     transaction extends it; anything else is its own transaction with
     rule processing.  [op] is inspected only for its shape — execution
     enters [cop]. *)
  let run_cop eng ?params (op : Ast.op) cop : exec_result =
    match op with
    | Ast.Select_op _ when not (Engine.in_transaction eng) ->
      Relation (Engine.query_cop eng ?params cop)
    | _ ->
      if Engine.in_transaction eng then begin
        match Engine.submit_cops eng ?params [ cop ] with
        | [ rel ] -> Relation rel
        | _ -> Msg "ok"
      end
      else begin
        let outcome, results = Engine.execute_block_cops eng ?params [ cop ] in
        match outcome, results with
        | Engine.Committed, [ rel ] -> Relation rel
        | outcome, _ -> Outcome outcome
      end

  (* The interpreter routing — the differential-oracle path when
     {!Compile.enabled} is off.  EXECUTE reaches it with parameters
     already substituted into the tree. *)
  let run_op_interp eng (op : Ast.op) : exec_result =
    match op with
    | Ast.Select_op s when not (Engine.in_transaction eng) ->
      (* a bare query outside a transaction is pure retrieval *)
      Relation (Engine.query eng s)
    | _ ->
      if Engine.in_transaction eng then begin
        match Engine.submit_ops eng [ op ] with
        | [ rel ] -> Relation rel
        | _ -> Msg "ok"
      end
      else begin
        let outcome, results = Engine.execute_block eng [ op ] in
        match outcome, results with
        | Engine.Committed, [ rel ] -> Relation rel
        | outcome, _ -> Outcome outcome
      end

  let exec_statement t (stmt : Ast.statement) : exec_result =
    let eng = t.engine in
    (match t.on_ddl with
    | Some hook
      when is_ddl stmt
           && not (Engine.in_transaction eng && txn_sensitive_ddl stmt) ->
      hook (Pretty.statement_str stmt)
    | _ -> ());
    match stmt with
    | Ast.Stmt_create_table ct -> create_table t ct
    | Ast.Stmt_drop_table name ->
      Engine.drop_table eng name;
      Msg (Printf.sprintf "table %s dropped" name)
    | Ast.Stmt_create_rule def ->
      ignore (Engine.create_rule eng def);
      Msg (Printf.sprintf "rule %s created" def.Ast.rule_name)
    | Ast.Stmt_drop_rule name ->
      Engine.drop_rule eng name;
      Msg (Printf.sprintf "rule %s dropped" name)
    | Ast.Stmt_priority (high, low) ->
      Engine.declare_priority eng ~high ~low;
      Msg (Printf.sprintf "priority %s before %s" high low)
    | Ast.Stmt_activate name ->
      Engine.set_rule_active eng name true;
      Msg (Printf.sprintf "rule %s activated" name)
    | Ast.Stmt_deactivate name ->
      Engine.set_rule_active eng name false;
      Msg (Printf.sprintf "rule %s deactivated" name)
    | Ast.Stmt_begin ->
      Engine.begin_txn eng;
      Msg "transaction started"
    | Ast.Stmt_commit -> Outcome (Engine.commit eng)
    | Ast.Stmt_rollback ->
      Engine.rollback_txn eng;
      Outcome Engine.Rolled_back
    | Ast.Stmt_process_rules -> Outcome (Engine.process_rules eng)
    | Ast.Stmt_create_assertion (name, predicate) ->
      let c = Constraints.Assertion { assertion_name = name; predicate } in
      List.iter
        (fun def -> ignore (Engine.create_rule eng def))
        (Constraints.compile c);
      Msg (Printf.sprintf "assertion %s created (rule %s)" name (Constraints.name_of c))
    | Ast.Stmt_drop_assertion name ->
      Engine.drop_rule eng (Constraints.assertion_rule_name name);
      Msg (Printf.sprintf "assertion %s dropped" name)
    | Ast.Stmt_create_index { ix_name; ix_table; ix_column; ix_kind } ->
      Engine.create_index eng ~ix_name ~table:ix_table ~column:ix_column
        ~kind:ix_kind;
      Msg
        (Printf.sprintf "%s index %s created on %s (%s)"
           (Index.kind_name ix_kind) ix_name ix_table ix_column)
    | Ast.Stmt_drop_index name ->
      Engine.drop_index eng name;
      Msg (Printf.sprintf "index %s dropped" name)
    | Ast.Stmt_op op ->
      (* compiled execution enters the statement cache, so a repeated
         statement re-runs its plan without recompiling *)
      if !Compile.enabled then run_cop eng op (Engine.cached_cop eng op)
      else run_op_interp eng op
    | Ast.Stmt_prepare (name, op) ->
      Engine.prepare eng ~name op;
      Msg (Printf.sprintf "prepared %s" name)
    | Ast.Stmt_execute (name, args) ->
      let p = Engine.find_prepared eng name in
      let params = Engine.bind_params p args in
      if !Compile.enabled then
        run_cop eng ~params (Engine.prepared_op p) (Engine.prepared_cop eng p)
      else
        (* interpreter oracle: substitute the bound constants into the
           tree and run it as if typed literally *)
        run_op_interp eng (Ast.subst_params_op params (Engine.prepared_op p))
    | Ast.Stmt_deallocate target ->
      Engine.deallocate eng target;
      Msg
        (match target with
        | Some name -> Printf.sprintf "deallocated %s" name
        | None -> "deallocated all")
    | Ast.Stmt_show_tables ->
      let names = Database.table_names (Engine.database eng) in
      Relation
        {
          Eval.rel_name = "tables";
          cols = [| "table_name" |];
          rows = List.map (fun n -> [| Value.Str n |]) names;
        }
    | Ast.Stmt_show_rules ->
      let text =
        String.concat "\n\n"
          (List.map (fun r -> Fmt.str "%a" Rules.Rule.pp r) (Engine.rules eng))
      in
      Msg (if text = "" then "(no rules)" else text)
    | Ast.Stmt_explain (Ast.Explain_op op) ->
      let plans = Engine.explain_op eng op in
      let header = Printf.sprintf "explain %s" (Pretty.op_str op) in
      let body =
        match plans with
        | [] -> [ "  (no table access)" ]
        | plans ->
          List.map (fun p -> "  " ^ Eval.describe_source_plan p) plans
      in
      (* what executing this statement would find in the statement
         cache right now — a non-mutating probe *)
      let cache_line =
        Printf.sprintf "  statement cache: %s"
          (match Engine.stmt_cache_lookup eng op with
          | `Hit -> "hit"
          | `Stale -> "stale"
          | `Miss -> "miss")
      in
      Msg (String.concat "\n" ((header :: body) @ [ cache_line ]))
    | Ast.Stmt_explain (Ast.Explain_rule name) ->
      let plans = Engine.explain_rule eng name in
      let keys = Engine.rule_index_keys eng name in
      let header =
        Printf.sprintf "explain rule %s (condition under empty transition tables)"
          name
      in
      let keys_line =
        Printf.sprintf "  index keys: %s" (String.concat ", " keys)
      in
      let body =
        match plans with
        | [] -> [ "  (no condition)" ]
        | plans ->
          List.concat_map
            (fun (sql, sources) ->
              Printf.sprintf "  condition select: %s" sql
              :: List.map
                   (fun p -> "    " ^ Eval.describe_source_plan p)
                   sources)
            plans
      in
      Msg (String.concat "\n" (header :: keys_line :: body))
    | Ast.Stmt_describe name ->
      let schema = Database.schema (Engine.database eng) name in
      Relation
        {
          Eval.rel_name = name;
          cols = [| "column"; "type"; "not_null" |];
          rows =
            Array.to_list
              (Array.map
                 (fun c ->
                   [|
                     Value.Str c.Schema.col_name;
                     Value.Str (Schema.col_type_name c.Schema.col_type);
                     Value.Bool c.Schema.not_null;
                   |])
                 schema.Schema.columns);
        }

  (* Execute a script of ';'-separated statements. *)
  let exec t sql =
    let stmts = Parser.parse_script sql in
    List.map (exec_statement t) stmts

  let exec_one t sql = exec_statement t (Parser.parse_statement_string sql)

  (* Run a query and return headers and rows. *)
  let query t sql =
    let s = Parser.parse_select_string sql in
    let rel = Engine.query t.engine s in
    (Array.to_list rel.Eval.cols, rel.Eval.rows)

  (* Convenience: a single-column, single-row query result as a value. *)
  let query_value t sql =
    match query t sql with
    | _, [ [| v |] ] -> v
    | _, [] -> Value.Null
    | _ -> Errors.semantic "query_value expects a single-cell result"

  (* Execute one externally-generated operation block (one transaction)
     given as SQL text. *)
  let exec_block t sql =
    let stmts = Parser.parse_script sql in
    let ops =
      List.map
        (function
          | Ast.Stmt_op op -> op
          | _ -> Errors.semantic "exec_block accepts data manipulation only")
        stmts
    in
    Engine.execute_block t.engine ops

  let analyze t =
    Analysis.analyze
      ~priorities:(Engine.priorities t.engine)
      (Engine.rules t.engine)

  (* ---- result rendering ---- *)

  let render_relation (rel : Eval.relation) =
    let cols = Array.to_list rel.Eval.cols in
    let rows =
      List.map
        (fun r -> Array.to_list (Array.map Value.to_display r))
        rel.Eval.rows
    in
    let widths =
      List.fold_left
        (fun widths row ->
          List.map2 (fun w cell -> max w (String.length cell)) widths row)
        (List.map String.length cols)
        rows
    in
    let pad s w = s ^ String.make (w - String.length s) ' ' in
    let line cells = String.concat " | " (List.map2 pad cells widths) in
    let sep = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
    let body = List.map line rows in
    String.concat "\n"
      ((line cols :: sep :: body)
      @ [
          Printf.sprintf "(%d row%s)" (List.length rows)
            (if List.length rows = 1 then "" else "s");
        ])

  let render_result = function
    | Msg m -> m
    | Outcome Engine.Committed -> "committed"
    | Outcome Engine.Rolled_back -> "rolled back"
    | Relation rel -> render_relation rel
end

(** Compilation of expressions, predicates and selects to positional
    closures.

    The tree-walking evaluator ({!Eval}) resolves every column
    reference by name for every candidate row.  This module performs
    name resolution, ambiguity checking, correlation analysis and
    sargable-conjunct selection ONCE per statement, producing closures
    in which a column reference is a (frame, binding, column) triple —
    per-row evaluation is then three array loads.  Compile-detected
    errors (unknown table/column, ambiguity, duplicate FROM names)
    keep the interpreter's exact payloads and raise with the
    interpreter's exact timing: a reference on a branch never taken
    never surfaces its error.

    The interpreter is retained as the differential oracle; the two
    paths are asserted equivalent — results and error diagnostics — by
    test/test_compile_diff.ml.

    A compiled form is valid only for the catalog it was compiled
    against (and the planner-switch settings in force at compile
    time); callers caching compiled forms must key them on a DDL
    generation counter, as the rules engine does. *)

open Relational

val enabled : bool ref
(** Route DML execution and rule processing through the compiled path
    (true, the default) or the interpreter.  Exists for the
    differential oracle and the ablation benchmark. *)

(** {2 Runtime} *)

type renv = Row.t array array
(** Positional mirror of {!Eval.env}: scopes innermost first, each
    frame the bound rows of one select's FROM items, in FROM order.
    Binding and column names were consumed at compile time. *)

type rt
(** Per-evaluation-unit runtime state: resolver, optional access-path
    hooks, and the memo slots backing uncorrelated-subquery caching.
    Same lifetime discipline as {!Eval.cache}: one [rt] per DML
    operation or rule-condition evaluation, never reused across
    database states. *)

val make_rt :
  ?access:Eval.access ->
  ?params:Value.t array ->
  use_cache:bool ->
  slots:int ->
  Eval.resolver ->
  rt
(** [slots] must be at least the compile unit's {!slot_count};
    [use_cache:false] disables subquery memoization (mirroring
    interpreter evaluation without a cache).  [params] is the EXECUTE
    parameter frame read by compiled [Param] closures (default
    empty). *)

(** {2 Compilation context} *)

type ctx
(** Compile-time state: the catalog compiled against, the environment
    shape (binding names and column names per scope), correlation
    watches, and the memo-slot counter. *)

val make : Database.t -> ctx

val slot_count : ctx -> int
(** Memo slots allocated so far; pass to {!make_rt} after compiling
    everything that will share the [rt]. *)

(** {2 Expressions and predicates} *)

type cexpr

val compile_expr :
  ctx -> shape:(string * string array) list list -> Ast.expr -> cexpr
(** Compile under the given environment shape (innermost scope first,
    matching the {!renv} the closure will receive). *)

val eval_cexpr : rt -> cexpr -> renv -> Value.t

val cexpr_holds : rt -> cexpr -> renv -> bool
(** Three-valued logic collapsed: [true] only when definitely true. *)

type cpred = { cp_expr : cexpr; cp_nslots : int }
(** A predicate compiled against an empty environment shape, bundled
    with its memo-slot count — the cacheable compiled form of a rule
    condition. *)

val compile_predicate : Database.t -> Ast.expr -> cpred

val run_predicate :
  ?access:Eval.access -> use_cache:bool -> Eval.resolver -> cpred -> bool
(** Evaluate with a fresh slot array (one evaluation = one database
    state). *)

(** {2 Selects} *)

type cselect

val compile_select : ctx -> Ast.select -> cselect

val run_select : rt -> cselect -> Eval.relation
(** Evaluate with no outer scopes.  Does not hit a fault site — use
    {!eval_select} for public query entry points. *)

val select_cols : cselect -> string array
(** Static output column names (of the non-empty result path). *)

val eval_select :
  ?access:Eval.access ->
  ?params:Value.t array ->
  ?use_cache:bool ->
  Eval.resolver ->
  Database.t ->
  Ast.select ->
  Eval.relation
(** Compile-and-run counterpart of {!Eval.eval_select}: hits the
    [Query_eval] fault site once, then evaluates.  [use_cache]
    defaults to [false]. *)

(** {2 Victim probes (DML helper)} *)

type cprobe
(** The statically-selected sargable candidates for one base table's
    victim selection, tried in conjunct order at run time with the
    interpreter's fallback semantics. *)

val compile_probe :
  ctx ->
  frame:(string * string array) list ->
  target:string ->
  table:string ->
  Ast.expr option ->
  cprobe option
(** [None] when no conjunct is sargable (or pushdown is disabled at
    compile time): scan instead. *)

val run_probe : rt -> Eval.access -> cprobe -> Eval.probe_hit option
(** Probe with outer scopes empty, candidates ranked by the shared cost
    model; [None] means every candidate fell through (value evaluation
    failed or no usable index): scan instead. *)

(** {2 EXPLAIN} *)

val plan_select :
  access:Eval.access ->
  Eval.resolver ->
  Database.t ->
  Ast.select ->
  Eval.source_plan list
(** Compiled counterpart of {!Eval.plan_select}: the same decision
    procedure the compiled executor runs, stopping short of realizing
    the planned sources. *)

val plan_op :
  access:Eval.access ->
  Eval.resolver ->
  Database.t ->
  Ast.op ->
  Eval.source_plan list
(** Compiled counterpart of {!Eval.plan_op}. *)

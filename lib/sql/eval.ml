(* Query evaluation.

   The evaluator works over [relation]s — named column lists plus rows —
   rather than stored tables, so the same machinery evaluates base
   tables, derived tables and the paper's transition tables.  A
   [resolver] maps AST table sources to relations; the rules engine
   supplies a resolver that also knows the triggering rule's transition
   tables.

   SQL three-valued logic: predicates evaluate to [Value.Bool _] or
   [Value.Null] (unknown); a row is selected only when the predicate is
   definitely true. *)

open Relational

type relation = { rel_name : string; cols : string array; rows : Row.t list }

type resolver = Ast.table_source -> relation

let relation_of_table tbl =
  { rel_name = Table.name tbl; cols = Table.col_names tbl; rows = Table.rows tbl }

(* A resolver over base tables only; referencing a transition table
   outside rule processing is an error. *)
let base_resolver db : resolver = function
  | Ast.Base name -> relation_of_table (Database.table db name)
  | Ast.Transition tt ->
    Errors.raise_error
      (Errors.Invalid_transition_reference (Pretty.trans_table_str tt))
  | Ast.Derived _ ->
    (* Derived tables are evaluated by the select evaluator itself and
       never reach the resolver. *)
    assert false

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)

type binding = { bind_name : string; bind_cols : string array; bind_row : Row.t }

(* Innermost scope first; each frame is the from-list of one select. *)
type env = binding list list

let empty_env : env = []

let binding_lookup b column =
  let rec go i =
    if i >= Array.length b.bind_cols then None
    else if String.equal b.bind_cols.(i) column then Some b.bind_row.(i)
    else go (i + 1)
  in
  go 0

(* Resolve a column reference: search scopes innermost-first; within a
   scope a qualified reference must match a binding name, an
   unqualified one must be unambiguous.  [watches] are correlation
   watches (see the cache above): when a column resolves from one of
   the outermost [len] scopes of a watch, its flag is raised. *)
let lookup_column ?(watches = []) (env : env) qualifier column =
  let in_frame frame =
    match qualifier with
    | Some q -> (
      match List.find_opt (fun b -> String.equal b.bind_name q) frame with
      | None -> None
      | Some b -> (
        match binding_lookup b column with
        | Some v -> Some v
        | None ->
          Errors.raise_error
            (Errors.Unknown_column { table = Some q; column })))
    | None -> (
      let hits = List.filter_map (fun b -> binding_lookup b column) frame in
      match hits with
      | [] -> None
      | [ v ] -> Some v
      | _ :: _ :: _ -> Errors.raise_error (Errors.Ambiguous_column column))
  in
  let total = List.length env in
  let rec go i = function
    | [] ->
      Errors.raise_error (Errors.Unknown_column { table = qualifier; column })
    | frame :: rest -> (
      match in_frame frame with
      | Some v ->
        List.iter
          (fun (suffix_len, flag) -> if i >= total - suffix_len then flag := true)
          watches;
        v
      | None -> go (i + 1) rest)
  in
  go 0 env

(* ------------------------------------------------------------------ *)
(* Uncorrelated-subquery caching                                       *)

(* Predicates are evaluated once per candidate row, so an embedded
   select with no references to outer rows would be re-evaluated for
   every row — quadratic blowup on the nested-IN patterns of the
   paper's rules (e.g. Example 4.1).  A [cache] shared across the rows
   of one operation memoizes such subqueries.

   Correlation is detected dynamically: the first evaluation of a
   subquery runs with a watch on the scopes enclosing it; if no column
   resolves from an enclosing scope, the result cannot depend on the
   outer row and is cached for the remaining rows.  The cache is only
   sound while the database state is fixed, i.e. within the evaluation
   of a single operation or rule condition — callers create one cache
   per such unit. *)

type cache_entry = Cached of relation | Correlated
type cache = (Ast.select * cache_entry) list ref

let make_cache () : cache = ref []

(* Hash equi-joins in the from-list (see [from_row_envs]); mutable only
   so the ablation benchmark can compare against pure nested loops. *)
let join_optimization = ref true

(* ------------------------------------------------------------------ *)
(* Access paths                                                        *)

(* Access-path hooks.  When a caller supplies them, base tables in a
   from-list are realized lazily, giving the planner a chance to
   satisfy a sargable equality/IN conjunct of the WHERE clause by an
   index probe instead of a scan.  [acc_cols] names a base table's
   columns without materializing its rows (None: unknown table, forcing
   the eager path); [acc_probe] probes any index over the column (None:
   no usable index); [acc_note] reports every scan-vs-probe decision
   for EXPLAIN-style statistics. *)
type access = {
  acc_cols : table:string -> string array option;
  acc_probe :
    table:string ->
    column:string ->
    Value.t list ->
    (Handle.t * Row.t) list option;
  acc_range :
    table:string ->
    column:string ->
    lower:(Value.t * bool) option ->
    upper:(Value.t * bool) option ->
    (Handle.t * Row.t) list option;
  acc_note :
    table:string ->
    [ `Seq_scan | `Index_probe | `Range_probe | `Hash_join_build
    | `Hash_join_probe ] ->
    unit;
  acc_index : table:string -> column:string -> string option;
  acc_count : table:string -> int option;
  acc_stats : table:string -> column:string -> (int * bool) option;
}

(* Equality-predicate pushdown into index probes; mutable only so the
   differential harness and the ablation benchmark can compare against
   pure scans. *)
let predicate_pushdown = ref true

(* Cost-based access-path selection.  When on, the planner ranks every
   sargable conjunct — equality, IN, range comparison, BETWEEN,
   prefix LIKE — by estimated enumerated rows from the maintained table
   statistics and takes the cheapest.  When off, it degrades to the
   historical first-equality-match rule (no range probes), which the
   differential harnesses use as an oracle. *)
let cost_model = ref true

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)

(* The shape of a sargable conjunct, as much of it as is known without
   evaluating the value side: the key count of an equality/IN probe
   ([None] for IN (select ...)), a range, or a LIKE prefix range. *)
type probe_shape = Shape_eq of int option | Shape_range | Shape_prefix

(* Estimated rows a probe of [shape] over [column] would enumerate,
   from the incrementally-maintained statistics: row count and
   per-indexed-column distinct key count.  [None] = no usable index
   (no index at all, or a range shape without an ordered index).
   Selectivity of ranges is guessed at 1/3 (1/4 for prefixes) in the
   System R tradition — no histograms are kept. *)
let estimate_shape access ~table ~column shape =
  match access.acc_stats ~table ~column with
  | None -> None
  | Some (distinct, ordered) -> (
    let nrows = Option.value (access.acc_count ~table) ~default:0 in
    match shape with
    | Shape_eq k ->
      let k = Option.value k ~default:2 in
      Some (k * nrows / max 1 distinct)
    | Shape_range -> if ordered then Some ((nrows + 2) / 3) else None
    | Shape_prefix -> if ordered then Some ((nrows + 3) / 4) else None)

(* The single decision procedure shared by the interpreting and
   compiling evaluators (and hence by execution and EXPLAIN): given the
   sargable candidates of a WHERE clause in conjunct order, return the
   ones worth attempting, cheapest first, with their estimates.  The
   caller tries them in order and falls back to the scan when none
   probes successfully (no index after all, type-incompatible values,
   value evaluation error).

   With the cost model off this is the historical planner: equality
   candidates only, in conjunct order, no estimates. *)
let choose_candidates access ~table cands =
  if not !cost_model then
    List.filter_map
      (fun (payload, _column, shape) ->
        match shape with
        | Shape_eq _ -> Some (payload, None)
        | Shape_range | Shape_prefix -> None)
      cands
  else
    let scan_cost = access.acc_count ~table in
    List.filter_map
      (fun (payload, column, shape) ->
        match estimate_shape access ~table ~column shape with
        | None -> None
        | Some est -> (
          (* a probe never enumerates more rows than the scan, but when
             the estimate says it would not help, keep the plan honest
             and scan *)
          match scan_cost with
          | Some n when est > n -> None
          | Some _ | None -> Some ((payload, Some est), est)))
      cands
    |> List.stable_sort (fun (_, a) (_, b) -> Int.compare a b)
    |> List.map fst

(* A successful probe decision: which column and WHERE conjunct
   satisfied it, by equality or range probe, the estimate that ranked
   it ([None] under the legacy planner), and the rows it enumerates. *)
type probe_hit = {
  ph_column : string;
  ph_conjunct : Ast.expr;
  ph_kind : [ `Eq | `Range ];
  ph_est : int option;
  ph_pairs : (Handle.t * Row.t) list;
}

(* Split a predicate into its top-level AND conjuncts. *)
let rec conjuncts e =
  match e with Ast.And (a, b) -> conjuncts a @ conjuncts b | e -> [ e ]

(* Conservative independence test used by the access-path planner: may
   an expression reference a column of the frame being built — the
   [target] sources of the FROM list under construction?  Probe values
   must be evaluable once against the outer scopes alone, so only an
   expression that provably cannot touch the target frame qualifies:
   every column reference must resolve either inside a subquery's own
   scopes (innermost-first, shadowing the target) or past the target in
   the outer scopes.  Anything unknowable — derived or transition
   sources whose columns we cannot name, possible ambiguity — answers
   "maybe", rejecting the probe; the scan path then behaves exactly as
   before.

   [cols_of] names a base table's columns (for subquery FROM items);
   inner frames track [(name option, cols option)] where [None] means
   unknown.  A derived FROM item inside a subquery is walked against
   the scopes *outside* that subquery, because that is the environment
   it evaluates in. *)
let independence ~(target : (string * string array) list)
    ~(cols_of : string -> string array option) =
  let target_has_name q = List.exists (fun (n, _) -> String.equal n q) target in
  let target_has_col c =
    List.exists (fun (_, cols) -> Array.exists (String.equal c) cols) target
  in
  let rec expr inners (e : Ast.expr) =
    match e with
    | Ast.Lit _ -> true
    | Ast.Param _ -> true (* a bound parameter is a constant *)
    | Ast.Col { qualifier = Some q; _ } ->
      let resolves_inner =
        List.exists
          (List.exists (fun (n, _) ->
               match n with Some n -> String.equal n q | None -> false))
          inners
      in
      resolves_inner || not (target_has_name q)
    | Ast.Col { qualifier = None; column = c } ->
      let definitely_inner =
        List.exists
          (List.exists (fun (_, cols) ->
               match cols with
               | Some arr -> Array.exists (String.equal c) arr
               | None -> false))
          inners
      in
      (* a source with unknown columns might capture [c] — but it might
         not, so we cannot rule out fall-through to the target *)
      definitely_inner || not (target_has_col c)
    | Ast.Binop (_, a, b)
    | Ast.Cmp (_, a, b)
    | Ast.And (a, b)
    | Ast.Or (a, b)
    | Ast.Like (a, b) -> expr inners a && expr inners b
    | Ast.Neg a | Ast.Not a | Ast.Is_null a | Ast.Is_not_null a ->
      expr inners a
    | Ast.In_list (a, es) | Ast.Not_in_list (a, es) ->
      expr inners a && List.for_all (expr inners) es
    | Ast.In_select (a, s) | Ast.Not_in_select (a, s) ->
      expr inners a && sel inners s
    | Ast.Exists s | Ast.Scalar_select s -> sel inners s
    | Ast.Between (a, b, c) -> expr inners a && expr inners b && expr inners c
    | Ast.Agg (_, arg) -> Option.fold ~none:true ~some:(expr inners) arg
    | Ast.Fn (_, args) -> List.for_all (expr inners) args
    | Ast.Case (branches, else_) ->
      List.for_all (fun (c, v) -> expr inners c && expr inners v) branches
      && Option.fold ~none:true ~some:(expr inners) else_
  and sel inners (s : Ast.select) =
    (* derived FROM items evaluate against the scopes outside this
       select, so they are walked with the enclosing stack *)
    let derived_ok =
      List.for_all
        (fun item ->
          match item.Ast.source with
          | Ast.Derived sub -> sel inners sub
          | Ast.Base _ | Ast.Transition _ -> true)
        s.Ast.from
    in
    let frame =
      List.map
        (fun item ->
          let name, cols =
            match item.Ast.source with
            | Ast.Base n -> (Some n, cols_of n)
            | Ast.Transition _ | Ast.Derived _ -> (None, None)
          in
          match item.Ast.alias with
          | Some a -> (Some a, cols)
          | None -> (name, cols))
        s.Ast.from
    in
    let inners' = frame :: inners in
    derived_ok
    && List.for_all
         (function
           | Ast.Star | Ast.Table_star _ -> true
           | Ast.Proj (e, _) -> expr inners' e)
         s.Ast.projections
    && Option.fold ~none:true ~some:(expr inners') s.Ast.where
    && List.for_all (expr inners') s.Ast.group_by
    && Option.fold ~none:true ~some:(expr inners') s.Ast.having
    && List.for_all (fun (e, _) -> expr inners' e) s.Ast.order_by
    && List.for_all (fun (_, sub) -> sel inners sub) s.Ast.compounds
  in
  (expr [], sel [])

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

type context = {
  resolve : resolver;
  (* [Some envs]: we are inside a grouped evaluation and aggregate
     functions range over [envs]. *)
  group : env list option;
  cache : cache option;
  (* active correlation watches: [(suffix_len, flag)] means "set flag
     if a column resolves from one of the outermost [suffix_len]
     scopes" *)
  watches : (int * bool ref) list;
  (* access-path hooks; None evaluates every base table by scan *)
  access : access option;
}

let truth_value = function
  | Value.True -> Value.Bool true
  | Value.False -> Value.Bool false
  | Value.Unknown -> Value.Null

let value_truth = function
  | Value.Bool true -> Value.True
  | Value.Bool false -> Value.False
  | Value.Null -> Value.Unknown
  | v ->
    Errors.type_error "expected a boolean predicate value, got %s"
      (Value.to_string v)

(* Stable sort of values tagged with ORDER BY keys. *)
let sort_by_keys keyed =
  let cmp (ka, _) (kb, _) =
    let rec go a b =
      match a, b with
      | [], [] -> 0
      | (va, dir) :: ra, (vb, _) :: rb ->
        let c = Value.compare_total va vb in
        let c = match dir with `Asc -> c | `Desc -> -c in
        if c <> 0 then c else go ra rb
      | _ -> 0
    in
    go ka kb
  in
  List.stable_sort cmp keyed

let rec eval_expr ctx (env : env) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Lit v -> v
  | Ast.Param i ->
    (* the interpreter runs EXECUTE by substituting argument literals
       into the AST, so a surviving parameter is one that never bound *)
    Errors.raise_error
      (Errors.Parameter_error
         (Printf.sprintf "parameter %d is unbound (use PREPARE/EXECUTE)" (i + 1)))
  | Ast.Col { qualifier; column } ->
    lookup_column ~watches:ctx.watches env qualifier column
  | Ast.Binop (op, a, b) ->
    let va = eval_expr ctx env a and vb = eval_expr ctx env b in
    (match op with
    | Ast.Add -> Value.add va vb
    | Ast.Sub -> Value.sub va vb
    | Ast.Mul -> Value.mul va vb
    | Ast.Div -> Value.div va vb
    | Ast.Mod -> Value.rem va vb
    | Ast.Concat -> Value.concat va vb)
  | Ast.Neg a -> Value.neg (eval_expr ctx env a)
  | Ast.Cmp (op, a, b) -> (
    let va = eval_expr ctx env a and vb = eval_expr ctx env b in
    match Value.compare_sql va vb with
    | None -> Value.Null
    | Some c ->
      let holds =
        match op with
        | Ast.Eq -> c = 0
        | Ast.Neq -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0
      in
      Value.Bool holds)
  | Ast.And (a, b) ->
    truth_value
      (Value.truth_and
         (value_truth (eval_expr ctx env a))
         (value_truth (eval_expr ctx env b)))
  | Ast.Or (a, b) ->
    truth_value
      (Value.truth_or
         (value_truth (eval_expr ctx env a))
         (value_truth (eval_expr ctx env b)))
  | Ast.Not a -> truth_value (Value.truth_not (value_truth (eval_expr ctx env a)))
  | Ast.Is_null a -> Value.Bool (Value.is_null (eval_expr ctx env a))
  | Ast.Is_not_null a -> Value.Bool (not (Value.is_null (eval_expr ctx env a)))
  | Ast.In_list (a, es) ->
    let v = eval_expr ctx env a in
    in_semantics v (List.map (eval_expr ctx env) es)
  | Ast.Not_in_list (a, es) ->
    let v = eval_expr ctx env a in
    truth_value (Value.truth_not (value_truth (in_semantics v (List.map (eval_expr ctx env) es))))
  | Ast.In_select (a, s) ->
    let v = eval_expr ctx env a in
    in_semantics v (subquery_column ctx env s)
  | Ast.Not_in_select (a, s) ->
    let v = eval_expr ctx env a in
    truth_value
      (Value.truth_not (value_truth (in_semantics v (subquery_column ctx env s))))
  | Ast.Exists s ->
    let rel = eval_subquery ctx env s in
    Value.Bool (rel.rows <> [])
  | Ast.Between (a, low, high) ->
    let v = eval_expr ctx env a in
    let vl = eval_expr ctx env low and vh = eval_expr ctx env high in
    let ge =
      match Value.compare_sql v vl with
      | None -> Value.Unknown
      | Some c -> Value.truth_of_bool (c >= 0)
    and le =
      match Value.compare_sql v vh with
      | None -> Value.Unknown
      | Some c -> Value.truth_of_bool (c <= 0)
    in
    truth_value (Value.truth_and ge le)
  | Ast.Like (a, p) ->
    truth_value (Value.like (eval_expr ctx env a) (eval_expr ctx env p))
  | Ast.Scalar_select s -> (
    let rel = eval_subquery ctx env s in
    (match rel.cols with
    | [| _ |] -> ()
    | _ -> Errors.semantic "scalar subquery must return a single column");
    match rel.rows with
    | [] -> Value.Null
    | [ row ] -> row.(0)
    | _ :: _ :: _ -> Errors.semantic "scalar subquery returned more than one row")
  | Ast.Agg (fn, arg) -> eval_aggregate ctx env fn arg
  | Ast.Fn (name, args) -> Functions.apply name (List.map (eval_expr ctx env) args)
  | Ast.Case (branches, else_) ->
    let rec go = function
      | [] -> (
        match else_ with None -> Value.Null | Some e -> eval_expr ctx env e)
      | (c, v) :: rest ->
        if Value.truth_holds (value_truth (eval_expr ctx env c)) then
          eval_expr ctx env v
        else go rest
    in
    go branches

(* SQL IN semantics: TRUE if some element equals, UNKNOWN if no element
   equals but some comparison was unknown, FALSE otherwise. *)
and in_semantics v values =
  let result =
    List.fold_left
      (fun acc elt -> Value.truth_or acc (Value.eq_sql v elt))
      Value.False values
  in
  truth_value result

(* Evaluate an embedded select, consulting the uncorrelated-subquery
   cache when one is active. *)
and eval_subquery ctx env s =
  match ctx.cache with
  | None -> eval_select_inner ctx env s
  | Some cache -> (
    match List.find_opt (fun (s', _) -> s' == s) !cache with
    | Some (_, Cached rel) -> rel
    | Some (_, Correlated) -> eval_select_inner ctx env s
    | None ->
      let touched = ref false in
      let watch = (List.length env, touched) in
      let rel = eval_select_inner { ctx with watches = watch :: ctx.watches } env s in
      cache := (s, (if !touched then Correlated else Cached rel)) :: !cache;
      rel)

and subquery_column ctx env s =
  let rel = eval_subquery ctx env s in
  (match rel.cols with
  | [| _ |] -> ()
  | _ -> Errors.semantic "IN subquery must return a single column");
  List.map (fun row -> row.(0)) rel.rows

and eval_aggregate ctx _env fn arg =
  match ctx.group with
  | None -> Errors.semantic "aggregate function used outside a grouped query"
  | Some group_envs -> (
    (* Aggregates never nest: the argument is evaluated per group row
       in non-grouped context. *)
    let inner_ctx = { ctx with group = None } in
    match fn, arg with
    | Ast.Count_star, _ -> Value.Int (List.length group_envs)
    | _, None -> Errors.semantic "aggregate function requires an argument"
    | fn, Some e -> (
      let values =
        List.filter_map
          (fun row_env ->
            let v = eval_expr inner_ctx row_env e in
            if Value.is_null v then None else Some v)
          group_envs
      in
      match fn with
      | Ast.Count_star -> assert false
      | Ast.Count -> Value.Int (List.length values)
      | Ast.Sum ->
        if values = [] then Value.Null
        else List.fold_left Value.add (Value.Int 0) values
      | Ast.Avg -> (
        if values = [] then Value.Null
        else
          let sum = List.fold_left Value.add (Value.Int 0) values in
          match Value.to_float sum with
          | Some f -> Value.Float (f /. float_of_int (List.length values))
          | None -> Errors.type_error "avg over non-numeric values")
      | Ast.Min ->
        if values = [] then Value.Null
        else
          List.fold_left
            (fun acc v -> if Value.compare_total v acc < 0 then v else acc)
            (List.hd values) values
      | Ast.Max ->
        if values = [] then Value.Null
        else
          List.fold_left
            (fun acc v -> if Value.compare_total v acc > 0 then v else acc)
            (List.hd values) values))

(* ------------------------------------------------------------------ *)
(* SELECT evaluation                                                   *)

and select_contains_agg (s : Ast.select) =
  let rec expr_has_agg = function
    | Ast.Agg _ -> true
    | Ast.Lit _ | Ast.Param _ | Ast.Col _ -> false
    | Ast.Binop (_, a, b)
    | Ast.Cmp (_, a, b)
    | Ast.And (a, b)
    | Ast.Or (a, b)
    | Ast.Like (a, b) -> expr_has_agg a || expr_has_agg b
    | Ast.Neg a | Ast.Not a | Ast.Is_null a | Ast.Is_not_null a -> expr_has_agg a
    | Ast.In_list (a, es) | Ast.Not_in_list (a, es) ->
      expr_has_agg a || List.exists expr_has_agg es
    | Ast.In_select (a, _) | Ast.Not_in_select (a, _) -> expr_has_agg a
    | Ast.Exists _ | Ast.Scalar_select _ ->
      (* aggregates inside a subquery belong to the subquery *)
      false
    | Ast.Fn (_, args) -> List.exists expr_has_agg args
    | Ast.Between (a, b, c) -> expr_has_agg a || expr_has_agg b || expr_has_agg c
    | Ast.Case (branches, else_) ->
      List.exists (fun (c, v) -> expr_has_agg c || expr_has_agg v) branches
      || Option.fold ~none:false ~some:expr_has_agg else_
  in
  s.Ast.group_by <> []
  || Option.fold ~none:false ~some:expr_has_agg s.Ast.having
  || List.exists
       (function
         | Ast.Star | Ast.Table_star _ -> false
         | Ast.Proj (e, _) -> expr_has_agg e)
       s.Ast.projections

and default_proj_name e =
  match e with
  | Ast.Col { column; _ } -> column
  | e -> Pretty.expr_str e

(* Materialize the from-list as row environments, each extended with
   the outer scopes.

   Joining is nested-loop by default but, when the WHERE clause has an
   equality conjunct between column references linking a new source to
   an already-joined one, a hash join is used instead.  The hash join
   preserves nested-loop enumeration order and the full WHERE predicate
   is still applied afterwards, so results are identical.  The
   [join_optimization] switch exists for the ablation benchmark.

   When access-path hooks are installed, base tables are realized
   lazily: a sargable conjunct over an indexed column turns the scan
   into an index probe (see [probe_source]).  A probe returns the
   matching rows in handle order — an order-preserving subsequence of
   the scan — and the full WHERE predicate is still applied afterwards,
   so results are again identical. *)
and from_row_envs ctx (outer : env) ?where (from : Ast.from_item list) :
    env list =
  let resolve_item ix item =
    let named rel =
      match item.Ast.alias with
      | Some a -> a
      | None -> if rel.rel_name = "" then Printf.sprintf "$%d" ix else rel.rel_name
    in
    match item.Ast.source with
    | Ast.Derived s ->
      let rel = eval_select_inner ctx outer s in
      (named rel, rel.cols, `Rows rel.rows)
    | Ast.Base tbl_name -> (
      let lazy_cols =
        match ctx.access with
        | None -> None
        | Some access -> access.acc_cols ~table:tbl_name
      in
      match lazy_cols with
      | Some cols ->
        (Option.value item.Ast.alias ~default:tbl_name, cols, `Table tbl_name)
      | None ->
        let rel = ctx.resolve item.Ast.source in
        (named rel, rel.cols, `Rows rel.rows))
    | (Ast.Transition _) as src ->
      let rel = ctx.resolve src in
      (named rel, rel.cols, `Rows rel.rows)
  in
  let sources = List.mapi resolve_item from in
  (* duplicate binding names within one frame are rejected: unqualified
     references could silently pick the wrong one *)
  let names = List.map (fun (n, _, _) -> n) sources in
  let rec check = function
    | [] -> ()
    | n :: rest ->
      if List.exists (String.equal n) rest then
        Errors.semantic
          "duplicate table name %S in from clause; use an alias" n;
      check rest
  in
  check names;
  let frame_shape = List.map (fun (n, cols, _) -> (n, cols)) sources in
  (* attribute a column reference to exactly one local source *)
  let attribute qualifier column =
    let has_col (_, cols) = Array.exists (String.equal column) cols in
    match qualifier with
    | Some q -> (
      match List.find_opt (fun (n, _) -> String.equal n q) frame_shape with
      | Some src when has_col src -> Some src
      | _ -> None)
    | None -> (
      match List.filter has_col frame_shape with [ src ] -> Some src | _ -> None)
  in
  let equi_pairs =
    if not !join_optimization then []
    else
      match where with
      | None -> []
      | Some pred ->
        List.filter_map
          (fun conj ->
            match conj with
            | Ast.Cmp
                ( Ast.Eq,
                  Ast.Col { qualifier = q1; column = c1 },
                  Ast.Col { qualifier = q2; column = c2 } ) -> (
              match attribute q1 c1, attribute q2 c2 with
              | Some (n1, cs1), Some (n2, cs2) when not (String.equal n1 n2) ->
                Some ((n1, cs1, c1), (n2, cs2, c2))
              | _ -> None)
            | _ -> None)
          (conjuncts pred)
  in
  let col_index cols c =
    let rec go i =
      if i >= Array.length cols then None
      else if String.equal cols.(i) c then Some i
      else go (i + 1)
    in
    go 0
  in
  let module Key_map = Map.Make (struct
    type t = Value.t

    let compare = Value.compare_total
  end) in
  (* realize a lazily-bound base table: by index (or range) probe when
     a sargable conjunct allows it, by scan otherwise *)
  let realize bind_name tbl_name =
    let access =
      match ctx.access with Some a -> a | None -> assert false
    in
    match
      probe_plan ctx outer ~frame:frame_shape ~target_name:bind_name
        ~table:tbl_name where
    with
    | Some hit ->
      access.acc_note ~table:tbl_name
        (match hit.ph_kind with `Eq -> `Index_probe | `Range -> `Range_probe);
      List.map snd hit.ph_pairs
    | None ->
      access.acc_note ~table:tbl_name `Seq_scan;
      (ctx.resolve (Ast.Base tbl_name)).rows
  in
  let note_join ev name =
    match ctx.access with
    | Some access -> access.acc_note ~table:name ev
    | None -> ()
  in
  (* partial frames are built in reverse binding order *)
  let extend partials (name, cols, kind) =
    let rows =
      match kind with
      | `Rows rows -> rows
      | `Table tbl_name -> realize name tbl_name
    in
    let already_bound n =
      match partials with
      | [] -> false
      | partial :: _ -> List.exists (fun b -> String.equal b.bind_name n) partial
    in
    let link =
      List.find_map
        (fun ((n1, cs1, c1), (n2, cs2, c2)) ->
          if String.equal n2 name && already_bound n1 then
            Some ((n1, cs1, c1), c2)
          else if String.equal n1 name && already_bound n2 then
            Some ((n2, cs2, c2), c1)
          else None)
        equi_pairs
    in
    match link with
    | Some ((bound_name, bound_cols, bound_col), new_col) ->
      let new_ix = Option.get (col_index cols new_col) in
      let bound_ix = Option.get (col_index bound_cols bound_col) in
      (* hash the new source's rows by join key, preserving row order
         within each bucket *)
      note_join `Hash_join_build name;
      let table =
        List.fold_left
          (fun m row ->
            let key = row.(new_ix) in
            let existing = Option.value (Key_map.find_opt key m) ~default:[] in
            Key_map.add key (row :: existing) m)
          Key_map.empty rows
      in
      let table = Key_map.map List.rev table in
      List.concat_map
        (fun partial ->
          note_join `Hash_join_probe name;
          let bound_binding =
            List.find (fun b -> String.equal b.bind_name bound_name) partial
          in
          let key = bound_binding.bind_row.(bound_ix) in
          match Key_map.find_opt key table with
          | None -> []
          | Some rows ->
            List.map
              (fun row ->
                { bind_name = name; bind_cols = cols; bind_row = row }
                :: partial)
              rows)
        partials
    | None ->
      List.concat_map
        (fun partial ->
          List.map
            (fun row ->
              { bind_name = name; bind_cols = cols; bind_row = row }
              :: partial)
            rows)
        partials
  in
  let frames = List.fold_left extend [ [] ] sources in
  List.map (fun frame -> List.rev frame :: outer) frames

(* The access-path planner: try to satisfy one FROM source by an index
   probe instead of a scan.  Scans the WHERE conjuncts for sargable
   patterns — [col = e], [e = col], [col IN (e, ...)],
   [col IN (select ...)], the range comparisons [col < e] / [col <= e]
   / [col > e] / [col >= e] (and mirrored), [col BETWEEN a AND b] and
   [col LIKE 'prefix%...'] — whose column attributes uniquely to the
   target source and whose other side provably cannot reference the
   frame being built (see [independence]).  [choose_candidates] ranks
   the candidates by estimated cost (or keeps the legacy
   first-equality-match order with the cost model off); probe values
   are then evaluated once against the outer scopes, and any
   evaluation error or unusable index falls back to the next candidate
   and finally the scan, which either reports the same error while
   filtering or — e.g. over an empty table — never evaluates the
   faulty expression, exactly matching unoptimized behaviour.  NULL
   probe values and range bounds match nothing, as SQL comparison
   semantics require. *)
and probe_plan ctx (outer : env) ~frame ~target_name ~table
    (where : Ast.expr option) : probe_hit option =
  match ctx.access, where with
  | None, _ | _, None -> None
  | Some access, Some pred ->
    if not !predicate_pushdown then None
    else begin
      let ind_expr, ind_sel =
        independence ~target:frame ~cols_of:(fun t -> access.acc_cols ~table:t)
      in
      let attributes_to_target qualifier column =
        let has (_, cols) = Array.exists (String.equal column) cols in
        match qualifier with
        | Some q ->
          String.equal q target_name
          && (match List.find_opt (fun (n, _) -> String.equal n q) frame with
             | Some src -> has src
             | None -> false)
        | None -> (
          match List.filter has frame with
          | [ (n, _) ] -> String.equal n target_name
          | _ -> false)
      in
      let eval_ctx = { ctx with group = None } in
      let range_of op e =
        (* the column is on the left: [col op e] *)
        match op with
        | Ast.Lt -> Some (None, Some (e, false))
        | Ast.Le -> Some (None, Some (e, true))
        | Ast.Gt -> Some (Some (e, false), None)
        | Ast.Ge -> Some (Some (e, true), None)
        | Ast.Eq | Ast.Neq -> None
      in
      let mirror op =
        match op with
        | Ast.Lt -> Ast.Gt
        | Ast.Le -> Ast.Ge
        | Ast.Gt -> Ast.Lt
        | Ast.Ge -> Ast.Le
        | (Ast.Eq | Ast.Neq) as op -> op
      in
      let candidate conj =
        match conj with
        | Ast.Cmp (Ast.Eq, Ast.Col { qualifier; column }, e)
          when attributes_to_target qualifier column && ind_expr e ->
          Some (conj, column, Shape_eq (Some 1), `Exprs [ e ])
        | Ast.Cmp (Ast.Eq, e, Ast.Col { qualifier; column })
          when attributes_to_target qualifier column && ind_expr e ->
          Some (conj, column, Shape_eq (Some 1), `Exprs [ e ])
        | Ast.In_list (Ast.Col { qualifier; column }, es)
          when attributes_to_target qualifier column && List.for_all ind_expr es
          ->
          Some (conj, column, Shape_eq (Some (List.length es)), `Exprs es)
        | Ast.In_select (Ast.Col { qualifier; column }, sub)
          when attributes_to_target qualifier column && ind_sel sub ->
          Some (conj, column, Shape_eq None, `Select sub)
        | Ast.Cmp (op, Ast.Col { qualifier; column }, e)
          when attributes_to_target qualifier column && ind_expr e -> (
          match range_of op e with
          | Some bounds -> Some (conj, column, Shape_range, `Bounds bounds)
          | None -> None)
        | Ast.Cmp (op, e, Ast.Col { qualifier; column })
          when attributes_to_target qualifier column && ind_expr e -> (
          match range_of (mirror op) e with
          | Some bounds -> Some (conj, column, Shape_range, `Bounds bounds)
          | None -> None)
        | Ast.Between (Ast.Col { qualifier; column }, lo, hi)
          when attributes_to_target qualifier column && ind_expr lo
               && ind_expr hi ->
          Some
            (conj, column, Shape_range, `Bounds (Some (lo, true), Some (hi, true)))
        | Ast.Like (Ast.Col { qualifier; column }, p)
          when attributes_to_target qualifier column && ind_expr p ->
          Some (conj, column, Shape_prefix, `Like p)
        | _ -> None
      in
      let attempt ((conj, column, src), est) =
        let eval_bound =
          Option.map (fun (e, incl) -> (eval_expr eval_ctx outer e, incl))
        in
        let probe () =
          match src with
          | `Exprs es ->
            access.acc_probe ~table ~column
              (List.map (eval_expr eval_ctx outer) es)
          | `Select sub ->
            access.acc_probe ~table ~column (subquery_column eval_ctx outer sub)
          | `Bounds (lo, hi) ->
            access.acc_range ~table ~column ~lower:(eval_bound lo)
              ~upper:(eval_bound hi)
          | `Like p -> (
            match eval_expr eval_ctx outer p with
            | Value.Null ->
              (* LIKE NULL is UNKNOWN for every row: a NULL-bounded
                 range probe selects exactly nothing *)
              access.acc_range ~table ~column
                ~lower:(Some (Value.Null, true))
                ~upper:None
            | Value.Str pat -> (
              match Index.like_prefix pat with
              | None -> None
              | Some (prefix, upper) ->
                access.acc_range ~table ~column
                  ~lower:(Some (Value.Str prefix, true))
                  ~upper:(Option.map (fun u -> (Value.Str u, false)) upper))
            | Value.Int _ | Value.Float _ | Value.Bool _ ->
              (* the scan path reports the type error faithfully *)
              None)
        in
        match (try probe () with _ -> None) with
        | None -> None
        | Some pairs ->
          let kind =
            match src with
            | `Exprs _ | `Select _ -> `Eq
            | `Bounds _ | `Like _ -> `Range
          in
          Some
            {
              ph_column = column;
              ph_conjunct = conj;
              ph_kind = kind;
              ph_est = est;
              ph_pairs = pairs;
            }
      in
      List.filter_map candidate (conjuncts pred)
      |> List.map (fun (conj, column, shape, src) ->
             ((conj, column, src), column, shape))
      |> choose_candidates access ~table
      |> List.find_map attempt
    end

and project_columns ctx (frame_env : env) (projections : Ast.proj list) =
  (* Expand stars against the local frame of [frame_env]. *)
  let local_frame = match frame_env with [] -> [] | f :: _ -> f in
  List.concat_map
    (function
      | Ast.Star ->
        List.concat_map
          (fun b ->
            Array.to_list
              (Array.mapi
                 (fun i c -> (c, b.bind_row.(i)))
                 b.bind_cols))
          local_frame
      | Ast.Table_star t -> (
        match List.find_opt (fun b -> String.equal b.bind_name t) local_frame with
        | None -> Errors.raise_error (Errors.Unknown_table t)
        | Some b ->
          Array.to_list
            (Array.mapi (fun i c -> (c, b.bind_row.(i))) b.bind_cols))
      | Ast.Proj (e, alias) ->
        let name =
          match alias with Some a -> a | None -> default_proj_name e
        in
        [ (name, eval_expr ctx frame_env e) ])
    projections

and eval_select_inner ctx (outer : env) (s : Ast.select) : relation =
  match s.Ast.compounds with
  | _ :: _ -> eval_compound ctx outer s
  | [] -> eval_select_plain ctx outer s

(* Compound (set) operations: evaluate each core, combine the row
   multisets, then apply the trailing ORDER BY / LIMIT over the
   combined result (sort keys may reference the projected column
   names). *)
and eval_compound ctx outer (s : Ast.select) : relation =
  let head =
    eval_select_plain ctx outer
      { s with Ast.compounds = []; order_by = []; limit = None }
  in
  let module Row_set = Set.Make (struct
    type t = Row.t

    let compare = Row.compare_total
  end) in
  let dedupe rows =
    let _, acc =
      List.fold_left
        (fun (seen, acc) row ->
          if Row_set.mem row seen then (seen, acc)
          else (Row_set.add row seen, row :: acc))
        (Row_set.empty, []) rows
    in
    List.rev acc
  in
  let combined =
    List.fold_left
      (fun rows (op, sub) ->
        let part = eval_select_plain ctx outer sub in
        if Array.length part.cols <> Array.length head.cols then
          Errors.semantic
            "compound select operands must have the same number of columns";
        match op with
        | Ast.Union_all -> rows @ part.rows
        | Ast.Union -> dedupe (rows @ part.rows)
        | Ast.Except ->
          let right = Row_set.of_list part.rows in
          dedupe (List.filter (fun row -> not (Row_set.mem row right)) rows)
        | Ast.Intersect ->
          let right = Row_set.of_list part.rows in
          dedupe (List.filter (fun row -> Row_set.mem row right) rows))
      head.rows s.Ast.compounds
  in
  (* trailing ORDER BY over the combined projected rows *)
  let ordered =
    match s.Ast.order_by with
    | [] -> combined
    | order_by ->
      let keyed =
        List.map
          (fun row ->
            let env =
              [ [ { bind_name = ""; bind_cols = head.cols; bind_row = row } ] ]
            in
            let keys =
              List.map
                (fun (e, dir) ->
                  (eval_expr { ctx with group = None } env e, dir))
                order_by
            in
            (keys, row))
          combined
      in
      List.map snd (sort_by_keys keyed)
  in
  let rows =
    match s.Ast.limit with
    | None -> ordered
    | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k <= 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      take n ordered
  in
  { rel_name = ""; cols = head.cols; rows }

and eval_select_plain ctx (outer : env) (s : Ast.select) : relation =
  let row_envs = from_row_envs ctx outer ?where:s.Ast.where s.Ast.from in
  (* WHERE *)
  let where_ctx = { ctx with group = None } in
  let filtered =
    match s.Ast.where with
    | None -> row_envs
    | Some pred ->
      List.filter
        (fun env -> Value.truth_holds (value_truth (eval_expr where_ctx env pred)))
        row_envs
  in
  let grouped = select_contains_agg s in
  let result_pairs =
    if not grouped then
      List.map (fun env -> project_columns where_ctx env s.Ast.projections) filtered
    else begin
      (* group rows by the group_by key *)
      let groups =
        if s.Ast.group_by = [] then
          (* single global group; present even when empty *)
          [ filtered ]
        else begin
          let module Key_map = Map.Make (struct
            type t = Row.t

            let compare = Row.compare_total
          end) in
          let order = ref [] in
          let m =
            List.fold_left
              (fun m env ->
                let key =
                  Array.of_list
                    (List.map (eval_expr where_ctx env) s.Ast.group_by)
                in
                match Key_map.find_opt key m with
                | Some rows -> Key_map.add key (env :: rows) m
                | None ->
                  order := key :: !order;
                  Key_map.add key [ env ] m)
              Key_map.empty filtered
          in
          List.rev_map (fun key -> List.rev (Key_map.find key m)) !order
          |> List.rev
        end
      in
      let eval_group group_envs =
        let group_ctx = { ctx with group = Some group_envs } in
        (* Non-aggregate column references use the first row of the
           group (all rows agree on group-by columns). *)
        let rep_env =
          match group_envs with e :: _ -> e | [] -> [] :: outer
        in
        let keep =
          match s.Ast.having with
          | None -> true
          | Some h -> Value.truth_holds (value_truth (eval_expr group_ctx rep_env h))
        in
        if keep then Some (project_columns group_ctx rep_env s.Ast.projections)
        else None
      in
      List.filter_map eval_group groups
    end
  in
  (* ORDER BY: evaluate sort keys in the corresponding environments.
     For simplicity we sort the projected rows by keys computed
     alongside projection; recompute by pairing envs with results. *)
  let ordered_pairs =
    match s.Ast.order_by with
    | [] -> result_pairs
    | order_by ->
      let envs_for_sort =
        if not grouped then
          match s.Ast.where with
          | None -> row_envs
          | Some _ -> filtered
        else []
      in
      if grouped then
        (* Order grouped output by keys computed over the projected
           values: only projected column names may be referenced. *)
        let keyed =
          List.map
            (fun pairs ->
              let cols = Array.of_list (List.map fst pairs) in
              let row = Array.of_list (List.map snd pairs) in
              let env =
                [ [ { bind_name = ""; bind_cols = cols; bind_row = row } ] ]
              in
              let keys =
                List.map
                  (fun (e, dir) -> (eval_expr where_ctx env e, dir))
                  order_by
              in
              (keys, pairs))
            result_pairs
        in
        List.map snd (sort_by_keys keyed)
      else
        let keyed =
          List.map2
            (fun env pairs ->
              let keys =
                List.map
                  (fun (e, dir) -> (eval_expr where_ctx env e, dir))
                  order_by
              in
              (keys, pairs))
            envs_for_sort result_pairs
        in
        List.map snd (sort_by_keys keyed)
  in
  let cols =
    match ordered_pairs with
    | pairs :: _ -> Array.of_list (List.map fst pairs)
    | [] -> static_output_columns ctx s
  in
  let rows = List.map (fun pairs -> Array.of_list (List.map snd pairs)) ordered_pairs in
  let rows =
    if s.Ast.distinct then begin
      let module Row_set = Set.Make (struct
        type t = Row.t

        let compare = Row.compare_total
      end) in
      let _, acc =
        List.fold_left
          (fun (seen, acc) row ->
            if Row_set.mem row seen then (seen, acc)
            else (Row_set.add row seen, row :: acc))
          (Row_set.empty, []) rows
      in
      List.rev acc
    end
    else rows
  in
  let rows =
    match s.Ast.limit with
    | None -> rows
    | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k <= 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      take n rows
  in
  { rel_name = ""; cols; rows }

(* Output column names when the result has no rows: derive them from
   the projection list and the source schemas. *)
and static_output_columns ctx (s : Ast.select) =
  let source_cols item =
    match item.Ast.source with
    | Ast.Derived sub -> (
      match item.Ast.alias with
      | Some a -> Some (a, (eval_select_inner ctx [] sub).cols)
      | None -> Some ("", (eval_select_inner ctx [] sub).cols))
    | src -> (
      let rel = try Some (ctx.resolve src) with _ -> None in
      match rel with
      | None -> None
      | Some rel ->
        let name =
          match item.Ast.alias with Some a -> a | None -> rel.rel_name
        in
        Some (name, rel.cols))
  in
  let sources = List.filter_map source_cols s.Ast.from in
  let names =
    List.concat_map
      (function
        | Ast.Star -> List.concat_map (fun (_, cols) -> Array.to_list cols) sources
        | Ast.Table_star t -> (
          match List.find_opt (fun (n, _) -> String.equal n t) sources with
          | Some (_, cols) -> Array.to_list cols
          | None -> [])
        | Ast.Proj (e, alias) ->
          [ (match alias with Some a -> a | None -> default_proj_name e) ])
      s.Ast.projections
  in
  Array.of_list names

(* Public entry points *)

let make_context ?cache ?access resolve =
  { resolve; group = None; cache; watches = []; access }

let eval_select ?cache ?access ?(outer = empty_env) resolve s =
  (* exception-safety injection site: only the public entry, so the hit
     count per operation stays bounded (subqueries recurse through
     [eval_select_inner] directly) *)
  Fault.hit Fault.Query_eval;
  eval_select_inner (make_context ?cache ?access resolve) outer s

let eval_expr_in ?cache ?access ?(outer = empty_env) resolve env e =
  eval_expr (make_context ?cache ?access resolve) (env @ outer) e

let eval_predicate ?cache ?access ?(outer = empty_env) resolve env e =
  Value.truth_holds
    (value_truth (eval_expr (make_context ?cache ?access resolve) (env @ outer) e))

(* Entry point for the DML layer's victim selection: probe one base
   table directly, using the same sargable detection, independence
   analysis, cost ranking and fallback semantics as the FROM-list
   planner. *)
let probe_table ?cache ~access resolve ~table ~bind_name ~cols where =
  probe_plan
    { resolve; group = None; cache; watches = []; access = Some access }
    empty_env
    ~frame:[ (bind_name, cols) ]
    ~target_name:bind_name ~table where

(* ------------------------------------------------------------------ *)
(* EXPLAIN: access-path planning without execution                     *)

(* The planning functions below re-run exactly the decision procedure
   [from_row_envs] and the DML victim selection use — the same
   [probe_plan] call with the same frame, binding name and WHERE clause
   — but stop short of realizing the planned sources or mutating
   anything.  [matches] counts the handles the probe returned (the rows
   the executor would enumerate before residual filtering); [rows] is
   the table's current cardinality, i.e. what a scan would read.
   Probing evaluates the sargable conjunct's value side (possibly an
   uncorrelated subquery), so planning can read — but never write —
   the database.  Plans cover the top-level FROM sources of each select
   core and the victim table of DELETE/UPDATE; tables touched only
   inside predicate subqueries are not enumerated. *)

type access_path =
  | Seq_scan of { table : string; rows : int option }
  | Index_probe of {
      table : string;
      index : string option;
      column : string;
      conjunct : string;
      est : int option;
      matches : int;
      rows : int option;
    }
  | Range_probe of {
      table : string;
      index : string option;
      column : string;
      conjunct : string;
      est : int option;
      matches : int;
      rows : int option;
    }
  | Materialized of { source : string; rows : int }

(* A source joined to an earlier FROM binding by a build/probe hash
   join on an equi-join conjunct (one build per statement execution,
   one probe per partial row of the frame under construction). *)
type join_plan = { jp_with : string; jp_conjunct : string }

type source_plan = {
  sp_binding : string;
  sp_path : access_path;
  sp_join : join_plan option;
}

let probed_path access ~table hit =
  let index = access.acc_index ~table ~column:hit.ph_column in
  let column = hit.ph_column in
  let conjunct = Pretty.expr_str hit.ph_conjunct in
  let est = hit.ph_est in
  let matches = List.length hit.ph_pairs in
  let rows = access.acc_count ~table in
  match hit.ph_kind with
  | `Eq -> Index_probe { table; index; column; conjunct; est; matches; rows }
  | `Range ->
    Range_probe { table; index; column; conjunct; est; matches; rows }

let plan_core ctx (outer : env) (s : Ast.select) : source_plan list =
  let access =
    match ctx.access with Some a -> a | None -> assert false
  in
  (* mirror of [from_row_envs]'s [resolve_item]: same binding names,
     same lazy-vs-eager split *)
  let resolve_item ix item =
    let named rel =
      match item.Ast.alias with
      | Some a -> a
      | None -> if rel.rel_name = "" then Printf.sprintf "$%d" ix else rel.rel_name
    in
    match item.Ast.source with
    | Ast.Derived sub ->
      let rel = eval_select_inner ctx outer sub in
      (named rel, rel.cols, `Materialized ("derived table", List.length rel.rows))
    | Ast.Base tbl_name -> (
      match access.acc_cols ~table:tbl_name with
      | Some cols ->
        (Option.value item.Ast.alias ~default:tbl_name, cols, `Lazy tbl_name)
      | None ->
        (* unknown table: resolving raises the same error execution
           would *)
        let rel = ctx.resolve item.Ast.source in
        (named rel, rel.cols, `Materialized ("table " ^ tbl_name, List.length rel.rows)))
    | Ast.Transition tt as src ->
      let rel = ctx.resolve src in
      ( named rel,
        rel.cols,
        `Materialized
          ("transition table " ^ Pretty.trans_table_str tt, List.length rel.rows) )
  in
  let sources = List.mapi resolve_item s.Ast.from in
  let names = List.map (fun (n, _, _) -> n) sources in
  let rec check = function
    | [] -> ()
    | n :: rest ->
      if List.exists (String.equal n) rest then
        Errors.semantic "duplicate table name %S in from clause; use an alias" n;
      check rest
  in
  check names;
  let frame = List.map (fun (n, cols, _) -> (n, cols)) sources in
  (* mirror of [from_row_envs]'s equi-join link selection: a source is
     hash-joined to the first equi-join conjunct connecting it to an
     earlier binding.  (Execution skips the build when an earlier
     source turned out empty — the frame is already empty then, so the
     join never runs; the static plan reports the join it would do.) *)
  let attribute qualifier column =
    let has_col (_, cols) = Array.exists (String.equal column) cols in
    match qualifier with
    | Some q -> (
      match List.find_opt (fun (n, _) -> String.equal n q) frame with
      | Some src when has_col src -> Some src
      | _ -> None)
    | None -> (
      match List.filter has_col frame with [ src ] -> Some src | _ -> None)
  in
  let equi_pairs =
    if not !join_optimization then []
    else
      match s.Ast.where with
      | None -> []
      | Some pred ->
        List.filter_map
          (fun conj ->
            match conj with
            | Ast.Cmp
                ( Ast.Eq,
                  Ast.Col { qualifier = q1; column = c1 },
                  Ast.Col { qualifier = q2; column = c2 } ) -> (
              match attribute q1 c1, attribute q2 c2 with
              | Some (n1, _), Some (n2, _) when not (String.equal n1 n2) ->
                Some (conj, n1, n2)
              | _ -> None)
            | _ -> None)
          (conjuncts pred)
  in
  let link_for prior name =
    List.find_map
      (fun (conj, n1, n2) ->
        if String.equal n2 name && List.mem n1 prior then
          Some { jp_with = n1; jp_conjunct = Pretty.expr_str conj }
        else if String.equal n1 name && List.mem n2 prior then
          Some { jp_with = n2; jp_conjunct = Pretty.expr_str conj }
        else None)
      equi_pairs
  in
  let _, plans =
    List.fold_left
      (fun (prior, acc) (name, _cols, kind) ->
        let path =
          match kind with
          | `Materialized (what, n) -> Materialized { source = what; rows = n }
          | `Lazy table -> (
            match
              probe_plan ctx outer ~frame ~target_name:name ~table s.Ast.where
            with
            | Some hit -> probed_path access ~table hit
            | None -> Seq_scan { table; rows = access.acc_count ~table })
        in
        let sp_join = link_for prior name in
        (name :: prior, { sp_binding = name; sp_path = path; sp_join } :: acc))
      ([], []) sources
  in
  List.rev plans

let plan_select_inner ctx outer (s : Ast.select) =
  let cores = { s with Ast.compounds = [] } :: List.map snd s.Ast.compounds in
  List.concat_map (plan_core ctx outer) cores

let plan_select ?cache ~access resolve s =
  plan_select_inner (make_context ?cache ~access resolve) empty_env s

let plan_op ?cache ~access resolve (op : Ast.op) : source_plan list =
  let ctx = make_context ?cache ~access resolve in
  match op with
  | Ast.Select_op s -> plan_select_inner ctx empty_env s
  | Ast.Insert { source = `Select s; _ } -> plan_select_inner ctx empty_env s
  | Ast.Insert { source = `Values _; _ } -> []
  | Ast.Delete { table; where } | Ast.Update { table; where; _ } ->
    (* mirror of the DML layer's victim selection (see
       [Dml.selected_handles]): the table is bound under its own name *)
    let cols =
      match access.acc_cols ~table with
      | Some cols -> cols
      | None -> (ctx.resolve (Ast.Base table)).cols
    in
    let path =
      match
        probe_plan ctx empty_env
          ~frame:[ (table, cols) ]
          ~target_name:table ~table where
      with
      | Some hit -> probed_path access ~table hit
      | None -> Seq_scan { table; rows = access.acc_count ~table }
    in
    [ { sp_binding = table; sp_path = path; sp_join = None } ]

let describe_probe what (index, column, conjunct, est, matches, rows) =
  let ix = match index with Some i -> i | None -> "<unnamed index>" in
  let est_s =
    match est with None -> "" | Some e -> Printf.sprintf "est ~%d, " e
  in
  let total =
    match rows with Some n -> Printf.sprintf " of %d" n | None -> ""
  in
  Printf.sprintf "%s via %s on %s, conjunct %s: %s%d%s rows" what ix column
    conjunct est_s matches total

let describe_access_path = function
  | Seq_scan { table; rows } ->
    let r =
      match rows with Some n -> Printf.sprintf " (%d rows)" n | None -> ""
    in
    Printf.sprintf "seq scan of %s%s" table r
  | Index_probe { table; index; column; conjunct; est; matches; rows } ->
    describe_probe
      (Printf.sprintf "index probe of %s" table)
      (index, column, conjunct, est, matches, rows)
  | Range_probe { table; index; column; conjunct; est; matches; rows } ->
    describe_probe
      (Printf.sprintf "range probe of %s" table)
      (index, column, conjunct, est, matches, rows)
  | Materialized { source; rows } ->
    Printf.sprintf "materialized %s (%d rows)" source rows

let describe_source_plan { sp_binding; sp_path; sp_join } =
  let join =
    match sp_join with
    | None -> ""
    | Some { jp_with; jp_conjunct } ->
      Printf.sprintf ", hash join with %s on %s" jp_with jp_conjunct
  in
  Printf.sprintf "%s: %s%s" sp_binding (describe_access_path sp_path) join

(* Hand-written lexer.  Supports:
   - identifiers  [a-zA-Z_][a-zA-Z0-9_]*  (keywords case-insensitive)
   - integer and float literals
   - string literals in single quotes with '' escaping
   - line comments (-- ...) and block comments
   - the symbols of the dialect *)

open Relational

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }
let col st = st.pos - st.bol + 1

let error st msg =
  Errors.raise_error
    (Errors.Parse_error { line = st.line; col = col st; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '-' when peek2 st = Some '-' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec to_close () =
      match peek st with
      | None -> error st "unterminated block comment"
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while
    match peek st with Some c when is_ident_char c -> true | _ -> false
  do
    advance st
  done;
  let word = String.sub st.src start (st.pos - start) in
  if Token.is_keyword word then Token.Kw (String.uppercase_ascii word)
  else Token.Ident word

let lex_number st =
  let start = st.pos in
  while match peek st with Some c when is_digit c -> true | _ -> false do
    advance st
  done;
  let is_float = ref false in
  (match peek st, peek2 st with
  | Some '.', Some c when is_digit c ->
    is_float := true;
    advance st;
    while match peek st with Some c when is_digit c -> true | _ -> false do
      advance st
    done
  | Some '.', (Some _ | None) when peek2 st = None || not (is_ident_start (Option.get (peek2 st))) ->
    (* "5." style float, but not "t.col" *)
    is_float := true;
    advance st
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    if not (match peek st with Some c -> is_digit c | None -> false) then
      error st "malformed float exponent";
    while match peek st with Some c when is_digit c -> true | _ -> false do
      advance st
    done
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Token.Float_lit (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Token.Int_lit n
    | None -> Token.Float_lit (float_of_string text)

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '\'' when peek2 st = Some '\'' ->
      Buffer.add_char buf '\'';
      advance st;
      advance st;
      go ()
    | Some '\'' -> advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.Str_lit (Buffer.contents buf)

let lex_symbol st =
  let two a b tok =
    if peek st = Some a && peek2 st = Some b then (
      advance st;
      advance st;
      Some (Token.Symbol tok))
    else None
  in
  match two '<' '>' "<>" with
  | Some t -> t
  | None -> (
    match two '<' '=' "<=" with
    | Some t -> t
    | None -> (
      match two '>' '=' ">=" with
      | Some t -> t
      | None -> (
        match two '!' '=' "<>" with
        | Some t -> t
        | None -> (
          match two '|' '|' "||" with
          | Some t -> t
          | None -> (
            match peek st with
            | Some (('(' | ')' | ',' | ';' | '.' | '*' | '+' | '-' | '/' | '%'
                    | '=' | '<' | '>' | '?') as c) ->
              advance st;
              Token.Symbol (String.make 1 c)
            | Some c -> error st (Printf.sprintf "unexpected character %C" c)
            | None -> Token.Eof)))))

let next_token st : Token.located =
  skip_ws st;
  let line = st.line and c = col st in
  let token =
    match peek st with
    | None -> Token.Eof
    | Some ch when is_ident_start ch -> lex_ident st
    | Some ch when is_digit ch -> lex_number st
    | Some '\'' -> lex_string st
    | Some _ -> lex_symbol st
  in
  { Token.token; line; col = c }

(* Tokenize a whole input eagerly.  The parser scans via the streaming
   [make]/[next_token] interface; the eager list survives as the
   differential oracle for the streaming path (the qcheck property
   checks the two produce identical token streams). *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let tok = next_token st in
    match tok.Token.token with
    | Token.Eof -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  go []

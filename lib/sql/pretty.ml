(* Render AST values back to concrete syntax.  Used by the shell's
   SHOW RULES, by error messages, and by the parser round-trip property
   tests (parse (print ast) = ast). *)

open Relational

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Concat -> "||"

let cmpop_str = function
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let agg_str = function
  | Ast.Count_star | Ast.Count -> "count"
  | Ast.Sum -> "sum"
  | Ast.Avg -> "avg"
  | Ast.Min -> "min"
  | Ast.Max -> "max"

let trans_table_str = function
  | Ast.Tt_inserted t -> "inserted " ^ t
  | Ast.Tt_deleted t -> "deleted " ^ t
  | Ast.Tt_old_updated (t, None) -> "old updated " ^ t
  | Ast.Tt_old_updated (t, Some c) -> Printf.sprintf "old updated %s.%s" t c
  | Ast.Tt_new_updated (t, None) -> "new updated " ^ t
  | Ast.Tt_new_updated (t, Some c) -> Printf.sprintf "new updated %s.%s" t c
  | Ast.Tt_selected (t, None) -> "selected " ^ t
  | Ast.Tt_selected (t, Some c) -> Printf.sprintf "selected %s.%s" t c

(* Expressions are printed fully parenthesized below the boolean level;
   this keeps the printer simple and round-trips exactly. *)
let rec expr_str e =
  match e with
  | Ast.Lit v -> Value.to_string v
  | Ast.Param _ -> "?"
    (* the parser numbers '?' sequentially in statement order, so
       printing them positionless round-trips *)
  | Ast.Col { qualifier = None; column } -> column
  | Ast.Col { qualifier = Some q; column } -> q ^ "." ^ column
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Ast.Neg a -> Printf.sprintf "(- %s)" (expr_str a)
  | Ast.Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_str a) (cmpop_str op) (expr_str b)
  | Ast.And (a, b) -> Printf.sprintf "(%s and %s)" (expr_str a) (expr_str b)
  | Ast.Or (a, b) -> Printf.sprintf "(%s or %s)" (expr_str a) (expr_str b)
  | Ast.Not a -> Printf.sprintf "(not %s)" (expr_str a)
  | Ast.Is_null a -> Printf.sprintf "(%s is null)" (expr_str a)
  | Ast.Is_not_null a -> Printf.sprintf "(%s is not null)" (expr_str a)
  | Ast.In_list (a, es) ->
    Printf.sprintf "(%s in (%s))" (expr_str a)
      (String.concat ", " (List.map expr_str es))
  | Ast.Not_in_list (a, es) ->
    Printf.sprintf "(%s not in (%s))" (expr_str a)
      (String.concat ", " (List.map expr_str es))
  | Ast.In_select (a, s) ->
    Printf.sprintf "(%s in (%s))" (expr_str a) (select_str s)
  | Ast.Not_in_select (a, s) ->
    Printf.sprintf "(%s not in (%s))" (expr_str a) (select_str s)
  | Ast.Exists s -> Printf.sprintf "exists (%s)" (select_str s)
  | Ast.Between (a, low, high) ->
    Printf.sprintf "(%s between %s and %s)" (expr_str a) (expr_str low)
      (expr_str high)
  | Ast.Like (a, p) -> Printf.sprintf "(%s like %s)" (expr_str a) (expr_str p)
  | Ast.Scalar_select s -> Printf.sprintf "(%s)" (select_str s)
  | Ast.Agg (Ast.Count_star, _) -> "count(*)"
  | Ast.Agg (fn, Some a) -> Printf.sprintf "%s(%s)" (agg_str fn) (expr_str a)
  | Ast.Agg (fn, None) -> Printf.sprintf "%s(*)" (agg_str fn)
  | Ast.Fn (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_str args))
  | Ast.Case (branches, else_) ->
    let bs =
      List.map
        (fun (c, v) -> Printf.sprintf "when %s then %s" (expr_str c) (expr_str v))
        branches
    in
    let e =
      match else_ with
      | None -> ""
      | Some v -> Printf.sprintf " else %s" (expr_str v)
    in
    Printf.sprintf "case %s%s end" (String.concat " " bs) e

and proj_str = function
  | Ast.Star -> "*"
  | Ast.Table_star t -> t ^ ".*"
  | Ast.Proj (e, None) -> expr_str e
  | Ast.Proj (e, Some a) -> Printf.sprintf "%s as %s" (expr_str e) a

and from_item_str { Ast.source; alias } =
  let base =
    match source with
    | Ast.Base t -> t
    | Ast.Transition tt -> trans_table_str tt
    | Ast.Derived s -> Printf.sprintf "(%s)" (select_str s)
  in
  match alias with None -> base | Some a -> base ^ " " ^ a

and select_str (s : Ast.select) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "select ";
  if s.distinct then Buffer.add_string buf "distinct ";
  Buffer.add_string buf (String.concat ", " (List.map proj_str s.projections));
  if s.from <> [] then begin
    Buffer.add_string buf " from ";
    Buffer.add_string buf (String.concat ", " (List.map from_item_str s.from))
  end;
  (match s.where with
  | None -> ()
  | Some w ->
    Buffer.add_string buf " where ";
    Buffer.add_string buf (expr_str w));
  if s.group_by <> [] then begin
    Buffer.add_string buf " group by ";
    Buffer.add_string buf (String.concat ", " (List.map expr_str s.group_by))
  end;
  (match s.having with
  | None -> ()
  | Some h ->
    Buffer.add_string buf " having ";
    Buffer.add_string buf (expr_str h));
  List.iter
    (fun (op, sub) ->
      let kw =
        match op with
        | Ast.Union -> " union "
        | Ast.Union_all -> " union all "
        | Ast.Except -> " except "
        | Ast.Intersect -> " intersect "
      in
      Buffer.add_string buf kw;
      Buffer.add_string buf (select_str sub))
    s.compounds;
  if s.order_by <> [] then begin
    Buffer.add_string buf " order by ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              expr_str e ^ match dir with `Asc -> " asc" | `Desc -> " desc")
            s.order_by))
  end;
  (match s.limit with
  | None -> ()
  | Some n -> Buffer.add_string buf (Printf.sprintf " limit %d" n));
  Buffer.contents buf

let op_str = function
  | Ast.Insert { table; columns; source } ->
    let cols =
      match columns with
      | None -> ""
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
    in
    let src =
      match source with
      | `Values rows ->
        " values "
        ^ String.concat ", "
            (List.map
               (fun row ->
                 Printf.sprintf "(%s)"
                   (String.concat ", " (List.map expr_str row)))
               rows)
      | `Select s -> Printf.sprintf " (%s)" (select_str s)
    in
    Printf.sprintf "insert into %s%s%s" table cols src
  | Ast.Delete { table; where } ->
    let w =
      match where with None -> "" | Some e -> " where " ^ expr_str e
    in
    Printf.sprintf "delete from %s%s" table w
  | Ast.Update { table; sets; where } ->
    let sets =
      String.concat ", "
        (List.map (fun (c, e) -> Printf.sprintf "%s = %s" c (expr_str e)) sets)
    in
    let w =
      match where with None -> "" | Some e -> " where " ^ expr_str e
    in
    Printf.sprintf "update %s set %s%s" table sets w
  | Ast.Select_op s -> select_str s

let op_block_str ops = String.concat ";\n     " (List.map op_str ops)

let trans_pred_str = function
  | Ast.Tp_inserted t -> "inserted into " ^ t
  | Ast.Tp_deleted t -> "deleted from " ^ t
  | Ast.Tp_updated (t, None) -> "updated " ^ t
  | Ast.Tp_updated (t, Some c) -> Printf.sprintf "updated %s.%s" t c
  | Ast.Tp_selected (t, None) -> "selected " ^ t
  | Ast.Tp_selected (t, Some c) -> Printf.sprintf "selected %s.%s" t c

let action_str = function
  | Ast.Act_rollback -> "rollback"
  | Ast.Act_call p -> "call " ^ p
  | Ast.Act_block ops -> op_block_str ops

let rule_def_str (r : Ast.rule_def) =
  let cond =
    match r.condition with
    | None -> ""
    | Some c -> Printf.sprintf "\nif   %s" (expr_str c)
  in
  Printf.sprintf "create rule %s\nwhen %s%s\nthen %s" r.rule_name
    (String.concat "\n  or " (List.map trans_pred_str r.trans_preds))
    cond (action_str r.action)

(* ------------------------------------------------------------------ *)
(* Whole statements                                                    *)

let col_constraint_str = function
  | Ast.C_not_null -> "not null"
  | Ast.C_primary_key -> "primary key"
  | Ast.C_unique -> "unique"
  | Ast.C_default v -> "default " ^ Value.to_string v
  | Ast.C_references (t, None) -> "references " ^ t
  | Ast.C_references (t, Some c) -> Printf.sprintf "references %s (%s)" t c
  | Ast.C_check e -> Printf.sprintf "check (%s)" (expr_str e)

let table_constraint_str = function
  | Ast.T_primary_key cols ->
    Printf.sprintf "primary key (%s)" (String.concat ", " cols)
  | Ast.T_unique cols -> Printf.sprintf "unique (%s)" (String.concat ", " cols)
  | Ast.T_foreign_key { columns; parent; parent_columns; on_delete } ->
    let pcols =
      match parent_columns with
      | None -> ""
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
    in
    let od =
      match on_delete with
      (* `Restrict is the default and prints nothing, so it round-trips *)
      | `Restrict -> ""
      | `Cascade -> " on delete cascade"
      | `Set_null -> " on delete set null"
    in
    Printf.sprintf "foreign key (%s) references %s%s%s"
      (String.concat ", " columns) parent pcols od
  | Ast.T_check e -> Printf.sprintf "check (%s)" (expr_str e)

let create_table_str (ct : Ast.create_table) =
  let col (cd : Ast.col_def) =
    String.concat " "
      (cd.Ast.cd_name
       :: String.lowercase_ascii (Schema.col_type_name cd.Ast.cd_type)
       :: List.map col_constraint_str cd.Ast.cd_constraints)
  in
  let items =
    List.map col ct.Ast.ct_columns
    @ List.map table_constraint_str ct.Ast.ct_constraints
  in
  Printf.sprintf "create table %s (%s)" ct.Ast.ct_name
    (String.concat ", " items)

let explain_target_str = function
  | Ast.Explain_op op -> "explain " ^ op_str op
  | Ast.Explain_rule name -> "explain rule " ^ name

let statement_str = function
  | Ast.Stmt_create_table ct -> create_table_str ct
  | Ast.Stmt_drop_table name -> "drop table " ^ name
  | Ast.Stmt_create_rule def -> rule_def_str def
  | Ast.Stmt_drop_rule name -> "drop rule " ^ name
  | Ast.Stmt_priority (high, low) ->
    Printf.sprintf "create rule priority %s before %s" high low
  | Ast.Stmt_activate name -> "activate rule " ^ name
  | Ast.Stmt_deactivate name -> "deactivate rule " ^ name
  | Ast.Stmt_op op -> op_str op
  | Ast.Stmt_begin -> "begin"
  | Ast.Stmt_commit -> "commit"
  | Ast.Stmt_rollback -> "rollback"
  | Ast.Stmt_process_rules -> "process rules"
  | Ast.Stmt_create_assertion (name, e) ->
    Printf.sprintf "create assertion %s check (%s)" name (expr_str e)
  | Ast.Stmt_drop_assertion name -> "drop assertion " ^ name
  | Ast.Stmt_create_index { ix_name; ix_table; ix_column; ix_kind } ->
    (* The default kind round-trips without a USING clause, so existing
       WAL records and scripts reparse unchanged. *)
    let using =
      match ix_kind with `Hash -> "" | `Ordered -> " using ordered"
    in
    Printf.sprintf "create index %s on %s (%s)%s" ix_name ix_table ix_column
      using
  | Ast.Stmt_drop_index name -> "drop index " ^ name
  | Ast.Stmt_show_tables -> "show tables"
  | Ast.Stmt_show_rules -> "show rules"
  | Ast.Stmt_describe name -> "describe " ^ name
  | Ast.Stmt_explain target -> explain_target_str target
  | Ast.Stmt_prepare (name, op) ->
    Printf.sprintf "prepare %s as %s" name (op_str op)
  | Ast.Stmt_execute (name, []) -> "execute " ^ name
  | Ast.Stmt_execute (name, args) ->
    Printf.sprintf "execute %s (%s)" name
      (String.concat ", " (List.map Value.to_string args))
  | Ast.Stmt_deallocate None -> "deallocate all"
  | Ast.Stmt_deallocate (Some name) -> "deallocate " ^ name

(* Abstract syntax for the dialect of the paper:

   - data manipulation operations and operation blocks (Section 2.1),
   - queries with embedded selects, aggregates and transition-table
     references (Section 3),
   - rule definition and priority statements (Sections 3 and 4.4),
   - the Section 5 extensions (select operations inside blocks,
     external-procedure actions, rule triggering points),
   - the DDL needed around them (create/drop table).  *)

open Relational

type binop = Add | Sub | Mul | Div | Mod | Concat
type cmpop = Eq | Neq | Lt | Le | Gt | Ge
type agg_fn = Count_star | Count | Sum | Avg | Min | Max

(* A reference to one of the paper's logical transition tables.  The
   [string option] is the column for the ".c" forms. *)
type trans_table =
  | Tt_inserted of string
  | Tt_deleted of string
  | Tt_old_updated of string * string option
  | Tt_new_updated of string * string option
  | Tt_selected of string * string option (* Section 5.1 extension *)

type expr =
  | Lit of Value.t
  | Param of int (* positional '?' parameter, 0-based in statement order *)
  | Col of { qualifier : string option; column : string }
  | Binop of binop * expr * expr
  | Neg of expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | In_list of expr * expr list
  | In_select of expr * select
  | Not_in_list of expr * expr list
  | Not_in_select of expr * select
  | Exists of select
  | Between of expr * expr * expr
  | Like of expr * expr
  | Scalar_select of select (* embedded select used as a value *)
  | Agg of agg_fn * expr option (* aggregate; None only for count-star *)
  | Fn of string * expr list (* scalar function: abs, upper, coalesce, ... *)
  | Case of (expr * expr) list * expr option

and table_source =
  | Base of string
  | Transition of trans_table
  | Derived of select

and from_item = { source : table_source; alias : string option }

and proj = Star | Table_star of string | Proj of expr * string option

(* Compound (set) operations: UNION dedupes, UNION ALL keeps
   duplicates, EXCEPT and INTERSECT use set semantics. *)
and compound_op = Union | Union_all | Except | Intersect

and select = {
  distinct : bool;
  projections : proj list;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  compounds : (compound_op * select) list;
      (* further select cores combined with this one; the [order_by]
         and [limit] below then apply to the combined result *)
  order_by : (expr * [ `Asc | `Desc ]) list;
  limit : int option;
}

(* Data manipulation operations (paper Section 2.1; [Select_op] is the
   Section 5.1 extension allowing retrieval inside operation blocks). *)
type op =
  | Insert of {
      table : string;
      columns : string list option;
      source : [ `Values of expr list list | `Select of select ];
    }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Select_op of select

type op_block = op list

(* Rule definition (Section 3). *)
type basic_trans_pred =
  | Tp_inserted of string
  | Tp_deleted of string
  | Tp_updated of string * string option
  | Tp_selected of string * string option (* Section 5.1 extension *)

type action =
  | Act_block of op_block
  | Act_rollback
  | Act_call of string (* Section 5.2 extension: external procedure *)

type rule_def = {
  rule_name : string;
  trans_preds : basic_trans_pred list; (* disjunction *)
  condition : expr option;
  action : action;
}

(* DDL: column and table constraints accepted by CREATE TABLE.  They
   are not enforced by storage; the facade compiles them to production
   rules via the constraint compiler — the paper's own suggested use. *)
type col_constraint =
  | C_not_null
  | C_primary_key
  | C_unique
  | C_default of Value.t
  | C_references of string * string option
  | C_check of expr

type col_def = {
  cd_name : string;
  cd_type : Schema.col_type;
  cd_constraints : col_constraint list;
}

type table_constraint =
  | T_primary_key of string list
  | T_unique of string list
  | T_foreign_key of {
      columns : string list;
      parent : string;
      parent_columns : string list option;
      on_delete : [ `Cascade | `Restrict | `Set_null ];
    }
  | T_check of expr

type create_table = {
  ct_name : string;
  ct_columns : col_def list;
  ct_constraints : table_constraint list;
}

(* EXPLAIN renders the access-path decisions (scan vs index probe) the
   executor would take, without executing.  The rule form explains the
   selects embedded in a named rule's condition. *)
type explain_target = Explain_op of op | Explain_rule of string

type statement =
  | Stmt_create_table of create_table
  | Stmt_drop_table of string
  | Stmt_create_rule of rule_def
  | Stmt_drop_rule of string
  | Stmt_priority of string * string (* first has priority over second *)
  | Stmt_activate of string
  | Stmt_deactivate of string
  | Stmt_op of op
  | Stmt_begin
  | Stmt_commit
  | Stmt_rollback
  | Stmt_process_rules (* Section 5.3: explicit rule triggering point *)
  | Stmt_create_assertion of string * expr
      (* SQL-assertion-style cross-table constraint, compiled to rules *)
  | Stmt_drop_assertion of string
  | Stmt_create_index of {
      ix_name : string;
      ix_table : string;
      ix_column : string;
      ix_kind : Index.kind;
    }
      (* single-column index: an equality access path ([`Hash]) or an
         equality-and-range access path ([`Ordered]) *)
  | Stmt_drop_index of string
  | Stmt_show_tables
  | Stmt_show_rules
  | Stmt_describe of string
  | Stmt_explain of explain_target
  | Stmt_prepare of string * op
      (* PREPARE name AS <op>: parse and compile once, bind per
         EXECUTE.  Only DML operations are preparable; the body is the
         only place positional parameters may appear. *)
  | Stmt_execute of string * Value.t list
      (* EXECUTE name (v, ...): bind constants into the prepared
         operation's parameter frame and run the cached closure. *)
  | Stmt_deallocate of string option (* None deallocates all *)

(* ------------------------------------------------------------------ *)
(* Structural helpers used by the rule engine and static analysis.    *)

let trans_table_base = function
  | Tt_inserted t | Tt_deleted t
  | Tt_old_updated (t, _) | Tt_new_updated (t, _)
  | Tt_selected (t, _) -> t

(* Does a transition-table reference fall within what a given basic
   transition predicate licenses (paper Section 3's syntactic
   restriction)?  A column-unspecific predicate ("updated t") licenses
   the column-specific tables too, since they expose a subset of the
   same information. *)
let trans_table_matches_pred tt pred =
  match tt, pred with
  | Tt_inserted t, Tp_inserted t' -> String.equal t t'
  | Tt_deleted t, Tp_deleted t' -> String.equal t t'
  | (Tt_old_updated (t, None) | Tt_new_updated (t, None)), Tp_updated (t', None)
    -> String.equal t t'
  | (Tt_old_updated (t, Some _) | Tt_new_updated (t, Some _)),
    Tp_updated (t', None) -> String.equal t t'
  | (Tt_old_updated (t, Some c) | Tt_new_updated (t, Some c)),
    Tp_updated (t', Some c') -> String.equal t t' && String.equal c c'
  | Tt_selected (t, None), Tp_selected (t', None) -> String.equal t t'
  | Tt_selected (t, Some _), Tp_selected (t', None) -> String.equal t t'
  | Tt_selected (t, Some c), Tp_selected (t', Some c') ->
    String.equal t t' && String.equal c c'
  | _ -> false

(* Fold over every transition-table reference appearing in an
   expression (through embedded selects). *)
let rec fold_trans_tables_expr f acc expr =
  let fe = fold_trans_tables_expr f in
  match expr with
  | Lit _ | Param _ | Col _ -> acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) | Like (a, b) ->
    fe (fe acc a) b
  | Neg a | Not a | Is_null a | Is_not_null a -> fe acc a
  | In_list (a, es) | Not_in_list (a, es) -> List.fold_left fe (fe acc a) es
  | In_select (a, s) | Not_in_select (a, s) ->
    fold_trans_tables_select f (fe acc a) s
  | Exists s | Scalar_select s -> fold_trans_tables_select f acc s
  | Between (a, b, c) -> fe (fe (fe acc a) b) c
  | Agg (_, Some a) -> fe acc a
  | Agg (_, None) -> acc
  | Fn (_, args) -> List.fold_left fe acc args
  | Case (branches, else_) ->
    let acc =
      List.fold_left (fun acc (c, v) -> fe (fe acc c) v) acc branches
    in
    Option.fold ~none:acc ~some:(fe acc) else_

and fold_trans_tables_select f acc (s : select) =
  let acc =
    List.fold_left
      (fun acc item ->
        match item.source with
        | Base _ -> acc
        | Transition tt -> f acc tt
        | Derived sub -> fold_trans_tables_select f acc sub)
      acc s.from
  in
  let acc =
    List.fold_left
      (fun acc p ->
        match p with
        | Star | Table_star _ -> acc
        | Proj (e, _) -> fold_trans_tables_expr f acc e)
      acc s.projections
  in
  let fo acc = function
    | None -> acc
    | Some e -> fold_trans_tables_expr f acc e
  in
  let acc = fo acc s.where in
  let acc = List.fold_left (fold_trans_tables_expr f) acc s.group_by in
  let acc = fo acc s.having in
  let acc =
    List.fold_left
      (fun acc (_, sub) -> fold_trans_tables_select f acc sub)
      acc s.compounds
  in
  List.fold_left (fun acc (e, _) -> fold_trans_tables_expr f acc e) acc
    s.order_by

let fold_trans_tables_op f acc = function
  | Insert { source = `Values rows; _ } ->
    List.fold_left (List.fold_left (fold_trans_tables_expr f)) acc rows
  | Insert { source = `Select s; _ } -> fold_trans_tables_select f acc s
  | Delete { where; _ } | Update { where; sets = []; _ } ->
    Option.fold ~none:acc ~some:(fold_trans_tables_expr f acc) where
  | Update { sets; where; _ } ->
    let acc =
      List.fold_left (fun acc (_, e) -> fold_trans_tables_expr f acc e) acc sets
    in
    Option.fold ~none:acc ~some:(fold_trans_tables_expr f acc) where
  | Select_op s -> fold_trans_tables_select f acc s

let trans_tables_of_rule (r : rule_def) =
  let acc =
    match r.condition with
    | None -> []
    | Some c -> fold_trans_tables_expr (fun acc tt -> tt :: acc) [] c
  in
  match r.action with
  | Act_rollback | Act_call _ -> acc
  | Act_block ops ->
    List.fold_left (fold_trans_tables_op (fun acc tt -> tt :: acc)) acc ops

(* Fold over every base-table reference in an expression or select
   (through embedded selects); used to derive the triggering predicates
   of compiled assertions. *)
let rec fold_base_tables_expr f acc expr =
  let fe = fold_base_tables_expr f in
  match expr with
  | Lit _ | Param _ | Col _ -> acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) | Like (a, b) ->
    fe (fe acc a) b
  | Neg a | Not a | Is_null a | Is_not_null a -> fe acc a
  | In_list (a, es) | Not_in_list (a, es) -> List.fold_left fe (fe acc a) es
  | In_select (a, s) | Not_in_select (a, s) ->
    fold_base_tables_select f (fe acc a) s
  | Exists s | Scalar_select s -> fold_base_tables_select f acc s
  | Between (a, b, c) -> fe (fe (fe acc a) b) c
  | Agg (_, Some a) -> fe acc a
  | Agg (_, None) -> acc
  | Fn (_, args) -> List.fold_left fe acc args
  | Case (branches, else_) ->
    let acc =
      List.fold_left (fun acc (c, v) -> fe (fe acc c) v) acc branches
    in
    Option.fold ~none:acc ~some:(fe acc) else_

and fold_base_tables_select f acc (s : select) =
  let acc =
    List.fold_left
      (fun acc item ->
        match item.source with
        | Base t -> f acc t
        | Transition _ -> acc
        | Derived sub -> fold_base_tables_select f acc sub)
      acc s.from
  in
  let acc =
    List.fold_left
      (fun acc p ->
        match p with
        | Star | Table_star _ -> acc
        | Proj (e, _) -> fold_base_tables_expr f acc e)
      acc s.projections
  in
  let fo acc = function
    | None -> acc
    | Some e -> fold_base_tables_expr f acc e
  in
  let acc = fo acc s.where in
  let acc = List.fold_left (fold_base_tables_expr f) acc s.group_by in
  let acc = fo acc s.having in
  let acc =
    List.fold_left
      (fun acc (_, sub) -> fold_base_tables_select f acc sub)
      acc s.compounds
  in
  List.fold_left (fun acc (e, _) -> fold_base_tables_expr f acc e) acc
    s.order_by

let base_tables_of_expr e =
  List.rev (fold_base_tables_expr
    (fun acc t -> if List.exists (String.equal t) acc then acc else t :: acc)
    [] e)

(* ------------------------------------------------------------------ *)
(* Positional parameters.                                              *)

(* Map every [Param i] in an expression through [f].  The interpreter
   path of EXECUTE substitutes argument literals into the AST with
   this (the paper-faithful reading of "bind constants"); the compiled
   path binds a parameter frame instead, and the differential oracle
   proves the two agree. *)
let rec map_params_expr f expr =
  let fe = map_params_expr f in
  match expr with
  | Lit _ | Col _ -> expr
  | Param i -> f i
  | Binop (op, a, b) -> Binop (op, fe a, fe b)
  | Neg a -> Neg (fe a)
  | Cmp (op, a, b) -> Cmp (op, fe a, fe b)
  | And (a, b) -> And (fe a, fe b)
  | Or (a, b) -> Or (fe a, fe b)
  | Not a -> Not (fe a)
  | Is_null a -> Is_null (fe a)
  | Is_not_null a -> Is_not_null (fe a)
  | In_list (a, es) -> In_list (fe a, List.map fe es)
  | In_select (a, s) -> In_select (fe a, map_params_select f s)
  | Not_in_list (a, es) -> Not_in_list (fe a, List.map fe es)
  | Not_in_select (a, s) -> Not_in_select (fe a, map_params_select f s)
  | Exists s -> Exists (map_params_select f s)
  | Between (a, b, c) -> Between (fe a, fe b, fe c)
  | Like (a, b) -> Like (fe a, fe b)
  | Scalar_select s -> Scalar_select (map_params_select f s)
  | Agg (fn, e) -> Agg (fn, Option.map fe e)
  | Fn (name, args) -> Fn (name, List.map fe args)
  | Case (branches, else_) ->
    Case
      ( List.map (fun (c, v) -> (fe c, fe v)) branches,
        Option.map fe else_ )

and map_params_select f (s : select) =
  let fe = map_params_expr f in
  let item it =
    match it.source with
    | Base _ | Transition _ -> it
    | Derived sub -> { it with source = Derived (map_params_select f sub) }
  in
  {
    s with
    projections =
      List.map
        (function
          | (Star | Table_star _) as p -> p
          | Proj (e, a) -> Proj (fe e, a))
        s.projections;
    from = List.map item s.from;
    where = Option.map fe s.where;
    group_by = List.map fe s.group_by;
    having = Option.map fe s.having;
    compounds =
      List.map (fun (op, sub) -> (op, map_params_select f sub)) s.compounds;
    order_by = List.map (fun (e, d) -> (fe e, d)) s.order_by;
  }

let map_params_op f = function
  | Insert { table; columns; source = `Values rows } ->
    Insert
      {
        table;
        columns;
        source = `Values (List.map (List.map (map_params_expr f)) rows);
      }
  | Insert { table; columns; source = `Select s } ->
    Insert { table; columns; source = `Select (map_params_select f s) }
  | Delete { table; where } ->
    Delete { table; where = Option.map (map_params_expr f) where }
  | Update { table; sets; where } ->
    Update
      {
        table;
        sets = List.map (fun (c, e) -> (c, map_params_expr f e)) sets;
        where = Option.map (map_params_expr f) where;
      }
  | Select_op s -> Select_op (map_params_select f s)

(* The parser numbers parameters 0..n-1 in statement order, so the
   count is one past the highest index. *)
let param_count_op op =
  let n = ref 0 in
  ignore
    (map_params_op
       (fun i ->
         if i >= !n then n := i + 1;
         Param i)
       op);
  !n

let subst_params_op args op =
  map_params_op
    (fun i ->
      if i < 0 || i >= Array.length args then
        Errors.semantic "parameter %d out of range" (i + 1)
      else Lit args.(i))
    op

(* The dual of substitution, for the workload's prepared-statement
   mode: rewrite an operation so every literal in a bindable position
   — INSERT VALUES rows, UPDATE set right-hand sides, WHERE predicates
   at every nesting level — becomes the next positional parameter,
   returning the rewritten operation with the collected arguments.
   Projections, GROUP BY, HAVING and ORDER BY are left alone: a
   parameter there would change output naming, grouping structure or
   positional-ordering semantics rather than just late-bind a
   constant.  Traversal is forced left-to-right (constructor arguments
   alone would evaluate right-to-left), so the numbering matches the
   textual `?` order and [Pretty.op_str] of the result is a valid
   PREPARE body for the same argument vector. *)
let parameterize_op op =
  let collected = ref [] and n = ref 0 in
  let bind v =
    let i = !n in
    incr n;
    collected := v :: !collected;
    Param i
  in
  let rec pe expr =
    match expr with
    | Lit v -> bind v
    | Col _ | Param _ -> expr
    | Binop (o, a, b) ->
      let a = pe a in
      let b = pe b in
      Binop (o, a, b)
    | Neg a -> Neg (pe a)
    | Cmp (o, a, b) ->
      let a = pe a in
      let b = pe b in
      Cmp (o, a, b)
    | And (a, b) ->
      let a = pe a in
      let b = pe b in
      And (a, b)
    | Or (a, b) ->
      let a = pe a in
      let b = pe b in
      Or (a, b)
    | Not a -> Not (pe a)
    | Is_null a -> Is_null (pe a)
    | Is_not_null a -> Is_not_null (pe a)
    | In_list (a, es) ->
      let a = pe a in
      let es = List.map pe es in
      In_list (a, es)
    | In_select (a, s) ->
      let a = pe a in
      let s = ps s in
      In_select (a, s)
    | Not_in_list (a, es) ->
      let a = pe a in
      let es = List.map pe es in
      Not_in_list (a, es)
    | Not_in_select (a, s) ->
      let a = pe a in
      let s = ps s in
      Not_in_select (a, s)
    | Exists s -> Exists (ps s)
    | Between (a, lo, hi) ->
      let a = pe a in
      let lo = pe lo in
      let hi = pe hi in
      Between (a, lo, hi)
    | Like (a, b) ->
      let a = pe a in
      let b = pe b in
      Like (a, b)
    | Scalar_select s -> Scalar_select (ps s)
    | Agg (fn, e) -> Agg (fn, Option.map pe e)
    | Fn (name, args) -> Fn (name, List.map pe args)
    | Case (branches, else_) ->
      let branches =
        List.map
          (fun (c, v) ->
            let c = pe c in
            let v = pe v in
            (c, v))
          branches
      in
      Case (branches, Option.map pe else_)
  and ps (s : select) =
    let from =
      List.map
        (fun it ->
          match it.source with
          | Base _ | Transition _ -> it
          | Derived sub -> { it with source = Derived (ps sub) })
        s.from
    in
    let where = Option.map pe s.where in
    let compounds = List.map (fun (o, sub) -> (o, ps sub)) s.compounds in
    { s with from; where; compounds }
  in
  let op' =
    match op with
    | Insert { table; columns; source = `Values rows } ->
      Insert
        { table; columns; source = `Values (List.map (List.map pe) rows) }
    | Insert { table; columns; source = `Select s } ->
      Insert { table; columns; source = `Select (ps s) }
    | Delete { table; where } ->
      Delete { table; where = Option.map pe where }
    | Update { table; sets; where } ->
      let sets = List.map (fun (c, e) -> (c, pe e)) sets in
      let where = Option.map pe where in
      Update { table; sets; where }
    | Select_op s -> Select_op (ps s)
  in
  (op', Array.of_list (List.rev !collected))

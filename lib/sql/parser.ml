(* Recursive-descent parser for the dialect.

   One syntactic note: the paper separates the operations of a rule
   action with ';', which is also our statement separator.  We parse
   action blocks greedily — after a ';' the block continues if and only
   if the next tokens begin another DML operation.  A script can
   therefore terminate a rule definition explicitly with an empty
   statement (';;') or by following it with a non-DML statement.
   Parenthesizing is not needed. *)

open Relational

(* The parser pulls tokens straight off the streaming lexer through a
   small ring buffer — no materialized token list.  The grammar needs
   at most two tokens of lookahead ([peek_ahead st 2]), so four slots
   are plenty. *)

let ring = 4

type state = {
  lx : Lexer.state;
  buf : Token.located array; (* pulled-but-unconsumed tokens *)
  mutable head : int; (* slot holding the current token *)
  mutable count : int; (* filled slots starting at [head] *)
  mutable nparams : int; (* '?' parameters seen in the current statement *)
}

let make src =
  {
    lx = Lexer.make src;
    buf = Array.make ring { Token.token = Token.Eof; line = 0; col = 0 };
    head = 0;
    count = 0;
    nparams = 0;
  }

let fill st n =
  while st.count <= n do
    st.buf.((st.head + st.count) mod ring) <- Lexer.next_token st.lx;
    st.count <- st.count + 1
  done

let current st =
  fill st 0;
  st.buf.(st.head)

let peek st = (current st).Token.token

let peek_ahead st n =
  fill st n;
  st.buf.((st.head + n) mod ring).Token.token

(* Consuming Eof is a no-op, as in the array-indexed parser this
   replaces. *)
let advance st =
  fill st 0;
  match st.buf.(st.head).Token.token with
  | Token.Eof -> ()
  | _ ->
    st.head <- (st.head + 1) mod ring;
    st.count <- st.count - 1

let error st msg =
  let { Token.token; line; col } = current st in
  Errors.raise_error
    (Errors.Parse_error
       { line; col; msg = Printf.sprintf "%s (found %s)" msg (Token.to_string token) })

let expect_kw st kw =
  match peek st with
  | Token.Kw k when String.equal k kw -> advance st
  | _ -> error st (Printf.sprintf "expected %s" kw)

let accept_kw st kw =
  match peek st with
  | Token.Kw k when String.equal k kw ->
    advance st;
    true
  | _ -> false

let expect_symbol st sym =
  match peek st with
  | Token.Symbol s when String.equal s sym -> advance st
  | _ -> error st (Printf.sprintf "expected %S" sym)

let accept_symbol st sym =
  match peek st with
  | Token.Symbol s when String.equal s sym ->
    advance st;
    true
  | _ -> false

let is_kw st kw =
  match peek st with Token.Kw k -> String.equal k kw | _ -> false

let is_symbol st sym =
  match peek st with Token.Symbol s -> String.equal s sym | _ -> false

let expect_ident st what =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | _ -> error st (Printf.sprintf "expected %s" what)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let agg_of_kw = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Ast.Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Ast.And (lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Ast.Not (parse_not st) else parse_predicate st

(* Comparison level, including IS NULL / IN / BETWEEN / LIKE. *)
and parse_predicate st =
  let lhs = parse_additive st in
  if accept_kw st "IS" then
    if accept_kw st "NOT" then (
      expect_kw st "NULL";
      Ast.Is_not_null lhs)
    else (
      expect_kw st "NULL";
      Ast.Is_null lhs)
  else if accept_kw st "IN" then parse_in st lhs ~negated:false
  else if is_kw st "NOT" && peek_ahead st 1 = Token.Kw "IN" then (
    advance st;
    advance st;
    parse_in st lhs ~negated:true)
  else if is_kw st "NOT" && peek_ahead st 1 = Token.Kw "LIKE" then (
    advance st;
    advance st;
    Ast.Not (Ast.Like (lhs, parse_additive st)))
  else if is_kw st "NOT" && peek_ahead st 1 = Token.Kw "BETWEEN" then (
    advance st;
    advance st;
    let low = parse_additive st in
    expect_kw st "AND";
    let high = parse_additive st in
    Ast.Not (Ast.Between (lhs, low, high)))
  else if accept_kw st "BETWEEN" then begin
    let low = parse_additive st in
    expect_kw st "AND";
    let high = parse_additive st in
    Ast.Between (lhs, low, high)
  end
  else if accept_kw st "LIKE" then Ast.Like (lhs, parse_additive st)
  else
    match peek st with
    | Token.Symbol (("=" | "<>" | "<" | "<=" | ">" | ">=") as s) ->
      advance st;
      let op =
        match s with
        | "=" -> Ast.Eq
        | "<>" -> Ast.Neq
        | "<" -> Ast.Lt
        | "<=" -> Ast.Le
        | ">" -> Ast.Gt
        | _ -> Ast.Ge
      in
      let rhs = parse_additive st in
      Ast.Cmp (op, lhs, rhs)
    | _ -> lhs

and parse_in st lhs ~negated =
  expect_symbol st "(";
  let result =
    if is_kw st "SELECT" then begin
      let s = parse_select st in
      if negated then Ast.Not_in_select (lhs, s) else Ast.In_select (lhs, s)
    end
    else begin
      let rec items acc =
        let e = parse_expr st in
        if accept_symbol st "," then items (e :: acc) else List.rev (e :: acc)
      in
      let es = items [] in
      if negated then Ast.Not_in_list (lhs, es) else Ast.In_list (lhs, es)
    end
  in
  expect_symbol st ")";
  result

and parse_additive st =
  let rec go lhs =
    if accept_symbol st "+" then go (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    else if accept_symbol st "-" then
      go (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    else if accept_symbol st "||" then
      go (Ast.Binop (Ast.Concat, lhs, parse_multiplicative st))
    else lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    if accept_symbol st "*" then go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    else if accept_symbol st "/" then go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    else if accept_symbol st "%" then go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    else lhs
  in
  go (parse_unary st)

and parse_unary st =
  if accept_symbol st "-" then Ast.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Token.Int_lit n ->
    advance st;
    Ast.Lit (Value.Int n)
  | Token.Float_lit f ->
    advance st;
    Ast.Lit (Value.Float f)
  | Token.Str_lit s ->
    advance st;
    Ast.Lit (Value.Str s)
  | Token.Kw "NULL" ->
    advance st;
    Ast.Lit Value.Null
  | Token.Kw "TRUE" ->
    advance st;
    Ast.Lit (Value.Bool true)
  | Token.Kw "FALSE" ->
    advance st;
    Ast.Lit (Value.Bool false)
  | Token.Kw "NAN" ->
    advance st;
    Ast.Lit (Value.Float Float.nan)
  | Token.Kw "INFINITY" ->
    advance st;
    Ast.Lit (Value.Float Float.infinity)
  | Token.Symbol "?" ->
    advance st;
    let i = st.nparams in
    st.nparams <- st.nparams + 1;
    Ast.Param i
  | Token.Kw "EXISTS" ->
    advance st;
    expect_symbol st "(";
    let s = parse_select st in
    expect_symbol st ")";
    Ast.Exists s
  | Token.Kw "CASE" -> parse_case st
  | Token.Kw kw when agg_of_kw kw <> None && peek_ahead st 1 = Token.Symbol "(" ->
    advance st;
    advance st;
    let agg = Option.get (agg_of_kw kw) in
    let e =
      if String.equal kw "COUNT" && accept_symbol st "*" then
        Ast.Agg (Ast.Count_star, None)
      else Ast.Agg (agg, Some (parse_expr st))
    in
    expect_symbol st ")";
    e
  | Token.Symbol "(" ->
    advance st;
    let e =
      if is_kw st "SELECT" then Ast.Scalar_select (parse_select st)
      else parse_expr st
    in
    expect_symbol st ")";
    e
  | Token.Symbol "*" ->
    (* bare star only valid in projections; handled there *)
    error st "unexpected *"
  | Token.Ident name ->
    advance st;
    if is_symbol st "(" then begin
      (* scalar function call *)
      advance st;
      let args =
        if is_symbol st ")" then []
        else begin
          let rec go acc =
            let e = parse_expr st in
            if accept_symbol st "," then go (e :: acc) else List.rev (e :: acc)
          in
          go []
        end
      in
      expect_symbol st ")";
      Ast.Fn (String.lowercase_ascii name, args)
    end
    else if accept_symbol st "." then begin
      if accept_symbol st "*" then
        (* table.* is only valid in projections; represented there *)
        error st "table.* is only allowed in a select list"
      else
        let column = expect_ident st "column name" in
        Ast.Col { qualifier = Some name; column }
    end
    else Ast.Col { qualifier = None; column = name }
  | _ -> error st "expected expression"

and parse_case st =
  expect_kw st "CASE";
  let rec branches acc =
    if accept_kw st "WHEN" then begin
      let c = parse_expr st in
      expect_kw st "THEN";
      let v = parse_expr st in
      branches ((c, v) :: acc)
    end
    else List.rev acc
  in
  let bs = branches [] in
  if bs = [] then error st "CASE requires at least one WHEN branch";
  let else_ = if accept_kw st "ELSE" then Some (parse_expr st) else None in
  expect_kw st "END";
  Ast.Case (bs, else_)

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)

(* A select "core": everything through HAVING.  Compound operators and
   the trailing ORDER BY / LIMIT are handled by [parse_select]. *)
and parse_select_core st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let projections = parse_projections st in
  let from = if accept_kw st "FROM" then parse_from_items st else [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if is_kw st "GROUP" then begin
      advance st;
      expect_kw st "BY";
      let rec go acc =
        let e = parse_expr st in
        if accept_symbol st "," then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  {
    Ast.distinct; projections; from; where; group_by; having;
    compounds = []; order_by = []; limit = None;
  }

and parse_select st =
  let core = parse_select_core st in
  let rec parse_compounds acc =
    if is_kw st "UNION" then begin
      advance st;
      let op = if accept_kw st "ALL" then Ast.Union_all else Ast.Union in
      parse_compounds ((op, parse_select_core st) :: acc)
    end
    else if accept_kw st "EXCEPT" then
      parse_compounds ((Ast.Except, parse_select_core st) :: acc)
    else if accept_kw st "INTERSECT" then
      parse_compounds ((Ast.Intersect, parse_select_core st) :: acc)
    else List.rev acc
  in
  let compounds = parse_compounds [] in
  let order_by =
    if is_kw st "ORDER" then begin
      advance st;
      expect_kw st "BY";
      let rec go acc =
        let e = parse_expr st in
        let dir =
          if accept_kw st "DESC" then `Desc
          else begin
            ignore (accept_kw st "ASC");
            `Asc
          end
        in
        if accept_symbol st "," then go ((e, dir) :: acc)
        else List.rev ((e, dir) :: acc)
      in
      go []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then begin
      match peek st with
      | Token.Int_lit n ->
        advance st;
        Some n
      | _ -> error st "expected integer after LIMIT"
    end
    else None
  in
  { core with Ast.compounds; order_by; limit }

and parse_projections st =
  let parse_one () =
    if accept_symbol st "*" then Ast.Star
    else if
      (match peek st with Token.Ident _ -> true | _ -> false)
      && peek_ahead st 1 = Token.Symbol "."
      && peek_ahead st 2 = Token.Symbol "*"
    then begin
      let name = expect_ident st "table name" in
      advance st;
      advance st;
      Ast.Table_star name
    end
    else begin
      let n0 = st.nparams in
      let e = parse_expr st in
      let alias =
        if accept_kw st "AS" then Some (expect_ident st "alias")
        else
          match peek st with
          | Token.Ident a ->
            advance st;
            Some a
          | _ -> None
      in
      let alias =
        match alias with
        | None when st.nparams > n0 ->
          (* a parameter in an alias-free projection: pin the output
             column name to the PREPARE-time source text, so binding
             (or the interpreter oracle's substitution) cannot rename
             the column per EXECUTE *)
          Some (Pretty.expr_str e)
        | _ -> alias
      in
      Ast.Proj (e, alias)
    end
  in
  let rec go acc =
    let p = parse_one () in
    if accept_symbol st "," then go (p :: acc) else List.rev (p :: acc)
  in
  go []

and parse_from_items st =
  let rec go acc =
    let item = parse_from_item st in
    if accept_symbol st "," then go (item :: acc) else List.rev (item :: acc)
  in
  go []

(* A from item: base table, derived table, or one of the paper's
   transition tables ("inserted t", "deleted t", "old updated t[.c]",
   "new updated t[.c]", "selected t[.c]"), each with an optional
   alias. *)
and parse_from_item st =
  let source =
    if accept_symbol st "(" then begin
      let s = parse_select st in
      expect_symbol st ")";
      Ast.Derived s
    end
    else if accept_kw st "INSERTED" then
      Ast.Transition (Ast.Tt_inserted (expect_ident st "table name"))
    else if accept_kw st "DELETED" then
      Ast.Transition (Ast.Tt_deleted (expect_ident st "table name"))
    else if accept_kw st "OLD" then begin
      expect_kw st "UPDATED";
      let t, c = parse_table_dot_col st in
      Ast.Transition (Ast.Tt_old_updated (t, c))
    end
    else if accept_kw st "NEW" then begin
      expect_kw st "UPDATED";
      let t, c = parse_table_dot_col st in
      Ast.Transition (Ast.Tt_new_updated (t, c))
    end
    else if accept_kw st "SELECTED" then begin
      let t, c = parse_table_dot_col st in
      Ast.Transition (Ast.Tt_selected (t, c))
    end
    else Ast.Base (expect_ident st "table name")
  in
  let alias =
    if accept_kw st "AS" then Some (expect_ident st "alias")
    else
      match peek st with
      | Token.Ident a ->
        advance st;
        Some a
      | _ -> None
  in
  { Ast.source; alias }

and parse_table_dot_col st =
  let t = expect_ident st "table name" in
  if is_symbol st "." && (match peek_ahead st 1 with Token.Ident _ -> true | _ -> false)
  then begin
    advance st;
    let c = expect_ident st "column name" in
    (t, Some c)
  end
  else (t, None)

(* ------------------------------------------------------------------ *)
(* DML operations                                                      *)

let parse_insert st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = expect_ident st "table name" in
  let columns =
    if
      is_symbol st "("
      && (match peek_ahead st 1 with Token.Ident _ -> true | _ -> false)
      && (peek_ahead st 2 = Token.Symbol "," || peek_ahead st 2 = Token.Symbol ")")
    then begin
      expect_symbol st "(";
      let rec go acc =
        let c = expect_ident st "column name" in
        if accept_symbol st "," then go (c :: acc) else List.rev (c :: acc)
      in
      let cols = go [] in
      expect_symbol st ")";
      Some cols
    end
    else None
  in
  if accept_kw st "VALUES" then begin
    let parse_row () =
      expect_symbol st "(";
      let rec go acc =
        let e = parse_expr st in
        if accept_symbol st "," then go (e :: acc) else List.rev (e :: acc)
      in
      let row = go [] in
      expect_symbol st ")";
      row
    in
    let rec rows acc =
      let r = parse_row () in
      if accept_symbol st "," then rows (r :: acc) else List.rev (r :: acc)
    in
    Ast.Insert { table; columns; source = `Values (rows []) }
  end
  else if accept_symbol st "(" then begin
    let s = parse_select st in
    expect_symbol st ")";
    Ast.Insert { table; columns; source = `Select s }
  end
  else if is_kw st "SELECT" then
    Ast.Insert { table; columns; source = `Select (parse_select st) }
  else error st "expected VALUES or a select operation"

let parse_delete st =
  expect_kw st "DELETE";
  expect_kw st "FROM";
  let table = expect_ident st "table name" in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  Ast.Delete { table; where }

let parse_update st =
  expect_kw st "UPDATE";
  let table = expect_ident st "table name" in
  expect_kw st "SET";
  let rec sets acc =
    let col = expect_ident st "column name" in
    expect_symbol st "=";
    let e = parse_expr st in
    if accept_symbol st "," then sets ((col, e) :: acc)
    else List.rev ((col, e) :: acc)
  in
  let sets = sets [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  Ast.Update { table; sets; where }

let parse_op st =
  match peek st with
  | Token.Kw "INSERT" -> parse_insert st
  | Token.Kw "DELETE" -> parse_delete st
  | Token.Kw "UPDATE" -> parse_update st
  | Token.Kw "SELECT" -> Ast.Select_op (parse_select st)
  | _ -> error st "expected INSERT, DELETE, UPDATE or SELECT"

(* An operation block inside a rule action: ops separated by ';',
   continuing greedily while the next tokens begin a DML op. *)
let parse_op_block st =
  let rec go acc =
    let op = parse_op st in
    if is_symbol st ";" && (match peek_ahead st 1 with
                            | Token.Kw ("INSERT" | "DELETE" | "UPDATE" | "SELECT") -> true
                            | _ -> false)
    then begin
      advance st;
      go (op :: acc)
    end
    else List.rev (op :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Rule definition                                                     *)

let parse_basic_trans_pred st =
  if accept_kw st "INSERTED" then begin
    expect_kw st "INTO";
    Ast.Tp_inserted (expect_ident st "table name")
  end
  else if accept_kw st "DELETED" then begin
    expect_kw st "FROM";
    Ast.Tp_deleted (expect_ident st "table name")
  end
  else if accept_kw st "UPDATED" then begin
    let t, c = parse_table_dot_col st in
    Ast.Tp_updated (t, c)
  end
  else if accept_kw st "SELECTED" then begin
    let t, c = parse_table_dot_col st in
    Ast.Tp_selected (t, c)
  end
  else error st "expected INSERTED INTO, DELETED FROM, UPDATED or SELECTED"

let parse_trans_preds st =
  let rec go acc =
    let p = parse_basic_trans_pred st in
    if accept_kw st "OR" then go (p :: acc) else List.rev (p :: acc)
  in
  go []

let parse_rule_def st ~rule_name =
  expect_kw st "WHEN";
  let trans_preds = parse_trans_preds st in
  let condition = if accept_kw st "IF" then Some (parse_expr st) else None in
  expect_kw st "THEN";
  let action =
    if accept_kw st "ROLLBACK" then Ast.Act_rollback
    else if accept_kw st "CALL" then Ast.Act_call (expect_ident st "procedure name")
    else Ast.Act_block (parse_op_block st)
  in
  { Ast.rule_name; trans_preds; condition; action }

(* ------------------------------------------------------------------ *)
(* CREATE TABLE                                                        *)

let parse_col_type st =
  let skip_length () =
    (* VARCHAR(40) etc.: length is accepted and ignored. *)
    if accept_symbol st "(" then begin
      (match peek st with
      | Token.Int_lit _ -> advance st
      | _ -> error st "expected length");
      expect_symbol st ")"
    end
  in
  match peek st with
  | Token.Kw ("INT" | "INTEGER") ->
    advance st;
    Schema.T_int
  | Token.Kw ("FLOAT" | "REAL") ->
    advance st;
    Schema.T_float
  | Token.Kw ("STRING" | "TEXT") ->
    advance st;
    Schema.T_string
  | Token.Kw ("VARCHAR" | "CHAR") ->
    advance st;
    skip_length ();
    Schema.T_string
  | Token.Kw ("BOOL" | "BOOLEAN") ->
    advance st;
    Schema.T_bool
  | _ -> error st "expected a column type"

let parse_literal st =
  match peek st with
  | Token.Int_lit n ->
    advance st;
    Value.Int n
  | Token.Float_lit f ->
    advance st;
    Value.Float f
  | Token.Str_lit s ->
    advance st;
    Value.Str s
  | Token.Kw "NULL" ->
    advance st;
    Value.Null
  | Token.Kw "TRUE" ->
    advance st;
    Value.Bool true
  | Token.Kw "FALSE" ->
    advance st;
    Value.Bool false
  | Token.Kw "NAN" ->
    advance st;
    Value.Float Float.nan
  | Token.Kw "INFINITY" ->
    advance st;
    Value.Float Float.infinity
  | Token.Symbol "-" -> (
    advance st;
    match peek st with
    | Token.Int_lit n ->
      advance st;
      Value.Int (-n)
    | Token.Float_lit f ->
      advance st;
      Value.Float (-.f)
    | Token.Kw "INFINITY" ->
      advance st;
      Value.Float Float.neg_infinity
    | _ -> error st "expected numeric literal")
  | _ -> error st "expected a literal"

let parse_col_constraints st =
  let rec go acc =
    if is_kw st "NOT" && peek_ahead st 1 = Token.Kw "NULL" then begin
      advance st;
      advance st;
      go (Ast.C_not_null :: acc)
    end
    else if is_kw st "PRIMARY" then begin
      advance st;
      expect_kw st "KEY";
      go (Ast.C_primary_key :: acc)
    end
    else if accept_kw st "UNIQUE" then go (Ast.C_unique :: acc)
    else if accept_kw st "DEFAULT" then go (Ast.C_default (parse_literal st) :: acc)
    else if accept_kw st "REFERENCES" then begin
      let parent = expect_ident st "table name" in
      let col =
        if accept_symbol st "(" then begin
          let c = expect_ident st "column name" in
          expect_symbol st ")";
          Some c
        end
        else None
      in
      go (Ast.C_references (parent, col) :: acc)
    end
    else if accept_kw st "CHECK" then begin
      expect_symbol st "(";
      let e = parse_expr st in
      expect_symbol st ")";
      go (Ast.C_check e :: acc)
    end
    else List.rev acc
  in
  go []

let parse_name_list st =
  expect_symbol st "(";
  let rec go acc =
    let c = expect_ident st "column name" in
    if accept_symbol st "," then go (c :: acc) else List.rev (c :: acc)
  in
  let names = go [] in
  expect_symbol st ")";
  names

let parse_on_delete st =
  if accept_kw st "ON" then begin
    expect_kw st "DELETE";
    if accept_kw st "CASCADE" then `Cascade
    else if accept_kw st "RESTRICT" then `Restrict
    else if accept_kw st "SET" then begin
      expect_kw st "NULL";
      `Set_null
    end
    else if accept_kw st "NO" then begin
      expect_kw st "ACTION";
      `Restrict
    end
    else error st "expected CASCADE, RESTRICT or SET NULL"
  end
  else `Restrict

let parse_table_constraint st =
  if is_kw st "PRIMARY" then begin
    advance st;
    expect_kw st "KEY";
    Some (Ast.T_primary_key (parse_name_list st))
  end
  else if accept_kw st "UNIQUE" then Some (Ast.T_unique (parse_name_list st))
  else if is_kw st "FOREIGN" then begin
    advance st;
    expect_kw st "KEY";
    let columns = parse_name_list st in
    expect_kw st "REFERENCES";
    let parent = expect_ident st "table name" in
    let parent_columns =
      if is_symbol st "(" then Some (parse_name_list st) else None
    in
    let on_delete = parse_on_delete st in
    Some (Ast.T_foreign_key { columns; parent; parent_columns; on_delete })
  end
  else if accept_kw st "CHECK" then begin
    expect_symbol st "(";
    let e = parse_expr st in
    expect_symbol st ")";
    Some (Ast.T_check e)
  end
  else None

let parse_create_table st =
  let ct_name = expect_ident st "table name" in
  expect_symbol st "(";
  let rec go cols constraints =
    match parse_table_constraint st with
    | Some c ->
      if accept_symbol st "," then go cols (c :: constraints)
      else (List.rev cols, List.rev (c :: constraints))
    | None ->
      let cd_name = expect_ident st "column name" in
      let cd_type = parse_col_type st in
      let cd_constraints = parse_col_constraints st in
      let col = { Ast.cd_name; cd_type; cd_constraints } in
      if accept_symbol st "," then go (col :: cols) constraints
      else (List.rev (col :: cols), List.rev constraints)
  in
  let ct_columns, ct_constraints = go [] [] in
  expect_symbol st ")";
  { Ast.ct_name; ct_columns; ct_constraints }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let parse_statement_inner st =
  match peek st with
  | Token.Kw "CREATE" -> (
    advance st;
    if accept_kw st "TABLE" then Ast.Stmt_create_table (parse_create_table st)
    else if accept_kw st "ASSERTION" then begin
      let name = expect_ident st "assertion name" in
      expect_kw st "CHECK";
      expect_symbol st "(";
      let e = parse_expr st in
      expect_symbol st ")";
      Ast.Stmt_create_assertion (name, e)
    end
    else if accept_kw st "RULE" then
      if accept_kw st "PRIORITY" then begin
        let high = expect_ident st "rule name" in
        expect_kw st "BEFORE";
        let low = expect_ident st "rule name" in
        Ast.Stmt_priority (high, low)
      end
      else begin
        let name = expect_ident st "rule name" in
        Ast.Stmt_create_rule (parse_rule_def st ~rule_name:name)
      end
    else if accept_kw st "INDEX" then begin
      let ix_name = expect_ident st "index name" in
      expect_kw st "ON";
      let ix_table = expect_ident st "table name" in
      match parse_name_list st with
      | [ ix_column ] ->
        let ix_kind =
          if accept_kw st "USING" then begin
            let kind = expect_ident st "index kind (HASH or ORDERED)" in
            match String.lowercase_ascii kind with
            | "hash" -> `Hash
            | "ordered" | "btree" -> `Ordered
            | _ ->
              error st
                (Printf.sprintf "unknown index kind %S: expected HASH or ORDERED"
                   kind)
          end
          else `Hash
        in
        Ast.Stmt_create_index { ix_name; ix_table; ix_column; ix_kind }
      | _ -> error st "indexes are single-column: expected exactly one column"
    end
    else error st "expected TABLE, RULE, ASSERTION or INDEX after CREATE")
  | Token.Kw "DROP" -> (
    advance st;
    if accept_kw st "TABLE" then Ast.Stmt_drop_table (expect_ident st "table name")
    else if accept_kw st "RULE" then Ast.Stmt_drop_rule (expect_ident st "rule name")
    else if accept_kw st "ASSERTION" then
      Ast.Stmt_drop_assertion (expect_ident st "assertion name")
    else if accept_kw st "INDEX" then
      Ast.Stmt_drop_index (expect_ident st "index name")
    else error st "expected TABLE, RULE, ASSERTION or INDEX after DROP")
  | Token.Kw "ACTIVATE" ->
    advance st;
    ignore (accept_kw st "RULE");
    Ast.Stmt_activate (expect_ident st "rule name")
  | Token.Kw "DEACTIVATE" ->
    advance st;
    ignore (accept_kw st "RULE");
    Ast.Stmt_deactivate (expect_ident st "rule name")
  | Token.Kw "BEGIN" ->
    advance st;
    Ast.Stmt_begin
  | Token.Kw "COMMIT" ->
    advance st;
    Ast.Stmt_commit
  | Token.Kw "ROLLBACK" ->
    advance st;
    Ast.Stmt_rollback
  | Token.Kw "PROCESS" ->
    advance st;
    expect_kw st "RULES";
    Ast.Stmt_process_rules
  | Token.Kw "SHOW" ->
    advance st;
    if accept_kw st "TABLES" then Ast.Stmt_show_tables
    else if accept_kw st "RULES" then Ast.Stmt_show_rules
    else error st "expected TABLES or RULES after SHOW"
  | Token.Kw "DESCRIBE" ->
    advance st;
    Ast.Stmt_describe (expect_ident st "table name")
  | Token.Kw "EXPLAIN" ->
    advance st;
    if accept_kw st "RULE" then
      Ast.Stmt_explain (Ast.Explain_rule (expect_ident st "rule name"))
    else Ast.Stmt_explain (Ast.Explain_op (parse_op st))
  | Token.Kw "PREPARE" ->
    advance st;
    let name = expect_ident st "prepared-statement name" in
    expect_kw st "AS";
    (* [parse_op] admits only DML, so a parameterized DDL body cannot
       slip in under PREPARE *)
    Ast.Stmt_prepare (name, parse_op st)
  | Token.Kw "EXECUTE" ->
    advance st;
    let name = expect_ident st "prepared-statement name" in
    let args =
      if accept_symbol st "(" then
        if accept_symbol st ")" then []
        else begin
          let rec go acc =
            let v = parse_literal st in
            if accept_symbol st "," then go (v :: acc) else List.rev (v :: acc)
          in
          let vs = go [] in
          expect_symbol st ")";
          vs
        end
      else []
    in
    Ast.Stmt_execute (name, args)
  | Token.Kw "DEALLOCATE" ->
    advance st;
    if accept_kw st "ALL" then Ast.Stmt_deallocate None
    else Ast.Stmt_deallocate (Some (expect_ident st "prepared-statement name"))
  | Token.Kw ("INSERT" | "DELETE" | "UPDATE" | "SELECT") ->
    Ast.Stmt_op (parse_op st)
  | _ -> error st "expected a statement"

(* Positional parameters bind through PREPARE only.  Everything else —
   DDL (which executes, and in the rule case compiles, at definition
   time), direct DML, EXPLAIN — gets a typed error rather than a
   misbound constant downstream. *)
let parse_statement st =
  st.nparams <- 0;
  let stmt = parse_statement_inner st in
  (if st.nparams > 0 then
     match stmt with
     | Ast.Stmt_prepare _ -> ()
     | Ast.Stmt_create_rule _ | Ast.Stmt_create_assertion _ ->
       Errors.raise_error
         (Errors.Parameter_error
            "positional parameters are not allowed in rule definitions \
             (rule bodies compile at DDL time)")
     | Ast.Stmt_op _ | Ast.Stmt_explain _ ->
       Errors.raise_error
         (Errors.Parameter_error
            "positional parameters are only allowed inside PREPARE ... AS")
     | _ ->
       Errors.raise_error
         (Errors.Parameter_error "positional parameters are not allowed in DDL"));
  stmt

let at_eof st = peek st = Token.Eof

(* Parse a ';'-separated script. *)
let parse_script src =
  let st = make src in
  let rec go acc =
    (* skip empty statements *)
    while is_symbol st ";" do
      advance st
    done;
    if at_eof st then List.rev acc
    else begin
      let stmt = parse_statement st in
      if not (at_eof st) then expect_symbol st ";";
      go (stmt :: acc)
    end
  in
  go []

let parse_statement_string src =
  match parse_script src with
  | [ s ] -> s
  | [] -> Errors.semantic "empty statement"
  | _ -> Errors.semantic "expected a single statement"

let parse_expr_string src =
  let st = make src in
  let e = parse_expr st in
  if not (at_eof st) then error st "trailing input after expression";
  e

let parse_select_string src =
  let st = make src in
  let s = parse_select st in
  (* allow a trailing ';' *)
  ignore (accept_symbol st ";");
  if not (at_eof st) then error st "trailing input after select";
  s

(* Abstract syntax for the dialect of the paper:

   - data manipulation operations and operation blocks (Section 2.1),
   - queries with embedded selects, aggregates and transition-table
     references (Section 3),
   - rule definition and priority statements (Sections 3 and 4.4),
   - the Section 5 extensions (select operations inside blocks,
     external-procedure actions, rule triggering points),
   - the DDL needed around them (create/drop table).  *)

open Relational

type binop = Add | Sub | Mul | Div | Mod | Concat
type cmpop = Eq | Neq | Lt | Le | Gt | Ge
type agg_fn = Count_star | Count | Sum | Avg | Min | Max

(* A reference to one of the paper's logical transition tables.  The
   [string option] is the column for the ".c" forms. *)
type trans_table =
  | Tt_inserted of string
  | Tt_deleted of string
  | Tt_old_updated of string * string option
  | Tt_new_updated of string * string option
  | Tt_selected of string * string option (* Section 5.1 extension *)

type expr =
  | Lit of Value.t
  | Param of int  (** positional '?' parameter, 0-based in statement order *)
  | Col of { qualifier : string option; column : string }
  | Binop of binop * expr * expr
  | Neg of expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | In_list of expr * expr list
  | In_select of expr * select
  | Not_in_list of expr * expr list
  | Not_in_select of expr * select
  | Exists of select
  | Between of expr * expr * expr
  | Like of expr * expr
  | Scalar_select of select (* embedded select used as a value *)
  | Agg of agg_fn * expr option (* aggregate; None only for count-star *)
  | Fn of string * expr list (* scalar function: abs, upper, coalesce, ... *)
  | Case of (expr * expr) list * expr option

and table_source =
  | Base of string
  | Transition of trans_table
  | Derived of select

and from_item = { source : table_source; alias : string option }

and proj = Star | Table_star of string | Proj of expr * string option

(* Compound (set) operations: UNION dedupes, UNION ALL keeps
   duplicates, EXCEPT and INTERSECT use set semantics. *)
and compound_op = Union | Union_all | Except | Intersect

and select = {
  distinct : bool;
  projections : proj list;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  compounds : (compound_op * select) list;
      (* further select cores combined with this one; the [order_by]
         and [limit] below then apply to the combined result *)
  order_by : (expr * [ `Asc | `Desc ]) list;
  limit : int option;
}

(* Data manipulation operations (paper Section 2.1; [Select_op] is the
   Section 5.1 extension allowing retrieval inside operation blocks). *)
type op =
  | Insert of {
      table : string;
      columns : string list option;
      source : [ `Values of expr list list | `Select of select ];
    }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Select_op of select

type op_block = op list

(* Rule definition (Section 3). *)
type basic_trans_pred =
  | Tp_inserted of string
  | Tp_deleted of string
  | Tp_updated of string * string option
  | Tp_selected of string * string option (* Section 5.1 extension *)

type action =
  | Act_block of op_block
  | Act_rollback
  | Act_call of string (* Section 5.2 extension: external procedure *)

type rule_def = {
  rule_name : string;
  trans_preds : basic_trans_pred list; (* disjunction *)
  condition : expr option;
  action : action;
}

(* DDL: column and table constraints accepted by CREATE TABLE.  They
   are not enforced by storage; the facade compiles them to production
   rules via the constraint compiler — the paper's own suggested use. *)
type col_constraint =
  | C_not_null
  | C_primary_key
  | C_unique
  | C_default of Value.t
  | C_references of string * string option
  | C_check of expr

type col_def = {
  cd_name : string;
  cd_type : Schema.col_type;
  cd_constraints : col_constraint list;
}

type table_constraint =
  | T_primary_key of string list
  | T_unique of string list
  | T_foreign_key of {
      columns : string list;
      parent : string;
      parent_columns : string list option;
      on_delete : [ `Cascade | `Restrict | `Set_null ];
    }
  | T_check of expr

type create_table = {
  ct_name : string;
  ct_columns : col_def list;
  ct_constraints : table_constraint list;
}

(* EXPLAIN renders the access-path decisions (scan vs index probe) the
   executor would take, without executing.  The rule form explains the
   selects embedded in a named rule's condition. *)
type explain_target = Explain_op of op | Explain_rule of string

type statement =
  | Stmt_create_table of create_table
  | Stmt_drop_table of string
  | Stmt_create_rule of rule_def
  | Stmt_drop_rule of string
  | Stmt_priority of string * string (* first has priority over second *)
  | Stmt_activate of string
  | Stmt_deactivate of string
  | Stmt_op of op
  | Stmt_begin
  | Stmt_commit
  | Stmt_rollback
  | Stmt_process_rules (* Section 5.3: explicit rule triggering point *)
  | Stmt_create_assertion of string * expr
      (* SQL-assertion-style cross-table constraint, compiled to rules *)
  | Stmt_drop_assertion of string
  | Stmt_create_index of {
      ix_name : string;
      ix_table : string;
      ix_column : string;
      ix_kind : Index.kind;
    }
      (* single-column index: an equality access path ([`Hash]) or an
         equality-and-range access path ([`Ordered]) *)
  | Stmt_drop_index of string
  | Stmt_show_tables
  | Stmt_show_rules
  | Stmt_describe of string
  | Stmt_explain of explain_target
  | Stmt_prepare of string * op
      (** PREPARE name AS <op>: parse and compile once, bind per
          EXECUTE.  Only DML operations are preparable; the body is the
          only place positional parameters may appear. *)
  | Stmt_execute of string * Value.t list
      (** EXECUTE name (v, ...): bind constants into the prepared
          operation's parameter frame and run the cached closure. *)
  | Stmt_deallocate of string option  (** [None] deallocates all *)

(** {2 Structural helpers used by the rule engine and static analysis} *)

val trans_table_base : trans_table -> string
(** The underlying base table of a transition-table reference. *)

val trans_table_matches_pred : trans_table -> basic_trans_pred -> bool
(** Does a transition-table reference fall within what a basic
    transition predicate licenses (paper Section 3's syntactic
    restriction)?  A column-unspecific "updated t" licenses the
    column-specific tables too. *)

val fold_trans_tables_expr : ('a -> trans_table -> 'a) -> 'a -> expr -> 'a
(** Fold over every transition-table reference in an expression,
    through embedded selects. *)

val fold_trans_tables_select : ('a -> trans_table -> 'a) -> 'a -> select -> 'a
val fold_trans_tables_op : ('a -> trans_table -> 'a) -> 'a -> op -> 'a

val trans_tables_of_rule : rule_def -> trans_table list
(** Every transition table referenced by a rule's condition and
    action. *)

val fold_base_tables_expr : ('a -> string -> 'a) -> 'a -> expr -> 'a
(** Fold over every base-table reference in an expression (through
    embedded selects). *)

val fold_base_tables_select : ('a -> string -> 'a) -> 'a -> select -> 'a

val base_tables_of_expr : expr -> string list
(** Distinct base tables referenced by an expression, in first-seen
    order; the triggering footprint of a compiled assertion. *)

(** {2 Positional parameters} *)

val map_params_expr : (int -> expr) -> expr -> expr
(** Replace every [Param i] in an expression by [f i], through embedded
    selects. *)

val map_params_select : (int -> expr) -> select -> select
val map_params_op : (int -> expr) -> op -> op

val param_count_op : op -> int
(** Number of positional parameters in an operation (one past the
    highest index; the parser numbers them 0..n-1 in statement
    order). *)

val subst_params_op : Value.t array -> op -> op
(** Substitute argument literals for the parameters of an operation —
    the interpreter path of EXECUTE.  Arity is validated by the caller;
    an out-of-range index raises a semantic error. *)

val parameterize_op : op -> op * Value.t array
(** The dual of {!subst_params_op}, for driving ad-hoc statements
    through the prepared-statement machinery: replace every literal in
    a bindable position (INSERT VALUES rows, UPDATE set right-hand
    sides, WHERE predicates at every nesting level) with the next
    positional parameter and return the collected arguments.
    Projections, GROUP BY, HAVING and ORDER BY keep their literals, so
    output naming, grouping and positional ordering are unchanged.
    Parameters are numbered in textual order:
    [subst_params_op args (fst (parameterize_op op))] is [op]. *)

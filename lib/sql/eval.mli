(** Query evaluation.

    The evaluator works over {!relation}s — named column lists plus
    rows — rather than stored tables, so the same machinery evaluates
    base tables, derived tables and the paper's transition tables.  A
    {!resolver} maps AST table sources to relations; the rules engine
    supplies a resolver that also serves the triggering rule's
    transition tables.

    Three-valued logic: predicates evaluate to [Bool _] or [Null]
    (unknown); a row is selected only when the predicate is definitely
    true. *)

open Relational

type relation = { rel_name : string; cols : string array; rows : Row.t list }

type resolver = Ast.table_source -> relation

val relation_of_table : Table.t -> relation

val base_resolver : Database.t -> resolver
(** A resolver over base tables only; referencing a transition table
    raises [Invalid_transition_reference]. *)

(** {2 Environments} *)

type binding = {
  bind_name : string;
  bind_cols : string array;
  bind_row : Row.t;
}

type env = binding list list
(** Scopes, innermost first; each frame is the from-list of one
    select.  Column references resolve innermost-first; within a scope
    an unqualified reference must be unambiguous. *)

val empty_env : env

(** {2 Uncorrelated-subquery caching}

    Predicates are evaluated once per candidate row; without care an
    embedded select that does not reference the outer row would be
    re-evaluated for every row.  A {!cache} shared across the rows of
    one operation memoizes such subqueries; correlation is detected
    dynamically on the first evaluation.  A cache is only sound while
    the database state is fixed — create one per operation or rule
    condition. *)

type cache

val make_cache : unit -> cache

val join_optimization : bool ref
(** When true (the default), an equality conjunct in the WHERE clause
    linking two from-list sources turns the nested-loop join into an
    order-preserving hash join.  Results are identical; the switch
    exists for the ablation benchmark. *)

(** {2 Access paths}

    When a caller supplies {!access} hooks, base tables in a from-list
    are realized lazily: a sargable equality/IN conjunct of the WHERE
    clause over an indexed column is satisfied by an index probe
    instead of a scan.  A probe returns matching rows in handle
    (insertion) order — an order-preserving subsequence of the scan —
    and the full predicate is still applied afterwards, so results are
    identical either way. *)

type access = {
  acc_cols : table:string -> string array option;
      (** a base table's column names, without materializing its rows;
          [None] for an unknown table (forcing the eager path) *)
  acc_probe :
    table:string ->
    column:string ->
    Value.t list ->
    (Handle.t * Row.t) list option;
      (** probe any index over the column; [None] when no usable index
          exists *)
  acc_range :
    table:string ->
    column:string ->
    lower:(Value.t * bool) option ->
    upper:(Value.t * bool) option ->
    (Handle.t * Row.t) list option;
      (** probe an ordered index over the column for a key range (bound
          value, inclusive?); [None] when no ordered index exists or a
          bound is type-incompatible *)
  acc_note :
    table:string ->
    [ `Seq_scan | `Index_probe | `Range_probe | `Hash_join_build
    | `Hash_join_probe ] ->
    unit;
      (** called with every access decision the executor takes — once
          per base-table access for scans/probes, once per hash-join
          build and once per probe into a built join table — for
          EXPLAIN-style statistics *)
  acc_index : table:string -> column:string -> string option;
      (** name of the index that [acc_probe] would use for this column,
          if any; informational (EXPLAIN) only *)
  acc_count : table:string -> int option;
      (** current cardinality of a base table, without materializing
          it; [None] for an unknown table *)
  acc_stats : table:string -> column:string -> (int * bool) option;
      (** incrementally-maintained statistics for an indexed column:
          distinct non-null key count, and whether an ordered index
          (range capability) covers it; [None] for unindexed columns *)
}

val predicate_pushdown : bool ref
(** When true (the default) and access hooks are installed, sargable
    conjuncts are pushed down into index probes.  Results are
    identical; the switch exists for the differential test harness and
    the ablation benchmark. *)

val cost_model : bool ref
(** When true (the default), the planner ranks all sargable candidates
    — equality/IN, range comparisons, BETWEEN, prefix LIKE — by
    estimated enumerated rows from the maintained statistics and takes
    the cheapest.  When false it degrades to the historical
    first-equality-match planner (no range probes): the oracle the
    differential harnesses compare against.  Results are identical
    either way. *)

(** {2 Cost model} *)

type probe_shape = Shape_eq of int option | Shape_range | Shape_prefix
(** The statically-known shape of a sargable conjunct: an equality/IN
    probe with the given key count ([None] = IN (select ...)), a range,
    or a LIKE prefix range. *)

val estimate_shape :
  access -> table:string -> column:string -> probe_shape -> int option
(** Estimated rows a probe of this shape would enumerate, from the
    maintained statistics ([None] = no usable index).  Ranges are
    guessed at selectivity 1/3 (prefixes 1/4); equality estimates are
    keys × rows ∕ distinct. *)

val choose_candidates :
  access -> table:string -> ('a * string * probe_shape) list ->
  ('a * int option) list
(** The single decision procedure shared by the interpreting and
    compiling evaluators: given [(payload, column, shape)] candidates
    in conjunct order, the ones worth attempting, cheapest first, each
    with its estimate.  With {!cost_model} off: equality candidates in
    conjunct order, no estimates (the historical planner). *)

type probe_hit = {
  ph_column : string;  (** indexed column satisfying the probe *)
  ph_conjunct : Ast.expr;  (** the WHERE conjunct pushed down *)
  ph_kind : [ `Eq | `Range ];
  ph_est : int option;  (** cost-model estimate; [None] = legacy planner *)
  ph_pairs : (Handle.t * Row.t) list;  (** rows the probe enumerates *)
}
(** A successful probe decision, as produced by {!probe_table} and
    consumed by the DML layer and EXPLAIN. *)

val probe_table :
  ?cache:cache ->
  access:access ->
  resolver ->
  table:string ->
  bind_name:string ->
  cols:string array ->
  Ast.expr option ->
  probe_hit option
(** Entry point for the DML layer's victim selection: probe one base
    table (bound under [bind_name] with columns [cols]) using the same
    sargable detection, cost ranking and fallback semantics as the
    FROM-list planner.  [None] means "scan instead". *)

(** {2 Evaluation} *)

val eval_select :
  ?cache:cache -> ?access:access -> ?outer:env -> resolver -> Ast.select ->
  relation
(** Evaluate a select operation: cross product of the from-list, WHERE
    filter, grouping and aggregates, HAVING, projection, DISTINCT,
    ORDER BY, LIMIT.  [outer] supplies enclosing scopes for correlated
    evaluation. *)

val eval_expr_in :
  ?cache:cache -> ?access:access -> ?outer:env -> resolver -> env -> Ast.expr ->
  Value.t
(** Evaluate an expression in the given environment (aggregates are
    rejected outside grouped queries). *)

val eval_predicate :
  ?cache:cache -> ?access:access -> ?outer:env -> resolver -> env -> Ast.expr ->
  bool
(** Evaluate a predicate and collapse three-valued logic: [true] only
    when the predicate is definitely true. *)

(** {2 EXPLAIN: access-path planning without execution}

    The planners below run exactly the decision procedure the executor
    uses — the same sargable-conjunct detection, independence analysis
    and lazy-vs-eager split — but stop short of realizing the planned
    sources or mutating anything.  Probing evaluates the sargable
    conjunct's value side (possibly an uncorrelated subquery), so
    planning reads — but never writes — the database.  Plans cover the
    top-level FROM sources of each select core and the victim table of
    DELETE/UPDATE; tables touched only inside predicate subqueries are
    not enumerated. *)

type access_path =
  | Seq_scan of { table : string; rows : int option }
      (** full scan; [rows] is the table's current cardinality *)
  | Index_probe of {
      table : string;
      index : string option;  (** probing index's name, when known *)
      column : string;  (** the indexed column *)
      conjunct : string;  (** rendered sargable conjunct *)
      est : int option;  (** cost-model estimated rows; [None] = legacy *)
      matches : int;  (** handles the probe returned *)
      rows : int option;  (** table cardinality, for selectivity *)
    }
  | Range_probe of {
      table : string;
      index : string option;
      column : string;
      conjunct : string;
      est : int option;
      matches : int;
      rows : int option;
    }  (** like [Index_probe] but over an ordered index's key range *)
  | Materialized of { source : string; rows : int }
      (** eagerly realized source: derived table, transition table, or
          a table the access hooks don't cover *)

type join_plan = { jp_with : string; jp_conjunct : string }
(** The source is hash-joined to earlier binding [jp_with] on the
    rendered equi-join conjunct [jp_conjunct] (one build per
    execution, one probe per partial row). *)

type source_plan = {
  sp_binding : string;
  sp_path : access_path;
  sp_join : join_plan option;
}

val probed_path : access -> table:string -> probe_hit -> access_path
(** Render a probe decision as a plan node — [Index_probe] or
    [Range_probe] by the hit's kind, with the same index name,
    cardinality and estimate fields both planners report.  Shared with
    {!Compile} so the two EXPLAIN paths cannot drift. *)

val plan_select :
  ?cache:cache -> access:access -> resolver -> Ast.select -> source_plan list
(** One plan per FROM source of each select core (compound arms
    included), in from-list order. *)

val plan_op :
  ?cache:cache -> access:access -> resolver -> Ast.op -> source_plan list
(** Plan any DML operation: selects and INSERT ... SELECT plan their
    select; INSERT ... VALUES accesses no table; DELETE/UPDATE plan
    their victim selection. *)

val describe_access_path : access_path -> string
val describe_source_plan : source_plan -> string
(** One-line rendering, e.g.
    ["emp: index probe of emp via emp_no_ix on emp_no, conjunct (emp_no = 2): 1 of 3 rows"]. *)

(** {2 Shared semantics}

    Pieces of the interpreter reused verbatim by the compiling
    evaluator ({!Compile}), exported so the two paths cannot drift:
    three-valued-logic plumbing, IN semantics, ORDER BY comparison, the
    sargability analysis, and the grouped-query / projection-name
    classification. *)

val truth_value : Value.truth -> Value.t
val value_truth : Value.t -> Value.truth
(** Raises a type error on non-boolean predicate values. *)

val in_semantics : Value.t -> Value.t list -> Value.t
(** SQL IN: TRUE if some element equals, UNKNOWN if none equals but
    some comparison was unknown, FALSE otherwise. *)

val sort_by_keys :
  ((Value.t * [ `Asc | `Desc ]) list * 'a) list ->
  ((Value.t * [ `Asc | `Desc ]) list * 'a) list
(** Stable sort of values tagged with ORDER BY keys. *)

val conjuncts : Ast.expr -> Ast.expr list
(** Top-level AND conjuncts of a predicate. *)

val independence :
  target:(string * string array) list ->
  cols_of:(string -> string array option) ->
  (Ast.expr -> bool) * (Ast.select -> bool)
(** The conservative may-it-reference-the-target-frame test used by the
    access-path planner; see the implementation comment. *)

val select_contains_agg : Ast.select -> bool
(** Is the select grouped (GROUP BY present, or aggregates in the
    projections or HAVING)? *)

val default_proj_name : Ast.expr -> string
(** Output column name of an unaliased projection. *)

(* Lexical tokens for the SQL dialect of the paper (Sections 2.1 and
   3) plus the DDL we need around it.  Keywords are case-insensitive;
   identifiers preserve case but compare case-sensitively. *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Kw of string (* upper-cased keyword *)
  | Symbol of string (* punctuation and operators *)
  | Eof

type located = { token : t; line : int; col : int }

(* Every word with special meaning anywhere in the grammar.  Keeping
   one list makes the lexer's keyword test trivial; the parser still
   accepts most keywords as identifiers where unambiguous. *)
let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "DELETE"; "UPDATE";
    "SET"; "CREATE"; "DROP"; "TABLE"; "RULE"; "WHEN"; "IF"; "THEN"; "OR";
    "AND"; "NOT"; "NULL"; "IS"; "IN"; "EXISTS"; "BETWEEN"; "LIKE"; "AS";
    "DISTINCT"; "GROUP"; "BY"; "HAVING"; "ORDER"; "ASC"; "DESC"; "LIMIT";
    "INSERTED"; "DELETED"; "UPDATED"; "SELECTED"; "OLD"; "NEW"; "ROLLBACK";
    "PRIORITY"; "BEFORE"; "INT"; "INTEGER"; "FLOAT"; "REAL"; "STRING";
    "VARCHAR"; "CHAR"; "TEXT"; "BOOL"; "BOOLEAN"; "TRUE"; "FALSE"; "PRIMARY";
    "KEY"; "UNIQUE"; "REFERENCES"; "FOREIGN"; "CHECK"; "DEFAULT"; "CONSTRAINT";
    "ON"; "CASCADE"; "RESTRICT"; "ACTION"; "BEGIN"; "COMMIT"; "PROCESS";
    "RULES"; "CALL"; "CASE"; "ELSE"; "END"; "COUNT"; "SUM"; "AVG"; "MIN";
    "UNION"; "EXCEPT"; "INTERSECT"; "ALL"; "ASSERTION";
    "MAX"; "SHOW"; "TABLES"; "ACTIVATE"; "DEACTIVATE"; "DESCRIBE"; "INDEX";
    "EXPLAIN"; "NAN"; "INFINITY"; "USING"; "PREPARE"; "EXECUTE"; "DEALLOCATE";
  ]

let keyword_set =
  let tbl = Hashtbl.create 97 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  tbl

let is_keyword s = Hashtbl.mem keyword_set (String.uppercase_ascii s)

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Float_lit f -> Printf.sprintf "float %g" f
  | Str_lit s -> Printf.sprintf "string %S" s
  | Kw k -> k
  | Symbol s -> Printf.sprintf "%S" s
  | Eof -> "end of input"

(** Execution of data manipulation operations with their affected sets
    (paper Section 2.1):

    - insert: the handles of the inserted tuples;
    - delete: the handles of the removed tuples together with their
      values (after execution the handles identify tuples of a previous
      database state);
    - update: one (handle, columns) entry per selected tuple with its
      old row — the affected set includes tuples whose stored value did
      not change;
    - select (Section 5.1 extension): the handles and columns read.

    Each operation runs against a snapshot of the state at its start:
    tuples are identified first, then changed, so a subquery in a
    predicate or SET expression never observes the operation's own
    partial effects. *)

open Relational

type affected =
  | A_insert of Handle.t list
  | A_delete of (Handle.t * Row.t) list
  | A_update of (Handle.t * string list * Row.t) list  (** old rows *)
  | A_select of (Handle.t * string list) list

type op_result = {
  db : Database.t;
  affected : affected;
  result : Eval.relation option;  (** rows produced, for select operations *)
}

val exec_op :
  ?track_selects:bool ->
  ?optimize:bool ->
  ?access:Eval.access ->
  Eval.resolver ->
  Database.t ->
  Ast.op ->
  op_result
(** Execute one operation.  [track_selects] (default [false]) computes
    the Section 5.1 read set for select operations: precise (rows
    satisfying the predicate) for single-table selects, conservative
    (every row of each base table in the top-level FROM) otherwise.
    [optimize] (default [true]) enables uncorrelated-subquery caching
    for the operation.  [access] installs access-path hooks so
    sargable predicates over indexed columns are satisfied by index
    probes instead of scans.

    When {!Compile.enabled} is set (the default) the operation's
    expressions are lowered to positional closures and run; otherwise
    the tree-walking interpreter executes it.  Results, affected sets
    and error diagnostics are identical either way (asserted by the
    differential test harness). *)

(** {2 Compiled operations}

    The rules engine caches each rule's action block in compiled form
    (keyed on a DDL generation counter) so cascades re-enter closures
    instead of re-walking the AST. *)

type cop
(** A compiled operation.  Valid for the catalog it was compiled
    against: any DDL invalidates it. *)

val compile_op : Database.t -> Ast.op -> cop
(** Total: an operation the compiler cannot resolve against the
    catalog compiles to a fallback that runs interpreted, reproducing
    the interpreter's error exactly. *)

val exec_cop :
  ?track_selects:bool ->
  ?optimize:bool ->
  ?access:Eval.access ->
  ?params:Value.t array ->
  Eval.resolver ->
  Database.t ->
  cop ->
  op_result
(** Run a compiled operation against a (possibly different) database
    state with the same catalog.  Hits the same [Dml_op] fault site as
    {!exec_op}.  [params] is the EXECUTE parameter frame: compiled
    [Param] closures read it positionally; the interpreter fallback
    substitutes the values into the AST instead. *)

(* Compilation of expressions and selects to positional closures.

   The tree-walking evaluator in [Eval] resolves every column
   reference by searching the environment — a string comparison per
   binding per frame, repeated for every candidate row.  This module
   performs that search ONCE per statement: an [Ast.expr] is lowered
   to an OCaml closure in which each column reference has been
   resolved to a (frame depth, binding index, column index) triple,
   so per-row evaluation is three array loads.  Scope search,
   ambiguity checking and unknown-column detection all happen at
   compile time; their errors keep the interpreter's exact payloads
   and — critically — its exact timing, by compiling to closures that
   raise when (and only when) the interpreter's evaluation would have
   reached the faulty reference.  A CASE branch never taken, a
   projection over zero rows, a WHERE clause over an empty cross
   product: none of these surface a compile-detected error, exactly
   as in the interpreter.

   Two more per-row decisions move to compile time:

   - Correlation analysis.  The interpreter's uncorrelated-subquery
     cache watches the first evaluation of each embedded select and
     memoizes it if no column resolved from an enclosing scope.  Here
     the same watch arithmetic runs over the *compile-time* shape: a
     subquery none of whose compiled references (on any branch)
     reaches an enclosing scope is assigned a memo slot.  Static
     correlation is a conservative superset of the dynamic kind —
     anything the interpreter would have re-evaluated, we re-evaluate
     too — so results are identical within the fixed database state a
     cache/slot set is scoped to.

   - Sargable-conjunct selection.  The access-path planner's
     candidate scan (attribution, independence analysis, catalog
     lookup of usable columns) is static; only the probe *values* are
     evaluated at run time.  All candidate conjuncts are kept, in
     conjunct order, and tried with the interpreter's exact fallback
     semantics (value evaluation error -> next candidate; no usable
     index -> next candidate; none left -> scan), so the executor's
     scan/probe counters and EXPLAIN output match the interpreter's.

   The interpreter stays as the differential oracle: the [enabled]
   switch routes the DML layer and the rules engine through either
   path, and test/test_compile_diff.ml asserts that results — and
   error diagnostics — agree. *)

open Relational

(* Route DML and rule processing through the compiled path (true, the
   default) or the tree-walking interpreter.  The switch exists for
   the differential oracle and the ablation benchmark. *)
let enabled = ref true

(* ------------------------------------------------------------------ *)
(* Runtime representation                                              *)

(* A runtime environment mirrors [Eval.env] positionally: scopes
   innermost first, each frame an array of bound rows in FROM-item
   order.  The binding names and column names were consumed at
   compile time. *)
type renv = Row.t array array

(* Per-evaluation-unit runtime state: the resolver and access hooks
   the interpreter threads through its context, plus the memo slots
   backing the compile-time uncorrelated-subquery analysis.  One [rt]
   per DML operation or rule-condition evaluation — the same lifetime
   as the interpreter's [Eval.cache]. *)
type rt = {
  rt_resolve : Eval.resolver;
  rt_access : Eval.access option;
  rt_slots : Eval.relation option array;
  rt_use_cache : bool;
  rt_params : Value.t array;
      (* the EXECUTE parameter frame: [Param i] closures read slot [i].
         Empty for unparameterized statements. *)
}

let no_params : Value.t array = [||]

let make_rt ?access ?(params = no_params) ~use_cache ~slots resolve =
  {
    rt_resolve = resolve;
    rt_access = access;
    rt_slots = Array.make (max slots 1) None;
    rt_use_cache = use_cache;
    rt_params = params;
  }

(* [Some envs] while evaluating inside a grouped select: aggregate
   closures range over [envs], exactly like [Eval.context.group]. *)
type grp = renv list option

type cexpr = rt -> grp -> renv -> Value.t

type cselect = {
  cs_cols : string array; (* static output names of the non-empty path *)
  cs_run : rt -> renv -> Eval.relation;
  cs_plan : rt -> renv -> Eval.source_plan list;
}

(* A compiled probe: the statically-selected sargable candidates for
   one base table, ranked by the shared cost model at run time. *)
type ccand = {
  cd_column : string;
  cd_conj : Ast.expr; (* for EXPLAIN rendering only *)
  cd_shape : Eval.probe_shape; (* static shape, for cost estimation *)
  cd_values :
    [ `Exprs of cexpr list
    | `Select of (rt -> renv -> Value.t list)
    | `Bounds of (cexpr * bool) option * (cexpr * bool) option
    | `Like of cexpr ];
}

type cprobe = { cp_table : string; cp_cands : ccand list }

(* ------------------------------------------------------------------ *)
(* Compile-time context                                                *)

type ctx = {
  cc_db : Database.t;
      (* the catalog the statement is compiled against; schema changes
         invalidate compiled forms (the engine keys its rule caches on
         a DDL generation counter) *)
  cc_shape : (string * string array) list list;
      (* the compile-time mirror of the runtime environment: scopes
         innermost first, each frame the (binding name, columns) list
         of one select's FROM items *)
  cc_watches : (int * bool ref) list;
      (* static correlation watches, same arithmetic as the
         interpreter's: a resolution in one of the outermost
         [suffix_len] scopes raises the flag — at compile time *)
  cc_slots : int ref; (* memo-slot counter for this compile unit *)
}

let make db = { cc_db = db; cc_shape = []; cc_watches = []; cc_slots = ref 0 }
let slot_count ctx = !(ctx.cc_slots)

let col_index cols c =
  let rec go i =
    if i >= Array.length cols then None
    else if String.equal cols.(i) c then Some i
    else go (i + 1)
  in
  go 0

(* Compile-time mirror of [Eval.lookup_column]: same innermost-first
   search, same qualified/unqualified rules, same error payloads.
   Instead of a value it yields a position — or the error the
   interpreter would raise on every evaluation. *)
type col_hit = H_at of int * int * int | H_err of Errors.t

let resolve_col ctx qualifier column =
  let in_frame frame =
    match qualifier with
    | Some q ->
      let rec find b = function
        | [] -> `Miss
        | (n, cols) :: rest ->
          if String.equal n q then
            match col_index cols column with
            | Some c -> `Hit (b, c)
            | None -> `Err (Errors.Unknown_column { table = Some q; column })
          else find (b + 1) rest
      in
      find 0 frame
    | None -> (
      let hits =
        List.concat
          (List.mapi
             (fun b (_, cols) ->
               match col_index cols column with
               | Some c -> [ (b, c) ]
               | None -> [])
             frame)
      in
      match hits with
      | [] -> `Miss
      | [ (b, c) ] -> `Hit (b, c)
      | _ :: _ :: _ -> `Err (Errors.Ambiguous_column column))
  in
  let total = List.length ctx.cc_shape in
  let rec go i = function
    | [] -> H_err (Errors.Unknown_column { table = qualifier; column })
    | frame :: rest -> (
      match in_frame frame with
      | `Hit (b, c) ->
        List.iter
          (fun (suffix_len, flag) -> if i >= total - suffix_len then flag := true)
          ctx.cc_watches;
        H_at (i, b, c)
      | `Err e -> H_err e
      | `Miss -> go (i + 1) rest)
  in
  go 0 ctx.cc_shape

(* ------------------------------------------------------------------ *)
(* Shared runtime helpers (ported verbatim from the interpreter)       *)

module Key_map = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_total
end)

module Group_map = Map.Make (struct
  type t = Row.t

  let compare = Row.compare_total
end)

module Row_set = Set.Make (struct
  type t = Row.t

  let compare = Row.compare_total
end)

let dedupe_rows rows =
  let _, acc =
    List.fold_left
      (fun (seen, acc) row ->
        if Row_set.mem row seen then (seen, acc)
        else (Row_set.add row seen, row :: acc))
      (Row_set.empty, []) rows
  in
  List.rev acc

let take limit rows =
  match limit with
  | None -> rows
  | Some n ->
    let rec go k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: rest -> x :: go (k - 1) rest
    in
    go n rows

(* Rank the compiled candidates with the shared decision procedure
   ([Eval.choose_candidates]), then try them cheapest-first with the
   interpreter's fallback semantics: a value-evaluation error or an
   unusable index moves on to the next candidate; [None] means "scan
   instead".  Probe values evaluate against the outer scopes alone
   (they were compiled under them), in non-grouped context. *)
let run_probe_values rt access cp (outer : renv) : Eval.probe_hit option =
  let ranked =
    Eval.choose_candidates access ~table:cp.cp_table
      (List.map (fun cd -> (cd, cd.cd_column, cd.cd_shape)) cp.cp_cands)
  in
  List.find_map
    (fun (cd, est) ->
      let eval_bound =
        Option.map (fun (ce, incl) -> ((ce rt None outer : Value.t), incl))
      in
      let probe () =
        match cd.cd_values with
        | `Exprs ces ->
          access.Eval.acc_probe ~table:cp.cp_table ~column:cd.cd_column
            (List.map (fun ce -> ce rt None outer) ces)
        | `Select f ->
          access.Eval.acc_probe ~table:cp.cp_table ~column:cd.cd_column
            (f rt outer)
        | `Bounds (lo, hi) ->
          access.Eval.acc_range ~table:cp.cp_table ~column:cd.cd_column
            ~lower:(eval_bound lo) ~upper:(eval_bound hi)
        | `Like ce -> (
          match ce rt None outer with
          | Value.Null ->
            (* LIKE NULL is UNKNOWN for every row: a NULL-bounded range
               probe selects exactly nothing *)
            access.Eval.acc_range ~table:cp.cp_table ~column:cd.cd_column
              ~lower:(Some (Value.Null, true))
              ~upper:None
          | Value.Str pat -> (
            match Index.like_prefix pat with
            | None -> None
            | Some (prefix, upper) ->
              access.Eval.acc_range ~table:cp.cp_table ~column:cd.cd_column
                ~lower:(Some (Value.Str prefix, true))
                ~upper:(Option.map (fun u -> (Value.Str u, false)) upper))
          | Value.Int _ | Value.Float _ | Value.Bool _ ->
            (* the scan path reports the type error faithfully *)
            None)
      in
      match (try probe () with _ -> None) with
      | None -> None
      | Some pairs ->
        let kind =
          match cd.cd_values with
          | `Exprs _ | `Select _ -> `Eq
          | `Bounds _ | `Like _ -> `Range
        in
        Some
          {
            Eval.ph_column = cd.cd_column;
            ph_conjunct = cd.cd_conj;
            ph_kind = kind;
            ph_est = est;
            ph_pairs = pairs;
          })
    ranked

(* Compiled projections: stars become position lists into the local
   frame; an unknown table-star becomes a closure raising at
   projection time (i.e. once per projected row environment, exactly
   when the interpreter raises). *)
type cproj =
  | P_pos of (string * int * int) list (* output name, binding, column *)
  | P_err of Errors.t
  | P_expr of string * cexpr

let run_projs cprojs rt g (env : renv) =
  List.concat_map
    (function
      | P_pos triples -> List.map (fun (n, b, c) -> (n, env.(0).(b).(c))) triples
      | P_err e -> Errors.raise_error e
      | P_expr (name, ce) -> [ (name, ce rt g env) ])
    cprojs

let static_proj_names cprojs =
  Array.of_list
    (List.concat_map
       (function
         | P_pos triples -> List.map (fun (n, _, _) -> n) triples
         | P_err _ -> []
         | P_expr (name, _) -> [ name ])
       cprojs)

(* ------------------------------------------------------------------ *)
(* Expression and select compilation                                   *)

(* [Some vs] when every expression in [es] is a literal (note: a [?]
   parameter is not — it compiles to a frame read) *)
let lit_values es =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Ast.Lit v :: rest -> go (v :: acc) rest
    | _ -> None
  in
  go [] es

let rec cexpr_of ctx (e : Ast.expr) : cexpr =
  match e with
  | Ast.Lit v -> fun _ _ _ -> v
  | Ast.Param i ->
    (* read the EXECUTE parameter frame; arity is validated before the
       frame is built, so an out-of-range read means the closure was
       run outside EXECUTE *)
    fun rt _ _ ->
      if i < Array.length rt.rt_params then rt.rt_params.(i)
      else
        Errors.raise_error
          (Errors.Parameter_error
             (Printf.sprintf "parameter %d is unbound (use PREPARE/EXECUTE)"
                (i + 1)))
  | Ast.Col { qualifier; column } -> (
    match resolve_col ctx qualifier column with
    | H_at (d, b, c) -> fun _ _ env -> env.(d).(b).(c)
    | H_err err -> fun _ _ _ -> Errors.raise_error err)
  | Ast.Binop (op, a, b) ->
    let ca = cexpr_of ctx a and cb = cexpr_of ctx b in
    let f =
      match op with
      | Ast.Add -> Value.add
      | Ast.Sub -> Value.sub
      | Ast.Mul -> Value.mul
      | Ast.Div -> Value.div
      | Ast.Mod -> Value.rem
      | Ast.Concat -> Value.concat
    in
    fun rt g env ->
      let va = ca rt g env and vb = cb rt g env in
      f va vb
  | Ast.Neg a ->
    let ca = cexpr_of ctx a in
    fun rt g env -> Value.neg (ca rt g env)
  | Ast.Cmp (op, a, b) ->
    let ca = cexpr_of ctx a and cb = cexpr_of ctx b in
    fun rt g env -> (
      let va = ca rt g env and vb = cb rt g env in
      match Value.compare_sql va vb with
      | None -> Value.Null
      | Some c ->
        let holds =
          match op with
          | Ast.Eq -> c = 0
          | Ast.Neq -> c <> 0
          | Ast.Lt -> c < 0
          | Ast.Le -> c <= 0
          | Ast.Gt -> c > 0
          | Ast.Ge -> c >= 0
        in
        Value.Bool holds)
  | Ast.And (a, b) ->
    (* SQL three-valued AND/OR are not short-circuited: both operands
       are always evaluated (same expression shape as the interpreter,
       so evaluation-order effects agree) *)
    let ca = cexpr_of ctx a and cb = cexpr_of ctx b in
    fun rt g env ->
      Eval.truth_value
        (Value.truth_and
           (Eval.value_truth (ca rt g env))
           (Eval.value_truth (cb rt g env)))
  | Ast.Or (a, b) ->
    let ca = cexpr_of ctx a and cb = cexpr_of ctx b in
    fun rt g env ->
      Eval.truth_value
        (Value.truth_or
           (Eval.value_truth (ca rt g env))
           (Eval.value_truth (cb rt g env)))
  | Ast.Not a ->
    let ca = cexpr_of ctx a in
    fun rt g env ->
      Eval.truth_value (Value.truth_not (Eval.value_truth (ca rt g env)))
  | Ast.Is_null a ->
    let ca = cexpr_of ctx a in
    fun rt g env -> Value.Bool (Value.is_null (ca rt g env))
  | Ast.Is_not_null a ->
    let ca = cexpr_of ctx a in
    fun rt g env -> Value.Bool (not (Value.is_null (ca rt g env)))
  | Ast.In_list (a, es) -> (
    let ca = cexpr_of ctx a in
    (* an all-literal IN list is constant: hoist the element values out
       of the per-row closure at compile time, so a cached or prepared
       plan never re-evaluates the (possibly large) list *)
    match lit_values es with
    | Some vals -> fun rt g env -> Eval.in_semantics (ca rt g env) vals
    | None ->
      let ces = List.map (cexpr_of ctx) es in
      fun rt g env ->
        let v = ca rt g env in
        Eval.in_semantics v (List.map (fun ce -> ce rt g env) ces))
  | Ast.Not_in_list (a, es) -> (
    let ca = cexpr_of ctx a in
    let negate v vals =
      Eval.truth_value
        (Value.truth_not (Eval.value_truth (Eval.in_semantics v vals)))
    in
    match lit_values es with
    | Some vals -> fun rt g env -> negate (ca rt g env) vals
    | None ->
      let ces = List.map (cexpr_of ctx) es in
      fun rt g env ->
        let v = ca rt g env in
        negate v (List.map (fun ce -> ce rt g env) ces))
  | Ast.In_select (a, s) ->
    let ca = cexpr_of ctx a in
    let col = compile_subquery_column ctx s in
    fun rt g env ->
      let v = ca rt g env in
      Eval.in_semantics v (col rt env)
  | Ast.Not_in_select (a, s) ->
    let ca = cexpr_of ctx a in
    let col = compile_subquery_column ctx s in
    fun rt g env ->
      let v = ca rt g env in
      Eval.truth_value
        (Value.truth_not (Eval.value_truth (Eval.in_semantics v (col rt env))))
  | Ast.Exists s ->
    let run = compile_subquery ctx s in
    fun rt _g env -> Value.Bool ((run rt env).Eval.rows <> [])
  | Ast.Between (a, low, high) ->
    let ca = cexpr_of ctx a in
    let cl = cexpr_of ctx low and ch = cexpr_of ctx high in
    fun rt g env ->
      let v = ca rt g env in
      let vl = cl rt g env and vh = ch rt g env in
      let ge =
        match Value.compare_sql v vl with
        | None -> Value.Unknown
        | Some c -> Value.truth_of_bool (c >= 0)
      and le =
        match Value.compare_sql v vh with
        | None -> Value.Unknown
        | Some c -> Value.truth_of_bool (c <= 0)
      in
      Eval.truth_value (Value.truth_and ge le)
  | Ast.Like (a, p) ->
    let ca = cexpr_of ctx a and cp = cexpr_of ctx p in
    fun rt g env -> Eval.truth_value (Value.like (ca rt g env) (cp rt g env))
  | Ast.Scalar_select s ->
    let run = compile_subquery ctx s in
    fun rt _g env -> (
      let rel = run rt env in
      (match rel.Eval.cols with
      | [| _ |] -> ()
      | _ -> Errors.semantic "scalar subquery must return a single column");
      match rel.Eval.rows with
      | [] -> Value.Null
      | [ row ] -> row.(0)
      | _ :: _ :: _ -> Errors.semantic "scalar subquery returned more than one row")
  | Ast.Agg (fn, arg) ->
    let carg = Option.map (cexpr_of ctx) arg in
    fun rt g _env -> (
      match g with
      | None -> Errors.semantic "aggregate function used outside a grouped query"
      | Some group_envs -> (
        match fn, carg with
        | Ast.Count_star, _ -> Value.Int (List.length group_envs)
        | _, None -> Errors.semantic "aggregate function requires an argument"
        | fn, Some ce -> (
          (* aggregates never nest: the argument is evaluated per group
             row in non-grouped context *)
          let values =
            List.filter_map
              (fun genv ->
                let v = ce rt None genv in
                if Value.is_null v then None else Some v)
              group_envs
          in
          match fn with
          | Ast.Count_star -> assert false
          | Ast.Count -> Value.Int (List.length values)
          | Ast.Sum ->
            if values = [] then Value.Null
            else List.fold_left Value.add (Value.Int 0) values
          | Ast.Avg -> (
            if values = [] then Value.Null
            else
              let sum = List.fold_left Value.add (Value.Int 0) values in
              match Value.to_float sum with
              | Some f -> Value.Float (f /. float_of_int (List.length values))
              | None -> Errors.type_error "avg over non-numeric values")
          | Ast.Min ->
            if values = [] then Value.Null
            else
              List.fold_left
                (fun acc v -> if Value.compare_total v acc < 0 then v else acc)
                (List.hd values) values
          | Ast.Max ->
            if values = [] then Value.Null
            else
              List.fold_left
                (fun acc v -> if Value.compare_total v acc > 0 then v else acc)
                (List.hd values) values)))
  | Ast.Fn (name, args) ->
    let cargs = List.map (cexpr_of ctx) args in
    fun rt g env -> Functions.apply name (List.map (fun ce -> ce rt g env) cargs)
  | Ast.Case (branches, else_) ->
    let cbranches =
      List.map (fun (c, v) -> (cexpr_of ctx c, cexpr_of ctx v)) branches
    in
    let celse = Option.map (cexpr_of ctx) else_ in
    fun rt g env ->
      let rec go = function
        | [] -> (
          match celse with None -> Value.Null | Some ce -> ce rt g env)
        | (cc, cv) :: rest ->
          if Value.truth_holds (Eval.value_truth (cc rt g env)) then cv rt g env
          else go rest
      in
      go cbranches

(* Compile an embedded select and decide — statically — whether its
   evaluation can be memoized.  The watch registered here mirrors the
   interpreter's first-evaluation watch: if no compiled column
   reference anywhere in the subquery reaches an enclosing scope, the
   subquery cannot depend on the outer row and gets a memo slot
   (consulted only when the runtime's [rt_use_cache] is set,
   mirroring evaluation without a cache). *)
and compile_subquery ctx (s : Ast.select) : rt -> renv -> Eval.relation =
  let n0 = List.length ctx.cc_shape in
  let touched = ref false in
  let c =
    compile_select' { ctx with cc_watches = (n0, touched) :: ctx.cc_watches } s
  in
  if !touched then fun rt env -> c.cs_run rt env
  else begin
    let slot = !(ctx.cc_slots) in
    ctx.cc_slots := slot + 1;
    fun rt env ->
      if not rt.rt_use_cache then c.cs_run rt env
      else
        match rt.rt_slots.(slot) with
        | Some rel -> rel
        | None ->
          let rel = c.cs_run rt env in
          rt.rt_slots.(slot) <- Some rel;
          rel
  end

and compile_subquery_column ctx (s : Ast.select) : rt -> renv -> Value.t list =
  let run = compile_subquery ctx s in
  fun rt env ->
    let rel = run rt env in
    (match rel.Eval.cols with
    | [| _ |] -> ()
    | _ -> Errors.semantic "IN subquery must return a single column");
    List.map (fun row -> row.(0)) rel.Eval.rows

and compile_select' ctx (s : Ast.select) : cselect =
  match s.Ast.compounds with
  | [] -> compile_plain ctx s
  | _ :: _ -> compile_compound ctx s

(* Compound (set) operations: compile each core, combine at run time,
   then the trailing ORDER BY keys — compiled against the head's
   static output names, bound alone as in the interpreter. *)
and compile_compound ctx (s : Ast.select) : cselect =
  let head =
    compile_plain ctx { s with Ast.compounds = []; order_by = []; limit = None }
  in
  let arms =
    List.map (fun (op, sub) -> (op, compile_plain ctx sub)) s.Ast.compounds
  in
  let okeys =
    List.map
      (fun (e, dir) ->
        (cexpr_of { ctx with cc_shape = [ [ ("", head.cs_cols) ] ] } e, dir))
      s.Ast.order_by
  in
  let limit = s.Ast.limit in
  let cs_run rt outer =
    let headr = head.cs_run rt outer in
    let combined =
      List.fold_left
        (fun rows (op, arm) ->
          let part = arm.cs_run rt outer in
          if Array.length part.Eval.cols <> Array.length headr.Eval.cols then
            Errors.semantic
              "compound select operands must have the same number of columns";
          match op with
          | Ast.Union_all -> rows @ part.Eval.rows
          | Ast.Union -> dedupe_rows (rows @ part.Eval.rows)
          | Ast.Except ->
            let right = Row_set.of_list part.Eval.rows in
            dedupe_rows (List.filter (fun row -> not (Row_set.mem row right)) rows)
          | Ast.Intersect ->
            let right = Row_set.of_list part.Eval.rows in
            dedupe_rows (List.filter (fun row -> Row_set.mem row right) rows))
        headr.Eval.rows arms
    in
    let ordered =
      match okeys with
      | [] -> combined
      | okeys ->
        let keyed =
          List.map
            (fun row ->
              let env = [| [| row |] |] in
              let keys = List.map (fun (ce, dir) -> (ce rt None env, dir)) okeys in
              (keys, row))
            combined
        in
        List.map snd (Eval.sort_by_keys keyed)
    in
    let rows = take limit ordered in
    { Eval.rel_name = ""; cols = headr.Eval.cols; rows }
  in
  let cs_plan rt outer =
    List.concat_map (fun c -> c.cs_plan rt outer) (head :: List.map snd arms)
  in
  { cs_cols = head.cs_cols; cs_run; cs_plan }

(* The static mirror of the probe planner's candidate scan
   ([Eval.probe_plan]): attribution and independence analysis over the
   compile-time frame, catalog columns from the compile-time database.
   Returns all sargable candidates in conjunct order; [run_probe_values]
   applies the interpreter's per-candidate fallback at run time. *)
and compile_probe_plan ctx ~frame ~target ~table (where : Ast.expr option) :
    cprobe option =
  match where with
  | None -> None
  | Some pred ->
    if not !Eval.predicate_pushdown then None
    else begin
      let ind_expr, ind_sel =
        Eval.independence ~target:frame ~cols_of:(fun t ->
            if Database.has_table ctx.cc_db t then
              Some (Table.col_names (Database.table ctx.cc_db t))
            else None)
      in
      let attributes_to_target qualifier column =
        let has (_, cols) = Array.exists (String.equal column) cols in
        match qualifier with
        | Some q ->
          String.equal q target
          && (match List.find_opt (fun (n, _) -> String.equal n q) frame with
             | Some src -> has src
             | None -> false)
        | None -> (
          match List.filter has frame with
          | [ (n, _) ] -> String.equal n target
          | _ -> false)
      in
      let range_of op e =
        (* the column is on the left: [col op e] *)
        match op with
        | Ast.Lt -> Some (None, Some (e, false))
        | Ast.Le -> Some (None, Some (e, true))
        | Ast.Gt -> Some (Some (e, false), None)
        | Ast.Ge -> Some (Some (e, true), None)
        | Ast.Eq | Ast.Neq -> None
      in
      let mirror op =
        match op with
        | Ast.Lt -> Ast.Gt
        | Ast.Le -> Ast.Ge
        | Ast.Gt -> Ast.Lt
        | Ast.Ge -> Ast.Le
        | (Ast.Eq | Ast.Neq) as op -> op
      in
      let candidate = function
        | Ast.Cmp (Ast.Eq, Ast.Col { qualifier; column }, e)
          when attributes_to_target qualifier column && ind_expr e ->
          Some (column, Eval.Shape_eq (Some 1), `Exprs [ e ])
        | Ast.Cmp (Ast.Eq, e, Ast.Col { qualifier; column })
          when attributes_to_target qualifier column && ind_expr e ->
          Some (column, Eval.Shape_eq (Some 1), `Exprs [ e ])
        | Ast.In_list (Ast.Col { qualifier; column }, es)
          when attributes_to_target qualifier column && List.for_all ind_expr es
          ->
          Some (column, Eval.Shape_eq (Some (List.length es)), `Exprs es)
        | Ast.In_select (Ast.Col { qualifier; column }, sub)
          when attributes_to_target qualifier column && ind_sel sub ->
          Some (column, Eval.Shape_eq None, `Select sub)
        | Ast.Cmp (op, Ast.Col { qualifier; column }, e)
          when attributes_to_target qualifier column && ind_expr e -> (
          match range_of op e with
          | Some bounds -> Some (column, Eval.Shape_range, `Bounds bounds)
          | None -> None)
        | Ast.Cmp (op, e, Ast.Col { qualifier; column })
          when attributes_to_target qualifier column && ind_expr e -> (
          match range_of (mirror op) e with
          | Some bounds -> Some (column, Eval.Shape_range, `Bounds bounds)
          | None -> None)
        | Ast.Between (Ast.Col { qualifier; column }, lo, hi)
          when attributes_to_target qualifier column && ind_expr lo
               && ind_expr hi ->
          Some
            ( column,
              Eval.Shape_range,
              `Bounds (Some (lo, true), Some (hi, true)) )
        | Ast.Like (Ast.Col { qualifier; column }, p)
          when attributes_to_target qualifier column && ind_expr p ->
          Some (column, Eval.Shape_prefix, `Like p)
        | _ -> None
      in
      let cands =
        List.filter_map
          (fun conj ->
            match candidate conj with
            | None -> None
            | Some (column, shape, src) ->
              let cbound =
                Option.map (fun (e, incl) -> (cexpr_of ctx e, incl))
              in
              let cv =
                match src with
                | `Exprs es -> `Exprs (List.map (cexpr_of ctx) es)
                | `Select sub -> `Select (compile_subquery_column ctx sub)
                | `Bounds (lo, hi) -> `Bounds (cbound lo, cbound hi)
                | `Like p -> `Like (cexpr_of ctx p)
              in
              Some
                {
                  cd_column = column;
                  cd_conj = conj;
                  cd_shape = shape;
                  cd_values = cv;
                })
          (Eval.conjuncts pred)
      in
      match cands with [] -> None | _ :: _ -> Some { cp_table = table; cp_cands = cands }
    end

and compile_projections cctx local_shape (projs : Ast.proj list) : cproj list =
  List.map
    (function
      | Ast.Star ->
        P_pos
          (List.concat
             (List.mapi
                (fun b (_, cols) ->
                  Array.to_list (Array.mapi (fun c cname -> (cname, b, c)) cols))
                local_shape))
      | Ast.Table_star t -> (
        let rec find b = function
          | [] -> None
          | (n, cols) :: rest ->
            if String.equal n t then Some (b, cols) else find (b + 1) rest
        in
        match find 0 local_shape with
        | None -> P_err (Errors.Unknown_table t)
        | Some (b, cols) ->
          P_pos (Array.to_list (Array.mapi (fun c cname -> (cname, b, c)) cols)))
      | Ast.Proj (e, alias) ->
        let name =
          match alias with Some a -> a | None -> Eval.default_proj_name e
        in
        P_expr (name, cexpr_of cctx e))
    projs

and compile_plain ctx (s : Ast.select) : cselect =
  (* ---- FROM items: static binding names and columns ---- *)
  let item_info ix (item : Ast.from_item) =
    match item.Ast.source with
    | Ast.Derived sub ->
      let c = compile_select' ctx sub in
      let name =
        match item.Ast.alias with
        | Some a -> a
        | None -> Printf.sprintf "$%d" ix
      in
      (name, c.cs_cols, `Derived c)
    | Ast.Base tbl_name ->
      let name = Option.value item.Ast.alias ~default:tbl_name in
      if Database.has_table ctx.cc_db tbl_name then
        (name, Table.col_names (Database.table ctx.cc_db tbl_name), `Base tbl_name)
      else
        (* unknown at compile time: resolving at run time raises the
           interpreter's error during phase 1 *)
        (name, [||], `Eager (Ast.Base tbl_name))
    | Ast.Transition tt ->
      let base = Ast.trans_table_base tt in
      let name = Option.value item.Ast.alias ~default:base in
      let cols =
        if Database.has_table ctx.cc_db base then
          Table.col_names (Database.table ctx.cc_db base)
        else [||]
      in
      (name, cols, `Eager (Ast.Transition tt))
  in
  let items = List.mapi item_info s.Ast.from in
  (* duplicate binding names are rejected after phase-1 resolution,
     matching the interpreter's check order *)
  let dup_err =
    let names = List.map (fun (n, _, _) -> n) items in
    let rec check = function
      | [] -> None
      | n :: rest ->
        if List.exists (String.equal n) rest then
          Some
            (Errors.Semantic_error
               (Printf.sprintf
                  "duplicate table name %S in from clause; use an alias" n))
        else check rest
    in
    check names
  in
  let frame_shape = List.map (fun (n, cols, _) -> (n, cols)) items in
  let inner = { ctx with cc_shape = frame_shape :: ctx.cc_shape } in
  (* ---- static hash-join links (mirror of [from_row_envs]) ---- *)
  let attribute qualifier column =
    let has_col (_, cols) = Array.exists (String.equal column) cols in
    match qualifier with
    | Some q -> (
      match List.find_opt (fun (n, _) -> String.equal n q) frame_shape with
      | Some src when has_col src -> Some src
      | _ -> None)
    | None -> (
      match List.filter has_col frame_shape with [ src ] -> Some src | _ -> None)
  in
  let equi_pairs =
    if not !Eval.join_optimization then []
    else
      match s.Ast.where with
      | None -> []
      | Some pred ->
        List.filter_map
          (fun conj ->
            match conj with
            | Ast.Cmp
                ( Ast.Eq,
                  Ast.Col { qualifier = q1; column = c1 },
                  Ast.Col { qualifier = q2; column = c2 } ) -> (
              match attribute q1 c1, attribute q2 c2 with
              | Some (n1, cs1), Some (n2, cs2) when not (String.equal n1 n2) ->
                Some (conj, (n1, cs1, c1), (n2, cs2, c2))
              | _ -> None)
            | _ -> None)
          (Eval.conjuncts pred)
  in
  let index_of_name n =
    let rec go i = function
      | [] -> None
      | (n', _, _) :: rest -> if String.equal n' n then Some i else go (i + 1) rest
    in
    go 0 items
  in
  let links =
    List.mapi
      (fun k (name, cols, _) ->
        let bound n = match index_of_name n with Some i -> i < k | None -> false in
        List.find_map
          (fun (conj, (n1, cs1, c1), (n2, cs2, c2)) ->
            if String.equal n2 name && bound n1 then
              Some
                ( Option.get (index_of_name n1),
                  Option.get (col_index cs1 c1),
                  Option.get (col_index cols c2),
                  { Eval.jp_with = n1; jp_conjunct = Pretty.expr_str conj } )
            else if String.equal n1 name && bound n2 then
              Some
                ( Option.get (index_of_name n2),
                  Option.get (col_index cs2 c2),
                  Option.get (col_index cols c1),
                  { Eval.jp_with = n2; jp_conjunct = Pretty.expr_str conj } )
            else None)
          equi_pairs)
      items
  in
  let probes =
    List.map
      (fun (name, _cols, kind) ->
        match kind with
        | `Base tbl ->
          compile_probe_plan ctx ~frame:frame_shape ~target:name ~table:tbl
            s.Ast.where
        | `Derived _ | `Eager _ -> None)
      items
  in
  (* ---- clause compilation ---- *)
  let cwhere = Option.map (cexpr_of inner) s.Ast.where in
  let grouped = Eval.select_contains_agg s in
  let cgroup_keys = List.map (cexpr_of inner) s.Ast.group_by in
  let chaving = Option.map (cexpr_of inner) s.Ast.having in
  let cprojs = compile_projections inner frame_shape s.Ast.projections in
  let sr_cols = static_proj_names cprojs in
  (* grouping with no GROUP BY key yields a single group even over zero
     rows; the interpreter then evaluates HAVING and projections in an
     environment whose local frame is empty — compile that variant
     against the outer scopes alone *)
  let empty_group =
    if grouped && s.Ast.group_by = [] then
      Some
        ( Option.map (cexpr_of ctx) s.Ast.having,
          compile_projections ctx [] s.Ast.projections )
    else None
  in
  let corder_nongrouped =
    if grouped then []
    else List.map (fun (e, dir) -> (cexpr_of inner e, dir)) s.Ast.order_by
  in
  let corder_grouped =
    if grouped then
      let sub = { ctx with cc_shape = [ [ ("", sr_cols) ] ] } in
      List.map (fun (e, dir) -> (cexpr_of sub e, dir)) s.Ast.order_by
    else []
  in
  (* ---- output columns for the zero-row case: the runtime mirror of
     [Eval.static_output_columns] ---- *)
  let empty_sources =
    List.map
      (fun (item : Ast.from_item) ->
        match item.Ast.source with
        | Ast.Derived sub ->
          let c0 = compile_select' { ctx with cc_shape = [] } sub in
          let name = match item.Ast.alias with Some a -> a | None -> "" in
          `Derived (name, c0)
        | src -> `Resolve (item.Ast.alias, src))
      s.Ast.from
  in
  let cols_when_empty rt =
    let sources =
      List.filter_map
        (function
          | `Derived (name, c0) -> Some (name, (c0.cs_run rt [||]).Eval.cols)
          | `Resolve (alias, src) -> (
            match (try Some (rt.rt_resolve src) with _ -> None) with
            | None -> None
            | Some rel ->
              Some
                ( (match alias with Some a -> a | None -> rel.Eval.rel_name),
                  rel.Eval.cols )))
        empty_sources
    in
    let names =
      List.concat_map
        (function
          | Ast.Star ->
            List.concat_map (fun (_, cols) -> Array.to_list cols) sources
          | Ast.Table_star t -> (
            match List.find_opt (fun (n, _) -> String.equal n t) sources with
            | Some (_, cols) -> Array.to_list cols
            | None -> [])
          | Ast.Proj (e, alias) ->
            [ (match alias with Some a -> a | None -> Eval.default_proj_name e) ])
        s.Ast.projections
    in
    Array.of_list names
  in
  (* ---- the runner ---- *)
  let cs_run rt (outer : renv) =
    (* phase 1: resolve sources in FROM order; known base tables stay
       lazy when access hooks are installed *)
    let resolved =
      List.map
        (fun (_name, _cols, kind) ->
          match kind with
          | `Derived c -> `Rows (c.cs_run rt outer).Eval.rows
          | `Eager src -> `Rows (rt.rt_resolve src).Eval.rows
          | `Base tbl -> (
            match rt.rt_access with
            | None -> `Rows (rt.rt_resolve (Ast.Base tbl)).Eval.rows
            | Some access -> `Lazy (tbl, access)))
        items
    in
    (match dup_err with Some e -> Errors.raise_error e | None -> ());
    (* phase 2: join, realizing lazy sources by probe or scan *)
    let note_join ev name =
      match rt.rt_access with
      | Some access -> access.Eval.acc_note ~table:name ev
      | None -> ()
    in
    let rec extend partials k rs ps ls ns =
      match rs, ps, ls, ns with
      | [], _, _, _ -> partials
      | r :: rs', p :: ps', l :: ls', n :: ns' ->
        let rows =
          match r with
          | `Rows rows -> rows
          | `Lazy (tbl, access) -> (
            match p with
            | Some cp -> (
              match run_probe_values rt access cp outer with
              | Some hit ->
                access.Eval.acc_note ~table:tbl
                  (match hit.Eval.ph_kind with
                  | `Eq -> `Index_probe
                  | `Range -> `Range_probe);
                List.map snd hit.Eval.ph_pairs
              | None ->
                access.Eval.acc_note ~table:tbl `Seq_scan;
                (rt.rt_resolve (Ast.Base tbl)).Eval.rows)
            | None ->
              access.Eval.acc_note ~table:tbl `Seq_scan;
              (rt.rt_resolve (Ast.Base tbl)).Eval.rows)
        in
        let partials' =
          match l with
          | Some (b_item, b_ix, n_ix, _) when partials <> [] ->
            (* hash join on the static link, preserving nested-loop
               enumeration order.  With no partial frames left the
               interpreter's dynamic link detection never fires (no
               bound row to join against), so the build is skipped —
               the guard keeps the access-note counters identical. *)
            note_join `Hash_join_build n;
            let table =
              List.fold_left
                (fun m row ->
                  let key = row.(n_ix) in
                  let existing = Option.value (Key_map.find_opt key m) ~default:[] in
                  Key_map.add key (row :: existing) m)
                Key_map.empty rows
            in
            let table = Key_map.map List.rev table in
            List.concat_map
              (fun partial ->
                note_join `Hash_join_probe n;
                let bound_row = List.nth partial (k - 1 - b_item) in
                let key = bound_row.(b_ix) in
                match Key_map.find_opt key table with
                | None -> []
                | Some rows -> List.map (fun row -> row :: partial) rows)
              partials
          | Some _ | None ->
            List.concat_map
              (fun partial -> List.map (fun row -> row :: partial) rows)
              partials
        in
        extend partials' (k + 1) rs' ps' ls' ns'
      | _ -> assert false
    in
    let names = List.map (fun (n, _, _) -> n) items in
    let frames = extend [ [] ] 0 resolved probes links names in
    let row_envs =
      List.map
        (fun partial -> Array.append [| Array.of_list (List.rev partial) |] outer)
        frames
    in
    let filtered =
      match cwhere with
      | None -> row_envs
      | Some ce ->
        List.filter
          (fun env -> Value.truth_holds (Eval.value_truth (ce rt None env)))
          row_envs
    in
    let result_pairs =
      if not grouped then
        List.map (fun env -> run_projs cprojs rt None env) filtered
      else begin
        let groups =
          if s.Ast.group_by = [] then [ filtered ]
          else begin
            let order = ref [] in
            let m =
              List.fold_left
                (fun m env ->
                  let key =
                    Array.of_list (List.map (fun ce -> ce rt None env) cgroup_keys)
                  in
                  match Group_map.find_opt key m with
                  | Some rows -> Group_map.add key (env :: rows) m
                  | None ->
                    order := key :: !order;
                    Group_map.add key [ env ] m)
                Group_map.empty filtered
            in
            List.rev_map (fun key -> List.rev (Group_map.find key m)) !order
            |> List.rev
          end
        in
        let eval_group group_envs =
          match group_envs with
          | rep :: _ ->
            let keep =
              match chaving with
              | None -> true
              | Some ch ->
                Value.truth_holds (Eval.value_truth (ch rt (Some group_envs) rep))
            in
            if keep then Some (run_projs cprojs rt (Some group_envs) rep)
            else None
          | [] -> (
            (* only reachable with no GROUP BY key *)
            match empty_group with
            | None -> assert false
            | Some (chav0, cprojs0) ->
              let keep =
                match chav0 with
                | None -> true
                | Some ch ->
                  Value.truth_holds (Eval.value_truth (ch rt (Some []) outer))
              in
              if keep then Some (run_projs cprojs0 rt (Some []) outer) else None)
        in
        List.filter_map eval_group groups
      end
    in
    let ordered_pairs =
      match s.Ast.order_by with
      | [] -> result_pairs
      | _ ->
        if grouped then
          let keyed =
            List.map
              (fun pairs ->
                let row = Array.of_list (List.map snd pairs) in
                let env = [| [| row |] |] in
                let keys =
                  List.map (fun (ce, dir) -> (ce rt None env, dir)) corder_grouped
                in
                (keys, pairs))
              result_pairs
          in
          List.map snd (Eval.sort_by_keys keyed)
        else
          let envs_for_sort =
            match s.Ast.where with None -> row_envs | Some _ -> filtered
          in
          let keyed =
            List.map2
              (fun env pairs ->
                let keys =
                  List.map
                    (fun (ce, dir) -> (ce rt None env, dir))
                    corder_nongrouped
                in
                (keys, pairs))
              envs_for_sort result_pairs
          in
          List.map snd (Eval.sort_by_keys keyed)
    in
    let cols =
      match ordered_pairs with
      | pairs :: _ -> Array.of_list (List.map fst pairs)
      | [] -> cols_when_empty rt
    in
    let rows =
      List.map (fun pairs -> Array.of_list (List.map snd pairs)) ordered_pairs
    in
    let rows = if s.Ast.distinct then dedupe_rows rows else rows in
    let rows = take s.Ast.limit rows in
    { Eval.rel_name = ""; cols; rows }
  in
  (* ---- the planner: same phases, stopping short of joining ---- *)
  let cs_plan rt (outer : renv) =
    let access = match rt.rt_access with Some a -> a | None -> assert false in
    let phase1 =
      List.map
        (fun (name, _cols, kind) ->
          match kind with
          | `Derived c ->
            let rel = c.cs_run rt outer in
            `Done
              ( name,
                Eval.Materialized
                  { source = "derived table"; rows = List.length rel.Eval.rows } )
          | `Eager (Ast.Transition tt as src) ->
            let rel = rt.rt_resolve src in
            `Done
              ( name,
                Eval.Materialized
                  {
                    source = "transition table " ^ Pretty.trans_table_str tt;
                    rows = List.length rel.Eval.rows;
                  } )
          | `Eager (Ast.Base tbl as src) ->
            let rel = rt.rt_resolve src in
            `Done
              ( name,
                Eval.Materialized
                  { source = "table " ^ tbl; rows = List.length rel.Eval.rows } )
          | `Eager (Ast.Derived _) -> assert false
          | `Base tbl -> `Lazy (name, tbl))
        items
    in
    (match dup_err with Some e -> Errors.raise_error e | None -> ());
    (* the static links double as the plan's join annotations; like the
       interpreter's planner this reports the join the executor would
       do (execution skips the build when an earlier source turned out
       empty — the frame is already empty then) *)
    List.map2
      (fun (entry, probe) link ->
        let sp_join = Option.map (fun (_, _, _, jp) -> jp) link in
        match entry with
        | `Done (name, path) -> { Eval.sp_binding = name; sp_path = path; sp_join }
        | `Lazy (name, tbl) ->
          let path =
            match probe with
            | Some cp -> (
              match run_probe_values rt access cp outer with
              | Some hit -> Eval.probed_path access ~table:tbl hit
              | None ->
                Eval.Seq_scan { table = tbl; rows = access.Eval.acc_count ~table:tbl })
            | None ->
              Eval.Seq_scan { table = tbl; rows = access.Eval.acc_count ~table:tbl }
          in
          { Eval.sp_binding = name; sp_path = path; sp_join })
      (List.combine phase1 probes)
      links
  in
  { cs_cols = sr_cols; cs_run; cs_plan }

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)

let compile_expr ctx ~shape e = cexpr_of { ctx with cc_shape = shape } e
let eval_cexpr rt ce (env : renv) : Value.t = ce rt None env

let cexpr_holds rt ce (env : renv) =
  Value.truth_holds (Eval.value_truth (ce rt None env))

let compile_select ctx s = compile_select' ctx s
let run_select rt cs = cs.cs_run rt [||]
let select_cols cs = cs.cs_cols

let compile_probe ctx ~frame ~target ~table where =
  compile_probe_plan ctx ~frame ~target ~table where

let run_probe rt access cp = run_probe_values rt access cp [||]

type cpred = { cp_expr : cexpr; cp_nslots : int }

let compile_predicate db e =
  let ctx = make db in
  let ce = cexpr_of ctx e in
  { cp_expr = ce; cp_nslots = !(ctx.cc_slots) }

let run_predicate ?access ~use_cache resolve p =
  let rt = make_rt ?access ~use_cache ~slots:p.cp_nslots resolve in
  Value.truth_holds (Eval.value_truth (p.cp_expr rt None [||]))

let eval_select ?access ?params ?(use_cache = false) resolve db s =
  (* same exception-safety injection site as [Eval.eval_select]: one
     hit per public entry, subqueries recurse internally *)
  Fault.hit Fault.Query_eval;
  let ctx = make db in
  let cs = compile_select' ctx s in
  let rt = make_rt ?access ?params ~use_cache ~slots:!(ctx.cc_slots) resolve in
  cs.cs_run rt [||]

let plan_select ~access resolve db s =
  let ctx = make db in
  let cs = compile_select' ctx s in
  let rt = make_rt ~access ~use_cache:false ~slots:!(ctx.cc_slots) resolve in
  cs.cs_plan rt [||]

let plan_op ~access resolve db (op : Ast.op) : Eval.source_plan list =
  match op with
  | Ast.Select_op s | Ast.Insert { source = `Select s; _ } ->
    plan_select ~access resolve db s
  | Ast.Insert { source = `Values _; _ } -> []
  | Ast.Delete { table; where } | Ast.Update { table; where; _ } ->
    (* mirror of the DML layer's victim selection: the table is bound
       under its own name; resolving an unknown table raises the same
       error execution would *)
    let ctx = make db in
    let cols =
      if Database.has_table db table then
        Table.col_names (Database.table db table)
      else (resolve (Ast.Base table)).Eval.cols
    in
    let cp =
      compile_probe_plan ctx ~frame:[ (table, cols) ] ~target:table ~table where
    in
    let rt = make_rt ~access ~use_cache:false ~slots:!(ctx.cc_slots) resolve in
    let path =
      match cp with
      | Some cp -> (
        match run_probe_values rt access cp [||] with
        | Some hit -> Eval.probed_path access ~table hit
        | None -> Eval.Seq_scan { table; rows = access.Eval.acc_count ~table })
      | None -> Eval.Seq_scan { table; rows = access.Eval.acc_count ~table }
    in
    [ { Eval.sp_binding = table; sp_path = path; sp_join = None } ]

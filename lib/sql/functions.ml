(* Scalar SQL functions.  Names are matched lower-case.  Except where
   noted (coalesce, nullif, ifnull), a NULL argument yields NULL. *)

open Relational

let wrong_arity name = Errors.type_error "wrong number of arguments to %s" name

(* Convert an integral float to [Value.Int], rejecting values that have
   no faithful representation: [int_of_float] maps NaN to 0 and
   out-of-range floats to garbage.  OCaml's native int spans
   [-2^62, 2^62); -2^62 is exactly representable as a float and valid,
   while any float >= 2^62 (including infinity) is not. *)
let int_bound = 4611686018427387904.0 (* 2^62 = -float_of_int min_int *)

let checked_int name f =
  if Float.is_nan f then
    Errors.type_error "%s: cannot convert nan to an integer" name
  else if f >= int_bound || f < -.int_bound then
    Errors.type_error "%s: %g is outside the integer range" name f
  else Value.Int (int_of_float f)

let numeric1 name f_int f_float = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Int n ] -> f_int n
  | [ Value.Float f ] -> f_float f
  | [ v ] ->
    Errors.type_error "%s expects a numeric argument, got %s" name
      (Value.type_name v)
  | _ -> wrong_arity name

let string1 name f = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Str s ] -> f s
  | [ v ] ->
    Errors.type_error "%s expects a string argument, got %s" name
      (Value.type_name v)
  | _ -> wrong_arity name

let apply name (args : Value.t list) : Value.t =
  match name with
  | "abs" ->
    numeric1 "abs"
      (fun n -> Value.Int (abs n))
      (fun f -> Value.Float (Float.abs f))
      args
  | "sign" ->
    numeric1 "sign"
      (fun n -> Value.Int (compare n 0))
      (fun f -> Value.Int (compare f 0.0))
      args
  | "floor" ->
    numeric1 "floor"
      (fun n -> Value.Int n)
      (fun f -> checked_int "floor" (Float.floor f))
      args
  | "ceil" | "ceiling" ->
    numeric1 name
      (fun n -> Value.Int n)
      (fun f -> checked_int name (Float.ceil f))
      args
  | "round" -> (
    match args with
    | [ v ] -> numeric1 "round" (fun n -> Value.Int n)
                 (fun f -> checked_int "round" (Float.round f)) [ v ]
    | [ Value.Null; _ ] | [ _; Value.Null ] -> Value.Null
    | [ v; Value.Int digits ] -> (
      let rounded f =
        let scale = 10.0 ** float_of_int digits in
        Float.round (f *. scale) /. scale
      in
      match v with
      (* an Int input stays an Int, like the one-argument form *)
      | Value.Int n ->
        if digits >= 0 then Value.Int n
        else
          (* divide-then-multiply by the positive power of ten: the
             multiply-by-0.1-style scale of the float path would put an
             inexact division last and truncate 130 to 129 *)
          let pow10 = 10.0 ** float_of_int (-digits) in
          checked_int "round"
            (Float.round (float_of_int n /. pow10) *. pow10)
      | _ -> (
        match Value.to_float v with
        | Some f -> Value.Float (rounded f)
        | None -> Errors.type_error "round expects a numeric argument"))
    | _ -> wrong_arity "round")
  | "upper" -> string1 "upper" (fun s -> Value.Str (String.uppercase_ascii s)) args
  | "lower" -> string1 "lower" (fun s -> Value.Str (String.lowercase_ascii s)) args
  | "length" -> string1 "length" (fun s -> Value.Int (String.length s)) args
  | "trim" -> string1 "trim" (fun s -> Value.Str (String.trim s)) args
  | "substr" | "substring" -> (
    (* 1-based start; negative or overlong ranges are clamped *)
    match args with
    | [ Value.Null; _ ] | [ Value.Null; _; _ ]
    | [ _; Value.Null ] | [ _; Value.Null; _ ] | [ _; _; Value.Null ] ->
      Value.Null
    | [ Value.Str s; Value.Int start ] ->
      let n = String.length s in
      let from = max 0 (start - 1) in
      Value.Str (if from >= n then "" else String.sub s from (n - from))
    | [ Value.Str s; Value.Int start; Value.Int len ] ->
      let n = String.length s in
      let from = max 0 (start - 1) in
      let len = max 0 (min len (n - from)) in
      Value.Str (if from >= n then "" else String.sub s from len)
    | _ -> wrong_arity name)
  | "coalesce" -> (
    match List.find_opt (fun v -> not (Value.is_null v)) args with
    | Some v -> v
    | None -> Value.Null)
  | "ifnull" -> (
    match args with
    | [ a; b ] -> if Value.is_null a then b else a
    | _ -> wrong_arity "ifnull")
  | "nullif" -> (
    match args with
    | [ a; b ] ->
      if Value.truth_holds (Value.eq_sql a b) then Value.Null else a
    | _ -> wrong_arity "nullif")
  | other -> Errors.semantic "unknown function %S" other

(** Hand-written lexer for the SQL dialect.

    Supports identifiers, integer and float literals, single-quoted
    strings with [''] escaping, line ([--]) and block comments, and the
    dialect's operator symbols.  Lexical errors are raised as
    [Parse_error] with line/column positions. *)

type state
(** A streaming scan over one input: a cursor into the source string,
    no materialized token list. *)

val make : string -> state
(** Start a streaming scan at the beginning of [src]. *)

val next_token : state -> Token.located
(** Scan and return the next token, advancing the cursor.  Returns
    {!Token.Eof} (repeatedly) at end of input. *)

val tokenize : string -> Token.located list
(** Tokenize a whole input eagerly; the result always ends with an
    {!Token.Eof} token.  Retained as the differential oracle for the
    streaming interface. *)

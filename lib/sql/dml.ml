(* Execution of data manipulation operations with their affected sets
   (paper Section 2.1):

   - insert: the affected set contains the handles of inserted tuples;
   - delete: the handles of the tuples removed (which after execution
     identify tuples of a previous database state);
   - update: one (handle, column) pair for every column assigned by the
     SET list of every selected tuple, whether or not the stored value
     changed;
   - select (Section 5.1 extension): the handles and columns read.

   Each operation runs against a snapshot of the state at its start:
   tuples are identified first, then changed, so a subquery in a
   predicate or SET expression never observes the operation's own
   partial effects. *)

open Relational

type affected =
  | A_insert of Handle.t list
  | A_delete of (Handle.t * Row.t) list
  | A_update of (Handle.t * string list * Row.t) list (* old rows *)
  | A_select of (Handle.t * string list) list

type op_result = {
  db : Database.t;
  affected : affected;
  result : Eval.relation option; (* rows produced, for select operations *)
}

(* Build the single-row environment binding a table's row under its
   table name, used to evaluate per-tuple predicates and SET
   expressions. *)
let row_env tbl row =
  [
    [
      {
        Eval.bind_name = Table.name tbl;
        bind_cols = Table.col_names tbl;
        bind_row = row;
      };
    ];
  ]

(* Victim selection: the rows of [tbl] satisfying [where], in handle
   order.  With access-path hooks installed, a sargable conjunct over
   an indexed column narrows the candidates by an index probe first;
   the full predicate is still applied to each candidate, so the
   victims are identical to the scan's. *)
let selected_handles ?cache ?access resolve tbl where =
  let keep row =
    match where with
    | None -> true
    | Some pred ->
      Eval.eval_predicate ?cache ?access resolve (row_env tbl row) pred
  in
  let scan () =
    Table.fold (fun h row acc -> if keep row then (h, row) :: acc else acc) tbl []
    |> List.rev
  in
  match access with
  | None -> scan ()
  | Some access -> (
    let name = Table.name tbl in
    let cols = Table.col_names tbl in
    match
      Eval.probe_table ?cache ~access resolve ~table:name ~bind_name:name ~cols
        where
    with
    | Some hit ->
      access.Eval.acc_note ~table:name
        (match hit.Eval.ph_kind with
        | `Eq -> `Index_probe
        | `Range -> `Range_probe);
      List.filter (fun (_, row) -> keep row) hit.Eval.ph_pairs
    | None ->
      access.Eval.acc_note ~table:name `Seq_scan;
      scan ())

let exec_insert ?cache ?access resolve db table columns source =
  let tbl = Database.table db table in
  let schema = Table.schema tbl in
  let position_row values =
    (* With an explicit column list, scatter values into schema
       positions; unspecified columns get their default or NULL. *)
    match columns with
    | None ->
      if List.length values <> Schema.arity schema then
        Errors.raise_error
          (Errors.Arity_error
             {
               table;
               expected = Schema.arity schema;
               got = List.length values;
             });
      Array.of_list values
    | Some cols ->
      if List.length cols <> List.length values then
        Errors.semantic "column list and value list have different lengths";
      let row =
        Array.map
          (fun c -> match c.Schema.default with Some v -> v | None -> Value.Null)
          schema.Schema.columns
      in
      List.iter2
        (fun col v -> row.(Schema.column_index schema col) <- v)
        cols values;
      row
  in
  let rows =
    match source with
    | `Values exprss ->
      List.map
        (fun exprs ->
          position_row
            (List.map (Eval.eval_expr_in ?cache ?access resolve []) exprs))
        exprss
    | `Select s ->
      let rel = Eval.eval_select ?cache ?access resolve s in
      List.map (fun row -> position_row (Array.to_list row)) rel.Eval.rows
  in
  let db, handles =
    List.fold_left
      (fun (db, hs) row ->
        let db, h = Database.insert db table row in
        (db, h :: hs))
      (db, []) rows
  in
  { db; affected = A_insert (List.rev handles); result = None }

let exec_delete ?cache ?access resolve db table where =
  let tbl = Database.table db table in
  let victims = selected_handles ?cache ?access resolve tbl where in
  let db =
    List.fold_left (fun db (h, _) -> Database.delete db h) db victims
  in
  { db; affected = A_delete victims; result = None }

let exec_update ?cache ?access resolve db table sets where =
  let tbl = Database.table db table in
  let schema = Table.schema tbl in
  let set_cols = List.map fst sets in
  List.iter (fun c -> ignore (Schema.column_index schema c)) set_cols;
  let victims = selected_handles ?cache ?access resolve tbl where in
  let updates =
    List.map
      (fun (h, old_row) ->
        let env = row_env tbl old_row in
        let new_row = Array.copy old_row in
        List.iter
          (fun (col, e) ->
            new_row.(Schema.column_index schema col) <-
              Eval.eval_expr_in ?cache ?access resolve env e)
          sets;
        (h, old_row, new_row))
      victims
  in
  let db =
    List.fold_left (fun db (h, _, new_row) -> Database.update db h new_row) db
      updates
  in
  {
    db;
    affected = A_update (List.map (fun (h, old, _) -> (h, set_cols, old)) updates);
    result = None;
  }

(* Which columns of base table [name] a select references; used for the
   column granularity of the Section 5.1 read set.  Falls back to all
   columns when the reference is unqualified or ambiguous. *)
let referenced_columns (s : Ast.select) schema binding_name =
  let all = Schema.column_names schema in
  let cols = ref [] in
  let add c = if not (List.exists (String.equal c) !cols) then cols := c :: !cols in
  let saw_unqualified_match = ref false in
  let rec walk_expr = function
    | Ast.Lit _ | Ast.Param _ -> ()
    | Ast.Col { qualifier = Some q; column } ->
      if String.equal q binding_name && Schema.has_column schema column then
        add column
    | Ast.Col { qualifier = None; column } ->
      if Schema.has_column schema column then begin
        saw_unqualified_match := true;
        add column
      end
    | Ast.Binop (_, a, b)
    | Ast.Cmp (_, a, b)
    | Ast.And (a, b)
    | Ast.Or (a, b)
    | Ast.Like (a, b) ->
      walk_expr a;
      walk_expr b
    | Ast.Neg a | Ast.Not a | Ast.Is_null a | Ast.Is_not_null a -> walk_expr a
    | Ast.In_list (a, es) | Ast.Not_in_list (a, es) ->
      walk_expr a;
      List.iter walk_expr es
    | Ast.In_select (a, sub) | Ast.Not_in_select (a, sub) ->
      walk_expr a;
      walk_select sub
    | Ast.Exists sub | Ast.Scalar_select sub -> walk_select sub
    | Ast.Between (a, b, c) ->
      walk_expr a;
      walk_expr b;
      walk_expr c
    | Ast.Agg (_, Some a) -> walk_expr a
    | Ast.Agg (_, None) -> ()
    | Ast.Fn (_, args) -> List.iter walk_expr args
    | Ast.Case (branches, else_) ->
      List.iter
        (fun (c, v) ->
          walk_expr c;
          walk_expr v)
        branches;
      Option.iter walk_expr else_
  and walk_select (sub : Ast.select) =
    List.iter
      (function
        | Ast.Star -> cols := List.rev all
        | Ast.Table_star t -> if String.equal t binding_name then cols := List.rev all
        | Ast.Proj (e, _) -> walk_expr e)
      sub.Ast.projections;
    Option.iter walk_expr sub.Ast.where;
    List.iter walk_expr sub.Ast.group_by;
    Option.iter walk_expr sub.Ast.having;
    List.iter (fun (e, _) -> walk_expr e) sub.Ast.order_by
  in
  walk_select s;
  if !cols = [] || !saw_unqualified_match then
    (* be conservative when attribution is unclear *)
    if !cols = [] then all else List.rev !cols
  else List.rev !cols

(* Read-set tracking for select operations.  For a single-table select
   the tracked tuples are exactly those satisfying the predicate; for
   multi-table selects we conservatively track every tuple of each base
   table referenced in the top-level FROM (documented substitution —
   the paper leaves this granularity open). *)
let select_read_set resolve db (s : Ast.select) =
  let base_items =
    List.filter_map
      (fun item ->
        match item.Ast.source with
        | Ast.Base t -> Some (t, item.Ast.alias)
        | Ast.Transition _ | Ast.Derived _ -> None)
      s.Ast.from
  in
  match base_items with
  | [ (t, alias) ] when s.Ast.group_by = [] ->
    let tbl = Database.table db t in
    let binding = Option.value alias ~default:t in
    let cols = referenced_columns s (Table.schema tbl) binding in
    let rows =
      Table.fold
        (fun h row acc ->
          let env =
            [
              [
                {
                  Eval.bind_name = binding;
                  bind_cols = Table.col_names tbl;
                  bind_row = row;
                };
              ];
            ]
          in
          let keep =
            match s.Ast.where with
            | None -> true
            | Some pred -> (
              try Eval.eval_predicate resolve env pred with _ -> true)
          in
          if keep then (h, cols) :: acc else acc)
        tbl []
    in
    List.rev rows
  | items ->
    List.concat_map
      (fun (t, alias) ->
        let tbl = Database.table db t in
        let binding = Option.value alias ~default:t in
        let cols = referenced_columns s (Table.schema tbl) binding in
        List.map (fun (h, _) -> (h, cols)) (Table.to_list tbl))
      items

(* ------------------------------------------------------------------ *)
(* Compiled operations.

   When [Compile.enabled] is set, an operation is lowered once — the
   WHERE predicate, SET expressions and embedded selects become
   positional closures, and the victim-selection probe decision is
   made statically — and then run.  The rules engine caches the
   compiled form of each rule's action block across firings (keyed on
   a DDL generation counter), so cascades re-enter closures instead of
   re-walking the AST.

   Compilation is total: an operation the compiler cannot resolve
   against the catalog (unknown victim table, unknown SET column)
   compiles to a fallback that runs the interpreted body, reproducing
   the interpreter's error at the interpreter's point of raising. *)

type cop =
  | C_insert of {
      table : string;
      columns : string list option;
      csource :
        [ `Values of Compile.cexpr list list | `Select of Compile.cselect ];
      nslots : int;
    }
  | C_delete of {
      table : string;
      cwhere : Compile.cexpr option;
      cprobe : Compile.cprobe option;
      nslots : int;
    }
  | C_update of {
      table : string;
      csets : (int * Compile.cexpr) list; (* schema position, value *)
      set_cols : string list;
      cwhere : Compile.cexpr option;
      cprobe : Compile.cprobe option;
      nslots : int;
    }
  | C_select of { s : Ast.select; csel : Compile.cselect; nslots : int }
  | C_fallback of Ast.op

let compile_op db (op : Ast.op) : cop =
  match op with
  | Ast.Insert { table; columns; source } ->
    (* the interpreter resolves the target table before evaluating the
       source; compilation of the source needs no catalog knowledge
       (VALUES expressions see an empty environment), so the unknown-
       table error stays a run-time one *)
    let ctx = Compile.make db in
    let csource =
      match source with
      | `Values exprss ->
        `Values
          (List.map
             (List.map (fun e -> Compile.compile_expr ctx ~shape:[] e))
             exprss)
      | `Select s -> `Select (Compile.compile_select ctx s)
    in
    C_insert { table; columns; csource; nslots = Compile.slot_count ctx }
  | Ast.Delete { table; where } ->
    if not (Database.has_table db table) then C_fallback op
    else begin
      let ctx = Compile.make db in
      let cols = Table.col_names (Database.table db table) in
      let frame = [ (table, cols) ] in
      let cwhere =
        Option.map (Compile.compile_expr ctx ~shape:[ frame ]) where
      in
      let cprobe = Compile.compile_probe ctx ~frame ~target:table ~table where in
      C_delete { table; cwhere; cprobe; nslots = Compile.slot_count ctx }
    end
  | Ast.Update { table; sets; where } ->
    if not (Database.has_table db table) then C_fallback op
    else begin
      let schema = Database.schema db table in
      if
        not
          (List.for_all (fun (c, _) -> Schema.has_column schema c) sets)
      then
        (* unknown SET column: the interpreted body raises the exact
           error at the exact point (after resolving the table, before
           victim selection) *)
        C_fallback op
      else begin
        let ctx = Compile.make db in
        let cols = Table.col_names (Database.table db table) in
        let frame = [ (table, cols) ] in
        let csets =
          List.map
            (fun (c, e) ->
              ( Schema.column_index schema c,
                Compile.compile_expr ctx ~shape:[ frame ] e ))
            sets
        in
        let cwhere =
          Option.map (Compile.compile_expr ctx ~shape:[ frame ]) where
        in
        let cprobe =
          Compile.compile_probe ctx ~frame ~target:table ~table where
        in
        C_update
          {
            table;
            csets;
            set_cols = List.map fst sets;
            cwhere;
            cprobe;
            nslots = Compile.slot_count ctx;
          }
      end
    end
  | Ast.Select_op s ->
    let ctx = Compile.make db in
    let csel = Compile.compile_select ctx s in
    C_select { s; csel; nslots = Compile.slot_count ctx }

(* Compiled victim selection: same shape as [selected_handles], with
   the probe decision already made. *)
let selected_handles_c rt ?access tbl cwhere cprobe =
  let keep row =
    match cwhere with
    | None -> true
    | Some ce -> Compile.cexpr_holds rt ce [| [| row |] |]
  in
  let scan () =
    Table.fold (fun h row acc -> if keep row then (h, row) :: acc else acc) tbl []
    |> List.rev
  in
  match access with
  | None -> scan ()
  | Some access -> (
    let name = Table.name tbl in
    match
      match cprobe with
      | None -> None
      | Some cp -> Compile.run_probe rt access cp
    with
    | Some hit ->
      access.Eval.acc_note ~table:name
        (match hit.Eval.ph_kind with
        | `Eq -> `Index_probe
        | `Range -> `Range_probe);
      List.filter (fun (_, row) -> keep row) hit.Eval.ph_pairs
    | None ->
      access.Eval.acc_note ~table:name `Seq_scan;
      scan ())

let run_cop ~track_selects ~optimize ?access ?params resolve db (cop : cop) :
    op_result =
  let rt nslots =
    Compile.make_rt ?access ?params ~use_cache:optimize ~slots:nslots resolve
  in
  match cop with
  | C_fallback op -> begin
    (* the interpreter binds EXECUTE arguments by substitution, so a
       parameterized operation that fell back still runs *)
    let op =
      match params with
      | None | Some [||] -> op
      | Some args -> Ast.subst_params_op args op
    in
    let cache = if optimize then Some (Eval.make_cache ()) else None in
    match op with
    | Ast.Insert { table; columns; source } ->
      exec_insert ?cache ?access resolve db table columns source
    | Ast.Delete { table; where } ->
      exec_delete ?cache ?access resolve db table where
    | Ast.Update { table; sets; where } ->
      exec_update ?cache ?access resolve db table sets where
    | Ast.Select_op s ->
      let rel = Eval.eval_select ?cache ?access resolve s in
      let read = if track_selects then select_read_set resolve db s else [] in
      { db; affected = A_select read; result = Some rel }
  end
  | C_insert { table; columns; csource; nslots } ->
    let tbl = Database.table db table in
    let schema = Table.schema tbl in
    let position_row values =
      match columns with
      | None ->
        if List.length values <> Schema.arity schema then
          Errors.raise_error
            (Errors.Arity_error
               {
                 table;
                 expected = Schema.arity schema;
                 got = List.length values;
               });
        Array.of_list values
      | Some cols ->
        if List.length cols <> List.length values then
          Errors.semantic "column list and value list have different lengths";
        let row =
          Array.map
            (fun c ->
              match c.Schema.default with Some v -> v | None -> Value.Null)
            schema.Schema.columns
        in
        List.iter2
          (fun col v -> row.(Schema.column_index schema col) <- v)
          cols values;
        row
    in
    let rt = rt nslots in
    let rows =
      match csource with
      | `Values cexprss ->
        List.map
          (fun cexprs ->
            position_row
              (List.map (fun ce -> Compile.eval_cexpr rt ce [||]) cexprs))
          cexprss
      | `Select cs ->
        (* same fault site as the interpreter's embedded eval_select *)
        Fault.hit Fault.Query_eval;
        let rel = Compile.run_select rt cs in
        List.map (fun row -> position_row (Array.to_list row)) rel.Eval.rows
    in
    let db, handles =
      List.fold_left
        (fun (db, hs) row ->
          let db, h = Database.insert db table row in
          (db, h :: hs))
        (db, []) rows
    in
    { db; affected = A_insert (List.rev handles); result = None }
  | C_delete { table; cwhere; cprobe; nslots } ->
    let tbl = Database.table db table in
    let victims = selected_handles_c (rt nslots) ?access tbl cwhere cprobe in
    let db =
      List.fold_left (fun db (h, _) -> Database.delete db h) db victims
    in
    { db; affected = A_delete victims; result = None }
  | C_update { table; csets; set_cols; cwhere; cprobe; nslots } ->
    let tbl = Database.table db table in
    let rt = rt nslots in
    let victims = selected_handles_c rt ?access tbl cwhere cprobe in
    let updates =
      List.map
        (fun (h, old_row) ->
          let env = [| [| old_row |] |] in
          let new_row = Array.copy old_row in
          List.iter
            (fun (ix, ce) -> new_row.(ix) <- Compile.eval_cexpr rt ce env)
            csets;
          (h, old_row, new_row))
        victims
    in
    let db =
      List.fold_left (fun db (h, _, new_row) -> Database.update db h new_row)
        db updates
    in
    {
      db;
      affected =
        A_update (List.map (fun (h, old, _) -> (h, set_cols, old)) updates);
      result = None;
    }
  | C_select { s; csel; nslots } ->
    Fault.hit Fault.Query_eval;
    let rel = Compile.run_select (rt nslots) csel in
    let read =
      if track_selects then
        (* the read set interprets the select's WHERE over the stored
           AST, so a prepared plan must bind its parameters first —
           a dangling [Param] would make the predicate error out and
           every row count as selected *)
        let s =
          match params with
          | None | Some [||] -> s
          | Some args -> (
            match Ast.subst_params_op args (Ast.Select_op s) with
            | Ast.Select_op s -> s
            | _ -> assert false)
        in
        select_read_set resolve db s
      else []
    in
    { db; affected = A_select read; result = Some rel }

let exec_cop ?(track_selects = false) ?(optimize = true) ?access ?params
    resolve db cop : op_result =
  Fault.hit Fault.Dml_op;
  run_cop ~track_selects ~optimize ?access ?params resolve db cop

let exec_op ?(track_selects = false) ?(optimize = true) ?access resolve db
    (op : Ast.op) : op_result =
  (* exception-safety injection site: an operation may fail before
     touching the database, and the caller must treat the containing
     block as indivisible either way *)
  Fault.hit Fault.Dml_op;
  if !Compile.enabled then
    run_cop ~track_selects ~optimize ?access resolve db (compile_op db op)
  else begin
    (* one uncorrelated-subquery cache per operation: the database
       state is fixed while the operation identifies its tuples *)
    let cache = if optimize then Some (Eval.make_cache ()) else None in
    match op with
    | Ast.Insert { table; columns; source } ->
      exec_insert ?cache ?access resolve db table columns source
    | Ast.Delete { table; where } ->
      exec_delete ?cache ?access resolve db table where
    | Ast.Update { table; sets; where } ->
      exec_update ?cache ?access resolve db table sets where
    | Ast.Select_op s ->
      let rel = Eval.eval_select ?cache ?access resolve s in
      let read = if track_selects then select_read_set resolve db s else [] in
      { db; affected = A_select read; result = Some rel }
  end

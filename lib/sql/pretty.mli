(** Rendering of AST values back to concrete syntax.

    Used by the shell's [show rules], by error messages, and by the
    parser round-trip tests: for every producible AST value [a],
    [parse (print a) = a].  Expressions are printed fully parenthesized
    below the boolean level. *)

val binop_str : Ast.binop -> string
val cmpop_str : Ast.cmpop -> string
val agg_str : Ast.agg_fn -> string
val trans_table_str : Ast.trans_table -> string
val expr_str : Ast.expr -> string
val proj_str : Ast.proj -> string
val from_item_str : Ast.from_item -> string
val select_str : Ast.select -> string
val op_str : Ast.op -> string
val op_block_str : Ast.op_block -> string
val trans_pred_str : Ast.basic_trans_pred -> string
val action_str : Ast.action -> string
val rule_def_str : Ast.rule_def -> string
val col_constraint_str : Ast.col_constraint -> string
val table_constraint_str : Ast.table_constraint -> string
val create_table_str : Ast.create_table -> string
val explain_target_str : Ast.explain_target -> string

val statement_str : Ast.statement -> string
(** Render any statement back to concrete syntax; the whole-statement
    counterpart of {!op_str} used by EXPLAIN echoing and the statement
    round-trip property. *)

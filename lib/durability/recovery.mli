(** Crash recovery: latest valid checkpoint + WAL-suffix replay.

    The recovery invariant: after a crash at any point, {!restore}
    produces exactly the state of the committed-transition prefix whose
    WAL records were durable at the moment of death — no half-applied
    transaction, no lost committed transition.  Rule processing never
    re-runs on replay; logged transaction effects already include every
    rule firing. *)

open Core

(** What a checkpoint stores: the engine's marshal-safe image plus the
    process-global handle counter and the WAL sequence the next record
    will carry.  Exposed so {!Durable} writes the same type recovery
    reads. *)
type checkpoint_image = {
  cp_engine : Engine.durable_image;
  cp_handle_ctr : int;
  cp_next_seq : int;
}

val marshal_image : checkpoint_image -> string
val unmarshal_image : string -> checkpoint_image option

(** How a restoration went — surfaced by the REPL on startup and
    asserted on by the harness. *)
type info = {
  ri_gen : int;  (** checkpoint/WAL generation restored from *)
  ri_checkpoint_used : bool;
  ri_records : int;  (** WAL records replayed *)
  ri_last_seq : int;  (** sequence of the last durable record; 0 if none *)
  ri_torn : bool;  (** the WAL ended in a discarded torn tail *)
  ri_skipped_ddl : int;
      (** logged DDL whose replay failed — statements that already
          failed when originally executed (DDL is logged write-ahead) *)
}

val pp_info : Format.formatter -> info -> unit

val restore : ?config:Engine.config -> string -> System.t * info
(** Rebuild the system a data directory describes: load the newest
    valid checkpoint (if any), replay the WAL suffix in order, discard
    a torn tail.  A missing or empty directory restores a fresh empty
    system.  The returned system has no durability hooks attached —
    {!Durable.open_dir} is the entry point that both restores and
    resumes logging. *)

val fingerprint : ?handles:bool -> System.t -> string
(** Canonical rendering of all durable state: schemas, indexes, tuples
    in handle order, rules (definition, sequence, activation) and
    priorities.  [handles:true] (default) includes tuple handle ids —
    equality means indistinguishable states, identity included;
    [handles:false] compares values only, for differencing against an
    independent oracle run whose handle ids necessarily differ. *)

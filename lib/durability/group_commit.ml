(* Group commit: batch concurrently arriving commits into one WAL
   append + one fsync.

   BENCH_PR5 put sync commit at ~208µs against ~21µs without fsync —
   the disk flush dominates.  With many sessions committing at once
   the flushes are perfectly amortizable: while one flush is on disk,
   later committers queue; whoever finds no leader running becomes the
   leader for the next round and writes everything queued so far as a
   single [Wal.Batch] record.  One record means one frame and one CRC,
   so the durability story needs no new reasoning: a crash either
   leaves the whole frame (every member transaction durable) or tears
   it (none durable).

   Failure is collective by construction: the leader sets the same
   outcome on every entry of its round, so a failed flush raises in
   every submitting session, each of which then aborts with its exact
   snapshot restore (the PR2 semantics).  No session can observe "my
   transaction committed" unless the batch that carried it is on disk.

   Threading: callers are server session threads (systhreads).  The
   leader flushes OUTSIDE the queue lock — the fsync blocks without
   holding anything, which is what lets the next round's queue fill.
   [set_paused] holds the elected leader before it collects its round;
   tests use it to build deterministic multi-transaction batches. *)

module Wal = Relational.Wal

type outcome = Pending | Done | Failed of exn

type entry = { e_ops : Wal.dml list; mutable e_outcome : outcome }

type stats = {
  gc_batches : int;  (* flush rounds completed (incl. failed) *)
  gc_txns : int;  (* transactions carried by those rounds *)
  gc_max_batch : int;  (* largest round *)
}

type t = {
  flush : Wal.dml list list -> unit;
  lock : Mutex.t;
  cond : Condition.t;
  mutable queue : entry list;  (* newest first; reversed per round *)
  mutable leader : bool;
  mutable paused : bool;
  mutable batches : int;
  mutable txns : int;
  mutable max_batch : int;
}

let create ~flush =
  {
    flush;
    lock = Mutex.create ();
    cond = Condition.create ();
    queue = [];
    leader = false;
    paused = false;
    batches = 0;
    txns = 0;
    max_batch = 0;
  }

type ticket = entry

(* Enqueue without waiting: the caller can take its queue position
   while holding whatever lock defines its commit order (the server
   enqueues under its state lock, making WAL batch order identical to
   claim — and hence publish — order), then block in {!await} with
   that lock released. *)
let enqueue t ops =
  let e = { e_ops = ops; e_outcome = Pending } in
  Mutex.lock t.lock;
  t.queue <- e :: t.queue;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  e

let await t e =
  Mutex.lock t.lock;
  while e.e_outcome = Pending do
    if not t.leader then begin
      (* no round in flight: this session leads the next one *)
      t.leader <- true;
      while t.paused do
        Condition.wait t.cond t.lock
      done;
      let round = List.rev t.queue in
      t.queue <- [];
      Mutex.unlock t.lock;
      let outcome =
        match t.flush (List.map (fun x -> x.e_ops) round) with
        | () -> Done
        | exception exn -> Failed exn
      in
      Mutex.lock t.lock;
      List.iter (fun x -> x.e_outcome <- outcome) round;
      let n = List.length round in
      t.batches <- t.batches + 1;
      t.txns <- t.txns + n;
      if n > t.max_batch then t.max_batch <- n;
      t.leader <- false;
      Condition.broadcast t.cond
    end
    else Condition.wait t.cond t.lock
  done;
  let outcome = e.e_outcome in
  Mutex.unlock t.lock;
  match outcome with
  | Done -> ()
  | Failed exn -> raise exn
  | Pending -> assert false

let submit t ops = await t (enqueue t ops)

let set_paused t paused =
  Mutex.lock t.lock;
  t.paused <- paused;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let pending t =
  Mutex.lock t.lock;
  let n = List.length t.queue in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let s =
    { gc_batches = t.batches; gc_txns = t.txns; gc_max_batch = t.max_batch }
  in
  Mutex.unlock t.lock;
  s

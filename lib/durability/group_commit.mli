(** Group commit: batch concurrently arriving commits into one WAL
    append + one fsync.

    Sessions call {!submit} with their transaction's physical ops; the
    first submitter with no flush round in flight becomes the round's
    leader, collects everything queued, and calls the [flush] function
    once with the whole batch (typically {!Durable.append_txn_batch},
    which writes one [Wal.Batch] record).  Every member of a round
    shares its outcome: success acknowledges them all, a failed flush
    raises the flush's exception in every submitting session — no
    transaction is told it committed unless the frame carrying it is
    durable, and a failure fails the whole batch (each session then
    aborts with its exact snapshot restore). *)

type t

val create : flush:(Relational.Wal.dml list list -> unit) -> t
(** [flush batch] must make every transaction of [batch] durable
    atomically (one record) or raise.  It is called with the internal
    lock released and from whichever session thread leads the round. *)

val submit : t -> Relational.Wal.dml list -> unit
(** Queue one transaction's ops for the next round and block until its
    round is flushed.  Returns when durable; re-raises the flush's
    exception if the round failed.  Equivalent to {!enqueue} followed
    immediately by {!await}. *)

type ticket
(** A queued-but-not-awaited submission. *)

val enqueue : t -> Relational.Wal.dml list -> ticket
(** Take a queue position without blocking.  Lets the caller fix its
    round membership while holding the lock that defines its commit
    order — the server enqueues under its state lock so that WAL batch
    order equals claim order — and wait with that lock released. *)

val await : t -> ticket -> unit
(** Block until the ticket's round is flushed (leading the round if no
    leader is running).  Returns when durable; re-raises the flush's
    exception if the round failed. *)

val set_paused : t -> bool -> unit
(** While paused, an elected leader waits before collecting its round,
    so further submissions pile into the same batch — a test hook for
    building deterministic batches of size > 1. *)

val pending : t -> int
(** Transactions queued for the next round — lets tests wait until a
    paused round has collected the expected members. *)

type stats = { gc_batches : int; gc_txns : int; gc_max_batch : int }

val stats : t -> stats

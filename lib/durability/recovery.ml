(* Crash recovery: latest valid checkpoint + WAL-suffix replay.

   The recovery invariant, stated once and enforced by the harness in
   test/test_recovery.ml: after a crash at ANY point, [restore]
   produces exactly the state of the committed-transition prefix whose
   WAL records were durable at the moment of death.  Nothing more (no
   half-applied transaction — WAL records are written only at commit,
   framed, and torn tails are discarded) and nothing less (no committed
   transition lost — the record is fsynced before the in-memory commit
   completes).

   Rule processing never runs here.  A [Txn] record already contains
   the net physical effect of the transaction *including* every rule
   firing, so replay is a fold of tuple operations; re-running rules
   would both be wrong (their conditions would see replay-time states)
   and require procedures that only exist as code in the original
   process. *)

open Core
module Wal = Relational.Wal
module Checkpoint = Relational.Checkpoint

(* The checkpoint payload: the engine's marshal-safe image plus the two
   process-global counters the engine does not own — the handle counter
   and the WAL record sequence.  [cp_next_seq] is the sequence number
   the first record of the checkpoint's own WAL generation will carry;
   replay of an older generation's suffix never reaches this image. *)
type checkpoint_image = {
  cp_engine : Engine.durable_image;
  cp_handle_ctr : int;
  cp_next_seq : int;
}

type info = {
  ri_gen : int;  (* checkpoint/WAL generation restored from *)
  ri_checkpoint_used : bool;
  ri_records : int;  (* WAL records replayed *)
  ri_last_seq : int;  (* sequence of the last durable record; 0 if none *)
  ri_torn : bool;  (* the WAL ended in a discarded torn tail *)
  ri_skipped_ddl : int;  (* logged DDL whose replay failed (see below) *)
}

let pp_info ppf i =
  Fmt.pf ppf
    "generation %d (%s), %d record%s replayed, last seq %d%s%s" i.ri_gen
    (if i.ri_checkpoint_used then "checkpoint" else "no checkpoint")
    i.ri_records
    (if i.ri_records = 1 then "" else "s")
    i.ri_last_seq
    (if i.ri_torn then ", torn tail discarded" else "")
    (if i.ri_skipped_ddl > 0 then
       Printf.sprintf ", %d failed DDL replay(s) skipped" i.ri_skipped_ddl
     else "")

let marshal_image (img : checkpoint_image) = Marshal.to_string img []

let unmarshal_image s : checkpoint_image option =
  (* the checkpoint store already CRC-validated the bytes; a failure
     here means a version-skewed or hand-edited file, which recovery
     treats as "no checkpoint" rather than a crash *)
  match (Marshal.from_string s 0 : checkpoint_image) with
  | img -> Some img
  | exception _ -> None

(* Replay one WAL record against the recovered system.

   DDL is re-executed from its logged concrete syntax.  DDL is logged
   write-ahead (before the statement ran), so a statement that failed
   originally — duplicate table, unknown rule — is in the log too; its
   replay fails against the identical catalog state and is skipped.
   The count is surfaced for observability, and the harness asserts it
   matches the writer's own failed-DDL count.

   A [Txn] record is applied physically and the handle counter advanced
   to the logged value, so tuples recreated under logged handles and
   handles minted after recovery can never collide.  A [Batch] record
   (group commit) is the same thing for several transactions at once —
   it is one CRC frame, so either every member transaction was durable
   or none was, and replay is a fold over the members in commit
   order. *)
let replay_record sys skipped (record : Wal.record) =
  match record.Wal.payload with
  | Wal.Ddl text -> (
    match System.exec_one sys text with
    | _ -> ()
    | exception _ -> incr skipped)
  | Wal.Txn { handle_ctr; ops } ->
    let eng = System.engine sys in
    Engine.restore_database eng (Wal.apply (Engine.database eng) ops);
    Handle.advance_counter handle_ctr
  | Wal.Batch { handle_ctr; txns } ->
    let eng = System.engine sys in
    let db =
      List.fold_left (fun db ops -> Wal.apply db ops) (Engine.database eng) txns
    in
    Engine.restore_database eng db;
    Handle.advance_counter handle_ctr

let restore ?config dir =
  let gen, sys, ckpt_used, base_seq =
    match Checkpoint.latest ~dir with
    | Some (gen, payload) -> (
      match unmarshal_image payload with
      | Some img ->
        Handle.advance_counter img.cp_handle_ctr;
        let eng = Engine.of_durable_image ?config img.cp_engine in
        (gen, System.of_engine eng, true, img.cp_next_seq - 1)
      | None -> (0, System.create ?config (), false, 0))
    | None -> (0, System.create ?config (), false, 0)
  in
  let scan = Wal.read ~dir ~gen in
  let skipped = ref 0 in
  List.iter (replay_record sys skipped) scan.Wal.records;
  let last_seq =
    match List.rev scan.Wal.records with
    | last :: _ -> last.Wal.seq
    | [] -> base_seq
  in
  ( sys,
    {
      ri_gen = gen;
      ri_checkpoint_used = ckpt_used;
      ri_records = List.length scan.Wal.records;
      ri_last_seq = last_seq;
      ri_torn = scan.Wal.torn;
      ri_skipped_ddl = !skipped;
    } )

(* ------------------------------------------------------------------ *)
(* State fingerprints for the recovery harness.                        *)

(* A canonical rendering of everything durability must preserve:
   schemas, index definitions, tuples (in handle order), rule
   definitions with activation state and creation sequence, and
   priority pairs.  With [handles] (the default) tuple identity is part
   of the fingerprint — equality then means the recovered state is
   indistinguishable from the writer's, handles included.  With
   [handles:false] only values are compared: the form used against an
   independent in-memory oracle run, whose handle ids necessarily
   differ (the handle counter is process-global and shared by every
   system in the test process). *)
let fingerprint ?(handles = true) sys =
  let eng = System.engine sys in
  let db = Engine.database eng in
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun tname ->
      let tbl = Database.table db tname in
      let schema = Table.schema tbl in
      addf "table %s\n" tname;
      Array.iter
        (fun c ->
          addf "  col %s %s%s\n" c.Schema.col_name
            (Schema.col_type_name c.Schema.col_type)
            (if c.Schema.not_null then " not null" else ""))
        schema.Schema.columns;
      List.iter
        (fun ix -> addf "  index %s (%s)\n" (Index.name ix) (Index.column ix))
        (Table.index_list tbl);
      Table.iter
        (fun h row ->
          if handles then addf "  row #%d %s\n" (Handle.id h) (Row.to_string row)
          else addf "  row %s\n" (Row.to_string row))
        tbl)
    (Database.table_names db);
  List.iter
    (fun r ->
      addf "rule %d %s active=%b\n" r.Rules.Rule.seq
        (Pretty.rule_def_str r.Rules.Rule.def)
        r.Rules.Rule.active)
    (Engine.rules eng);
  List.iter
    (fun (high, low) -> addf "priority %s > %s\n" high low)
    (Priority.pairs (Engine.priorities eng));
  Buffer.contents buf

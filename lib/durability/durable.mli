(** A durable system: {!Core.System} plus write-ahead logging and
    periodic checkpoints over a data directory.

    One WAL record per committed transition (DDL statement or
    transaction net effect), appended and fsynced at the engine's
    commit point before the in-memory commit completes; checkpoints
    write the full engine image, rotate the log, and prune superseded
    generations.  {!Recovery.restore} (or {!open_dir}, which calls it)
    rebuilds exactly the durable committed prefix after a crash. *)

open Core

type t

val open_dir :
  ?config:Engine.config ->
  ?checkpoint_interval:int ->
  ?sync:bool ->
  string ->
  t * Recovery.info
(** Open (creating if needed) a data directory: recover its state, open
    the current WAL generation for appending (truncating any torn
    tail), and attach the logging hooks.  [checkpoint_interval] enables
    automatic checkpoints after that many records (taken between
    transactions, never inside one).  [sync:false] drops every fsync —
    for measuring the durability overhead, not for data anyone loves.
    Raises [Semantic_error] on a non-positive interval. *)

val system : t -> System.t
(** The underlying system — queries and programmatic access.  Executing
    statements through it logs normally (the hooks live on the system);
    only auto-checkpointing needs {!exec}. *)

val exec : t -> string -> System.exec_result list
(** Execute a script through the logged system, then auto-checkpoint if
    the interval says so and no transaction is open. *)

val exec_one : t -> string -> System.exec_result

val checkpoint : t -> unit
(** Write a checkpoint now: publish the engine image under the next
    generation, start that generation's empty WAL, prune older
    generations.  Raises [Transaction_error] while a transaction is
    open — checkpoints capture committed states only. *)

val checkpoint_due : t -> bool
(** Whether the records-since-checkpoint counter has reached the
    configured interval.  The server consults this under its own state
    lock (a checkpoint must capture a moment with no commits in
    flight), so the decision and the act are exposed separately. *)

(** {1 Server write path}

    The concurrent server manages commits itself — conflict-checking
    session transactions against the committed history and applying
    winners to its primary engine — so it appends records directly
    instead of going through the engine commit hook.  All appends and
    checkpoints serialize on an internal I/O lock. *)

val dml_of_log : Engine.txn_log -> Relational.Wal.dml list
(** The physical net effect of a committed transaction, grounded
    against its before/after states: deletes of pre-existing handles,
    updates with their after images, inserts present in the after
    state — the exact op list a [Txn]/[Batch] record carries. *)

val append_txn : t -> Relational.Wal.dml list -> unit
(** Append (and, unless [sync:false], fsync) one transaction record
    carrying the current global handle counter. *)

val append_txn_batch : t -> Relational.Wal.dml list list -> unit
(** Append a whole group-commit batch as ONE record — one frame, one
    CRC, one fsync.  Recovery therefore replays all member transactions
    or none: a torn frame discards the entire batch. *)

(** Observability for the REPL's [.wal status]. *)
type status = {
  st_dir : string;
  st_gen : int;
  st_next_seq : int;
  st_wal_bytes : int;
  st_wal_records : int;
  st_records_since_ckpt : int;
  st_checkpoints : int list;
  st_sync : bool;
}

val status : t -> status
val pp_status : Format.formatter -> status -> unit

val dir : t -> string
val generation : t -> int

val close : t -> unit
(** Detach the hooks and close the log.  Idempotent.  The underlying
    system remains usable in memory; further mutations are no longer
    logged. *)

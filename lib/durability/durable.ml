(* A durable system: a [Core.System] with a write-ahead log and
   periodic checkpoints attached through the engine's narrow seams.

   Write path, per committed transaction:

     process rules to quiescence
     Fault.Commit_point
     commit hook: build the physical record from the transaction's
       composite effect, append + fsync     (Wal_append / Wal_fsync)
     in-memory commit completes

   If the append fails, the engine aborts the transaction — memory and
   disk agree the transaction never happened.  If the process dies
   after the fsync but before the commit returns, disk is ahead of the
   dying process's memory; recovery resolves in favour of the log,
   which is the only defensible reading (the record is durable, so the
   transition did commit).

   Checkpoints bound replay work: a checkpoint at generation g+1 writes
   the full engine image, starts the empty wal.(g+1), and prunes
   generation g.  Every crash window in that sequence recovers: before
   the rename, checkpoint g + wal.g is intact; after the rename but
   before wal.(g+1) exists, checkpoint g+1 + an absent (= empty) log;
   after pruning, the normal g+1 state.  Checkpointing inside an open
   transaction is rejected — a checkpoint must capture a committed
   state, and the engine's image refuses mid-transaction snapshots. *)

open Core
module Wal = Relational.Wal
module Checkpoint = Relational.Checkpoint

type t = {
  sys : System.t;
  dir : string;
  sync : bool;
  checkpoint_interval : int option;
  (* serializes every disk mutation (appends, checkpoint rotation)
     across the server's session threads; uncontended in the embedded
     single-session case.  Lock order where both are held: the caller's
     state lock first, [io_lock] second. *)
  io_lock : Mutex.t;
  mutable gen : int;
  mutable writer : Wal.writer;
  mutable next_seq : int;
  mutable records_since_ckpt : int;
  mutable closed : bool;
}

let with_io_lock t f =
  Mutex.lock t.io_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.io_lock) f

type status = {
  st_dir : string;
  st_gen : int;
  st_next_seq : int;
  st_wal_bytes : int;
  st_wal_records : int;  (* records in the current generation's log *)
  st_records_since_ckpt : int;
  st_checkpoints : int list;  (* generations present on disk *)
  st_sync : bool;
}

let system t = t.sys
let dir t = t.dir
let generation t = t.gen

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let require_open t =
  if t.closed then
    Errors.raise_error (Errors.Transaction_error "durable store is closed")

(* ------------------------------------------------------------------ *)
(* Building the physical record of a committed transaction.            *)

(* The engine hands over its composite effect (I, D, U per Definition
   2.1) plus the before/after states; each component is grounded
   against those states, making the record correct by construction:
   - inserts: I-handles present in [after] (an I-handle absent from
     [after] was consumed inside the transaction; composition already
     removes those, this is belt and braces);
   - deletes: D-handles present in [before] (a tuple both created and
     destroyed inside the transaction has no net existence);
   - updates: U-handles outside I, with their [after] image.
   The full row is logged for updates — U records which columns
   changed, but replay needs the values. *)
let dml_of_log (txl : Engine.txn_log) =
  let eff = txl.Engine.txl_effect in
  let deletes =
    Handle.Set.fold
      (fun h acc ->
        if Database.find_row txl.Engine.txl_before h <> None then
          Wal.L_delete { table = Handle.table h; id = Handle.id h } :: acc
        else acc)
      eff.Effect.del []
  in
  let updates =
    Handle.Map.fold
      (fun h _cols acc ->
        if Handle.Set.mem h eff.Effect.ins then acc
        else
          match Database.find_row txl.Engine.txl_after h with
          | Some row ->
            Wal.L_update { table = Handle.table h; id = Handle.id h; row }
            :: acc
          | None -> acc)
      eff.Effect.upd []
  in
  let inserts =
    Handle.Set.fold
      (fun h acc ->
        match Database.find_row txl.Engine.txl_after h with
        | Some row ->
          Wal.L_insert { table = Handle.table h; id = Handle.id h; row } :: acc
        | None -> acc)
      eff.Effect.ins []
  in
  (* folds over sets/maps accumulate in reverse handle order; reverse
     back so the log lists tuples in handle (= insertion) order and
     replay re-inserts them deterministically *)
  List.rev_append deletes []
  @ List.rev_append updates []
  @ List.rev_append inserts []

let append_payload t payload =
  require_open t;
  with_io_lock t (fun () ->
      Wal.append t.writer { Wal.seq = t.next_seq; payload };
      t.next_seq <- t.next_seq + 1;
      t.records_since_ckpt <- t.records_since_ckpt + 1)

let append_txn t ops =
  append_payload t (Wal.Txn { handle_ctr = Handle.counter_value (); ops })

let append_txn_batch t txns =
  append_payload t (Wal.Batch { handle_ctr = Handle.counter_value (); txns })

let attach_hooks t =
  System.set_ddl_hook t.sys (Some (fun text -> append_payload t (Wal.Ddl text)));
  Engine.set_commit_hook (System.engine t.sys)
    (Some
       (fun txl ->
         (* an effect-free committed transaction (reads only, or writes
            that cancelled out) still logs a record: recovery must
            restore the same handle counter and the harness counts
            committed transitions by records *)
         append_payload t
           (Wal.Txn
              { handle_ctr = Handle.counter_value (); ops = dml_of_log txl })))

let detach_hooks t =
  System.set_ddl_hook t.sys None;
  Engine.set_commit_hook (System.engine t.sys) None

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)

let checkpoint t =
  require_open t;
  if Engine.in_transaction (System.engine t.sys) then
    Errors.raise_error
      (Errors.Transaction_error
         "cannot checkpoint inside a transaction: checkpoints capture \
          committed states only");
  with_io_lock t (fun () ->
      let next_gen = t.gen + 1 in
      let image =
        {
          Recovery.cp_engine = Engine.durable_image (System.engine t.sys);
          cp_handle_ctr = Handle.counter_value ();
          cp_next_seq = t.next_seq;
        }
      in
      Checkpoint.write ~dir:t.dir ~gen:next_gen (Recovery.marshal_image image);
      (* the checkpoint is published: switch generations, then prune.  A
         crash anywhere from here recovers from the new checkpoint (with
         an absent-therefore-empty log until the create lands). *)
      let old_writer = t.writer in
      t.writer <- Wal.create ~sync:t.sync ~dir:t.dir ~gen:next_gen ();
      let old_gen = t.gen in
      t.gen <- next_gen;
      t.records_since_ckpt <- 0;
      Wal.close old_writer;
      (* prune superseded generations, best effort: a leftover file is
         dead weight, not a correctness problem (recovery picks the
         newest valid checkpoint) *)
      List.iter
        (fun g ->
          if g < next_gen then
            try Checkpoint.remove ~dir:t.dir ~gen:g with Sys_error _ -> ())
        (Checkpoint.generations ~dir:t.dir);
      try Sys.remove (Wal.path ~dir:t.dir ~gen:old_gen) with Sys_error _ -> ())

let checkpoint_due t =
  match t.checkpoint_interval with
  | Some every -> t.records_since_ckpt >= every
  | None -> false

let maybe_auto_checkpoint t =
  if checkpoint_due t && not (Engine.in_transaction (System.engine t.sys)) then
    checkpoint t

(* ------------------------------------------------------------------ *)
(* Opening and executing                                               *)

let open_dir ?config ?checkpoint_interval ?(sync = true) dir =
  (match checkpoint_interval with
  | Some n when n <= 0 ->
    Errors.semantic "checkpoint interval must be positive (got %d)" n
  | _ -> ());
  mkdir_p dir;
  let sys, info = Recovery.restore ?config dir in
  let writer = Wal.open_append ~sync ~dir ~gen:info.Recovery.ri_gen () in
  let t =
    {
      sys;
      dir;
      sync;
      checkpoint_interval;
      io_lock = Mutex.create ();
      gen = info.Recovery.ri_gen;
      writer;
      next_seq = info.Recovery.ri_last_seq + 1;
      records_since_ckpt = info.Recovery.ri_records;
      closed = false;
    }
  in
  attach_hooks t;
  (t, info)

let exec t sql =
  require_open t;
  let results = System.exec t.sys sql in
  maybe_auto_checkpoint t;
  results

let exec_one t sql =
  require_open t;
  let result = System.exec_one t.sys sql in
  maybe_auto_checkpoint t;
  result

let status t =
  require_open t;
  let scan = Wal.read ~dir:t.dir ~gen:t.gen in
  {
    st_dir = t.dir;
    st_gen = t.gen;
    st_next_seq = t.next_seq;
    st_wal_bytes = Wal.writer_size t.writer;
    st_wal_records = List.length scan.Wal.records;
    st_records_since_ckpt = t.records_since_ckpt;
    st_checkpoints = Checkpoint.generations ~dir:t.dir;
    st_sync = t.sync;
  }

let pp_status ppf s =
  Fmt.pf ppf
    "data directory: %s@\n\
     generation: %d@\n\
     next record seq: %d@\n\
     wal: %d bytes, %d records (%d since last checkpoint)@\n\
     checkpoints on disk: %s@\n\
     fsync: %s"
    s.st_dir s.st_gen s.st_next_seq s.st_wal_bytes s.st_wal_records
    s.st_records_since_ckpt
    (match s.st_checkpoints with
    | [] -> "(none)"
    | gens -> String.concat ", " (List.map string_of_int gens))
    (if s.st_sync then "on" else "off (benchmark mode)")

let close t =
  if not t.closed then begin
    detach_hooks t;
    Wal.close t.writer;
    t.closed <- true
  end

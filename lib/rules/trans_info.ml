(* Per-rule composite transition information (paper Section 4.3,
   Figure 1).

   Each rule carries, between transitions, the information needed to
   decide whether it is triggered and to build its transition tables:

   - [ins]:  handles of tuples inserted since the rule's reference
             point (current values live in the database);
   - [del]:  handles and *values* of tuples deleted since then (the
             tuples are gone from the database);
   - [upd]:  for each updated tuple, the set of updated columns plus
             the tuple's value at the reference point (Figure 1 keeps
             one (h, c, v) triple per column with all v equal; we store
             the columns and the single old row).

   [init] corresponds to Figure 1's init-trans-info, [extend] to
   modify-trans-info, and get-old-value is [old_row_of]. *)

open Relational
module Col_set = Effect.Col_set

type upd_entry = { upd_cols : Col_set.t; old_row : Row.t }

type t = {
  ins : Handle.Set.t;
  del : Row.t Handle.Map.t;
  upd : upd_entry Handle.Map.t;
  sel : Col_set.t Handle.Map.t; (* Section 5.1 extension: read set *)
}

let empty =
  {
    ins = Handle.Set.empty;
    del = Handle.Map.empty;
    upd = Handle.Map.empty;
    sel = Handle.Map.empty;
  }

let is_empty ti =
  Handle.Set.is_empty ti.ins && Handle.Map.is_empty ti.del
  && Handle.Map.is_empty ti.upd && Handle.Map.is_empty ti.sel

(* get-old-value: the tuple's value at the start of the composite
   transition — recorded in [upd] if the tuple was updated earlier in
   the composite, otherwise its value in the pre-transition state. *)
let old_row_of ti old_db h =
  match Handle.Map.find_opt h ti.upd with
  | Some { old_row; _ } -> old_row
  | None -> Database.get_row old_db h

(* init-trans-info: transition information for a single effect [e]
   produced by a transition from [old_db]. *)
let init (e : Effect.t) old_db =
  let del =
    Handle.Set.fold
      (fun h m -> Handle.Map.add h (Database.get_row old_db h) m)
      e.Effect.del Handle.Map.empty
  in
  let upd =
    Handle.Map.fold
      (fun h cols m ->
        Handle.Map.add h
          { upd_cols = cols; old_row = Database.get_row old_db h }
          m)
      e.Effect.upd Handle.Map.empty
  in
  { ins = e.Effect.ins; del; upd; sel = e.Effect.sel }

(* modify-trans-info: extend composite information with the effect of a
   subsequent transition from state [old_db] (the state preceding that
   transition). *)
let extend ti (e : Effect.t) old_db =
  let ins = Handle.Set.union ti.ins e.Effect.ins in
  (* deletions *)
  let ins, del, upd =
    Handle.Set.fold
      (fun h (ins, del, upd) ->
        if Handle.Set.mem h ins then
          (* inserted within the composite: net effect is nothing *)
          (Handle.Set.remove h ins, del, upd)
        else
          let old_row = old_row_of ti old_db h in
          (ins, Handle.Map.add h old_row del, Handle.Map.remove h upd))
      e.Effect.del (ins, ti.del, ti.upd)
  in
  (* updates: ignore updates of tuples inserted within the composite;
     record the old value only the first time a tuple is updated *)
  let upd =
    Handle.Map.fold
      (fun h cols upd ->
        if Handle.Set.mem h ins then upd
        else
          match Handle.Map.find_opt h upd with
          | Some entry ->
            Handle.Map.add h
              { entry with upd_cols = Col_set.union entry.upd_cols cols }
              upd
          | None ->
            Handle.Map.add h
              { upd_cols = cols; old_row = Database.get_row old_db h }
              upd)
      e.Effect.upd upd
  in
  let sel =
    let pruned =
      Handle.Map.filter
        (fun h _ -> not (Handle.Set.mem h e.Effect.del))
        (Effect.union_cols ti.sel e.Effect.sel)
    in
    Handle.Map.filter (fun h _ -> not (Handle.Set.mem h ins)) pruned
  in
  { ins; del; upd; sel }

(* Restriction to the tables satisfying [keep].  Every component keys
   on handles, and a handle belongs to exactly one table, so
   restriction commutes with [init]/[extend]: restricting a composite
   equals composing restricted effects.  The engine's discrimination
   path uses this to give a rule that wakes mid-processing the same
   pruned information the linear scan would have accumulated for it. *)
let restrict ti keep =
  let keep_h h = keep (Handle.table h) in
  {
    ins = Handle.Set.filter keep_h ti.ins;
    del = Handle.Map.filter (fun h _ -> keep_h h) ti.del;
    upd = Handle.Map.filter (fun h _ -> keep_h h) ti.upd;
    sel = Handle.Map.filter (fun h _ -> keep_h h) ti.sel;
  }

(* The effect triple this information represents; used for triggering
   tests and by property tests relating [extend] to effect
   composition. *)
let to_effect ti =
  {
    Effect.ins = ti.ins;
    del = Handle.Map.fold (fun h _ s -> Handle.Set.add h s) ti.del Handle.Set.empty;
    upd = Handle.Map.map (fun e -> e.upd_cols) ti.upd;
    sel = ti.sel;
  }

let triggered ti preds = Effect.satisfies_any (to_effect ti) preds

let pp ppf ti = Effect.pp ppf (to_effect ti)

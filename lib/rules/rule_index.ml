(* Rule discrimination index.

   The Figure 1 loop conceptually consults every rule at every
   transition; this module gives the engine the discrimination network
   active-database practice assumes, so per-transition work scales with
   the rules *registered on the touched keys*, not with the size of the
   rule catalog.

   Each rule is registered under one key per basic transition
   predicate:

     inserted into T      -> insert(T)
     deleted from T       -> delete(T)
     updated T (col c)    -> update(T.c), column-less form is the
                             wildcard key rendered "update(T.[any])"
     selected T (col c)   -> select(T.c), wildcard likewise

   [matching] takes a transition effect and returns the names of every
   rule with at least one key the effect touches — exactly the rules
   [Effect.satisfies_any] could ever report as triggered by that effect
   (property-tested).  Column-less update/select registrations are
   wildcards: they match an update/select of any column of the table.

   The index is maintained incrementally on rule DDL (create, drop,
   activate/deactivate — only active rules are registered) and carries
   the engine's DDL generation: table or index DDL bumps the engine
   counter, the generations disagree, and the engine rebuilds the index
   from the catalog before its next lookup.  Posting lists are name
   sets, so maintenance is idempotent and [matching] results are
   order-independent. *)

open Relational
module Ast = Sqlf.Ast
module Str_map = Map.Make (String)
module Str_set = Set.Make (String)
module Col_set = Effect.Col_set

type op = Ins | Del | Upd | Sel

type key = { k_table : string; k_op : op; k_col : string option }

let key_of_pred = function
  | Ast.Tp_inserted t -> { k_table = t; k_op = Ins; k_col = None }
  | Ast.Tp_deleted t -> { k_table = t; k_op = Del; k_col = None }
  | Ast.Tp_updated (t, c) -> { k_table = t; k_op = Upd; k_col = c }
  | Ast.Tp_selected (t, c) -> { k_table = t; k_op = Sel; k_col = c }

(* A rule's registration keys, deduplicated, in a stable order (table,
   then op, then column) so EXPLAIN output is deterministic. *)
let keys_of_rule r =
  List.sort_uniq compare (List.map key_of_pred (Rule.trans_preds r))

let key_to_string k =
  let op =
    match k.k_op with
    | Ins -> "insert"
    | Del -> "delete"
    | Upd -> "update"
    | Sel -> "select"
  in
  match (k.k_op, k.k_col) with
  | (Ins | Del), _ -> Printf.sprintf "%s(%s)" op k.k_table
  | _, None -> Printf.sprintf "%s(%s.*)" op k.k_table
  | _, Some c -> Printf.sprintf "%s(%s.%s)" op k.k_table c

(* Per-table posting lists.  Update and select registrations split into
   a wildcard set (column-less predicates) and per-column sets. *)
type entry = {
  mutable e_ins : Str_set.t;
  mutable e_del : Str_set.t;
  mutable e_upd_any : Str_set.t;
  mutable e_upd_col : Str_set.t Str_map.t;
  mutable e_sel_any : Str_set.t;
  mutable e_sel_col : Str_set.t Str_map.t;
}

type t = {
  mutable generation : int;
      (* the engine DDL generation the index was built against *)
  tbl : (string, entry) Hashtbl.t;
  mutable registered : int; (* rules currently registered *)
}

let create ~generation () =
  { generation; tbl = Hashtbl.create 16; registered = 0 }

let generation idx = idx.generation
let registered idx = idx.registered

let entry_for idx table =
  match Hashtbl.find_opt idx.tbl table with
  | Some e -> e
  | None ->
    let e =
      {
        e_ins = Str_set.empty;
        e_del = Str_set.empty;
        e_upd_any = Str_set.empty;
        e_upd_col = Str_map.empty;
        e_sel_any = Str_set.empty;
        e_sel_col = Str_map.empty;
      }
    in
    Hashtbl.add idx.tbl table e;
    e

let col_sets_update name add col sets =
  Str_map.update col
    (fun existing ->
      let s = Option.value existing ~default:Str_set.empty in
      let s = if add then Str_set.add name s else Str_set.remove name s in
      if Str_set.is_empty s then None else Some s)
    sets

let apply idx name add keys =
  List.iter
    (fun k ->
      let e = entry_for idx k.k_table in
      let upd s = if add then Str_set.add name s else Str_set.remove name s in
      match (k.k_op, k.k_col) with
      | Ins, _ -> e.e_ins <- upd e.e_ins
      | Del, _ -> e.e_del <- upd e.e_del
      | Upd, None -> e.e_upd_any <- upd e.e_upd_any
      | Upd, Some c -> e.e_upd_col <- col_sets_update name add c e.e_upd_col
      | Sel, None -> e.e_sel_any <- upd e.e_sel_any
      | Sel, Some c -> e.e_sel_col <- col_sets_update name add c e.e_sel_col)
    keys

let add idx (r : Rule.t) =
  apply idx r.Rule.name true (keys_of_rule r);
  idx.registered <- idx.registered + 1

let remove idx (r : Rule.t) =
  apply idx r.Rule.name false (keys_of_rule r);
  idx.registered <- idx.registered - 1

let rebuild ~generation rules =
  let idx = create ~generation () in
  List.iter (fun r -> add idx r) rules;
  idx

(* Per-table summary of what an effect touches. *)
type touch = {
  mutable t_ins : bool;
  mutable t_del : bool;
  mutable t_upd : Col_set.t;
  mutable t_sel : Col_set.t;
}

let touches (e : Effect.t) =
  let h = Hashtbl.create 8 in
  let get tbl =
    match Hashtbl.find_opt h tbl with
    | Some t -> t
    | None ->
      let t =
        {
          t_ins = false;
          t_del = false;
          t_upd = Col_set.empty;
          t_sel = Col_set.empty;
        }
      in
      Hashtbl.add h tbl t;
      t
  in
  Handle.Set.iter (fun hd -> (get (Handle.table hd)).t_ins <- true) e.Effect.ins;
  Handle.Set.iter (fun hd -> (get (Handle.table hd)).t_del <- true) e.Effect.del;
  Handle.Map.iter
    (fun hd cols ->
      let t = get (Handle.table hd) in
      t.t_upd <- Col_set.union t.t_upd cols)
    e.Effect.upd;
  Handle.Map.iter
    (fun hd cols ->
      let t = get (Handle.table hd) in
      t.t_sel <- Col_set.union t.t_sel cols)
    e.Effect.sel;
  h

let matching idx (e : Effect.t) =
  let acc = ref Str_set.empty in
  let collect s = if not (Str_set.is_empty s) then acc := Str_set.union s !acc in
  Hashtbl.iter
    (fun table touch ->
      match Hashtbl.find_opt idx.tbl table with
      | None -> ()
      | Some en ->
        if touch.t_ins then collect en.e_ins;
        if touch.t_del then collect en.e_del;
        if not (Col_set.is_empty touch.t_upd) then begin
          collect en.e_upd_any;
          if not (Str_map.is_empty en.e_upd_col) then
            Col_set.iter
              (fun c ->
                match Str_map.find_opt c en.e_upd_col with
                | Some s -> collect s
                | None -> ())
              touch.t_upd
        end;
        if not (Col_set.is_empty touch.t_sel) then begin
          collect en.e_sel_any;
          if not (Str_map.is_empty en.e_sel_col) then
            Col_set.iter
              (fun c ->
                match Str_map.find_opt c en.e_sel_col with
                | Some s -> collect s
                | None -> ())
              touch.t_sel
        end)
    (touches e);
  !acc

(* Transition effects (paper Section 2.2).

   The effect of a transition is the triple [I, D, U]: handles of
   inserted tuples, handles of deleted tuples, and (handle, column)
   pairs of updated tuples.  A handle appears in at most one of the
   three components.  The optional [S] component is the Section 5.1
   extension recording retrieved (handle, column) pairs.

   [compose] implements Definition 2.1:
     I = (I1 ∪ I2) − D2
     D = (D1 ∪ D2) − I1
     U = (U1 ∪ U2) − (D2 ∪ I1)   (dropping pairs by handle)
   and is associative, so the effect of an operation block is the
   composition of its operations' effects in order. *)

open Relational
module Ast = Sqlf.Ast
module Dml = Sqlf.Dml
module Col_set = Set.Make (String)

type t = {
  ins : Handle.Set.t;
  del : Handle.Set.t;
  upd : Col_set.t Handle.Map.t;
  sel : Col_set.t Handle.Map.t; (* Section 5.1 extension *)
}

let empty =
  {
    ins = Handle.Set.empty;
    del = Handle.Set.empty;
    upd = Handle.Map.empty;
    sel = Handle.Map.empty;
  }

let is_empty e =
  Handle.Set.is_empty e.ins && Handle.Set.is_empty e.del
  && Handle.Map.is_empty e.upd && Handle.Map.is_empty e.sel

let of_inserted handles =
  { empty with ins = Handle.Set.of_list handles }

let of_deleted handles =
  { empty with del = Handle.Set.of_list handles }

let of_updated pairs =
  let upd =
    List.fold_left
      (fun m (h, cols) ->
        let existing =
          Option.value (Handle.Map.find_opt h m) ~default:Col_set.empty
        in
        Handle.Map.add h
          (List.fold_left (fun s c -> Col_set.add c s) existing cols)
          m)
      Handle.Map.empty pairs
  in
  { empty with upd }

let of_selected pairs =
  let sel =
    List.fold_left
      (fun m (h, cols) ->
        let existing =
          Option.value (Handle.Map.find_opt h m) ~default:Col_set.empty
        in
        Handle.Map.add h
          (List.fold_left (fun s c -> Col_set.add c s) existing cols)
          m)
      Handle.Map.empty pairs
  in
  { empty with sel }

let of_affected = function
  | Dml.A_insert hs -> of_inserted hs
  | Dml.A_delete pairs -> of_deleted (List.map fst pairs)
  | Dml.A_update triples ->
    of_updated (List.map (fun (h, cols, _) -> (h, cols)) triples)
  | Dml.A_select pairs -> of_selected pairs

let union_cols m1 m2 =
  Handle.Map.union (fun _ a b -> Some (Col_set.union a b)) m1 m2

(* Definition 2.1.  The S component composes by union minus handles
   deleted by the second transition or inserted by the first (selected
   tuples that no longer exist, or that did not exist before the
   composite transition, are not reported) — one of the compositions
   the paper leaves open; see DESIGN.md. *)
let compose e1 e2 =
  let ins = Handle.Set.diff (Handle.Set.union e1.ins e2.ins) e2.del in
  let del = Handle.Set.diff (Handle.Set.union e1.del e2.del) e1.ins in
  let drop = Handle.Set.union e2.del e1.ins in
  let prune m = Handle.Map.filter (fun h _ -> not (Handle.Set.mem h drop)) m in
  let upd = prune (union_cols e1.upd e2.upd) in
  let sel = prune (union_cols e1.sel e2.sel) in
  { ins; del; upd; sel }

let of_affected_list affs =
  List.fold_left (fun acc a -> compose acc (of_affected a)) empty affs

(* Triggering test for a basic transition predicate (Section 3). *)
let satisfies_pred e (pred : Ast.basic_trans_pred) =
  let handle_in_table t h = String.equal (Handle.table h) t in
  match pred with
  | Ast.Tp_inserted t -> Handle.Set.exists (handle_in_table t) e.ins
  | Ast.Tp_deleted t -> Handle.Set.exists (handle_in_table t) e.del
  | Ast.Tp_updated (t, None) ->
    Handle.Map.exists (fun h _ -> handle_in_table t h) e.upd
  | Ast.Tp_updated (t, Some c) ->
    Handle.Map.exists
      (fun h cols -> handle_in_table t h && Col_set.mem c cols)
      e.upd
  | Ast.Tp_selected (t, None) ->
    Handle.Map.exists (fun h _ -> handle_in_table t h) e.sel
  | Ast.Tp_selected (t, Some c) ->
    Handle.Map.exists
      (fun h cols -> handle_in_table t h && Col_set.mem c cols)
      e.sel

(* A rule's transition predicate is the disjunction of its basic
   predicates. *)
let satisfies_any e preds = List.exists (satisfies_pred e) preds

(* Restrict an effect to the tables satisfying [keep]: the basis of the
   Section 4.3 optimization that saves, per rule, "only the subset of
   that information relevant to the particular rule". *)
let restrict e keep =
  let keep_h h = keep (Handle.table h) in
  {
    ins = Handle.Set.filter keep_h e.ins;
    del = Handle.Set.filter keep_h e.del;
    upd = Handle.Map.filter (fun h _ -> keep_h h) e.upd;
    sel = Handle.Map.filter (fun h _ -> keep_h h) e.sel;
  }

(* The set of tables an effect touches; computed once per transition so
   the engine can skip rules whose predicates mention none of them. *)
let tables e =
  let add_h h acc = Col_set.add (Handle.table h) acc in
  let acc = Handle.Set.fold add_h e.ins Col_set.empty in
  let acc = Handle.Set.fold add_h e.del acc in
  let acc = Handle.Map.fold (fun h _ acc -> add_h h acc) e.upd acc in
  Handle.Map.fold (fun h _ acc -> add_h h acc) e.sel acc

(* The invariant of Section 2.2: a handle appears in at most one of
   I, D, U.  Exposed for property-based tests. *)
let well_formed e =
  let overlap_id = Handle.Set.inter e.ins e.del in
  Handle.Set.is_empty overlap_id
  && Handle.Map.for_all
       (fun h _ -> not (Handle.Set.mem h e.ins) && not (Handle.Set.mem h e.del))
       e.upd

let equal a b =
  Handle.Set.equal a.ins b.ins
  && Handle.Set.equal a.del b.del
  && Handle.Map.equal Col_set.equal a.upd b.upd
  && Handle.Map.equal Col_set.equal a.sel b.sel

(* Tuples the effect touches, across all four components: with select
   tracking on (Section 5.1) the S component counts too, so trace
   [effect_size]s and statistics reflect retrievals as well as
   writes. *)
let cardinality e =
  Handle.Set.cardinal e.ins + Handle.Set.cardinal e.del
  + Handle.Map.cardinal e.upd + Handle.Map.cardinal e.sel

let pp ppf e =
  let pp_handles ppf s =
    Fmt.list ~sep:Fmt.comma Handle.pp ppf (Handle.Set.elements s)
  in
  let pp_cols ppf m =
    Fmt.list ~sep:Fmt.comma
      (fun ppf (h, cols) ->
        Fmt.pf ppf "%a{%s}" Handle.pp h
          (String.concat "," (Col_set.elements cols)))
      ppf (Handle.Map.bindings m)
  in
  Fmt.pf ppf "[I={%a}; D={%a}; U={%a}]" pp_handles e.ins pp_handles e.del
    pp_cols e.upd

(* An instance-oriented (tuple-at-a-time) trigger engine: the baseline
   the paper argues against (Section 1: "rules that are applied once
   for each data item satisfying the condition part of the rule", as in
   [Esw76, SJGP90, Coh89]).

   It accepts the same rule definitions as the set-oriented engine but
   applies each rule once per affected tuple, immediately after the
   operation producing the tuple, in row order (depth-first cascading).
   When a rule fires for a tuple, its transition tables contain exactly
   that one tuple.

   This engine exists to make the paper's efficiency claim measurable
   (benchmark E2) and to let the test suite contrast the two semantics;
   it is intentionally faithful to the per-row style, including its
   inability to express conditions over the whole set of changes (an
   aggregate over "new updated emp.salary" sees one row at a time). *)

open Relational
module Ast = Sqlf.Ast
module Dml = Sqlf.Dml
module Eval = Sqlf.Eval

type config = { max_steps : int }

let default_config = { max_steps = 100_000 }

type stats = {
  mutable rule_firings : int;
  mutable conditions_evaluated : int;
}

type t = {
  mutable db : Database.t;
  mutable rules_rev : Rule.t list; (* newest first: O(1) create_rule *)
  mutable rules_fwd : Rule.t list option;
      (* memoized creation order, invalidated by create_rule, so bulk
         rule creation stays linear while firing keeps iterating rules
         in creation order *)
  mutable rule_seq : int;
  mutable txn_start : Database.t option;
  config : config;
  stats : stats;
  mutable steps : int;
}

exception Rolled_back_exc

type outcome = Committed | Rolled_back

let create ?(config = default_config) db =
  {
    db;
    rules_rev = [];
    rules_fwd = None;
    rule_seq = 0;
    txn_start = None;
    config;
    stats = { rule_firings = 0; conditions_evaluated = 0 };
    steps = 0;
  }

let database t = t.db
let stats t = t.stats

let rules t =
  match t.rules_fwd with
  | Some l -> l
  | None ->
    let l = List.rev t.rules_rev in
    t.rules_fwd <- Some l;
    l

let create_rule t def =
  t.rule_seq <- t.rule_seq + 1;
  let rule = Rule.create ~seq:t.rule_seq def in
  t.rules_rev <- rule :: t.rules_rev;
  t.rules_fwd <- None;
  rule

let create_table t schema = t.db <- Database.create_table t.db schema

(* One affected instance: the unit-granularity "transition" a row
   trigger sees. *)
type instance =
  | I_inserted of Handle.t
  | I_deleted of Handle.t * Row.t
  | I_updated of Handle.t * string list * Row.t (* old row *)

let instances_of_affected = function
  | Dml.A_insert hs -> List.map (fun h -> I_inserted h) hs
  | Dml.A_delete pairs -> List.map (fun (h, row) -> I_deleted (h, row)) pairs
  | Dml.A_update triples ->
    List.map (fun (h, cols, old) -> I_updated (h, cols, old)) triples
  | Dml.A_select _ -> []

let instance_info = function
  | I_inserted h -> Trans_info.{ empty with ins = Handle.Set.singleton h }
  | I_deleted (h, row) ->
    Trans_info.{ empty with del = Handle.Map.singleton h row }
  | I_updated (h, cols, old_row) ->
    let upd_cols =
      List.fold_left (fun s c -> Effect.Col_set.add c s) Effect.Col_set.empty cols
    in
    Trans_info.
      { empty with upd = Handle.Map.singleton h { upd_cols; old_row } }

(* An instance may have been overtaken by later changes (row deleted by
   a cascading trigger before its own firing); skip firings whose
   subject tuple no longer exists where it must. *)
let instance_stale db = function
  | I_inserted h | I_updated (h, _, _) -> Database.find_row db h = None
  | I_deleted _ -> false

let rec fire_for_instance t inst =
  if not (instance_stale t.db inst) then
    let info = instance_info inst in
    List.iter
      (fun rule ->
        if
          rule.Rule.active
          && Trans_info.triggered info (Rule.trans_preds rule)
          && not (instance_stale t.db inst)
        then begin
          let resolve = Transition_tables.resolver info t.db in
          t.stats.conditions_evaluated <- t.stats.conditions_evaluated + 1;
          let cond_holds =
            match Rule.condition rule with
            | None -> true
            | Some cond -> Eval.eval_predicate resolve [] cond
          in
          if cond_holds then begin
            t.steps <- t.steps + 1;
            if t.steps > t.config.max_steps then begin
              (match t.txn_start with Some db0 -> t.db <- db0 | None -> ());
              t.txn_start <- None;
              Errors.raise_error
                (Errors.Rule_limit_exceeded
                   { rule = rule.Rule.name; steps = t.steps - 1 })
            end;
            t.stats.rule_firings <- t.stats.rule_firings + 1;
            match Rule.action rule with
            | Ast.Act_rollback ->
              (match t.txn_start with
              | Some db0 -> t.db <- db0
              | None -> ());
              t.txn_start <- None;
              raise Rolled_back_exc
            | Ast.Act_call _ ->
              Errors.semantic
                "instance-oriented engine does not support call actions"
            | Ast.Act_block ops -> List.iter (exec_op_cascading t info) ops
          end
        end)
      (rules t)

(* Execute one operation and immediately (depth-first) fire row
   triggers for each affected tuple. *)
and exec_op_cascading t info op =
  let resolve = Transition_tables.resolver info t.db in
  let r = Dml.exec_op resolve t.db op in
  t.db <- r.Dml.db;
  List.iter (fire_for_instance t) (instances_of_affected r.Dml.affected)

let execute_block t (ops : Ast.op list) =
  t.txn_start <- Some t.db;
  t.steps <- 0;
  match
    List.iter (exec_op_cascading t Trans_info.empty) ops
  with
  | () ->
    t.txn_start <- None;
    Committed
  | exception Rolled_back_exc -> Rolled_back
  | exception e ->
    (match t.txn_start with Some db0 -> t.db <- db0 | None -> ());
    t.txn_start <- None;
    raise e

let query t (s : Ast.select) = Eval.eval_select (Eval.base_resolver t.db) s

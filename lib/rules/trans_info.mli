(** Per-rule composite transition information (paper Section 4.3,
    Figure 1).

    Between transitions each rule carries the information needed to
    decide whether it is triggered and to build its transition tables:
    inserted handles (current values live in the database), deleted
    handles with their values, and updated handles with the set of
    updated columns plus the tuple's value at the rule's reference
    point.  {!init} is Figure 1's [init-trans-info], {!extend} its
    [modify-trans-info], and {!old_row_of} its [get-old-value]. *)

open Relational
module Col_set = Effect.Col_set

type upd_entry = { upd_cols : Col_set.t; old_row : Row.t }

type t = {
  ins : Handle.Set.t;
  del : Row.t Handle.Map.t;
  upd : upd_entry Handle.Map.t;
  sel : Col_set.t Handle.Map.t;  (** Section 5.1 extension: read set *)
}

val empty : t
val is_empty : t -> bool

val old_row_of : t -> Database.t -> Handle.t -> Row.t
(** [old_row_of ti old_db h] is the tuple's value at the start of the
    composite transition: recorded in [ti.upd] if the tuple was updated
    earlier in the composite, otherwise its value in [old_db]. *)

val init : Effect.t -> Database.t -> t
(** [init e old_db]: transition information for a single effect [e]
    produced by a transition from state [old_db]. *)

val extend : t -> Effect.t -> Database.t -> t
(** [extend ti e old_db]: compose in the effect of a subsequent
    transition from state [old_db], netting per Definition 2.1 and
    preserving first-recorded old values. *)

val restrict : t -> (string -> bool) -> t
(** [restrict ti keep] drops every component entry whose handle's table
    fails [keep] (the {!Effect.restrict} counterpart).  Commutes with
    {!init}/{!extend}: restricting a composite equals composing
    restricted effects. *)

val to_effect : t -> Effect.t
(** The effect triple this information represents; [extend] commutes
    with {!Effect.compose} through this projection (property-tested). *)

val triggered : t -> Sqlf.Ast.basic_trans_pred list -> bool

val pp : Format.formatter -> t -> unit

(** User-declared rule ordering (paper Section 4.4).

    ["create rule priority R1 before R2"] declares that [R1] has higher
    priority than [R2]; any acyclic set of such pairs induces a partial
    order.  Adding a pair that would create a cycle is rejected with
    the offending path. *)

type t

val empty : t

val declare : t -> high:string -> low:string -> t
(** Raises [Priority_cycle] (with the cycle) if [low] already precedes
    [high] transitively, or if [high = low]. *)

val higher : t -> string -> string -> bool
(** [higher t a b]: is [a] strictly higher-priority than [b]
    (transitively)? *)

val pairs : t -> (string * string) list
(** The declared (high, low) pairs. *)

val remove_rule : t -> string -> t
(** Drop every pair mentioning the rule; used when a rule is dropped. *)

val search_steps : int ref
(** Node expansions performed by the most recent path search inside
    {!declare} or {!higher} — each graph node is expanded at most once,
    so the count is bounded by nodes + edges.  Exposed for the
    regression tests, which guard against the exponential re-exploration
    a copied (rather than threaded) visited set used to cause on
    diamond-shaped DAGs. *)

(** Transition effects (paper Section 2.2).

    The effect of a transition is the triple [I, D, U]: handles of
    inserted tuples, handles of deleted tuples, and (handle, column)
    pairs of updated tuples.  A handle appears in at most one of the
    three components.  The optional [S] component is the Section 5.1
    extension recording retrieved (handle, column) pairs.

    {!compose} implements Definition 2.1:
    {v
      I = (I1 ∪ I2) − D2
      D = (D1 ∪ D2) − I1
      U = (U1 ∪ U2) − (D2 ∪ I1)    (dropping pairs by handle)
    v}
    and is associative, so the effect of an operation block is the
    composition of its operations' effects in order. *)

open Relational
module Ast = Sqlf.Ast
module Dml = Sqlf.Dml
module Col_set : Set.S with type elt = string

type t = {
  ins : Handle.Set.t;
  del : Handle.Set.t;
  upd : Col_set.t Handle.Map.t;
  sel : Col_set.t Handle.Map.t;  (** Section 5.1 extension *)
}

val empty : t
val is_empty : t -> bool

val of_inserted : Handle.t list -> t
val of_deleted : Handle.t list -> t
val of_updated : (Handle.t * string list) list -> t
val of_selected : (Handle.t * string list) list -> t

val of_affected : Dml.affected -> t
(** The effect of a single operation, from its affected set
    (Section 2.1). *)

val of_affected_list : Dml.affected list -> t
(** Left-to-right composition of single-operation effects. *)

val union_cols : Col_set.t Handle.Map.t -> Col_set.t Handle.Map.t -> Col_set.t Handle.Map.t

val compose : t -> t -> t
(** Definition 2.1.  The [S] component composes by union minus handles
    deleted by the second transition or inserted by the first — one of
    the compositions the paper leaves open; see DESIGN.md. *)

val tables : t -> Col_set.t
(** The tables the effect touches; computed once per transition so the
    engine can skip rules whose predicates mention none of them. *)

val restrict : t -> (string -> bool) -> t
(** [restrict e keep] drops every component entry whose handle's table
    fails [keep]: the Section 4.3 optimization of saving, per rule,
    only the information relevant to it. *)

val satisfies_pred : t -> Ast.basic_trans_pred -> bool
(** Triggering test for one basic transition predicate (Section 3). *)

val satisfies_any : t -> Ast.basic_trans_pred list -> bool
(** A rule's transition predicate is the disjunction of its basic
    predicates; false for the empty list. *)

val well_formed : t -> bool
(** The Section 2.2 invariant: a handle appears in at most one of
    [I], [D], [U].  Exposed for property-based tests. *)

val equal : t -> t -> bool
val cardinality : t -> int
(** Number of tuples mentioned in [I], [D], [U] and — when select
    tracking is on — [S], so sizes reported in traces and statistics
    count retrievals as well as writes. *)

val pp : Format.formatter -> t -> unit

(* Static rule analysis (paper Section 6): build the may-trigger graph
   over a rule set and report

   - potential infinite loops: cycles in the may-trigger graph
     (including self-loops, as in Example 4.1 — not necessarily an
     error, but worth a warning);
   - potential order dependence: two rules that can be triggered by a
     common transition, are unordered by the declared priorities, and
     are not commutative (one writes data the other reads or writes),
     so the final database state may depend on the selection order.

   The analysis is conservative (syntactic): it over-approximates both
   triggering and data access, so absence of a warning is meaningful
   while presence is only a "may". *)

module Ast = Sqlf.Ast
module Str_set = Set.Make (String)

(* The write footprint of an operation, as basic transition predicates
   it can satisfy. *)
let op_writes = function
  | Ast.Insert { table; _ } -> [ Ast.Tp_inserted table ]
  | Ast.Delete { table; _ } -> [ Ast.Tp_deleted table ]
  | Ast.Update { table; sets; _ } ->
    (* the updated column set is statically known: one write per SET
       column (a column-specific write still satisfies the
       column-unspecific predicate "updated t") *)
    List.map (fun (c, _) -> Ast.Tp_updated (table, Some c)) sets
  | Ast.Select_op s ->
    List.filter_map
      (fun item ->
        match item.Ast.source with
        | Ast.Base t -> Some (Ast.Tp_selected (t, None))
        | Ast.Transition _ | Ast.Derived _ -> None)
      s.Ast.from

(* Can a write matching [w] trigger predicate [p]? *)
let write_triggers w p =
  match w, p with
  | Ast.Tp_inserted t, Ast.Tp_inserted t' -> String.equal t t'
  | Ast.Tp_deleted t, Ast.Tp_deleted t' -> String.equal t t'
  | Ast.Tp_updated (t, _), Ast.Tp_updated (t', None) -> String.equal t t'
  | Ast.Tp_updated (t, Some c), Ast.Tp_updated (t', Some c') ->
    String.equal t t' && String.equal c c'
  | Ast.Tp_updated (t, None), Ast.Tp_updated (t', Some _) ->
    (* an update with an unknown column set may touch any column *)
    String.equal t t'
  | Ast.Tp_selected (t, _), Ast.Tp_selected (t', _) -> String.equal t t'
  | _ -> false

let rule_action_writes (r : Rule.t) =
  match Rule.action r with
  | Ast.Act_rollback -> []
  | Ast.Act_call _ ->
    (* an external procedure may perform arbitrary operations *)
    [ Ast.Tp_inserted "*"; Ast.Tp_deleted "*"; Ast.Tp_updated ("*", None) ]
  | Ast.Act_block ops -> List.concat_map op_writes ops

let wildcard_triggers w p =
  match w, p with
  | Ast.Tp_inserted "*", Ast.Tp_inserted _ -> true
  | Ast.Tp_deleted "*", Ast.Tp_deleted _ -> true
  | Ast.Tp_updated ("*", None), Ast.Tp_updated _ -> true
  | _ -> write_triggers w p

(* r1 may-trigger r2: some write of r1's action satisfies some basic
   transition predicate of r2. *)
let may_trigger (r1 : Rule.t) (r2 : Rule.t) =
  let writes = rule_action_writes r1 in
  List.exists
    (fun p -> List.exists (fun w -> wildcard_triggers w p) writes)
    (Rule.trans_preds r2)

type edge = { from_rule : string; to_rule : string }

let triggering_graph rules =
  List.concat_map
    (fun r1 ->
      List.filter_map
        (fun r2 ->
          if may_trigger r1 r2 then
            Some { from_rule = r1.Rule.name; to_rule = r2.Rule.name }
          else None)
        rules)
    rules

(* ------------------------------------------------------------------ *)
(* Cycle detection                                                     *)

(* Enumerate elementary cycles reachable in the may-trigger graph,
   reported as name lists [r1; ...; rk] meaning r1 -> ... -> rk -> r1.
   A bounded DFS is plenty for rule-catalog-sized graphs. *)
let cycles rules =
  let names = List.map (fun r -> r.Rule.name) rules in
  let edges = triggering_graph rules in
  let succ name =
    List.filter_map
      (fun e -> if String.equal e.from_rule name then Some e.to_rule else None)
      edges
  in
  let found = ref [] in
  let seen_cycle = Hashtbl.create 16 in
  let canonical cycle =
    (* rotate so the smallest name is first, making duplicates easy to
       detect *)
    let min_name = List.fold_left min (List.hd cycle) cycle in
    let rec rotate acc = function
      | [] -> assert false
      | x :: rest when String.equal x min_name -> (x :: rest) @ List.rev acc
      | x :: rest -> rotate (x :: acc) rest
    in
    rotate [] cycle
  in
  let rec dfs start path node =
    if String.equal node start && path <> [] then begin
      let cycle = canonical (List.rev path) in
      let key = String.concat "\x00" cycle in
      if not (Hashtbl.mem seen_cycle key) then begin
        Hashtbl.add seen_cycle key ();
        found := cycle :: !found
      end
    end
    else if List.exists (String.equal node) path then ()
    else List.iter (dfs start (node :: path)) (succ node)
  in
  List.iter (fun n -> List.iter (dfs n [ n ]) (succ n)) names;
  List.rev !found

(* ------------------------------------------------------------------ *)
(* Order-dependence (conflict) analysis                                *)

(* Tables read by a rule's condition and action (through embedded
   selects). *)
let rule_reads (r : Rule.t) =
  let add acc (s : Ast.select) =
    List.fold_left
      (fun acc item ->
        match item.Ast.source with
        | Ast.Base t -> Str_set.add t acc
        | Ast.Transition tt -> Str_set.add (Ast.trans_table_base tt) acc
        | Ast.Derived _ -> acc)
      acc s.Ast.from
  in
  let rec expr_selects acc = function
    | Ast.Lit _ | Ast.Param _ | Ast.Col _ -> acc
    | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b)
    | Ast.Like (a, b) -> expr_selects (expr_selects acc a) b
    | Ast.Neg a | Ast.Not a | Ast.Is_null a | Ast.Is_not_null a ->
      expr_selects acc a
    | Ast.In_list (a, es) | Ast.Not_in_list (a, es) ->
      List.fold_left expr_selects (expr_selects acc a) es
    | Ast.In_select (a, s) | Ast.Not_in_select (a, s) ->
      select_selects (expr_selects acc a) s
    | Ast.Exists s | Ast.Scalar_select s -> select_selects acc s
    | Ast.Between (a, b, c) ->
      expr_selects (expr_selects (expr_selects acc a) b) c
    | Ast.Agg (_, Some a) -> expr_selects acc a
    | Ast.Agg (_, None) -> acc
    | Ast.Fn (_, args) -> List.fold_left expr_selects acc args
    | Ast.Case (branches, else_) ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> expr_selects (expr_selects acc c) v)
          acc branches
      in
      Option.fold ~none:acc ~some:(expr_selects acc) else_
  and select_selects acc s =
    let acc = add acc s in
    let acc =
      List.fold_left
        (fun acc p ->
          match p with
          | Ast.Star | Ast.Table_star _ -> acc
          | Ast.Proj (e, _) -> expr_selects acc e)
        acc s.Ast.projections
    in
    let fo acc = function None -> acc | Some e -> expr_selects acc e in
    let acc = fo acc s.Ast.where in
    let acc = List.fold_left expr_selects acc s.Ast.group_by in
    fo acc s.Ast.having
  in
  let acc =
    match Rule.condition r with
    | None -> Str_set.empty
    | Some c -> expr_selects Str_set.empty c
  in
  match Rule.action r with
  | Ast.Act_rollback -> acc
  | Ast.Act_call _ -> Str_set.singleton "*"
  | Ast.Act_block ops ->
    List.fold_left
      (fun acc op ->
        match op with
        | Ast.Insert { source = `Values rows; _ } ->
          List.fold_left (List.fold_left expr_selects) acc rows
        | Ast.Insert { source = `Select s; _ } -> select_selects acc s
        | Ast.Delete { where; table; _ } ->
          let acc = Str_set.add table acc in
          Option.fold ~none:acc ~some:(expr_selects acc) where
        | Ast.Update { table; sets; where } ->
          let acc = Str_set.add table acc in
          let acc =
            List.fold_left (fun acc (_, e) -> expr_selects acc e) acc sets
          in
          Option.fold ~none:acc ~some:(expr_selects acc) where
        | Ast.Select_op s -> select_selects acc s)
      acc ops

let rule_write_tables (r : Rule.t) =
  List.fold_left
    (fun acc w ->
      match w with
      | Ast.Tp_inserted t | Ast.Tp_deleted t | Ast.Tp_updated (t, _) ->
        Str_set.add t acc
      | Ast.Tp_selected _ -> acc)
    Str_set.empty (rule_action_writes r)

(* Two rules possibly triggered together whose order can matter. *)
let conflicting r1 r2 =
  let common_trigger =
    (* both can be triggered by one transition: their predicate tables
       and kinds need not coincide — any transition touching both
       tables triggers both — so "possibly co-triggered" is simply both
       having predicates. *)
    Rule.trans_preds r1 <> [] && Rule.trans_preds r2 <> []
  in
  let w1 = rule_write_tables r1 and w2 = rule_write_tables r2 in
  let reads1 = rule_reads r1 and reads2 = rule_reads r2 in
  let wildcard s = Str_set.mem "*" s in
  let inter a b = (not (Str_set.is_empty (Str_set.inter a b))) || wildcard a || wildcard b in
  common_trigger
  && (inter w1 w2 || inter w1 reads2 || inter w2 reads1)

type conflict = { rule1 : string; rule2 : string }

type report = {
  graph : edge list;
  potential_loops : string list list;
  order_conflicts : conflict list;
}

let analyze ?(priorities = Priority.empty) rules =
  let graph = triggering_graph rules in
  let potential_loops = cycles rules in
  let rec pairs = function
    | [] -> []
    | r :: rest -> List.map (fun r' -> (r, r')) rest @ pairs rest
  in
  let order_conflicts =
    List.filter_map
      (fun (r1, r2) ->
        let ordered =
          Priority.higher priorities r1.Rule.name r2.Rule.name
          || Priority.higher priorities r2.Rule.name r1.Rule.name
        in
        if (not ordered) && conflicting r1 r2 then
          Some { rule1 = r1.Rule.name; rule2 = r2.Rule.name }
        else None)
      (pairs rules)
  in
  { graph; potential_loops; order_conflicts }

let pp_report ppf r =
  let pp_edge ppf e = Fmt.pf ppf "%s -> %s" e.from_rule e.to_rule in
  let pp_cycle ppf c = Fmt.pf ppf "%s" (String.concat " -> " (c @ [ List.hd c ])) in
  let pp_conflict ppf c = Fmt.pf ppf "%s <-> %s" c.rule1 c.rule2 in
  Fmt.pf ppf
    "@[<v>may-trigger edges:@,  @[<v>%a@]@,potential loops:@,  \
     @[<v>%a@]@,unordered conflicting pairs:@,  @[<v>%a@]@]"
    (Fmt.list ~sep:Fmt.cut pp_edge) r.graph
    (Fmt.list ~sep:Fmt.cut pp_cycle) r.potential_loops
    (Fmt.list ~sep:Fmt.cut pp_conflict) r.order_conflicts

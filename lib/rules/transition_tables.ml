(* Materialization of the paper's logical transition tables (Section 3)
   from a rule's composite transition information:

   - [inserted t]:        current values of tuples of t inserted by the
                          (composite) transition;
   - [deleted t]:         previous-state values of deleted tuples of t;
   - [old updated t[.c]]: previous-state values of updated tuples of t
                          (restricted to those where column c was
                          updated, for the ".c" form);
   - [new updated t[.c]]: current values of the same tuples;
   - [selected t[.c]]:    current values of retrieved tuples (Section
                          5.1 extension).

   "Previous state" means the state at the start of the rule's
   composite transition; Figure 1 records those values incrementally in
   the trans-info, so materialization needs only the trans-info and the
   current database state. *)

open Relational
module Ast = Sqlf.Ast
module Eval = Sqlf.Eval

(* Deterministic row order: by handle id, i.e. insertion order. *)
let sorted_bindings bindings =
  List.sort (fun (h1, _) (h2, _) -> Handle.compare h1 h2) bindings

(* Transition-table columns are the base table's columns; the names
   array is the one cached in the stored table value. *)
let relation_of name tbl rows =
  { Eval.rel_name = name; cols = Table.col_names tbl; rows }

let materialize (ti : Trans_info.t) ~current_db (tt : Ast.trans_table) :
    Eval.relation =
  match tt with
  | Ast.Tt_inserted t ->
    let tbl = Database.table current_db t in
    let rows =
      Handle.Set.elements
        (Handle.Set.filter
           (fun h -> String.equal (Handle.table h) t)
           ti.Trans_info.ins)
      |> List.map (fun h -> Database.get_row current_db h)
    in
    relation_of t tbl rows
  | Ast.Tt_deleted t ->
    let tbl = Database.table current_db t in
    let rows =
      Handle.Map.bindings ti.Trans_info.del
      |> List.filter (fun (h, _) -> String.equal (Handle.table h) t)
      |> sorted_bindings
      |> List.map snd
    in
    relation_of t tbl rows
  | Ast.Tt_old_updated (t, col) | Ast.Tt_new_updated (t, col) ->
    let tbl = Database.table current_db t in
    let entries =
      Handle.Map.bindings ti.Trans_info.upd
      |> List.filter (fun (h, entry) ->
             String.equal (Handle.table h) t
             &&
             match col with
             | None -> true
             | Some c -> Effect.Col_set.mem c entry.Trans_info.upd_cols)
      |> List.sort (fun (h1, _) (h2, _) -> Handle.compare h1 h2)
    in
    let rows =
      match tt with
      | Ast.Tt_old_updated _ ->
        List.map (fun (_, entry) -> entry.Trans_info.old_row) entries
      | _ -> List.map (fun (h, _) -> Database.get_row current_db h) entries
    in
    relation_of t tbl rows
  | Ast.Tt_selected (t, col) ->
    let tbl = Database.table current_db t in
    let rows =
      Handle.Map.bindings ti.Trans_info.sel
      |> List.filter (fun (h, cols) ->
             String.equal (Handle.table h) t
             &&
             match col with
             | None -> true
             | Some c -> Effect.Col_set.mem c cols)
      |> sorted_bindings
      |> List.filter_map (fun (h, _) -> Database.find_row current_db h)
    in
    relation_of t tbl rows

(* A resolver that serves base tables from [db] and transition tables
   from [ti]; this is the evaluation environment for a rule's condition
   and action (Section 4.1: "evaluation of R's condition may depend on
   E1, S1, and S0").

   Both [ti] and [db] are fixed for the life of one resolver (the
   engine builds a fresh resolver per operation and per condition
   evaluation), so materializations are memoized per instance: a
   predicate that joins against the same transition table once per
   candidate row pays for the handle-set traversal only once. *)
let resolver (ti : Trans_info.t) db : Eval.resolver =
  let trans_memo : (Ast.trans_table, Eval.relation) Hashtbl.t =
    Hashtbl.create 4
  in
  let base_memo : (string, Eval.relation) Hashtbl.t = Hashtbl.create 4 in
  function
  | Ast.Base name -> (
    match Hashtbl.find_opt base_memo name with
    | Some rel -> rel
    | None ->
      let rel = Eval.relation_of_table (Database.table db name) in
      Hashtbl.add base_memo name rel;
      rel)
  | Ast.Transition tt -> (
    match Hashtbl.find_opt trans_memo tt with
    | Some rel -> rel
    | None ->
      let rel = materialize ti ~current_db:db tt in
      Hashtbl.add trans_memo tt rel;
      rel)
  | Ast.Derived _ -> assert false

(* User-declared rule ordering (paper Section 4.4).

   "create rule priority R1 before R2" declares that R1 has higher
   priority than R2.  Any acyclic set of such pairs induces a partial
   order; a rule is eligible for selection only if no other *triggered*
   rule is strictly higher.  Adding a pair that would create a cycle is
   rejected with the offending cycle. *)

open Relational
module Str_map = Map.Make (String)
module Str_set = Set.Make (String)

type t = { before : Str_set.t Str_map.t (* rule -> rules it precedes *) }

let empty = { before = Str_map.empty }

let successors t name =
  Option.value (Str_map.find_opt name t.before) ~default:Str_set.empty

(* Step counter of the most recent [find_path] search (one step per
   node expansion).  Exposed so the regression tests can bound the
   search cost structurally instead of by wall time. *)
let search_steps = ref 0

(* Path from [src] to [dst] following the before-relation, if any;
   used both for cycle detection and for reporting the cycle.

   The visited set is threaded through the fold — each node is expanded
   at most once across the whole search.  Copying the set into each
   branch instead would re-explore shared suffixes, making diamond-
   shaped DAGs exponential. *)
let find_path t src dst =
  search_steps := 0;
  let rec dfs visited path node =
    incr search_steps;
    if String.equal node dst then (visited, Some (List.rev (node :: path)))
    else if Str_set.mem node visited then (visited, None)
    else
      let visited = Str_set.add node visited in
      Str_set.fold
        (fun next (visited, found) ->
          match found with
          | Some _ -> (visited, found)
          | None -> dfs visited (node :: path) next)
        (successors t node) (visited, None)
  in
  snd (dfs Str_set.empty [] src)

let declare t ~high ~low =
  if String.equal high low then
    Errors.raise_error (Errors.Priority_cycle [ high; low ]);
  (match find_path t low high with
  | Some path -> Errors.raise_error (Errors.Priority_cycle (path @ [ low ]))
  | None -> ());
  let succ = Str_set.add low (successors t high) in
  { before = Str_map.add high succ t.before }

(* Is [a] strictly higher-priority than [b] (transitively)? *)
let higher t a b =
  if String.equal a b then false
  else Option.is_some (find_path t a b)

let pairs t =
  Str_map.fold
    (fun high lows acc ->
      Str_set.fold (fun low acc -> (high, low) :: acc) lows acc)
    t.before []
  |> List.rev

(* Drop every pair mentioning [name]; used when a rule is dropped. *)
let remove_rule t name =
  let before =
    Str_map.filter_map
      (fun high lows ->
        if String.equal high name then None
        else
          let lows = Str_set.remove name lows in
          if Str_set.is_empty lows then None else Some lows)
      t.before
  in
  { before }

(* The higher-level integrity-constraint facility the paper points to
   in Section 6 (the [CW90] direction): users state declarative
   constraints; the system compiles them into set-oriented production
   rules that maintain them.

   Compilation styles:
   - NOT NULL, UNIQUE/PRIMARY KEY, CHECK and the restricting side of
     foreign keys compile to rollback rules ("abort" repair);
   - ON DELETE CASCADE / SET NULL compile to repairing rules — the
     cascade rule is exactly the paper's Example 3.1.

   Conditions use transition tables where the violation can only
   involve changed tuples (NOT NULL, CHECK), and whole-table tests
   where it is inherently global (UNIQUE). *)

module Ast = Sqlf.Ast

type t =
  | Not_null of { table : string; column : string }
  | Unique of { table : string; columns : string list }
  | Foreign_key of {
      child : string;
      child_column : string;
      parent : string;
      parent_column : string;
      on_delete : [ `Cascade | `Restrict | `Set_null ];
    }
  | Check of { table : string; predicate : Ast.expr }
  | Assertion of { assertion_name : string; predicate : Ast.expr }
      (* a cross-table invariant (SQL assertion style): the predicate
         must hold in every committed state; any change to a referenced
         table triggers the check *)

(* ---- small AST construction helpers ---- *)

let col ?table column = Ast.Col { qualifier = table; column }

let select ?(projections = [ Ast.Star ]) ?where from =
  {
    Ast.distinct = false;
    projections;
    from;
    where;
    group_by = [];
    having = None;
    compounds = [];
    order_by = [];
    limit = None;
  }

let from_base ?alias t = { Ast.source = Ast.Base t; alias }
let from_trans ?alias tt = { Ast.source = Ast.Transition tt; alias }
let exists s = Ast.Exists s

let rule name preds condition action =
  { Ast.rule_name = name; trans_preds = preds; condition; action }

let sanitize s =
  String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9') as c -> c | _ -> '_') s

(* The rule name an assertion compiles to, derivable from the
   assertion name alone (dropping an assertion must find its rule
   without re-stating the predicate). *)
let assertion_rule_name assertion_name =
  Printf.sprintf "assert_%s" (sanitize assertion_name)

let name_of = function
  | Not_null { table; column } ->
    Printf.sprintf "nn_%s_%s" (sanitize table) (sanitize column)
  | Unique { table; columns } ->
    Printf.sprintf "uq_%s_%s" (sanitize table)
      (String.concat "_" (List.map sanitize columns))
  | Foreign_key { child; child_column; parent; _ } ->
    Printf.sprintf "fk_%s_%s_%s" (sanitize child) (sanitize child_column)
      (sanitize parent)
  | Check { table; _ } -> Printf.sprintf "ck_%s" (sanitize table)
  | Assertion { assertion_name; _ } -> assertion_rule_name assertion_name

(* ---- compilation ---- *)

let compile_not_null ~name table column =
  (* Violations can only come from inserted or updated tuples, so the
     condition tests transition tables only. *)
  let inserted_bad =
    exists
      (select [ from_trans (Ast.Tt_inserted table) ]
         ~where:(Ast.Is_null (col column)))
  in
  let updated_bad =
    exists
      (select [ from_trans (Ast.Tt_new_updated (table, Some column)) ]
         ~where:(Ast.Is_null (col column)))
  in
  [
    rule name
      [ Ast.Tp_inserted table; Ast.Tp_updated (table, Some column) ]
      (Some (Ast.Or (inserted_bad, updated_bad)))
      Ast.Act_rollback;
  ]

let compile_unique ~name table columns =
  (* Duplicate detection is global: group the whole table by the key
     and look for a group with more than one member. *)
  let dup =
    exists
      {
        (select ~projections:(List.map (fun c -> Ast.Proj (col c, None)) columns)
           [ from_base table ])
        with
        Ast.group_by = List.map (fun c -> col c) columns;
        having =
          Some (Ast.Cmp (Ast.Gt, Ast.Agg (Ast.Count_star, None), Ast.Lit (Relational.Value.Int 1)));
      }
  in
  let preds =
    Ast.Tp_inserted table
    :: List.map (fun c -> Ast.Tp_updated (table, Some c)) columns
  in
  [ rule name preds (Some dup) Ast.Act_rollback ]

let orphan_exists ~child ~child_column ~parent ~parent_column =
  exists
    (select [ from_base child ]
       ~where:
         (Ast.And
            ( Ast.Is_not_null (col child_column),
              Ast.Not_in_select
                ( col child_column,
                  select
                    ~projections:[ Ast.Proj (col parent_column, None) ]
                    [ from_base parent ]
                    ~where:(Ast.Is_not_null (col parent_column)) ) )))

let compile_foreign_key ~name child child_column parent parent_column on_delete =
  (* The checking rule guards every operation that can create an
     orphan; for CASCADE / SET NULL, a repairing rule (the paper's
     Example 3.1 pattern) runs on parent deletion, and the checking
     rule then finds nothing to reject. *)
  let check_preds =
    [
      Ast.Tp_inserted child;
      Ast.Tp_updated (child, Some child_column);
      Ast.Tp_deleted parent;
      Ast.Tp_updated (parent, Some parent_column);
    ]
  in
  let check_rule =
    rule (name ^ "_check") check_preds
      (Some (orphan_exists ~child ~child_column ~parent ~parent_column))
      Ast.Act_rollback
  in
  let parent_keys_deleted =
    (* select parent_column from deleted parent *)
    select
      ~projections:[ Ast.Proj (col parent_column, None) ]
      [ from_trans (Ast.Tt_deleted parent) ]
  in
  match on_delete with
  | `Restrict -> [ check_rule ]
  | `Cascade ->
    let repair =
      rule (name ^ "_cascade")
        [ Ast.Tp_deleted parent ]
        None
        (Ast.Act_block
           [
             Ast.Delete
               {
                 table = child;
                 where = Some (Ast.In_select (col child_column, parent_keys_deleted));
               };
           ])
    in
    [ repair; check_rule ]
  | `Set_null ->
    let repair =
      rule (name ^ "_setnull")
        [ Ast.Tp_deleted parent ]
        None
        (Ast.Act_block
           [
             Ast.Update
               {
                 table = child;
                 sets = [ (child_column, Ast.Lit Relational.Value.Null) ];
                 where = Some (Ast.In_select (col child_column, parent_keys_deleted));
               };
           ])
    in
    [ repair; check_rule ]

let compile_check ~name table predicate =
  (* Only inserted or updated tuples can newly violate a row-level
     predicate. *)
  let bad_inserted =
    exists
      (select [ from_trans (Ast.Tt_inserted table) ] ~where:(Ast.Not predicate))
  in
  let bad_updated =
    exists
      (select
         [ from_trans (Ast.Tt_new_updated (table, None)) ]
         ~where:(Ast.Not predicate))
  in
  [
    rule name
      [ Ast.Tp_inserted table; Ast.Tp_updated (table, None) ]
      (Some (Ast.Or (bad_inserted, bad_updated)))
      Ast.Act_rollback;
  ]

(* A cross-table assertion: triggered by ANY change to any referenced
   table; the condition re-evaluates the (negated) invariant against
   the current state.  SQL semantics: the assertion is violated only
   when the predicate is definitely false, so the rollback condition is
   [not (predicate)]. *)
let compile_assertion ~name predicate =
  let tables = Ast.base_tables_of_expr predicate in
  if tables = [] then
    Relational.Errors.semantic
      "assertion %S references no table; nothing can ever re-check it" name;
  let preds =
    List.concat_map
      (fun t ->
        [ Ast.Tp_inserted t; Ast.Tp_deleted t; Ast.Tp_updated (t, None) ])
      tables
  in
  [ rule name preds (Some (Ast.Not predicate)) Ast.Act_rollback ]

let compile constraint_ =
  let name = name_of constraint_ in
  match constraint_ with
  | Not_null { table; column } -> compile_not_null ~name table column
  | Unique { table; columns } -> compile_unique ~name table columns
  | Foreign_key { child; child_column; parent; parent_column; on_delete } ->
    compile_foreign_key ~name child child_column parent parent_column on_delete
  | Check { table; predicate } -> compile_check ~name table predicate
  | Assertion { assertion_name = _; predicate } -> compile_assertion ~name predicate

(* Translate the DDL constraints of a CREATE TABLE statement into
   high-level constraints.  Storage-level NOT NULL is enforced by the
   schema itself, so it is not compiled into a rule here; everything
   else becomes rules.  The result also carries priority pairs making
   repairing rules run before checking rules. *)
let of_create_table (ct : Ast.create_table) =
  let table = ct.Ast.ct_name in
  let per_column =
    List.concat_map
      (fun cd ->
        List.filter_map
          (fun c ->
            match c with
            | Ast.C_not_null | Ast.C_default _ -> None
            | Ast.C_primary_key | Ast.C_unique ->
              Some (Unique { table; columns = [ cd.Ast.cd_name ] })
            | Ast.C_references (parent, parent_col) ->
              Some
                (Foreign_key
                   {
                     child = table;
                     child_column = cd.Ast.cd_name;
                     parent;
                     parent_column =
                       Option.value parent_col ~default:cd.Ast.cd_name;
                     on_delete = `Restrict;
                   })
            | Ast.C_check e -> Some (Check { table; predicate = e }))
          cd.Ast.cd_constraints)
      ct.Ast.ct_columns
  in
  let table_level =
    List.map
      (fun c ->
        match c with
        | Ast.T_primary_key columns | Ast.T_unique columns ->
          Unique { table; columns }
        | Ast.T_foreign_key { columns; parent; parent_columns; on_delete } -> (
          match columns, parent_columns with
          | [ child_column ], None ->
            Foreign_key
              { child = table; child_column; parent;
                parent_column = child_column; on_delete }
          | [ child_column ], Some [ parent_column ] ->
            Foreign_key
              { child = table; child_column; parent; parent_column; on_delete }
          | _ ->
            Relational.Errors.semantic
              "multi-column foreign keys are not supported (table %S)" table)
        | Ast.T_check e -> Check { table; predicate = e })
      ct.Ast.ct_constraints
  in
  per_column @ table_level

(* Priority pairs so that repairing rules act before their checking
   rule considers the state. *)
let priority_pairs constraint_ =
  let name = name_of constraint_ in
  match constraint_ with
  | Foreign_key { on_delete = `Cascade; _ } ->
    [ (name ^ "_cascade", name ^ "_check") ]
  | Foreign_key { on_delete = `Set_null; _ } ->
    [ (name ^ "_setnull", name ^ "_check") ]
  | Not_null _ | Unique _ | Check _ | Assertion _
  | Foreign_key { on_delete = `Restrict; _ } ->
    []

(** The higher-level integrity-constraint facility the paper points to
    in Section 6 (the [CW90] direction): declarative constraints are
    compiled into set-oriented production rules that maintain them.

    Compilation styles:
    - NOT NULL, UNIQUE / PRIMARY KEY, CHECK and the restricting side of
      foreign keys compile to rollback rules ("abort" repair);
    - [ON DELETE CASCADE] / [SET NULL] compile to repairing rules — the
      cascade rule is exactly the paper's Example 3.1 — with priority
      pairs making repair run before the check. *)

module Ast = Sqlf.Ast

type t =
  | Not_null of { table : string; column : string }
  | Unique of { table : string; columns : string list }
  | Foreign_key of {
      child : string;
      child_column : string;
      parent : string;
      parent_column : string;
      on_delete : [ `Cascade | `Restrict | `Set_null ];
    }
  | Check of { table : string; predicate : Ast.expr }
  | Assertion of { assertion_name : string; predicate : Ast.expr }
      (** A cross-table invariant (SQL assertion style): compiled to a
          rollback rule triggered by any change to any table the
          predicate references. *)

val name_of : t -> string
(** Deterministic rule-name stem for a constraint (e.g.
    [nn_emp_salary], [fk_emp_dept_no_dept]). *)

val assertion_rule_name : string -> string
(** The rule name an assertion compiles to, from the assertion name
    alone — DROP ASSERTION uses it to find the rule without
    re-stating the predicate. *)

val compile : t -> Ast.rule_def list
(** The production rules maintaining the constraint.  Multi-column
    foreign keys are rejected. *)

val of_create_table : Ast.create_table -> t list
(** Translate the DDL constraints of a CREATE TABLE statement.
    Column-level NOT NULL is enforced by the schema itself and is not
    compiled into a rule. *)

val priority_pairs : t -> (string * string) list
(** (high, low) priority declarations accompanying {!compile}'s rules. *)

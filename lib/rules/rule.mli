(** Production-rule catalog entries.

    A rule wraps its definition (paper Section 3 syntax) with
    engine bookkeeping: creation sequence (the deterministic selection
    tie-breaker) and activation state.  Construction validates the
    Section 3 syntactic restriction that conditions and actions may
    only reference transition tables corresponding to the rule's basic
    transition predicates. *)

module Ast = Sqlf.Ast

(** Cached compiled forms of the condition and action block (see
    {!Sqlf.Compile}), each keyed by the engine's catalog generation;
    the engine fills and invalidates these.  Mutable and shared by
    copies of the rule value, so the cache survives activation
    toggles. *)
type compiled_forms = {
  mutable cf_cond : (int * Sqlf.Compile.cpred) option;
  mutable cf_action : (int * Sqlf.Dml.cop list) option;
}

type t = {
  name : string;
  def : Ast.rule_def;
  seq : int;  (** creation order; the default selection order *)
  mutable active : bool;
      (** mutable so activation toggles update the shared catalog entry
          in place *)
  compiled : compiled_forms;
}

val validate_transition_references : Ast.rule_def -> unit
(** Raises [Invalid_transition_reference] if the condition or action
    references a transition table not licensed by the rule's transition
    predicates. *)

val create : seq:int -> Ast.rule_def -> t
(** Validates the definition; raises on an empty transition-predicate
    list or an illegal transition-table reference. *)

val trans_preds : t -> Ast.basic_trans_pred list

val relevant_tables : t -> string list
(** The tables of the rule's basic transition predicates — the only
    tables its transition information can ever mention (Section 3's
    restriction), enabling the Section 4.3 pruning optimization. *)

val relevant : t -> string -> bool
val condition : t -> Ast.expr option
val action : t -> Ast.action
val is_rollback : t -> bool
val pp : Format.formatter -> t -> unit

(** The set-oriented rule execution engine: the semantics of paper
    Section 4 and the algorithm of Figure 1.

    A transaction consists of one externally-generated operation block
    followed by rule processing just before commit.  Rule processing
    repeatedly selects a triggered rule whose condition holds and
    executes its action; the acting rule's transition information
    restarts from its own transition while every other rule's is
    composed with the new effect ([init-trans-info] /
    [modify-trans-info]).  A [rollback] action restores the
    transaction's start state.

    Section 5.3 rule triggering points are supported: a transaction may
    interleave several externally-generated operation sequences with
    explicit {!process_rules} calls; each call completes the current
    external transition, processes rules to quiescence, and starts a
    new transition.  {!execute_block} packages the paper's default
    one-block-one-transaction behaviour. *)

open Relational
module Ast = Sqlf.Ast
module Eval = Sqlf.Eval

type config = {
  max_steps : int;
      (** Upper bound on rule-action executions per transaction: the
          run-time guard the paper suggests (Section 4.1, footnote 7)
          against divergent rule sets.  Exceeding it rolls back and
          raises [Rule_limit_exceeded]. *)
  strategy : Selection.strategy;
  track_selects : bool;
      (** Section 5.1: maintain the [S] effect component so rules can
          be triggered by data retrieval. *)
  optimize : bool;
      (** Uncorrelated-subquery caching in the evaluator. *)
  prune_info : bool;
      (** Keep, per rule, only the transition information on tables its
          predicates mention (the Section 4.3 optimization remark);
          semantically invisible. *)
  rule_index : bool;
      (** Consult the {!Rule_index} discrimination index so each
          transition initializes, extends and scans only rules
          registered on the touched (table, op, column) keys — O(matching
          rules) per transition.  [false] is the literal Figure 1 linear
          scan over the whole catalog, retained as a differential
          oracle; semantically invisible either way. *)
}

val default_config : config
(** 10000 steps, creation-order selection, no select tracking,
    optimizations and the discrimination index on. *)

type outcome = Committed | Rolled_back

type stats = {
  mutable transactions : int;
  mutable transitions : int;  (** external + rule-generated *)
  mutable rule_firings : int;  (** actions executed *)
  mutable conditions_evaluated : int;
  mutable rollbacks : int;
      (** rule-requested rollbacks and explicit {!rollback_txn} calls *)
  mutable aborts : int;
      (** transactions undone because an error was raised mid-flight *)
  mutable seq_scans : int;
      (** base-table accesses answered by a full scan *)
  mutable index_probes : int;
      (** base-table accesses answered by an index probe *)
  mutable range_probes : int;
      (** base-table accesses answered by an ordered-index range probe *)
  mutable hash_join_builds : int;
      (** hash-join build sides constructed by the join executor *)
  mutable hash_join_probes : int;
      (** probes into built join tables (one per partial row) *)
  mutable candidates_considered : int;
      (** rules examined for triggering across candidate scans *)
  mutable rules_skipped : int;
      (** rules the discrimination index excluded from candidate scans
          (always 0 under the linear-scan oracle) *)
  mutable stmt_cache_hits : int;
      (** statement/prepared plans served without recompiling *)
  mutable stmt_cache_misses : int;  (** first-time statement compilations *)
  mutable stmt_cache_invalidations : int;
      (** cached plans discarded because the DDL generation or a planner
          switch moved since compilation *)
}

(** One step of an execution trace (Section 6 tooling: understanding
    what rules did during a transaction). *)
type event =
  | Ev_external of { effect_size : int }
      (** an external transition completed and rule processing began *)
  | Ev_considered of { rule : string; condition_held : bool }
  | Ev_fired of { rule : string; effect_size : int }
  | Ev_rollback of { rule : string }
  | Ev_abort of { reason : string }
      (** an error aborted the transaction; all its effects were undone
          and the exact transaction-start state restored *)
  | Ev_quiescent

(** Immutable snapshot of one rule's accumulated metrics (Section 6
    tooling).  Counts are always maintained; the wall-time fields stay
    [0.] until a clock is installed with {!set_clock}. *)
type rule_report_row = {
  rr_rule : string;
  rr_considered : int;  (** times selected for consideration *)
  rr_fired : int;  (** times the action ran *)
  rr_cond_seconds : float;  (** cumulative condition-evaluation time *)
  rr_action_seconds : float;  (** cumulative action time *)
  rr_effect_tuples : int;  (** cumulative size of the action effects *)
}

type t

(** What a commit hook observes: the state the transaction started
    from, the state it commits, and the composite net effect connecting
    them (external blocks and rule firings already folded together via
    effect composition, Definition 2.1). *)
type txn_log = {
  txl_before : Database.t;
  txl_after : Database.t;
  txl_effect : Effect.t;
}

val create : ?config:config -> Database.t -> t
val database : t -> Database.t

val fork : t -> t
(** A session engine for the concurrent server: an independent
    transaction context (fresh transaction state, stats, metrics,
    traces) over the same committed database state, sharing the rule
    catalog, priorities, discrimination index, procedures, config and
    selection clock.  The persistent data structures make the sharing
    copy-free.  A fork must not execute DDL (rule DDL would mutate the
    shared discrimination index behind the parent's back) — the server
    keeps DDL on the parent engine and forks sessions from committed
    snapshots only.  Raises [Transaction_error] inside a
    transaction. *)

val transition_start : t -> Database.t
(** The state at the start of the current external transition (equal to
    the current database outside a transaction and after an abort or
    rollback — never a discarded snapshot).  Exposed for tooling and
    the exception-safety tests. *)

val stats : t -> stats
val in_transaction : t -> bool

val set_tracing : t -> bool -> unit
(** Enable per-transaction execution traces (off by default). *)

val set_clock : t -> (unit -> float) option -> unit
(** Install (or remove) the wall-clock hook — monotonic seconds, e.g.
    [Unix.gettimeofday] — used to timestamp trace events and accumulate
    per-rule condition/action times.  [None] (the default) disables all
    timing: no clock reads happen anywhere on the execution path. *)

val has_clock : t -> bool

val trace : t -> event list
(** The trace of the most recent transaction, oldest event first. *)

val timed_trace : t -> (float option * event) list
(** Like {!trace}, with each event's clock stamp ([None] when no clock
    was installed at record time). *)

val trace_jsonl : t -> string
(** The trace rendered as JSON Lines, one object per event, oldest
    first: [{"seq":N,"t":...,"event":"fired","rule":...,...}].  The
    ["t"] field is omitted when no clock was installed, making
    clock-off traces byte-deterministic. *)

val rule_report : t -> rule_report_row list
(** Accumulated per-rule metrics, in rule-creation order.  Metrics
    persist across transactions (they are lifetime counters, like
    {!stats}); dropped rules disappear from the report. *)

val pp_event : Format.formatter -> event -> unit

(** {2 Catalog} *)

val create_rule : t -> Ast.rule_def -> Rule.t
(** Validates the definition (including that transition predicates name
    existing tables/columns) and installs the rule.  A rule defined
    mid-transaction starts with empty transition information. *)

val drop_rule : t -> string -> unit
val set_rule_active : t -> string -> bool -> unit
val find_rule : t -> string -> Rule.t option
val get_rule : t -> string -> Rule.t

val rules : t -> Rule.t list
(** The catalog in creation order (materialized: O(n)). *)

val rules_rev : t -> Rule.t list
(** The catalog newest-first — the engine's internal representation,
    shared (not copied), so [create_rule] is observably O(1): the new
    list's tail is physically the previous list.  Exposed for the
    structural bulk-creation tests. *)

val priorities : t -> Priority.t

val declare_priority : t -> high:string -> low:string -> unit
(** Both rules must exist; raises [Priority_cycle] on a cycle. *)

val register_procedure : t -> string -> Procedures.procedure -> unit

(** {2 Transactions} *)

val begin_txn : t -> unit
val submit_ops : t -> Ast.op list -> Eval.relation list
(** Execute externally-generated operations inside the open
    transaction, extending the current external transition.  Returns
    the result rows of any select operations.

    Exception safety (paper Section 2.1: blocks execute indivisibly):
    if any operation raises, the database is restored to its state at
    the start of the block before the error propagates — the block has
    no effect, nothing reaches the pending transition, and the
    transaction remains open. *)

val process_rules : t -> outcome
(** Section 5.3 triggering point: complete the current external
    transition, run rules to quiescence, and (on success) begin a new
    transition within the same transaction.  [Rolled_back] means a
    rollback action fired and the whole transaction was undone.

    Exception safety: any error raised during rule processing aborts
    the whole transaction — the database, pending effect, transition
    information and transition-start snapshot are restored to the
    transaction-start state, an {!Ev_abort} event is recorded and the
    abort counted in {!stats} — before the error is re-raised. *)

val commit : t -> outcome
(** Process rules, then commit and close the transaction.  Shares the
    abort-on-error contract of {!process_rules}: an error anywhere
    before the transaction closes restores the exact transaction-start
    state. *)

val rollback_txn : t -> unit
(** Abort the open transaction, restoring its start state. *)

val execute_block : t -> Ast.op list -> outcome * Eval.relation list
(** The paper's default behaviour: one externally-generated operation
    block executed as one transaction with rule processing before
    commit.  Any error aborts the transaction — restoring the exact
    pre-transaction state and recording the abort — before
    re-raising. *)

(** {2 Queries and DDL} *)

val query : t -> Ast.select -> Eval.relation
(** Evaluate a query outside any rule context (no transition tables). *)

(** {2 Statement cache and prepared statements}

    The statement cache maps canonical statement text to a compiled
    plan, keyed (like compiled rule forms) on the DDL generation and
    the planner switches in force at compile time.  A hit serves the
    plan without recompiling; a stale entry counts as an invalidation
    and recompiles in place.  Prepared statements (PREPARE name AS
    <op>) reuse the same validity discipline in a per-name registry.
    Both structures are engine-local and start empty on {!fork}, which
    gives each server session its own statement namespace and drops
    both when the session ends. *)

module Dml = Sqlf.Dml

val cached_cop : t -> Ast.op -> Dml.cop
(** The compiled plan for [op], served from the statement cache when
    valid, (re)compiled and cached otherwise.  Updates the
    [stmt_cache_*] counters in {!stats}. *)

val stmt_cache_lookup : t -> Ast.op -> [ `Hit | `Stale | `Miss ]
(** Non-mutating probe (for EXPLAIN): what would executing this
    statement find in the cache right now? *)

val stmt_cache_size : t -> int
val stmt_cache_clear : t -> unit

type prepared
(** A prepared statement: parsed once, compiled lazily against the
    validity key, bound per EXECUTE. *)

val prepare : t -> name:string -> Ast.op -> unit
(** Register [op] under [name].  Raises [Duplicate_prepared] if the
    name is taken. *)

val find_prepared : t -> string -> prepared
(** Raises [Unknown_prepared]. *)

val has_prepared : t -> string -> bool

val deallocate : t -> string option -> unit
(** [Some name] drops one prepared statement (raises
    [Unknown_prepared]); [None] drops them all (DEALLOCATE ALL). *)

val prepared_names : t -> string list
(** Registered names, sorted. *)

val prepared_nparams : prepared -> int
val prepared_op : prepared -> Ast.op

val prepared_cop : t -> prepared -> Dml.cop
(** The prepared statement's plan, compiled at most once per validity
    key — same counters as {!cached_cop}. *)

val bind_params : prepared -> Value.t list -> Value.t array
(** Check EXECUTE argument arity against the statement's parameter
    count (raises [Prepared_arity]) and build the parameter frame. *)

val submit_cops : t -> ?params:Value.t array -> Dml.cop list -> Eval.relation list
(** Compiled counterpart of {!submit_ops}: run cached/prepared plans
    inside the open transaction, with the same indivisibility
    contract. *)

val execute_block_cops :
  t -> ?params:Value.t array -> Dml.cop list -> outcome * Eval.relation list
(** Compiled counterpart of {!execute_block}. *)

val query_cop : t -> ?params:Value.t array -> Dml.cop -> Eval.relation
(** Compiled counterpart of {!query} for a select plan.  The caller
    guarantees the compiled operation is a select. *)

(** {2 EXPLAIN} *)

val explain_op : t -> Ast.op -> Eval.source_plan list
(** Plan a DML operation without executing it, using exactly the
    executor's access-path decision procedure (see {!Eval.plan_op}).
    Planning never mutates the database and does not perturb the
    scan/probe statistics. *)

val rule_index_keys : t -> string -> string list
(** The discrimination-index keys the rule registers under, rendered
    ([insert(t)], [update(t.c)], …) for EXPLAIN RULE.  Derived from the
    definition, so also reported for deactivated rules (which are
    unregistered until reactivated).  Raises [Unknown_rule]. *)

val explain_rule : t -> string -> (string * Eval.source_plan list) list
(** Plan a rule's condition as it would be evaluated at a rule
    processing point: one entry per outermost embedded select of the
    condition, paired with its rendered source text.  Transition tables
    are taken as empty (no transition has occurred) while base tables
    keep their current contents.  Empty for a condition-less rule;
    raises [Unknown_rule] for an unknown name. *)

val create_table : t -> Schema.table -> unit
(** DDL applies outside transactions only. *)

val drop_table : t -> string -> unit
(** Rejected while rules are triggered by the table. *)

val create_index :
  t -> ix_name:string -> table:string -> column:string -> kind:Index.kind ->
  unit
(** Build a secondary index over a column — [`Hash] for equality/IN
    probes, [`Ordered] for those plus range and prefix-LIKE probes.
    Like all DDL this is rejected inside a transaction, which keeps the
    index set uniform across the pre-transition states the engine
    retains. *)

val drop_index : t -> string -> unit
(** Index names are database-wide, so only the name is needed. *)

(** {2 Durability hooks}

    The engine has no knowledge of files or logs; a durability layer
    attaches through three narrow seams: a commit hook observing every
    committed transition, a marshal-safe image of the quiescent engine
    for checkpoints, and state restoration for WAL replay. *)

val set_commit_hook : t -> (txn_log -> unit) option -> unit
(** Install (or remove) the commit hook.  It runs at the commit point —
    after rule processing succeeded and the {!Fault.Commit_point} site
    passed, while the transaction-start snapshot is still held — and is
    the write-ahead seam: if the hook raises (a WAL append failure),
    the transaction aborts and the exact start state is restored, so a
    transition is in memory iff its log record was durably appended
    (modulo a crash between fsync and return, which recovery resolves
    in favour of the log). *)

val ddl_generation : t -> int
(** The catalog generation counter (bumped by every DDL statement);
    recorded in checkpoints. *)

(** Marshal-safe image of a quiescent engine: the database state plus
    the rule catalog as data ((definition, seq, active) triples and
    priority pairs — compiled forms are process-local and rebuilt
    lazily after restoration). *)
type durable_image = {
  di_db : Database.t;
  di_rules : (Ast.rule_def * int * bool) list;
  di_priorities : (string * string) list;
  di_seq : int;
  di_ddl_gen : int;
}

val durable_image : t -> durable_image
(** Raises [Transaction_error] inside a transaction: checkpoints cover
    committed states only. *)

val of_durable_image : ?config:config -> durable_image -> t
(** Rebuild an engine from a checkpoint image.  Statistics, metrics and
    traces start empty; registered procedures must be re-registered by
    the host (they are code, not data). *)

val restore_database : t -> Database.t -> unit
(** Replace the engine's database state (and transition-start snapshot)
    outside any transaction — the WAL-replay primitive.  Raises
    [Transaction_error] inside a transaction. *)

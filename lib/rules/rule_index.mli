(** Rule discrimination index.

    Rules are registered under (table, operation, column) keys derived
    from their basic transition predicates; {!matching} maps a
    transition effect to the set of rule names with at least one
    touched key — exactly the rules the effect could trigger
    ({!Effect.satisfies_any} over each rule's predicates;
    property-tested), so the engine's per-transition work scales with
    matching rules instead of the whole catalog.

    The index carries the engine's DDL generation: rule DDL maintains
    it incrementally, table/index DDL bumps the engine counter and the
    engine rebuilds on the mismatch. *)

module Str_set :
  Set.S with type elt = string and type t = Set.Make(String).t

type op = Ins | Del | Upd | Sel

type key = { k_table : string; k_op : op; k_col : string option }
(** [k_col] is meaningful for [Upd]/[Sel] only: [None] is the wildcard
    registration (an [updated T] predicate with no column matches an
    update of any column of [T]). *)

val keys_of_rule : Rule.t -> key list
(** The rule's registration keys: one per basic transition predicate,
    deduplicated, in a stable order. *)

val key_to_string : key -> string
(** Rendered as [insert(t)], [delete(t)], [update(t.c)] or
    [select(t.c)] — with ["*"] in the column position for wildcard
    registrations — the form EXPLAIN RULE reports. *)

type t

val create : generation:int -> unit -> t
val generation : t -> int

val registered : t -> int
(** Number of rules currently registered (active rules only, under the
    engine's maintenance discipline). *)

val add : t -> Rule.t -> unit
val remove : t -> Rule.t -> unit

val rebuild : generation:int -> Rule.t list -> t
(** A fresh index over [rules], stamped with [generation]. *)

val matching : t -> Effect.t -> Str_set.t
(** Names of every registered rule with at least one key touched by the
    effect.  Order-independent (a set); sound and complete with respect
    to per-effect triggering: [Str_set.mem r.name (matching idx e)] iff
    [Effect.satisfies_any e (Rule.trans_preds r)] for registered
    rules. *)

(* Production rule catalog entries.

   A rule wraps its definition (Section 3 syntax) with bookkeeping used
   by the engine: creation sequence (the deterministic tie-breaker for
   rule selection), activation state, and validation of the Section 3
   syntactic restriction that conditions and actions may only reference
   transition tables corresponding to the rule's basic transition
   predicates. *)

open Relational
module Ast = Sqlf.Ast
module Pretty = Sqlf.Pretty

(* Compiled forms of the rule's condition and action block, cached so
   repeated firings (cascades especially) re-enter closures instead of
   re-walking the AST.  A compiled form is valid only for the catalog
   and planner switches it was compiled against, so each entry carries
   the engine's generation key; the engine recompiles on mismatch.
   The subrecord is mutable and shared structurally by any copies of
   the rule value, so the cache survives deactivate/activate cycles. *)
type compiled_forms = {
  mutable cf_cond : (int * Sqlf.Compile.cpred) option;
  mutable cf_action : (int * Sqlf.Dml.cop list) option;
}

type t = {
  name : string;
  def : Ast.rule_def;
  seq : int; (* creation order; also the default selection order *)
  mutable active : bool;
      (* mutable so activation toggles update the catalog entry in
         place — the engine's by-name map, creation-order list and
         discrimination index all share the same value *)
  compiled : compiled_forms;
}

(* Section 3: "our syntax does not enforce the restriction that a
   rule's condition may only refer to transition tables corresponding
   to its basic transition predicates.  This restriction is syntactic,
   however, therefore easily checked."  We check it at definition
   time. *)
let validate_transition_references (def : Ast.rule_def) =
  let referenced = Ast.trans_tables_of_rule def in
  List.iter
    (fun tt ->
      let licensed =
        List.exists (Ast.trans_table_matches_pred tt) def.Ast.trans_preds
      in
      if not licensed then
        Errors.raise_error
          (Errors.Invalid_transition_reference (Pretty.trans_table_str tt)))
    referenced

let create ~seq (def : Ast.rule_def) =
  if def.Ast.trans_preds = [] then
    Errors.semantic "rule %S has no transition predicate" def.Ast.rule_name;
  validate_transition_references def;
  {
    name = def.Ast.rule_name;
    def;
    seq;
    active = true;
    compiled = { cf_cond = None; cf_action = None };
  }

let trans_preds r = r.def.Ast.trans_preds

(* The tables a rule's transition information can ever mention: the
   tables of its basic transition predicates.  The Section 3 syntactic
   restriction guarantees its transition-table references stay within
   this set, so per-rule information may be pruned to it (the paper's
   Section 4.3 optimization remark). *)
let relevant_tables r =
  List.fold_left
    (fun acc pred ->
      let t =
        match pred with
        | Ast.Tp_inserted t | Ast.Tp_deleted t
        | Ast.Tp_updated (t, _) | Ast.Tp_selected (t, _) -> t
      in
      if List.exists (String.equal t) acc then acc else t :: acc)
    [] r.def.Ast.trans_preds

let relevant r table = List.exists (String.equal table) (relevant_tables r)
let condition r = r.def.Ast.condition
let action r = r.def.Ast.action
let is_rollback r = match r.def.Ast.action with Ast.Act_rollback -> true | _ -> false

let pp ppf r =
  Fmt.pf ppf "%s%s" (Pretty.rule_def_str r.def)
    (if r.active then "" else " -- (deactivated)")

(* The set-oriented rule execution engine: the semantics of Section 4
   and the algorithm of Figure 1.

   A transaction consists of one externally-generated operation block
   followed by rule processing just before commit.  Rule processing
   repeatedly selects a triggered rule whose condition holds and
   executes its action; the acting rule's transition information
   restarts from its own transition while every other rule's
   information is composed with the new effect (Figure 1's
   init-trans-info / modify-trans-info).  A rollback action restores
   the transaction's start state.

   Section 5.3's rule triggering points are supported: a transaction
   may interleave several externally-generated operation sequences with
   explicit [process_rules] calls; each call completes the current
   external transition, processes rules to quiescence, and starts a new
   transition.  [execute_block] packages the paper's default
   one-block-one-transaction behaviour. *)

open Relational
module Ast = Sqlf.Ast
module Dml = Sqlf.Dml
module Eval = Sqlf.Eval
module Compile = Sqlf.Compile
module Pretty = Sqlf.Pretty
module Str_map = Map.Make (String)
module Str_set = Set.Make (String)

type config = {
  max_steps : int;
      (* upper bound on rule-action executions per transaction; the
         run-time guard the paper suggests for divergent rule sets *)
  strategy : Selection.strategy;
  track_selects : bool; (* Section 5.1: maintain the S component *)
  optimize : bool; (* uncorrelated-subquery caching in the evaluator *)
  prune_info : bool;
      (* keep, per rule, only the transition information on tables its
         predicates mention (the Section 4.3 optimization remark) *)
  rule_index : bool;
      (* consult the discrimination index so each transition touches
         only rules registered on the affected (table, op, column)
         keys; off = the literal Figure 1 linear scan over the whole
         catalog, retained as a differential oracle *)
}

let default_config =
  {
    max_steps = 10_000;
    strategy = Selection.Creation_order;
    track_selects = false;
    optimize = true;
    prune_info = true;
    rule_index = true;
  }

type outcome = Committed | Rolled_back

type stats = {
  mutable transactions : int;
  mutable transitions : int; (* external + rule-generated *)
  mutable rule_firings : int; (* actions executed *)
  mutable conditions_evaluated : int;
  mutable rollbacks : int; (* rule-requested rollbacks and rollback_txn *)
  mutable aborts : int; (* error-driven transaction aborts *)
  mutable seq_scans : int; (* base-table accesses answered by scan *)
  mutable index_probes : int; (* base-table accesses answered by index probe *)
  mutable range_probes : int;
      (* base-table accesses answered by an ordered-index range probe *)
  mutable hash_join_builds : int; (* hash-join build sides constructed *)
  mutable hash_join_probes : int; (* probes into built join tables *)
  mutable candidates_considered : int;
      (* rules examined for triggering across candidate scans *)
  mutable rules_skipped : int;
      (* rules the discrimination index excluded from candidate scans;
         always 0 under the linear-scan oracle *)
  mutable stmt_cache_hits : int;
      (* statement/prepared plans served without recompiling *)
  mutable stmt_cache_misses : int; (* first-time compilations *)
  mutable stmt_cache_invalidations : int;
      (* cached plans discarded because the DDL generation or a planner
         switch moved since compilation *)
}

(* Execution trace: what happened during rule processing, for the
   rule-programmer tooling the paper calls for in Section 6. *)
type event =
  | Ev_external of { effect_size : int }
      (* an external transition was completed and rules initialized *)
  | Ev_considered of { rule : string; condition_held : bool }
  | Ev_fired of { rule : string; effect_size : int }
  | Ev_rollback of { rule : string }
  | Ev_abort of { reason : string }
      (* an error aborted the transaction; its effects were undone *)
  | Ev_quiescent

(* Per-rule metrics (Section 6 tooling): how often a rule was selected
   for consideration, how often its action ran, how much wall time its
   condition evaluations and actions consumed, and the cumulative size
   of its actions' effects.  Counts are always maintained; wall times
   only when a clock hook is installed, so the default configuration
   pays no timing cost. *)
type metrics = {
  mutable m_considered : int;
  mutable m_fired : int;
  mutable m_cond_seconds : float;
  mutable m_action_seconds : float;
  mutable m_effect_tuples : int;
}

type rule_report_row = {
  rr_rule : string;
  rr_considered : int;
  rr_fired : int;
  rr_cond_seconds : float;
  rr_action_seconds : float;
  rr_effect_tuples : int;
}

(* What a commit hook sees: the state the transaction started from, the
   state it commits, and the composite net effect connecting them —
   rule firings already folded in.  The WAL layer derives its physical
   record from this; the engine itself has no durability knowledge. *)
type txn_log = {
  txl_before : Database.t;
  txl_after : Database.t;
  txl_effect : Effect.t;
}

(* The transaction-scoped state, split out of the engine record so the
   transition loop's session state is one value: [begin_txn] resets it,
   the abort path restores it in one place, and a server session fork
   starts with a fresh copy while sharing the catalog. *)
type txn_state = {
  mutable txn_start : Database.t option; (* Some while a transaction is open *)
  mutable trans_start : Database.t; (* state at current external transition start *)
  mutable pending : Effect.t; (* composite effect of the unprocessed external transition *)
  mutable txn_effect : Effect.t;
      (* composite effect of the whole transaction so far — external
         blocks and rule firings alike — maintained incrementally so
         the commit hook (WAL logging) never diffs database states *)
  mutable infos : Trans_info.t Str_map.t;
  mutable considered0 : int Str_map.t;
      (* [last_considered] at transaction start, restored on abort so a
         faulted-then-retried transaction sees the same selection state
         as a fault-free run under every strategy *)
}

let fresh_txn db =
  {
    txn_start = None;
    trans_start = db;
    pending = Effect.empty;
    txn_effect = Effect.empty;
    infos = Str_map.empty;
    considered0 = Str_map.empty;
  }

(* A prepared statement (PREPARE name AS <op>): parsed once, compiled
   lazily against the validity key, bound per EXECUTE.  The registry
   is engine-local and starts empty on [fork], which is what gives a
   server session its own statement namespace. *)
type prepared = {
  pr_name : string;
  pr_op : Ast.op;
  pr_nparams : int;
  mutable pr_compiled : (int * Dml.cop) option; (* (validity key, plan) *)
}

type t = {
  mutable db : Database.t;
  mutable ddl_gen : int;
      (* bumped by every DDL statement; compiled rule forms are keyed
         on it (plus the planner switches) so schema or index changes
         invalidate them *)
  mutable rules_rev : Rule.t list;
      (* newest first, so CREATE RULE is O(1): n creations build the
         catalog in O(n) instead of the O(n²) of appending *)
  mutable rules_by_name : Rule.t Str_map.t;
  mutable rule_count : int;
  mutable rule_index : Rule_index.t;
      (* discrimination index over the active rules, maintained
         incrementally on rule DDL; [live_index] rebuilds it when its
         generation disagrees with [ddl_gen] (table/index DDL) *)
  mutable priorities : Priority.t;
  txn : txn_state;
  mutable commit_hook : (txn_log -> unit) option;
  mutable seq : int;
  clock : Selection.clock;
  mutable last_considered : int Str_map.t;
  config : config;
  procedures : Procedures.registry;
  stats : stats;
  mutable tracing : bool;
  mutable trace : (float option * event) list;
      (* newest first while accumulating; stamped with the wall clock
         when one is installed *)
  mutable wall_clock : (unit -> float) option;
      (* monotonic-seconds hook for trace timestamps and rule timing;
         [None] (the default) disables all timing *)
  rule_metrics : (string, metrics) Hashtbl.t;
  stmt_cache : (string, int * Dml.cop) Hashtbl.t;
      (* canonical SQL text -> (validity key, compiled plan): repeated
         unprepared statements reuse compiled plans too *)
  prepared : (string, prepared) Hashtbl.t;
}

let log_src = Logs.Src.create "sopr.engine" ~doc:"rule engine execution"

module Log = (val Logs.src_log log_src : Logs.LOG)

let fresh_stats () =
  {
    transactions = 0;
    transitions = 0;
    rule_firings = 0;
    conditions_evaluated = 0;
    rollbacks = 0;
    aborts = 0;
    seq_scans = 0;
    index_probes = 0;
    range_probes = 0;
    hash_join_builds = 0;
    hash_join_probes = 0;
    candidates_considered = 0;
    rules_skipped = 0;
    stmt_cache_hits = 0;
    stmt_cache_misses = 0;
    stmt_cache_invalidations = 0;
  }

let create ?(config = default_config) db =
  {
    db;
    ddl_gen = 0;
    rules_rev = [];
    rules_by_name = Str_map.empty;
    rule_count = 0;
    rule_index = Rule_index.create ~generation:0 ();
    priorities = Priority.empty;
    txn = fresh_txn db;
    commit_hook = None;
    seq = 0;
    clock = Selection.make_clock ();
    last_considered = Str_map.empty;
    config;
    procedures = Procedures.create ();
    stats = fresh_stats ();
    tracing = false;
    trace = [];
    wall_clock = None;
    rule_metrics = Hashtbl.create 16;
    stmt_cache = Hashtbl.create 64;
    prepared = Hashtbl.create 16;
  }

(* A session engine for the concurrent server: an independent
   transaction context over the same committed state.  The rule catalog
   (rule values, priorities, discrimination index), procedures, config
   and selection clock are shared — persistent maps make the sharing
   safe for the catalog fields, and the mutable Rule.t compiled-form
   caches are write-once-per-generation (a race merely recompiles).
   Transaction state, stats, metrics and traces start fresh.  Forks
   must not execute DDL: rule DDL would mutate the *shared*
   discrimination index behind the parent's back.  The server keeps
   DDL on the parent and forks sessions from committed snapshots
   only. *)
let fork t =
  if Option.is_some t.txn.txn_start then
    Errors.raise_error
      (Errors.Transaction_error "cannot fork inside a transaction");
  {
    db = t.db;
    ddl_gen = t.ddl_gen;
    rules_rev = t.rules_rev;
    rules_by_name = t.rules_by_name;
    rule_count = t.rule_count;
    rule_index = t.rule_index;
    priorities = t.priorities;
    txn = fresh_txn t.db;
    commit_hook = None;
    seq = t.seq;
    clock = t.clock;
    last_considered = t.last_considered;
    config = t.config;
    procedures = t.procedures;
    stats = fresh_stats ();
    tracing = false;
    trace = [];
    wall_clock = None;
    rule_metrics = Hashtbl.create 16;
    (* fresh per fork: each server session gets its own statement
       namespace and plan cache, and dropping the fork drops both *)
    stmt_cache = Hashtbl.create 64;
    prepared = Hashtbl.create 16;
  }

let database t = t.db
let transition_start t = t.txn.trans_start
let stats t = t.stats
let ddl_generation t = t.ddl_gen
let set_commit_hook t hook = t.commit_hook <- hook

(* Access-path hooks for the evaluator: column metadata and index
   probes are served from the same database state the accompanying
   resolver reads (the snapshot at the start of the operation or
   condition evaluation), and every scan-vs-probe decision is counted
   in the engine statistics. *)
let access_for t db : Eval.access =
  {
    Eval.acc_cols =
      (fun ~table ->
        if Database.has_table db table then
          Some (Table.col_names (Database.table db table))
        else None);
    acc_probe =
      (fun ~table ~column values -> Database.probe db ~table ~column values);
    acc_range =
      (fun ~table ~column ~lower ~upper ->
        Database.range_probe db ~table ~column ~lower ~upper);
    acc_note =
      (fun ~table:_ -> function
        | `Seq_scan -> t.stats.seq_scans <- t.stats.seq_scans + 1
        | `Index_probe -> t.stats.index_probes <- t.stats.index_probes + 1
        | `Range_probe -> t.stats.range_probes <- t.stats.range_probes + 1
        | `Hash_join_build ->
          t.stats.hash_join_builds <- t.stats.hash_join_builds + 1
        | `Hash_join_probe ->
          t.stats.hash_join_probes <- t.stats.hash_join_probes + 1);
    acc_index =
      (fun ~table ~column ->
        List.find_map
          (fun (t', ix) ->
            if String.equal t' table && String.equal (Index.column ix) column
            then Some (Index.name ix)
            else None)
          (Database.indexes db));
    acc_count =
      (fun ~table ->
        if Database.has_table db table then
          Some (Table.cardinality (Database.table db table))
        else None);
    acc_stats = (fun ~table ~column -> Database.column_stats db ~table ~column);
  }
(* The validity key for compiled rule forms: a compiled condition or
   action is reusable only against the catalog it was compiled for and
   the planner switches in force at compile time (join-equivalence
   links and probe candidates are selected statically; the cost-model
   switch changes which candidate shapes are even collected). *)
let gen_key t =
  (t.ddl_gen * 8)
  + (if !Eval.predicate_pushdown then 4 else 0)
  + (if !Eval.join_optimization then 2 else 0)
  + if !Eval.cost_model then 1 else 0

(* Fetch (or build) the compiled form of a rule's condition. *)
let compiled_condition t (rule : Rule.t) cond =
  let key = gen_key t in
  let cf = rule.Rule.compiled in
  match cf.Rule.cf_cond with
  | Some (k, cp) when k = key -> cp
  | _ ->
    let cp = Compile.compile_predicate t.db cond in
    cf.Rule.cf_cond <- Some (key, cp);
    cp

(* Fetch (or build) the compiled form of a rule's action block, so a
   cascade's n-th firing re-enters closures instead of re-walking the
   AST. *)
let compiled_action t (rule : Rule.t) ops =
  let key = gen_key t in
  let cf = rule.Rule.compiled in
  match cf.Rule.cf_action with
  | Some (k, cops) when k = key -> cops
  | _ ->
    let cops = List.map (Dml.compile_op t.db) ops in
    cf.Rule.cf_action <- Some (key, cops);
    cops

(* {2 Statement cache and prepared statements}

   The statement cache maps canonical statement text to a compiled
   plan, keyed (like compiled rule forms) on [gen_key]: a hit serves
   the plan without recompiling; a stale entry — DDL generation or a
   planner switch moved — counts as an invalidation and recompiles in
   place.  Prepared statements reuse the same validity discipline but
   live in a separate per-name registry so DEALLOCATE and the server's
   per-session namespace have something to address. *)

let stmt_cache_max = 512
(* wholesale reset when the cache would exceed this; an LRU is not
   worth its bookkeeping for a cache this small *)

let cached_cop t (op : Ast.op) =
  let text = Pretty.op_str op in
  let key = gen_key t in
  match Hashtbl.find_opt t.stmt_cache text with
  | Some (k, cop) when k = key ->
    t.stats.stmt_cache_hits <- t.stats.stmt_cache_hits + 1;
    cop
  | Some _ ->
    t.stats.stmt_cache_invalidations <- t.stats.stmt_cache_invalidations + 1;
    let cop = Dml.compile_op t.db op in
    Hashtbl.replace t.stmt_cache text (key, cop);
    cop
  | None ->
    t.stats.stmt_cache_misses <- t.stats.stmt_cache_misses + 1;
    if Hashtbl.length t.stmt_cache >= stmt_cache_max then
      Hashtbl.reset t.stmt_cache;
    let cop = Dml.compile_op t.db op in
    Hashtbl.replace t.stmt_cache text (key, cop);
    cop

(* Non-mutating probe for EXPLAIN: what would executing this statement
   find in the cache right now? *)
let stmt_cache_lookup t (op : Ast.op) =
  match Hashtbl.find_opt t.stmt_cache (Pretty.op_str op) with
  | Some (k, _) when k = gen_key t -> `Hit
  | Some _ -> `Stale
  | None -> `Miss

let stmt_cache_size t = Hashtbl.length t.stmt_cache
let stmt_cache_clear t = Hashtbl.reset t.stmt_cache

let prepare t ~name (op : Ast.op) =
  if Hashtbl.mem t.prepared name then
    Errors.raise_error (Errors.Duplicate_prepared name);
  Hashtbl.replace t.prepared name
    {
      pr_name = name;
      pr_op = op;
      pr_nparams = Ast.param_count_op op;
      pr_compiled = None;
    }

let find_prepared t name =
  match Hashtbl.find_opt t.prepared name with
  | Some p -> p
  | None -> Errors.raise_error (Errors.Unknown_prepared name)

let has_prepared t name = Hashtbl.mem t.prepared name

let deallocate t = function
  | Some name ->
    if not (Hashtbl.mem t.prepared name) then
      Errors.raise_error (Errors.Unknown_prepared name);
    Hashtbl.remove t.prepared name
  | None -> Hashtbl.reset t.prepared

let prepared_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.prepared []
  |> List.sort String.compare

let prepared_nparams (p : prepared) = p.pr_nparams
let prepared_op (p : prepared) = p.pr_op

(* Fetch (or build) a prepared statement's plan — same validity
   discipline as [cached_cop], same counters. *)
let prepared_cop t (p : prepared) =
  let key = gen_key t in
  match p.pr_compiled with
  | Some (k, cop) when k = key ->
    t.stats.stmt_cache_hits <- t.stats.stmt_cache_hits + 1;
    cop
  | Some _ ->
    t.stats.stmt_cache_invalidations <- t.stats.stmt_cache_invalidations + 1;
    let cop = Dml.compile_op t.db p.pr_op in
    p.pr_compiled <- Some (key, cop);
    cop
  | None ->
    t.stats.stmt_cache_misses <- t.stats.stmt_cache_misses + 1;
    let cop = Dml.compile_op t.db p.pr_op in
    p.pr_compiled <- Some (key, cop);
    cop

let bind_params (p : prepared) (args : Value.t list) =
  let got = List.length args in
  if got <> p.pr_nparams then
    Errors.raise_error
      (Errors.Prepared_arity
         { name = p.pr_name; expected = p.pr_nparams; got });
  Array.of_list args

let in_transaction t = Option.is_some t.txn.txn_start
let set_tracing t on = t.tracing <- on
let set_clock t clock = t.wall_clock <- clock
let has_clock t = Option.is_some t.wall_clock
let trace t = List.rev_map snd t.trace
let timed_trace t = List.rev t.trace

let record t ev =
  if t.tracing then
    let stamp =
      match t.wall_clock with None -> None | Some now -> Some (now ())
    in
    t.trace <- (stamp, ev) :: t.trace

let metrics_for t name =
  match Hashtbl.find_opt t.rule_metrics name with
  | Some m -> m
  | None ->
    let m =
      {
        m_considered = 0;
        m_fired = 0;
        m_cond_seconds = 0.0;
        m_action_seconds = 0.0;
        m_effect_tuples = 0;
      }
    in
    Hashtbl.add t.rule_metrics name m;
    m

(* Time a thunk against the rule clock, charging the elapsed wall time
   through [charge] even when the thunk raises (a failing condition or
   action still consumed the time).  Without a clock this is just the
   call. *)
let timed t charge f =
  match t.wall_clock with
  | None -> f ()
  | Some now -> (
    let t0 = now () in
    match f () with
    | v ->
      charge (now () -. t0);
      v
    | exception e ->
      charge (now () -. t0);
      raise e)

let pp_event ppf = function
  | Ev_external { effect_size } ->
    Fmt.pf ppf "external transition (%d tuples affected)" effect_size
  | Ev_considered { rule; condition_held } ->
    Fmt.pf ppf "considered %s: condition %s" rule
      (if condition_held then "held" else "false")
  | Ev_fired { rule; effect_size } ->
    Fmt.pf ppf "fired %s (%d tuples affected)" rule effect_size
  | Ev_rollback { rule } -> Fmt.pf ppf "rollback by %s" rule
  | Ev_abort { reason } -> Fmt.pf ppf "transaction aborted: %s" reason
  | Ev_quiescent -> Fmt.string ppf "quiescent"

(* Report rows in rule-creation order, so the report is stable across
   runs regardless of hash-table iteration order.  Rules dropped since
   their metrics accumulated are omitted (drop_rule clears them). *)
let rule_report t =
  List.filter_map
    (fun r ->
      match Hashtbl.find_opt t.rule_metrics r.Rule.name with
      | None -> None
      | Some m ->
        Some
          {
            rr_rule = r.Rule.name;
            rr_considered = m.m_considered;
            rr_fired = m.m_fired;
            rr_cond_seconds = m.m_cond_seconds;
            rr_action_seconds = m.m_action_seconds;
            rr_effect_tuples = m.m_effect_tuples;
          })
    (List.rev t.rules_rev)

(* JSONL trace export: one JSON object per event, oldest first.  The
   encoder is hand-rolled (the toolchain has no JSON library) but emits
   standards-compliant output: strings are escaped, the timestamp field
   is omitted entirely when no clock is installed so traces taken with
   timing off are byte-deterministic. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let trace_jsonl t =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i (stamp, ev) ->
      Buffer.add_string buf (Printf.sprintf "{\"seq\":%d" i);
      (match stamp with
      | None -> ()
      | Some ts -> Buffer.add_string buf (Printf.sprintf ",\"t\":%.6f" ts));
      let field name value =
        Buffer.add_string buf (Printf.sprintf ",%s:%s" (json_string name) value)
      in
      (match ev with
      | Ev_external { effect_size } ->
        field "event" (json_string "external");
        field "effect_size" (string_of_int effect_size)
      | Ev_considered { rule; condition_held } ->
        field "event" (json_string "considered");
        field "rule" (json_string rule);
        field "condition_held" (string_of_bool condition_held)
      | Ev_fired { rule; effect_size } ->
        field "event" (json_string "fired");
        field "rule" (json_string rule);
        field "effect_size" (string_of_int effect_size)
      | Ev_rollback { rule } ->
        field "event" (json_string "rollback");
        field "rule" (json_string rule)
      | Ev_abort { reason } ->
        field "event" (json_string "abort");
        field "reason" (json_string reason)
      | Ev_quiescent -> field "event" (json_string "quiescent"));
      Buffer.add_string buf "}\n")
    (timed_trace t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Catalog operations                                                  *)

let find_rule t name = Str_map.find_opt name t.rules_by_name

let get_rule t name =
  match find_rule t name with
  | Some r -> r
  | None -> Errors.raise_error (Errors.Unknown_rule name)

let rules t = List.rev t.rules_rev
let rules_rev t = t.rules_rev
let priorities t = t.priorities

(* The discrimination index, rebuilt from the catalog when table/index
   DDL has bumped [ddl_gen] past the generation it was built against.
   Rule DDL maintains it incrementally without touching the
   generation. *)
let live_index t =
  if Rule_index.generation t.rule_index <> t.ddl_gen then
    t.rule_index <-
      Rule_index.rebuild ~generation:t.ddl_gen
        (List.filter (fun r -> r.Rule.active) t.rules_rev);
  t.rule_index

(* Rules defined mid-transaction start with empty transition
   information: they have seen no transition yet. *)
let create_rule t def =
  if Option.is_some (find_rule t def.Ast.rule_name) then
    Errors.raise_error (Errors.Duplicate_rule def.Ast.rule_name);
  (* validate table/column references in the transition predicates *)
  List.iter
    (fun pred ->
      let check_col table col =
        let schema = Database.schema t.db table in
        match col with
        | None -> ()
        | Some c -> ignore (Schema.column_index schema c)
      in
      match pred with
      | Ast.Tp_inserted table | Ast.Tp_deleted table -> check_col table None
      | Ast.Tp_updated (table, col) | Ast.Tp_selected (table, col) ->
        check_col table col)
    def.Ast.trans_preds;
  t.seq <- t.seq + 1;
  let rule = Rule.create ~seq:t.seq def in
  (* compile the condition and action block eagerly so the first
     consideration/firing pays no lowering cost.  Best-effort: if
     warming fails the lazy path recompiles at first use, and any
     genuine error keeps the interpreter's timing (at evaluation). *)
  if !Compile.enabled then begin
    (try
       match Rule.condition rule with
       | Some cond -> ignore (compiled_condition t rule cond)
       | None -> ()
     with _ -> ());
    try
      match Rule.action rule with
      | Ast.Act_block ops -> ignore (compiled_action t rule ops)
      | Ast.Act_rollback | Ast.Act_call _ -> ()
    with _ -> ()
  end;
  t.rules_rev <- rule :: t.rules_rev;
  t.rules_by_name <- Str_map.add rule.Rule.name rule t.rules_by_name;
  t.rule_count <- t.rule_count + 1;
  Rule_index.add (live_index t) rule;
  rule

(* Dropping a rule must clear every per-rule map keyed on its name —
   including the selection-recency bookkeeping: a leaked
   [last_considered] entry would make a later rule recreated under the
   same name inherit the old rule's recency tick and be mis-ranked by
   the recency-based strategies.  [considered0] is the abort-restore
   snapshot of the same map, so it is cleared too (a drop between a
   snapshot and an abort must not resurrect the stale tick). *)
let drop_rule t name =
  let rule = get_rule t name in
  if rule.Rule.active then Rule_index.remove (live_index t) rule;
  t.rules_rev <-
    List.filter (fun r -> not (String.equal r.Rule.name name)) t.rules_rev;
  t.rules_by_name <- Str_map.remove name t.rules_by_name;
  t.rule_count <- t.rule_count - 1;
  t.txn.infos <- Str_map.remove name t.txn.infos;
  t.priorities <- Priority.remove_rule t.priorities name;
  t.last_considered <- Str_map.remove name t.last_considered;
  t.txn.considered0 <- Str_map.remove name t.txn.considered0;
  Hashtbl.remove t.rule_metrics name

let set_rule_active t name active =
  let rule = get_rule t name in
  if rule.Rule.active <> active then begin
    let idx = live_index t in
    rule.Rule.active <- active;
    (* only active rules are registered in the discrimination index *)
    if active then Rule_index.add idx rule else Rule_index.remove idx rule
  end

let declare_priority t ~high ~low =
  ignore (get_rule t high);
  ignore (get_rule t low);
  t.priorities <- Priority.declare t.priorities ~high ~low

let register_procedure t name fn = Procedures.register t.procedures name fn

(* ------------------------------------------------------------------ *)
(* Transactions and external operations                                *)

let begin_txn t =
  if in_transaction t then
    Errors.raise_error (Errors.Transaction_error "transaction already open");
  t.txn.txn_start <- Some t.db;
  t.txn.trans_start <- t.db;
  t.txn.pending <- Effect.empty;
  t.txn.txn_effect <- Effect.empty;
  t.txn.considered0 <- t.last_considered;
  t.trace <- [];
  t.stats.transactions <- t.stats.transactions + 1

let require_txn t =
  if not (in_transaction t) then
    Errors.raise_error (Errors.Transaction_error "no open transaction")

(* Execute an operation block against the current state, returning the
   composite effect and any select results.  Each operation sees the
   state produced by its predecessors; transition tables resolve
   through [resolver_of], which differs between external blocks (no
   transition tables) and rule actions. *)
let run_steps t ~resolver_of ~exec items =
  List.fold_left
    (fun (eff, results) item ->
      let resolve = resolver_of t.db in
      let access = access_for t t.db in
      let r = exec ~access resolve t.db item in
      t.db <- r.Dml.db;
      let eff = Effect.compose eff (Effect.of_affected r.Dml.affected) in
      let results =
        match r.Dml.result with Some rel -> rel :: results | None -> results
      in
      (eff, results))
    (Effect.empty, []) items
  |> fun (eff, results) -> (eff, List.rev results)

let run_ops t ~resolver_of (ops : Ast.op list) =
  run_steps t ~resolver_of
    ~exec:(fun ~access resolve db op ->
      Dml.exec_op ~track_selects:t.config.track_selects
        ~optimize:t.config.optimize ~access resolve db op)
    ops

(* The compiled counterpart: same per-operation resolver/access/state
   threading, entering cached compiled operations.  [params] is the
   EXECUTE parameter frame (absent for rule actions). *)
let run_cops t ~resolver_of ?params (cops : Dml.cop list) =
  run_steps t ~resolver_of
    ~exec:(fun ~access resolve db cop ->
      Dml.exec_cop ~track_selects:t.config.track_selects
        ~optimize:t.config.optimize ~access ?params resolve db cop)
    cops

let external_resolver db : Eval.resolver = Eval.base_resolver db

(* Execute externally-generated operations inside the open transaction
   (they extend the current external transition).  Section 2.1 requires
   operation blocks to execute indivisibly, so a failing operation must
   not leave its predecessors' mutations behind: the whole block's
   effects are applied and recorded in [pending], or none are. *)
let submit_ops t (ops : Ast.op list) =
  require_txn t;
  let db0 = t.db in
  match run_ops t ~resolver_of:external_resolver ops with
  | eff, results ->
    t.txn.pending <- Effect.compose t.txn.pending eff;
    t.txn.txn_effect <- Effect.compose t.txn.txn_effect eff;
    results
  | exception e ->
    t.db <- db0;
    raise e

(* Compiled counterpart of [submit_ops]: statement-cache / prepared
   plans entering an open transaction, with the same indivisibility. *)
let submit_cops t ?params (cops : Dml.cop list) =
  require_txn t;
  let db0 = t.db in
  match run_cops t ~resolver_of:external_resolver ?params cops with
  | eff, results ->
    t.txn.pending <- Effect.compose t.txn.pending eff;
    t.txn.txn_effect <- Effect.compose t.txn.txn_effect eff;
    results
  | exception e ->
    t.db <- db0;
    raise e

(* ------------------------------------------------------------------ *)
(* Rule processing (Figure 1)                                          *)

exception Rolled_back_exc

(* Restore the exact transaction-start state and close the transaction:
   database, pending effect, per-rule transition information, the
   current-transition snapshot (a stale [trans_start] would let a later
   inspection observe a discarded state), and the selection bookkeeping
   a retry must not see. *)
let restore_txn_start t =
  (match t.txn.txn_start with
  | Some db0 ->
    t.db <- db0;
    t.txn.trans_start <- db0
  | None -> assert false);
  t.txn.txn_start <- None;
  t.txn.pending <- Effect.empty;
  t.txn.txn_effect <- Effect.empty;
  t.txn.infos <- Str_map.empty;
  t.last_considered <- t.txn.considered0

let rollback_to_txn_start t =
  restore_txn_start t;
  t.stats.rollbacks <- t.stats.rollbacks + 1

(* An error aborted the transaction: record it (observably — the trace
   survives until the next [begin_txn] and the abort count is a
   statistic of its own), then restore the start state. *)
let abort_txn t exn =
  let reason =
    match exn with Errors.Error e -> Errors.to_string e | e -> Printexc.to_string e
  in
  record t (Ev_abort { reason });
  Log.info (fun m -> m "transaction aborted: %s" reason);
  restore_txn_start t;
  t.stats.aborts <- t.stats.aborts + 1

let info_of t name =
  Option.value (Str_map.find_opt name t.txn.infos) ~default:Trans_info.empty

(* The operation block denoted by a rule's action: either its literal
   block or the block computed by an external procedure (Section 5.2). *)
let action_block t (rule : Rule.t) resolve =
  match Rule.action rule with
  | Ast.Act_rollback -> assert false
  | Ast.Act_block ops -> ops
  | Ast.Act_call name ->
    Fault.hit Fault.Procedure_call;
    let fn = Procedures.find t.procedures name in
    fn { Procedures.query = (fun s -> Eval.eval_select resolve s);
         rule_name = rule.Rule.name }

let process_rules_exn t =
  require_txn t;
  t.stats.transitions <- t.stats.transitions + 1;
  record t (Ev_external { effect_size = Effect.cardinality t.txn.pending });
  Log.debug (fun m ->
      m "processing rules for external transition %a" Effect.pp t.txn.pending);
  (* Figure 1: initialize every rule's transition information from the
     external transition's composite effect.  With pruning on
     (Section 4.3), a rule whose predicates mention none of the touched
     tables gets empty information without any per-effect work, and a
     partially relevant rule gets the restriction of the effect to its
     tables.

     With the discrimination index on, only rules registered on a
     (table, op, column) key the effect touches get an entry at all:
     [info_of] defaults missing entries to empty information, a rule
     whose keys the composite never touches can never become triggered,
     and transition-table materialization filters by table — so the
     omission is semantically invisible while the init cost drops from
     O(all rules) to O(matching rules).  [shared] accumulates the full
     composite of the transition so a rule woken later in processing
     (by a rule firing that touches its keys) can catch up to exactly
     the information the linear scan would have built for it. *)
  let use_index = t.config.rule_index in
  let all_rules = if use_index then [] else rules t in
  let shared = ref Trans_info.empty in
  let touched = Effect.tables t.txn.pending in
  let relevant_to r =
    List.exists (fun tbl -> Effect.Col_set.mem tbl touched) (Rule.relevant_tables r)
  in
  let initial = lazy (Trans_info.init t.txn.pending t.txn.trans_start) in
  let init_for r =
    if not t.config.prune_info then Lazy.force initial
    else if not (relevant_to r) then Trans_info.empty
    else Trans_info.init (Effect.restrict t.txn.pending (Rule.relevant r)) t.txn.trans_start
  in
  if use_index then begin
    shared := Lazy.force initial;
    let woken = Rule_index.matching (live_index t) t.txn.pending in
    t.txn.infos <-
      Rule_index.Str_set.fold
        (fun name m ->
          match find_rule t name with
          | None -> m
          | Some r -> Str_map.add name (init_for r) m)
        woken Str_map.empty
  end
  else
    t.txn.infos <-
      List.fold_left
        (fun m r -> Str_map.add r.Rule.name (init_for r) m)
        Str_map.empty all_rules;
  t.txn.pending <- Effect.empty;
  let steps = ref 0 in
  let considered = ref Str_set.empty in
  let rec loop () =
    (* the candidate scan: with the index on, only rules holding
       transition information (the woken set) are examined — a rule
       with no entry has empty information and cannot be triggered *)
    let candidates =
      if use_index then
        Str_map.fold
          (fun name info acc ->
            match find_rule t name with
            | Some r
              when r.Rule.active
                   && (not (Str_set.mem name !considered))
                   && Trans_info.triggered info (Rule.trans_preds r) ->
              r :: acc
            | _ -> acc)
          t.txn.infos []
      else
        List.filter
          (fun r ->
            r.Rule.active
            && (not (Str_set.mem r.Rule.name !considered))
            && Trans_info.triggered (info_of t r.Rule.name) (Rule.trans_preds r))
          all_rules
    in
    let examined = if use_index then Str_map.cardinal t.txn.infos else t.rule_count in
    t.stats.candidates_considered <- t.stats.candidates_considered + examined;
    t.stats.rules_skipped <- t.stats.rules_skipped + (t.rule_count - examined);
    let last_considered name =
      Option.value (Str_map.find_opt name t.last_considered) ~default:0
    in
    match
      Selection.choose t.config.strategy t.priorities ~last_considered
        candidates
    with
    | None ->
      (* quiescence: no triggered rule remains to consider *)
      record t Ev_quiescent
    | Some rule ->
      considered := Str_set.add rule.Rule.name !considered;
      t.last_considered <-
        Str_map.add rule.Rule.name (Selection.tick t.clock) t.last_considered;
      let info = info_of t rule.Rule.name in
      let resolve = Transition_tables.resolver info t.db in
      t.stats.conditions_evaluated <- t.stats.conditions_evaluated + 1;
      let m = metrics_for t rule.Rule.name in
      m.m_considered <- m.m_considered + 1;
      let cond_holds =
        match Rule.condition rule with
        | None -> true
        | Some cond ->
          Fault.hit Fault.Rule_condition;
          timed t
            (fun dt -> m.m_cond_seconds <- m.m_cond_seconds +. dt)
            (fun () ->
              if !Compile.enabled then
                Compile.run_predicate ~access:(access_for t t.db)
                  ~use_cache:t.config.optimize resolve
                  (compiled_condition t rule cond)
              else
                let cache =
                  if t.config.optimize then Some (Eval.make_cache ()) else None
                in
                Eval.eval_predicate ?cache ~access:(access_for t t.db) resolve
                  [] cond)
      in
      record t (Ev_considered { rule = rule.Rule.name; condition_held = cond_holds });
      Log.debug (fun m ->
          m "considered %s: condition %b" rule.Rule.name cond_holds);
      if not cond_holds then loop ()
      else if Rule.is_rollback rule then begin
        record t (Ev_rollback { rule = rule.Rule.name });
        Log.info (fun m -> m "rule %s requested rollback" rule.Rule.name);
        rollback_to_txn_start t;
        raise Rolled_back_exc
      end
      else begin
        incr steps;
        if !steps > t.config.max_steps then
          (* [!steps] is the true count of attempted action executions
             (the limit check counts the action it is about to run);
             the abort wrapper in [process_rules] restores the
             transaction-start state *)
          Errors.raise_error
            (Errors.Rule_limit_exceeded { rule = rule.Rule.name; steps = !steps });
        t.stats.rule_firings <- t.stats.rule_firings + 1;
        t.stats.transitions <- t.stats.transitions + 1;
        let old_db = t.db in
        Fault.hit Fault.Rule_action;
        (* the action's transition tables are based on the acting
           rule's information and the evolving current state *)
        let eff, _ =
          timed t
            (fun dt -> m.m_action_seconds <- m.m_action_seconds +. dt)
            (fun () ->
              let resolver_of db = Transition_tables.resolver info db in
              match Rule.action rule with
              | Ast.Act_block ops when !Compile.enabled ->
                run_cops t ~resolver_of (compiled_action t rule ops)
              | _ ->
                let ops = action_block t rule resolve in
                run_ops t ~resolver_of ops)
        in
        t.txn.txn_effect <- Effect.compose t.txn.txn_effect eff;
        m.m_fired <- m.m_fired + 1;
        m.m_effect_tuples <- m.m_effect_tuples + Effect.cardinality eff;
        record t
          (Ev_fired { rule = rule.Rule.name; effect_size = Effect.cardinality eff });
        Log.debug (fun m ->
            m "fired %s with effect %a" rule.Rule.name Effect.pp eff);
        (* Figure 1: the acting rule's information restarts from its
           own transition; every other rule's is extended.  With
           pruning on, rules irrelevant to the touched tables keep
           their information untouched. *)
        let touched = Effect.tables eff in
        let relevant_to r =
          List.exists
            (fun tbl -> Effect.Col_set.mem tbl touched)
            (Rule.relevant_tables r)
        in
        let effect_for r =
          if t.config.prune_info then Effect.restrict eff (Rule.relevant r)
          else eff
        in
        if use_index then begin
          (* extend the shared composite, then (1) extend every already
             woken rule exactly as the linear scan would, (2) wake
             rules whose keys this effect touches by restricting the
             shared composite — the same information stepwise extension
             from the external transition would have built, since
             restriction commutes with init/extend — and (3) restart
             the acting rule unconditionally: even a firing whose
             effect misses the rule's own keys starts a new composite
             transition for it, otherwise it would stay triggered
             forever. *)
          shared := Trans_info.extend !shared eff old_db;
          t.txn.infos <-
            Str_map.fold
              (fun name info m ->
                if String.equal name rule.Rule.name then m
                else
                  match find_rule t name with
                  | None -> Str_map.add name info m
                  | Some r ->
                    if t.config.prune_info && not (relevant_to r) then
                      Str_map.add name info m
                    else
                      Str_map.add name
                        (Trans_info.extend info (effect_for r) old_db)
                        m)
              t.txn.infos Str_map.empty;
          let woken = Rule_index.matching (live_index t) eff in
          t.txn.infos <-
            Rule_index.Str_set.fold
              (fun name m ->
                if Str_map.mem name m || String.equal name rule.Rule.name then m
                else
                  match find_rule t name with
                  | None -> m
                  | Some r ->
                    let info =
                      if t.config.prune_info then
                        Trans_info.restrict !shared (Rule.relevant r)
                      else !shared
                    in
                    Str_map.add name info m)
              woken t.txn.infos;
          t.txn.infos <-
            Str_map.add rule.Rule.name
              (Trans_info.init (effect_for rule) old_db)
              t.txn.infos
        end
        else
          t.txn.infos <-
            List.fold_left
              (fun m r ->
                if String.equal r.Rule.name rule.Rule.name then
                  Str_map.add r.Rule.name (Trans_info.init (effect_for r) old_db) m
                else if t.config.prune_info && not (relevant_to r) then m
                else
                  Str_map.add r.Rule.name
                    (Trans_info.extend (info_of t r.Rule.name) (effect_for r) old_db)
                    m)
              t.txn.infos all_rules;
        (* new state: every triggered rule becomes considerable again *)
        considered := Str_set.empty;
        loop ()
      end
  in
  loop ()

(* Section 5.3 rule triggering point: complete the current external
   transition, process rules, and (on success) begin a new transition
   within the same transaction.  Any error raised during rule
   processing — a failing condition or action, a divergent rule set
   hitting the step limit, an unknown procedure — aborts the whole
   transaction: the database, pending effect, transition information
   and transition-start snapshot are restored to the transaction-start
   state before the error is re-raised. *)
let process_rules t =
  match process_rules_exn t with
  | () ->
    t.txn.trans_start <- t.db;
    Committed
  | exception Rolled_back_exc -> Rolled_back
  | exception e ->
    if in_transaction t then abort_txn t e;
    raise e

let commit t =
  match process_rules t with
  | Committed -> (
    (* commit finalization is itself an injection site, and the commit
       hook (WAL logging) runs here too: after rule processing
       succeeded, while the transaction-start snapshot is still held.
       A failure in either must still restore the exact start state —
       for the hook this is the write-ahead invariant's flip side: a
       transaction whose log record did not become durable never
       happened, so its in-memory effects must vanish too. *)
    match
      Fault.hit Fault.Commit_point;
      match t.commit_hook with
      | None -> ()
      | Some hook ->
        let before =
          match t.txn.txn_start with Some db -> db | None -> assert false
        in
        hook { txl_before = before; txl_after = t.db; txl_effect = t.txn.txn_effect }
    with
    | () ->
      t.txn.txn_start <- None;
      t.txn.txn_effect <- Effect.empty;
      t.txn.infos <- Str_map.empty;
      Committed
    | exception e ->
      abort_txn t e;
      raise e)
  | Rolled_back -> Rolled_back

let rollback_txn t =
  require_txn t;
  rollback_to_txn_start t

(* The paper's default behaviour: one externally-generated operation
   block, executed as one transaction with rule processing before
   commit. *)
let execute_block t (ops : Ast.op list) =
  begin_txn t;
  try
    let results = submit_ops t ops in
    let outcome = commit t in
    (outcome, results)
  with e ->
    (* an error inside the block aborts the transaction ([commit] has
       already aborted and closed it for rule-processing errors) *)
    if in_transaction t then abort_txn t e;
    raise e

(* Compiled counterpart of [execute_block]: one transaction running
   cached / prepared plans, rule processing before commit as usual. *)
let execute_block_cops t ?params (cops : Dml.cop list) =
  begin_txn t;
  try
    let results = submit_cops t ?params cops in
    let outcome = commit t in
    (outcome, results)
  with e ->
    if in_transaction t then abort_txn t e;
    raise e

(* Evaluate a query outside any rule context.  Top-level queries are
   one-shot, so their compiled form is built, run and discarded — the
   win here is the positional evaluation itself, not caching. *)
let query t (s : Ast.select) =
  if !Compile.enabled then
    Compile.eval_select ~access:(access_for t t.db) (external_resolver t.db)
      t.db s
  else Eval.eval_select ~access:(access_for t t.db) (external_resolver t.db) s

(* Evaluate a cached / prepared select plan outside any transaction —
   the compiled-path counterpart of [query].  The caller guarantees the
   compiled operation is a select. *)
let query_cop t ?params (cop : Dml.cop) =
  let r =
    Dml.exec_cop ~track_selects:false ~optimize:t.config.optimize
      ~access:(access_for t t.db) ?params
      (external_resolver t.db)
      t.db cop
  in
  match r.Dml.result with
  | Some rel -> rel
  | None -> assert false (* select operations always produce a relation *)

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

(* Planning must not perturb the engine's scan/probe statistics: it is
   the same access record with the note hook silenced. *)
let explain_access t db : Eval.access =
  { (access_for t db) with Eval.acc_note = (fun ~table:_ _ -> ()) }

(* EXPLAIN must report what the executor will actually do, so it plans
   through whichever path execution would take. *)
let explain_op t (op : Ast.op) =
  if !Compile.enabled then
    Compile.plan_op ~access:(explain_access t t.db) (external_resolver t.db)
      t.db op
  else Eval.plan_op ~access:(explain_access t t.db) (external_resolver t.db) op

(* Collect the outermost embedded selects of a condition expression —
   the units the evaluator plans independently.  Sub-selects nested
   inside a collected select are planned (and shown) as part of it. *)
let rec embedded_selects (e : Ast.expr) : Ast.select list =
  match e with
  | Ast.Lit _ | Ast.Param _ | Ast.Col _ -> []
  | Ast.Neg e | Ast.Not e | Ast.Is_null e | Ast.Is_not_null e ->
    embedded_selects e
  | Ast.Binop (_, a, b)
  | Ast.Cmp (_, a, b)
  | Ast.And (a, b)
  | Ast.Or (a, b)
  | Ast.Like (a, b) ->
    embedded_selects a @ embedded_selects b
  | Ast.Between (a, b, c) ->
    embedded_selects a @ embedded_selects b @ embedded_selects c
  | Ast.In_list (e, es) | Ast.Not_in_list (e, es) ->
    embedded_selects e @ List.concat_map embedded_selects es
  | Ast.In_select (e, s) | Ast.Not_in_select (e, s) ->
    embedded_selects e @ [ s ]
  | Ast.Exists s | Ast.Scalar_select s -> [ s ]
  | Ast.Agg (_, e) -> ( match e with None -> [] | Some e -> embedded_selects e)
  | Ast.Fn (_, es) -> List.concat_map embedded_selects es
  | Ast.Case (arms, else_) ->
    List.concat_map (fun (c, v) -> embedded_selects c @ embedded_selects v) arms
    @ (match else_ with None -> [] | Some e -> embedded_selects e)

(* Plan a rule's condition as it would be evaluated at a rule
   processing point.  The condition is planned under empty transition
   information: transition tables materialize as empty relations while
   base tables keep their current contents, so the base-table access
   paths shown are the ones condition evaluation would actually use. *)
(* The discrimination-index keys a rule is registered under, rendered
   for EXPLAIN RULE.  Derived from the definition, so reported for
   deactivated rules too (which are unregistered until reactivated). *)
let rule_index_keys t name =
  let rule = get_rule t name in
  List.map Rule_index.key_to_string (Rule_index.keys_of_rule rule)

let explain_rule t name =
  let rule = get_rule t name in
  match Rule.condition rule with
  | None -> []
  | Some cond ->
    let access = explain_access t t.db in
    let resolve = Transition_tables.resolver Trans_info.empty t.db in
    let plan s =
      if !Compile.enabled then Compile.plan_select ~access resolve t.db s
      else Eval.plan_select ~access resolve s
    in
    List.map
      (fun s -> (Sqlf.Pretty.select_str s, plan s))
      (embedded_selects cond)

(* DDL is not part of the transition model: it applies outside
   transactions. *)
let create_table t schema =
  if in_transaction t then
    Errors.raise_error
      (Errors.Transaction_error "DDL inside a transaction is not supported");
  t.db <- Database.create_table t.db schema;
  t.ddl_gen <- t.ddl_gen + 1

let drop_table t name =
  if in_transaction t then
    Errors.raise_error
      (Errors.Transaction_error "DDL inside a transaction is not supported");
  (* rules referring to the table in their transition predicates become
     dangling; reject if any exist *)
  List.iter
    (fun r ->
      let mentions =
        List.exists
          (fun p ->
            match p with
            | Ast.Tp_inserted t' | Ast.Tp_deleted t'
            | Ast.Tp_updated (t', _) | Ast.Tp_selected (t', _) ->
              String.equal t' name)
          (Rule.trans_preds r)
      in
      if mentions then
        Errors.semantic "cannot drop table %S: rule %S is triggered by it" name
          r.Rule.name)
    t.rules_rev;
  t.db <- Database.drop_table t.db name;
  t.ddl_gen <- t.ddl_gen + 1

(* Index DDL is likewise rejected inside transactions: the retained
   pre-transition states (transition tables, rollback) each carry the
   index set current when they were snapshotted, and changing indexes
   mid-transaction would make probe decisions differ between states. *)
let create_index t ~ix_name ~table ~column ~kind =
  if in_transaction t then
    Errors.raise_error
      (Errors.Transaction_error "DDL inside a transaction is not supported");
  t.db <- Database.create_index t.db ~ix_name ~table ~column ~kind;
  t.ddl_gen <- t.ddl_gen + 1

let drop_index t ix_name =
  if in_transaction t then
    Errors.raise_error
      (Errors.Transaction_error "DDL inside a transaction is not supported");
  t.db <- Database.drop_index t.db ix_name;
  t.ddl_gen <- t.ddl_gen + 1

(* ------------------------------------------------------------------ *)
(* Durability support                                                  *)

(* The checkpointable essence of an engine: the database state plus the
   rule catalog as *data*.  Rule.t values carry compiled-closure caches
   that cannot be marshalled, so the image stores (definition, seq,
   active) triples and restoration rebuilds the rules — the caches
   refill lazily on first consideration.  Everything else in [t] is
   either derivable (metrics, stats, traces start empty in a recovered
   process) or transaction-scoped state that a quiescent engine does
   not have. *)
type durable_image = {
  di_db : Database.t;
  di_rules : (Ast.rule_def * int * bool) list; (* def, seq, active *)
  di_priorities : (string * string) list; (* (high, low) pairs *)
  di_seq : int;
  di_ddl_gen : int;
}

let durable_image t =
  if in_transaction t then
    Errors.raise_error
      (Errors.Transaction_error "cannot snapshot inside a transaction");
  {
    di_db = t.db;
    di_rules =
      List.map (fun r -> (r.Rule.def, r.Rule.seq, r.Rule.active)) (rules t);
    di_priorities = Priority.pairs t.priorities;
    di_seq = t.seq;
    di_ddl_gen = t.ddl_gen;
  }

let of_durable_image ?config img =
  let t = create ?config img.di_db in
  List.iter
    (fun (def, seq, active) ->
      let r = Rule.create ~seq def in
      r.Rule.active <- active;
      t.rules_rev <- r :: t.rules_rev;
      t.rules_by_name <- Str_map.add r.Rule.name r t.rules_by_name;
      t.rule_count <- t.rule_count + 1)
    img.di_rules;
  t.priorities <-
    List.fold_left
      (fun p (high, low) -> Priority.declare p ~high ~low)
      Priority.empty img.di_priorities;
  t.seq <- img.di_seq;
  t.ddl_gen <- img.di_ddl_gen;
  t.rule_index <-
    Rule_index.rebuild ~generation:t.ddl_gen
      (List.filter (fun r -> r.Rule.active) t.rules_rev);
  t

(* WAL replay applies physical tuple operations below the transition
   model — no transition, no rule processing — so it swaps whole
   database states in. *)
let restore_database t db =
  if in_transaction t then
    Errors.raise_error
      (Errors.Transaction_error "cannot restore inside a transaction");
  t.db <- db;
  t.txn.trans_start <- db

(* A stored table: a schema plus a multiset of rows keyed by tuple
   handle.  Duplicate rows may appear (each under its own handle).  The
   representation is persistent, so snapshotting a table (and hence a
   whole database state) is O(1) — this is what makes the paper's
   pre-transition states and rollback cheap to support faithfully.

   Secondary indexes live inside the table value, so a snapshot carries
   its indexes with it: probing a retained pre-transition state sees
   exactly the rows of that state, with no separate versioning.

   The row count is kept incrementally (as are the per-index distinct
   key counts, inside each index), so table statistics for the
   cost-based planner are exact and O(indexes) to read at any
   snapshot. *)

module Int_map = Map.Make (Int)
module Str_map = Map.Make (String)

type t = {
  schema : Schema.table;
  col_names : string array;
      (* the schema's column names, extracted once at creation; resolvers
         bind every row of a scan under this array, so rebuilding it per
         resolution would allocate O(columns) per access *)
  nrows : int; (* row count, kept incrementally *)
  rows : (Handle.t * Row.t) Int_map.t;
  indexes : Index.t Str_map.t; (* keyed by index name *)
}

let create schema =
  {
    schema;
    col_names = Array.map (fun c -> c.Schema.col_name) schema.Schema.columns;
    nrows = 0;
    rows = Int_map.empty;
    indexes = Str_map.empty;
  }

let schema t = t.schema
let col_names t = t.col_names
let name t = t.schema.Schema.table_name
let cardinality t = t.nrows
let is_empty t = t.nrows = 0

(* Index maintenance: every row mutation keeps every index in sync. *)
let index_add t handle row =
  Str_map.map (fun ix -> Index.add ix row.(Index.pos ix) handle) t.indexes

let index_remove t handle row =
  Str_map.map (fun ix -> Index.remove ix row.(Index.pos ix) handle) t.indexes

(* Insert a row under a fresh handle created by the caller.  The row
   must already be validated/coerced against the schema. *)
let insert t handle row =
  assert (String.equal (Handle.table handle) (name t));
  assert (not (Int_map.mem (Handle.id handle) t.rows));
  {
    t with
    nrows = t.nrows + 1;
    rows = Int_map.add (Handle.id handle) (handle, row) t.rows;
    indexes = index_add t handle row;
  }

let mem t handle = Int_map.mem (Handle.id handle) t.rows

let find t handle =
  Option.map snd (Int_map.find_opt (Handle.id handle) t.rows)

let get t handle =
  match find t handle with
  | Some row -> row
  | None ->
    Errors.semantic "tuple %s not present in table %S" (Fmt.str "%a" Handle.pp handle)
      (name t)

let delete t handle =
  match Int_map.find_opt (Handle.id handle) t.rows with
  | None -> t
  | Some (_, old_row) ->
    {
      t with
      nrows = t.nrows - 1;
      rows = Int_map.remove (Handle.id handle) t.rows;
      indexes = index_remove t handle old_row;
    }

let update t handle row =
  match Int_map.find_opt (Handle.id handle) t.rows with
  | None -> assert false
  | Some (_, old_row) ->
    let t = { t with indexes = index_remove t handle old_row } in
    {
      t with
      rows = Int_map.add (Handle.id handle) (handle, row) t.rows;
      indexes = index_add t handle row;
    }

(* Enumeration is in handle order, i.e. insertion order, which keeps
   scans and query results deterministic. *)
let fold f t acc =
  Int_map.fold (fun _ (h, row) acc -> f h row acc) t.rows acc

let iter f t = Int_map.iter (fun _ (h, row) -> f h row) t.rows
let to_list t = List.rev (fold (fun h row acc -> (h, row) :: acc) t [])
let rows t = List.rev (fold (fun _ row acc -> row :: acc) t [])

(* {2 Index management} *)

let has_index t name = Str_map.mem name t.indexes
let index_list t = List.map snd (Str_map.bindings t.indexes)

let index_on_column t column =
  Str_map.fold
    (fun _ ix found ->
      match found with
      | Some _ -> found
      | None -> if String.equal (Index.column ix) column then Some ix else None)
    t.indexes None

let ordered_index_on_column t column =
  Str_map.fold
    (fun _ ix found ->
      match found with
      | Some _ -> found
      | None ->
        if String.equal (Index.column ix) column && Index.kind ix = `Ordered
        then Some ix
        else None)
    t.indexes None

let create_index t ~ix_name ~column ~kind =
  if Str_map.mem ix_name t.indexes then
    Errors.semantic "index %S already exists" ix_name;
  let pos = Schema.column_index t.schema column in
  let ix = Index.create ~name:ix_name ~column ~pos ~kind in
  let ix = fold (fun h row ix -> Index.add ix row.(pos) h) t ix in
  { t with indexes = Str_map.add ix_name ix t.indexes }

let drop_index t ix_name =
  if not (Str_map.mem ix_name t.indexes) then
    Errors.semantic "unknown index %S" ix_name;
  { t with indexes = Str_map.remove ix_name t.indexes }

(* Materialize a handle set as rows of this state, in handle
   (= insertion) order — probe results are order-preserving
   subsequences of the scan. *)
let realize_handles t handles =
  List.filter_map
    (fun h ->
      Option.map
        (fun (_, row) -> (h, row))
        (Int_map.find_opt (Handle.id h) t.rows))
    (Handle.Set.elements handles)

(* Probe any index over [column] for rows matching one of [values].
   Returns [None] when no such index exists, or when some probe value
   is type-incompatible with the column (the scan path must report that
   error faithfully).  NULL probe values match nothing, as SQL
   requires.  Results are in handle (= insertion) order, so a probe is
   an order-preserving subsequence of the scan. *)
let probe t ~column values =
  match index_on_column t column with
  | None -> None
  | Some ix ->
    let ty = t.schema.Schema.columns.(Index.pos ix).Schema.col_type in
    if not (List.for_all (Index.compatible ty) values) then None
    else
      let handles =
        List.fold_left
          (fun acc v -> Handle.Set.union acc (Index.probe ix v))
          Handle.Set.empty values
      in
      Some (realize_handles t handles)

(* Probe an ordered index over [column] for rows whose key falls in the
   given range.  [None] when no ordered index covers the column or a
   bound value is type-incompatible (fall back to the scan, which
   reports type errors faithfully).  NULL bounds select nothing. *)
let range_probe t ~column ~lower ~upper =
  match ordered_index_on_column t column with
  | None -> None
  | Some ix ->
    let ty = t.schema.Schema.columns.(Index.pos ix).Schema.col_type in
    let bound_ok = function
      | None -> true
      | Some (v, _) -> Index.compatible ty v
    in
    if not (bound_ok lower && bound_ok upper) then None
    else Some (realize_handles t (Index.range ix ~lower ~upper))

(* {2 Statistics} *)

(* Distinct-key count for an indexed column, plus whether an ordered
   index (range capability) covers it.  [None] for unindexed columns —
   the planner treats those as probe-ineligible. *)
let column_stats t column =
  match index_on_column t column with
  | None -> None
  | Some ix ->
    let ordered =
      Index.kind ix = `Ordered || ordered_index_on_column t column <> None
    in
    Some (Index.cardinality ix, ordered)

let pp ppf t =
  Fmt.pf ppf "@[<v 2>%a [%d rows]@,%a@]" Schema.pp t.schema (cardinality t)
    (Fmt.list ~sep:Fmt.cut (fun ppf (h, row) ->
         Fmt.pf ppf "%a %a" Handle.pp h Row.pp row))
    (to_list t)

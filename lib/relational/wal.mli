(** Write-ahead log of committed transitions.

    One record per committed transition: either a catalog (DDL)
    statement stored as concrete syntax, or the physical net effect of
    a committed transaction (inserted/deleted/updated tuples with
    their handle ids).  Records are CRC-framed; a reader returns the
    valid prefix of a file and flags a torn tail, so a crash mid-append
    never loses more than the record being written.  Rule firings are
    part of the logged net effect and are never re-executed on replay.

    Log files are per checkpoint generation ([wal.000042]); the
    record sequence number is global and survives rotation. *)

(** {1 Records} *)

(** One physical tuple operation of a committed transaction. *)
type dml =
  | L_insert of { table : string; id : int; row : Value.t array }
  | L_delete of { table : string; id : int }
  | L_update of { table : string; id : int; row : Value.t array }

type payload =
  | Ddl of string
      (** concrete syntax of a catalog statement, re-executed on replay *)
  | Txn of { handle_ctr : int; ops : dml list }
      (** net effect of a committed transaction; [handle_ctr] is the
          global handle counter at commit time *)
  | Batch of { handle_ctr : int; txns : dml list list }
      (** a group-commit batch: the net effects of several committed
          transactions, written (and made durable) as one frame.  One
          frame means one CRC: a crash mid-append tears the whole frame
          away, so recovery sees either every transaction of a batch or
          none of them — the all-or-none guarantee the concurrent
          server's group commit relies on. *)

type record = { seq : int; payload : payload }

val crc32 : string -> int
(** CRC-32 (IEEE, the zlib polynomial) of a string — exposed for the
    checkpoint store and for tests that craft corrupt frames. *)

val frame : record -> string
(** The exact bytes [append] would write — exposed so tests can build
    corruption corpora without a writer. *)

val frame_size : record -> int

(** {1 File layout} *)

val file_header : string
(** The magic bytes opening every log file — exposed so tests can craft
    log images byte by byte. *)

val file_name : int -> string
(** [file_name gen] = ["wal.%06d"]. *)

val path : dir:string -> gen:int -> string

(** {1 Reading} *)

type scan = {
  records : record list;  (** valid records, oldest first *)
  torn : bool;  (** trailing bytes that do not form a complete record *)
  valid_len : int;  (** byte length of the valid prefix (incl. header) *)
}

val read : dir:string -> gen:int -> scan
(** Scan a generation's log.  A missing file reads as empty and not
    torn (a crash can die between checkpoint publication and creation
    of the next log). *)

val scan_string : string -> scan
(** Scan raw log-file bytes; used by the truncation-corpus tests. *)

(** {1 Writing} *)

type writer

val create : ?sync:bool -> dir:string -> gen:int -> unit -> writer
(** Create (truncate) the generation's log with a fresh header.
    [sync=false] drops every fsync — for benchmarks quantifying the
    durability cost, not for real use. *)

val open_append : ?sync:bool -> dir:string -> gen:int -> unit -> writer
(** Open an existing log for appending, creating it if absent.  A torn
    tail left by a crashed writer is truncated away first. *)

val append : writer -> record -> unit
(** Write one record and (unless [sync=false]) fsync.  Passes
    {!Fault.Wal_append} before any byte is written and
    {!Fault.Wal_fsync} once the record is durable. *)

val writer_size : writer -> int
(** Bytes in the file, counting the header. *)

val writer_path : writer -> string
val close : writer -> unit

(** {1 Replay} *)

val apply : Database.t -> dml list -> Database.t
(** Re-apply a transaction record's physical effect, rebuilding tuples
    under their original handles.  The caller replays records in log
    order and calls {!Handle.advance_counter} with the last record's
    counter afterwards. *)

val payload_txns : payload -> dml list list
(** The per-transaction op lists a payload carries: [[ops]] for a
    [Txn], one list per member for a [Batch], [[]] for [Ddl] — so
    harnesses can count committed transactions uniformly across record
    shapes. *)

val pp_dml : Format.formatter -> dml -> unit

(* Write-ahead log of committed transitions.

   The paper's semantics is a sequence of committed transitions, each
   the net effect of one transaction (externally-generated blocks plus
   all rule firings).  The WAL makes that sequence durable: one record
   per committed transition, appended and fsynced before the in-memory
   commit completes, so a recovered state is exactly the
   committed-transition prefix.  Rule processing is never re-run on
   replay — the logged effect already contains what the rules did,
   matching Section 4's view of rule processing as part of the
   transition that produced it.

   Two record payloads:

   - [Ddl] carries the concrete syntax of a catalog statement (CREATE
     TABLE/RULE/INDEX/ASSERTION, DROP ..., PRIORITY,
     ACTIVATE/DEACTIVATE).  Replay re-parses and re-executes it; the
     statement round-trip property (test_properties) guarantees the
     text denotes the original statement.

   - [Txn] carries the physical net effect of one committed
     transaction: inserted rows with their handle ids, deleted handle
     ids, updated rows — plus the global handle counter at commit, so
     recovery restores handle uniqueness.

   Framing: every record is  [0xD5 | seq:8 LE | len:4 LE | crc32:4 LE |
   payload]  after a 9-byte file header.  The CRC covers the payload;
   seq is a global record sequence number that survives checkpoint
   rotation.  A reader stops at the first frame that is incomplete or
   fails its checks — the torn tail a crash mid-append leaves behind —
   and returns the valid prefix.

   Durability points are explicit [Fault] sites: [Wal_append] fires
   before any byte is written (a crash there loses the record) and
   [Wal_fsync] after write+fsync (a crash there leaves the record
   durable even though the caller never saw the append return).  The
   recovery harness kills the process at both. *)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.             *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Records                                                             *)

type dml =
  | L_insert of { table : string; id : int; row : Value.t array }
  | L_delete of { table : string; id : int }
  | L_update of { table : string; id : int; row : Value.t array }

type payload =
  | Ddl of string
  | Txn of { handle_ctr : int; ops : dml list }
  (* [Batch] must stay the third constructor: Marshal encodes
     constructors by declaration order, and logs written before group
     commit existed must keep replaying. *)
  | Batch of { handle_ctr : int; txns : dml list list }

type record = { seq : int; payload : payload }

let file_header = "SOPRWAL1\n"
let record_magic = '\xd5'
let frame_header_len = 1 + 8 + 4 + 4

let file_name gen = Printf.sprintf "wal.%06d" gen
let path ~dir ~gen = Filename.concat dir (file_name gen)

let put_le bytes off width v =
  for i = 0 to width - 1 do
    Bytes.set bytes (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_le s off width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let frame record =
  let payload = Marshal.to_string record.payload [] in
  let len = String.length payload in
  let b = Bytes.create (frame_header_len + len) in
  Bytes.set b 0 record_magic;
  put_le b 1 8 record.seq;
  put_le b 9 4 len;
  put_le b 13 4 (crc32 payload);
  Bytes.blit_string payload 0 b frame_header_len len;
  Bytes.unsafe_to_string b

let frame_size record = String.length (frame record)

(* ------------------------------------------------------------------ *)
(* Reading: the valid prefix of a log file.                            *)

type scan = {
  records : record list;  (** valid records, oldest first *)
  torn : bool;  (** trailing bytes that do not form a complete record *)
  valid_len : int;  (** byte length of the valid prefix (incl. header) *)
}

let scan_string contents =
  let total = String.length contents in
  let hdr = String.length file_header in
  if total = 0 then { records = []; torn = false; valid_len = 0 }
  else if total < hdr || String.sub contents 0 hdr <> file_header then
    (* not even a whole header: a crash between file creation and the
       header write, or a foreign file *)
    { records = []; torn = true; valid_len = 0 }
  else begin
    let records = ref [] in
    let pos = ref hdr in
    let torn = ref false in
    let stop = ref false in
    while not !stop do
      let remaining = total - !pos in
      if remaining = 0 then stop := true
      else if remaining < frame_header_len then begin
        torn := true;
        stop := true
      end
      else if contents.[!pos] <> record_magic then begin
        torn := true;
        stop := true
      end
      else begin
        let seq = get_le contents (!pos + 1) 8 in
        let len = get_le contents (!pos + 9) 4 in
        let crc = get_le contents (!pos + 13) 4 in
        if remaining < frame_header_len + len then begin
          torn := true;
          stop := true
        end
        else
          let payload_str =
            String.sub contents (!pos + frame_header_len) len
          in
          if crc32 payload_str <> crc then begin
            torn := true;
            stop := true
          end
          else
            match (Marshal.from_string payload_str 0 : payload) with
            | payload ->
              records := { seq; payload } :: !records;
              pos := !pos + frame_header_len + len
            | exception _ ->
              (* a CRC-valid but unreadable payload: treat like any
                 other invalid tail rather than crash recovery *)
              torn := true;
              stop := true
      end
    done;
    { records = List.rev !records; torn = !torn; valid_len = !pos }
  end

let read_string ~dir ~gen =
  let p = path ~dir ~gen in
  if Sys.file_exists p then
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  else None

let read ~dir ~gen =
  match read_string ~dir ~gen with
  | None -> { records = []; torn = false; valid_len = 0 }
  | Some contents -> scan_string contents

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

type writer = {
  fd : Unix.file_descr;
  w_path : string;
  sync : bool;
  mutable size : int;
}

(* Open the generation's log for appending, creating it (with its
   header) if absent.  If the file ends in a torn tail — the previous
   process died mid-append — the tail is truncated away first, so new
   records are never written after garbage. *)
let open_append ?(sync = true) ~dir ~gen () =
  let p = path ~dir ~gen in
  let existing = read ~dir ~gen in
  let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  match
    if existing.valid_len = 0 && existing.records = [] then begin
      (* fresh (or unreadable-from-byte-0) file: start it over *)
      Unix.ftruncate fd 0;
      Fileio.write_fully fd file_header;
      if sync then Fileio.fsync fd;
      Fileio.fsync_dir dir;
      String.length file_header
    end
    else begin
      if existing.torn then Unix.ftruncate fd existing.valid_len;
      ignore (Unix.lseek fd existing.valid_len Unix.SEEK_SET);
      existing.valid_len
    end
  with
  | size -> { fd; w_path = p; sync; size }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let create ?(sync = true) ~dir ~gen () =
  let p = path ~dir ~gen in
  let fd =
    Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  match
    Fileio.write_fully fd file_header;
    if sync then Fileio.fsync fd;
    Fileio.fsync_dir dir
  with
  | () -> { fd; w_path = p; sync; size = String.length file_header }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let append w record =
  (* a crash before this point loses the record: the transaction never
     became durable, which recovery treats as "never committed" *)
  Fault.hit Fault.Wal_append;
  let bytes = frame record in
  Fileio.write_fully w.fd bytes;
  if w.sync then Fileio.fsync w.fd;
  w.size <- w.size + String.length bytes;
  (* the record is durable; a crash from here on keeps it even though
     the committing process never saw the append return *)
  Fault.hit Fault.Wal_fsync

let writer_size w = w.size
let writer_path w = w.w_path

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Replay: apply a transaction record's physical effect.               *)

(* Tolerant by construction: the effect sets recorded at commit are
   exact (insert only handles present in the post state, delete only
   handles present in the pre state), so each arm applies
   unconditionally and any failure indicates a corrupt log — surfaced
   as the storage layer's own error. *)
let apply_dml db op =
  match op with
  | L_insert { table; id; row } ->
    let tbl = Database.table db table in
    Database.replace_table db (Table.insert tbl (Handle.restore ~id table) row)
  | L_delete { table; id } ->
    let tbl = Database.table db table in
    Database.replace_table db (Table.delete tbl (Handle.restore ~id table))
  | L_update { table; id; row } ->
    let tbl = Database.table db table in
    Database.replace_table db (Table.update tbl (Handle.restore ~id table) row)

let apply db ops = List.fold_left apply_dml db ops

let payload_txns = function
  | Ddl _ -> []
  | Txn { ops; _ } -> [ ops ]
  | Batch { txns; _ } -> txns

let pp_dml ppf = function
  | L_insert { table; id; row } ->
    Fmt.pf ppf "insert #%d@%s %s" id table (Row.to_string row)
  | L_delete { table; id } -> Fmt.pf ppf "delete #%d@%s" id table
  | L_update { table; id; row } ->
    Fmt.pf ppf "update #%d@%s %s" id table (Row.to_string row)

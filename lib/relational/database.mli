(** A database state: a catalog of tables.

    States are persistent values.  The engine keeps the current state
    in a reference and passes old states around freely — pre-transition
    states for transition tables, and the transaction start state for
    rollback — exactly as the paper's semantics requires. *)

type t

val empty : t

val create_table : t -> Schema.table -> t
(** Raises [Duplicate_table] if a table of that name exists. *)

val drop_table : t -> string -> t
val has_table : t -> string -> bool

val table : t -> string -> Table.t
(** Raises [Unknown_table] if absent. *)

val schema : t -> string -> Schema.table
val table_names : t -> string list
val replace_table : t -> Table.t -> t

val insert : t -> string -> Row.t -> t * Handle.t
(** Validate/coerce the row against the schema, mint a fresh handle,
    and store the tuple.  Returns the new state and the handle. *)

val delete : t -> Handle.t -> t
val update : t -> Handle.t -> Row.t -> t

val find_row : t -> Handle.t -> Row.t option
(** Look a tuple up in this state — works for current values and for
    values in retained pre-transition states. *)

val get_row : t -> Handle.t -> Row.t
(** Like {!find_row} but raises when absent. *)

(** {2 Secondary indexes}

    Index names are unique across the whole database, so [drop_index]
    needs only the name.  Indexes are part of the persistent table
    values: states retained for transition tables and rollback carry
    their own consistent indexes. *)

val create_index :
  t -> ix_name:string -> table:string -> column:string -> kind:Index.kind -> t
(** Raises [Semantic_error] if the name is taken anywhere in the
    database, [Unknown_table]/[Unknown_column] for bad targets. *)

val drop_index : t -> string -> t
(** Raises [Semantic_error] if no table has an index of that name. *)

val indexes : t -> (string * Index.t) list
(** All (table, index) pairs, in table-name order. *)

val probe : t -> table:string -> column:string -> Value.t list
  -> (Handle.t * Row.t) list option
(** Probe any index over [column] of [table]: [None] when the table or
    a usable index is absent (or a value is type-incompatible), else
    the matching rows in handle (= insertion) order. *)

val range_probe :
  t ->
  table:string ->
  column:string ->
  lower:Index.bound option ->
  upper:Index.bound option ->
  (Handle.t * Row.t) list option
(** Probe an ordered index over [column] of [table] for rows in the key
    range: [None] when the table or an ordered index is absent (or a
    bound is type-incompatible), else the matching rows in handle
    order. *)

val column_stats : t -> table:string -> column:string -> (int * bool) option
(** [Some (distinct, ordered)] when an index covers the column — see
    {!Table.column_stats}. *)

val total_rows : t -> int
val pp : Format.formatter -> t -> unit

(** A stored table: a schema plus a multiset of rows keyed by tuple
    handle.

    The representation is persistent: every mutation returns a new
    table sharing structure with the old one.  Snapshotting a table —
    and hence a whole database state — is O(1), which is what makes the
    paper's pre-transition states and rollback cheap to support
    faithfully.  Duplicate rows may appear, each under its own
    handle.

    Secondary indexes live inside the table value and are maintained
    incrementally by [insert]/[delete]/[update], so every snapshot
    carries consistent indexes: probing a retained pre-transition state
    sees exactly the rows of that state. *)

type t

val create : Schema.table -> t
val schema : t -> Schema.table

val col_names : t -> string array
(** The schema's column names, computed once at table creation and
    shared by every snapshot of the table — callers must not mutate the
    array.  Resolvers bind scan rows under this array on every access,
    so it is cached rather than rebuilt per call. *)

val name : t -> string
val cardinality : t -> int
val is_empty : t -> bool

val insert : t -> Handle.t -> Row.t -> t
(** [insert t h row] stores [row] under [h].  The handle must be fresh
    and belong to this table; the row must already be coerced against
    the schema. *)

val mem : t -> Handle.t -> bool
val find : t -> Handle.t -> Row.t option
val get : t -> Handle.t -> Row.t
(** Raises if the tuple is not present in this state. *)

val delete : t -> Handle.t -> t
val update : t -> Handle.t -> Row.t -> t

val fold : (Handle.t -> Row.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Enumeration is in handle (= insertion) order, keeping scans and
    query results deterministic. *)

val iter : (Handle.t -> Row.t -> unit) -> t -> unit
val to_list : t -> (Handle.t * Row.t) list
val rows : t -> Row.t list

(** {2 Secondary indexes} *)

val create_index : t -> ix_name:string -> column:string -> kind:Index.kind -> t
(** Build an index of the given kind over an existing column, indexing
    all current rows.  Raises [Semantic_error] if an index of that name
    already exists on this table, or [Unknown_column] for a bad
    column. *)

val drop_index : t -> string -> t
(** Raises [Semantic_error] if this table has no index of that name. *)

val has_index : t -> string -> bool

val index_list : t -> Index.t list
(** All indexes on this table, in name order. *)

val index_on_column : t -> string -> Index.t option
(** Any index whose key is the given column. *)

val ordered_index_on_column : t -> string -> Index.t option
(** Any [`Ordered] index whose key is the given column. *)

val probe : t -> column:string -> Value.t list -> (Handle.t * Row.t) list option
(** [probe t ~column values] returns the rows whose [column] equals one
    of [values], using an index over that column — or [None] when no
    such index exists or some value is type-incompatible with the
    column (so the caller falls back to a scan and any type error
    surfaces there).  NULL values match nothing.  Results are in handle
    (= insertion) order: a probe result is an order-preserving
    subsequence of the scan. *)

val range_probe :
  t ->
  column:string ->
  lower:Index.bound option ->
  upper:Index.bound option ->
  (Handle.t * Row.t) list option
(** [range_probe t ~column ~lower ~upper] returns the rows whose
    [column] falls within the bounds, using an ordered index over that
    column — or [None] when no ordered index covers the column or a
    bound value is type-incompatible (the caller falls back to a scan).
    NULL bounds select nothing.  Results are in handle order, like
    [probe]. *)

(** {2 Statistics}

    Row counts and per-index distinct-key counts are maintained
    incrementally by the mutation operations, so reading them is cheap
    at any snapshot — this is what the cost-based planner consults. *)

val column_stats : t -> string -> (int * bool) option
(** [column_stats t column] is [Some (distinct, ordered)] when an index
    covers [column]: the number of distinct non-null keys and whether
    range probes are available (an ordered index exists).  [None] for
    unindexed columns. *)

val pp : Format.formatter -> t -> unit

(** A secondary index: an access path from the values of one column to
    the set of handles of rows holding that value.  [`Hash] indexes
    answer equality probes; [`Ordered] indexes additionally answer
    range probes under [Value.compare_total] ordering.

    The representation is persistent and lives inside the table value
    it indexes, so snapshotting a table (or a whole database state)
    snapshots its indexes too — probes against retained pre-transition
    states see exactly the rows of those states.

    NULL is never indexed: SQL comparison against NULL is never TRUE,
    so probing for NULL (or with a NULL range bound) finds nothing and
    rows with a NULL key are only reachable by scan. *)

type t

type kind = [ `Hash | `Ordered ]

val create : name:string -> column:string -> pos:int -> kind:kind -> t
(** An empty index named [name] over the column at schema position
    [pos]. *)

val name : t -> string
val column : t -> string
val pos : t -> int
val kind : t -> kind

val kind_name : kind -> string
(** ["hash"] or ["ordered"]. *)

val add : t -> Value.t -> Handle.t -> t
(** Register a row's column value.  Adding NULL is a no-op. *)

val remove : t -> Value.t -> Handle.t -> t
(** Unregister a row's column value.  Removing NULL or an absent
    binding is a no-op. *)

val probe : t -> Value.t -> Handle.Set.t
(** The handles of rows whose indexed column equals the given value;
    empty for NULL. *)

type bound = Value.t * bool
(** A range endpoint: the key value and whether it is inclusive. *)

val range : t -> lower:bound option -> upper:bound option -> Handle.Set.t
(** The handles of rows whose indexed key falls within the bounds
    (missing bound = unbounded on that side).  A NULL bound selects
    nothing, as SQL comparison against NULL is never TRUE.  Callers
    must gate bound values with [compatible], exactly as for [probe]. *)

val like_prefix : string -> (string * string option) option
(** [like_prefix pat] is the literal prefix of LIKE pattern [pat]
    (characters before the first ['%'] or ['_']) together with the
    exclusive upper bound of the key range covering every possible
    match ([None] = unbounded).  [None] overall when the pattern has no
    literal prefix, in which case the range would be the whole index. *)

val cardinality : t -> int
(** Number of distinct (non-null) keys, maintained incrementally — O(1). *)

val compatible : Schema.col_type -> Value.t -> bool
(** May a value be used as a probe key against a column of this type?
    False for cross-kind pairs (e.g. a string against an int column)
    whose scan-path comparison would raise a type error — the caller
    must fall back to the scan so the error is reported faithfully. *)

val pp : Format.formatter -> t -> unit

(** A secondary hash index: an equality access path from the values of
    one column to the set of handles of rows holding that value.

    The representation is persistent and lives inside the table value
    it indexes, so snapshotting a table (or a whole database state)
    snapshots its indexes too — probes against retained pre-transition
    states see exactly the rows of those states.

    NULL is never indexed: SQL equality against NULL is never TRUE, so
    probing for NULL finds nothing and rows with a NULL key are only
    reachable by scan. *)

type t

val create : name:string -> column:string -> pos:int -> t
(** An empty index named [name] over the column at schema position
    [pos]. *)

val name : t -> string
val column : t -> string
val pos : t -> int

val add : t -> Value.t -> Handle.t -> t
(** Register a row's column value.  Adding NULL is a no-op. *)

val remove : t -> Value.t -> Handle.t -> t
(** Unregister a row's column value.  Removing NULL or an absent
    binding is a no-op. *)

val probe : t -> Value.t -> Handle.Set.t
(** The handles of rows whose indexed column equals the given value;
    empty for NULL. *)

val cardinality : t -> int
(** Number of distinct (non-null) keys. *)

val compatible : Schema.col_type -> Value.t -> bool
(** May a value be used as a probe key against a column of this type?
    False for cross-kind pairs (e.g. a string against an int column)
    whose scan-path comparison would raise a type error — the caller
    must fall back to the scan so the error is reported faithfully. *)

val pp : Format.formatter -> t -> unit

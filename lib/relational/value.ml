(* SQL values with three-valued logic.

   Comparisons involving [Null] are unknown rather than false, so the
   comparison operations return ['a option] with [None] standing for
   SQL's UNKNOWN.  Predicate evaluation in the SQL layer collapses
   UNKNOWN to "row not selected", as SQL does. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(* SQL truth values. *)
type truth = True | False | Unknown

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let truth_of_bool b = if b then True else False

let truth_and a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, (True | Unknown) | True, Unknown -> Unknown

let truth_or a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, (False | Unknown) | False, Unknown -> Unknown

let truth_not = function True -> False | False -> True | Unknown -> Unknown

(* A row is selected only when the predicate is definitely true. *)
let truth_holds = function True -> true | False | Unknown -> false

(* Structural equality used by storage and tests (Null = Null here,
   unlike SQL comparison semantics). *)
let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> false

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Bool _ -> "bool"

(* SQL comparison: [None] when either side is NULL or the types are not
   comparable.  Numeric values compare across int/float. *)
let compare_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | Bool x, Bool y -> Some (Bool.compare x y)
  | (Int _ | Float _ | Str _ | Bool _), _ ->
    Errors.type_error "cannot compare %s with %s" (type_name a) (type_name b)

let eq_sql a b =
  match compare_sql a b with
  | None -> Unknown
  | Some c -> truth_of_bool (c = 0)

(* Total order used for ORDER BY, DISTINCT and deterministic output:
   NULL sorts first, then bools, ints/floats together, then strings. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare_total a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | a, b -> compare (rank a) (rank b)

(* Arithmetic.  Any NULL operand yields NULL; int/int stays int except
   for division by a non-divisor, which promotes to float as most SQL
   engines with a single numeric division operator do not — we keep
   integer division for int/int to match SQL's DIV-like behaviour and
   raise on division by zero. *)

let numeric op_name a b ~int_op ~float_op =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | Float x, Float y -> Float (float_op x y)
  | Int x, Float y -> Float (float_op (float_of_int x) y)
  | Float x, Int y -> Float (float_op x (float_of_int y))
  | a, b ->
    Errors.type_error "cannot apply %s to %s and %s" op_name (type_name a)
      (type_name b)

let add a b = numeric "+" a b ~int_op:( + ) ~float_op:( +. )
let sub a b = numeric "-" a b ~int_op:( - ) ~float_op:( -. )

let mul a b =
  match a, b with
  (* Mixed int*float is the common pattern in the paper's examples
     (e.g. 0.95 * salary). *)
  | _ -> numeric "*" a b ~int_op:( * ) ~float_op:( *. )

let div a b =
  let check_zero y = if y = 0 then Errors.type_error "division by zero" in
  let checkf_zero y =
    if Float.equal y 0.0 then Errors.type_error "division by zero"
  in
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y ->
    check_zero y;
    Int (x / y)
  | Float x, Float y ->
    checkf_zero y;
    Float (x /. y)
  | Int x, Float y ->
    checkf_zero y;
    Float (float_of_int x /. y)
  | Float x, Int y ->
    check_zero y;
    Float (x /. float_of_int y)
  | a, b ->
    Errors.type_error "cannot apply / to %s and %s" (type_name a) (type_name b)

let rem a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y ->
    if y = 0 then Errors.type_error "division by zero";
    Int (x mod y)
  | a, b ->
    Errors.type_error "cannot apply %% to %s and %s" (type_name a)
      (type_name b)

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | v -> Errors.type_error "cannot negate %s" (type_name v)

let concat a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Str x, Str y -> Str (x ^ y)
  | a, b ->
    Errors.type_error "cannot concatenate %s and %s" (type_name a)
      (type_name b)

(* SQL LIKE with '%' (any sequence) and '_' (any single character). *)
let like_match text pattern =
  let n = String.length text and m = String.length pattern in
  (* memoized match over (text index, pattern index) *)
  let memo = Hashtbl.create 16 in
  let rec go i j =
    match Hashtbl.find_opt memo (i, j) with
    | Some r -> r
    | None ->
      let r =
        if j = m then i = n
        else
          match pattern.[j] with
          | '%' -> go i (j + 1) || (i < n && go (i + 1) j)
          | '_' -> i < n && go (i + 1) (j + 1)
          | c -> i < n && text.[i] = c && go (i + 1) (j + 1)
      in
      Hashtbl.add memo (i, j) r;
      r
  in
  go 0 0

let like a pattern =
  match a, pattern with
  | Null, _ | _, Null -> Unknown
  | Str s, Str p -> truth_of_bool (like_match s p)
  | a, b ->
    Errors.type_error "LIKE requires strings, got %s and %s" (type_name a)
      (type_name b)

let to_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Null | Str _ | Bool _ -> None

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x when Float.is_nan x -> "nan"
  | Float x when x = Float.infinity -> "infinity"
  | Float x when x = Float.neg_infinity -> "-infinity"
  | Float x ->
    (* Print finite floats so they read back as floats; non-finite ones
       use the grammar's NAN / INFINITY literal spellings above (the
       bare "nan"/"inf" of %g does not lex). *)
    let s = Printf.sprintf "%.12g" x in
    if String.contains s '.' || String.contains s 'e' then s else s ^ "."
  | Str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Bool b -> if b then "TRUE" else "FALSE"

(* Unquoted rendering for result tables. *)
let to_display = function Str s -> s | v -> to_string v

let pp ppf v = Fmt.string ppf (to_string v)

(* Deterministic fault injection for exception-safety testing.

   The paper's transition model assumes operation blocks "are executed
   indivisibly" (Section 2.1) and that rollback restores the exact
   transaction-start state (Section 4).  Those guarantees are only as
   good as the engine's behaviour when an arbitrary error is raised in
   the middle of a block, a rule condition, a rule action, an external
   procedure, or commit processing — so every one of those places is an
   *injection site*: a call to [hit] that normally does nothing but,
   when the module is armed, raises [Injected] after a chosen number of
   hits.

   Injection is countdown-based and therefore fully deterministic: a
   harness first runs a workload with injection disabled to count the
   hit points it passes, then replays it once per hit point with
   [arm k] for k = 1..n, checking after each induced abort that the
   engine state is exactly the pre-transaction state and that a final
   fault-free retry behaves as if no fault ever happened.  Randomness
   lives only in the (seeded) workload generator, never here.

   The master [enabled] switch keeps the sites free outside tests: a
   disarmed [hit] is a single ref read. *)

type site =
  | Dml_op  (** start of [Dml.exec_op] — every data manipulation operation *)
  | Query_eval  (** top-level [Eval.eval_select] entry (queries, procedure reads) *)
  | Rule_condition  (** rule condition evaluation in the engine *)
  | Rule_action  (** rule action execution in the engine *)
  | Procedure_call  (** external procedure invocation (Section 5.2) *)
  | Commit_point  (** commit finalization, after rule processing succeeded *)
  | Wal_append  (** before a WAL record's bytes are written (record lost) *)
  | Wal_fsync  (** after a WAL record is written and fsynced (record durable) *)
  | Checkpoint_write  (** before the checkpoint temp file is written *)
  | Checkpoint_rename
      (** after the temp file is durable, before the atomic rename *)

exception Injected of site

let engine_sites =
  [ Dml_op; Query_eval; Rule_condition; Rule_action; Procedure_call; Commit_point ]

let durability_sites =
  [ Wal_append; Wal_fsync; Checkpoint_write; Checkpoint_rename ]

let all_sites = engine_sites @ durability_sites

let site_name = function
  | Dml_op -> "dml-op"
  | Query_eval -> "query-eval"
  | Rule_condition -> "rule-condition"
  | Rule_action -> "rule-action"
  | Procedure_call -> "procedure-call"
  | Commit_point -> "commit-point"
  | Wal_append -> "wal-append"
  | Wal_fsync -> "wal-fsync"
  | Checkpoint_write -> "checkpoint-write"
  | Checkpoint_rename -> "checkpoint-rename"

(* master switch: when false, [hit] is a no-op and nothing is counted *)
let enabled = ref false

(* remaining hits before injection; 0 = disarmed (count only) *)
let armed = ref 0

(* hits observed since the last [reset] or [arm] *)
let observed = ref 0

(* site of the most recent injected fault, if any *)
let last_injected : site option ref = ref None

(* cumulative per-site hit counts since [reset_site_counts]; lets a
   harness prove that every site was actually exercised *)
let site_counts : (site, int) Hashtbl.t = Hashtbl.create 8

let site_count s = Option.value (Hashtbl.find_opt site_counts s) ~default:0
let reset_site_counts () = Hashtbl.reset site_counts

let enable on =
  enabled := on;
  if not on then armed := 0

let arm n =
  if n <= 0 then invalid_arg "Fault.arm: countdown must be positive";
  enabled := true;
  armed := n;
  observed := 0;
  last_injected := None

let disarm () =
  armed := 0;
  observed := 0

(* Full teardown for test harnesses.  The countdown state is
   process-global, so a harness that raises between [arm] and [disarm]
   (an alcotest failure, a qcheck shrink re-run) would otherwise leak an
   armed countdown into whatever test runs next; calling [reset] from a
   [Fun.protect] finalizer makes that impossible.  Per-site cumulative
   counts survive a reset — they are cross-test coverage evidence, not
   armed state. *)
let reset () =
  enabled := false;
  armed := 0;
  observed := 0;
  last_injected := None

let observed_hits () = !observed
let injected () = !last_injected

let hit site =
  if !enabled then begin
    incr observed;
    Hashtbl.replace site_counts site (site_count site + 1);
    if !armed > 0 then begin
      decr armed;
      if !armed = 0 then begin
        last_injected := Some site;
        raise (Injected site)
      end
    end
  end

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "injected fault at %s" (site_name site))
    | _ -> None)

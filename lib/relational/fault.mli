(** Deterministic fault injection for exception-safety testing.

    The engine's atomicity guarantees (paper Sections 2.1 and 4: blocks
    are indivisible, rollback restores the exact transaction-start
    state) must hold when an error is raised at any point of statement
    or rule execution.  The execution layers therefore call {!hit} at
    each interesting point; a test harness arms a countdown so the n-th
    hit raises {!Injected}, then checks the engine recovered to a
    well-defined state.  Injection is countdown-based and deterministic
    — randomness belongs in the (seeded) workload generator driving the
    harness, not here.

    Outside tests the module stays disabled and a [hit] is a single
    ref read. *)

(** Where a fault can be injected. *)
type site =
  | Dml_op  (** start of [Dml.exec_op] — every data manipulation operation *)
  | Query_eval
      (** top-level [Eval.eval_select] entry (queries, procedure reads) *)
  | Rule_condition  (** rule condition evaluation in the engine *)
  | Rule_action  (** rule action execution in the engine *)
  | Procedure_call  (** external procedure invocation (Section 5.2) *)
  | Commit_point  (** commit finalization, after rule processing succeeded *)
  | Wal_append
      (** before a WAL record's bytes reach the file: a crash here loses
          the record entirely *)
  | Wal_fsync
      (** after a WAL record is written, flushed and fsynced: a crash
          here leaves the record durable even though the writer never
          saw the append return *)
  | Checkpoint_write  (** before the checkpoint temp file is written *)
  | Checkpoint_rename
      (** after the temp file is durable, before the atomic rename
          publishes it *)

exception Injected of site
(** The injected fault.  Deliberately not an {!Errors.Error}: harnesses
    must be able to tell an induced fault from a genuine engine
    error. *)

val all_sites : site list

val engine_sites : site list
(** The sites on the in-memory execution path (DML, rules, commit) —
    the PR 2 exception-safety surface.  A purely in-memory workload
    never passes a durability site, so coverage assertions for such
    harnesses quantify over this list. *)

val durability_sites : site list
(** The sites on the WAL/checkpoint path, passed only when a durable
    sink is attached. *)

val site_name : site -> string

val enable : bool -> unit
(** Master switch.  [enable true] turns hit counting on (without
    arming); [enable false] disables counting and disarms. *)

val arm : int -> unit
(** [arm n] (n >= 1) enables the module and makes the [n]-th subsequent
    {!hit} raise {!Injected}; earlier hits only count.  After the fault
    fires the module returns to counting-only mode. *)

val disarm : unit -> unit
(** Cancel a pending countdown and zero the observation counter;
    counting stays in whatever state {!enable} chose. *)

val reset : unit -> unit
(** Return the module to its pristine disabled state: disabled,
    disarmed, observation counter and last-injected site cleared.  The
    countdown is process-global mutable state, so every harness that
    arms it must call [reset] from a [Fun.protect] finalizer —
    otherwise a test aborted between [arm] and the fault (an alcotest
    failure, an interrupted qcheck shrink run) leaks an armed countdown
    into the next test.  Cumulative per-site counts are kept (see
    {!reset_site_counts}). *)

val observed_hits : unit -> int
(** Hits observed since the last {!arm} or {!disarm}. *)

val injected : unit -> site option
(** Site of the most recent injected fault, if any since {!arm}. *)

val site_count : site -> int
(** Cumulative hits per site since {!reset_site_counts}; a harness uses
    this to prove every site was actually exercised. *)

val reset_site_counts : unit -> unit

val hit : site -> unit
(** Called by the execution layers at each injection site.  No-op when
    the module is disabled; raises {!Injected} when an armed countdown
    reaches zero. *)

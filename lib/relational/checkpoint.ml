(* Checkpoint store: numbered, CRC-validated snapshots published by
   atomic rename.

   A checkpoint bounds recovery work: restore loads the newest valid
   checkpoint and replays only the WAL generation that follows it.
   This module is payload-agnostic — it stores opaque bytes; the
   durability layer above decides what a database image contains
   (catalog, tables, rule definitions, counters) and how to marshal
   it.  Keeping the framing here means the torn/corrupt-file handling
   is shared with the WAL and testable in isolation.

   Publication protocol, with its two fault sites:

     1. [Fault.Checkpoint_write]  — a crash before any byte exists
     2. write checkpoint.tmp, flush, fsync
     3. [Fault.Checkpoint_rename] — tmp is durable but not published
     4. rename checkpoint.tmp -> checkpoint.%06d   (atomic)
     5. fsync the directory (best effort)

   A crash at any step leaves either no new file or a stray tmp (which
   [latest] ignores and the next checkpoint overwrites) — the previous
   generation stays the newest valid checkpoint until the rename
   lands, so recovery never sees a half-written snapshot. *)

let file_header = "SOPRCKPT1\n"

let file_name gen = Printf.sprintf "checkpoint.%06d" gen
let path ~dir ~gen = Filename.concat dir (file_name gen)
let tmp_path ~dir = Filename.concat dir "checkpoint.tmp"

let put_le bytes off width v =
  for i = 0 to width - 1 do
    Bytes.set bytes (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_le s off width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

(* header | gen:8 LE | len:8 LE | crc32:4 LE | payload *)
let header_len = String.length file_header + 8 + 8 + 4

let encode ~gen payload =
  let hdr = String.length file_header in
  let len = String.length payload in
  let b = Bytes.create (header_len + len) in
  Bytes.blit_string file_header 0 b 0 hdr;
  put_le b hdr 8 gen;
  put_le b (hdr + 8) 8 len;
  put_le b (hdr + 16) 4 (Wal.crc32 payload);
  Bytes.blit_string payload 0 b header_len len;
  Bytes.unsafe_to_string b

(* Decode a checkpoint file's bytes; [None] for anything that is not a
   complete, CRC-valid snapshot of the expected generation. *)
let decode ~gen contents =
  let hdr = String.length file_header in
  if String.length contents < header_len then None
  else if String.sub contents 0 hdr <> file_header then None
  else
    let file_gen = get_le contents hdr 8 in
    let len = get_le contents (hdr + 8) 8 in
    let crc = get_le contents (hdr + 16) 4 in
    if file_gen <> gen then None
    else if String.length contents <> header_len + len then None
    else
      let payload = String.sub contents header_len len in
      if Wal.crc32 payload <> crc then None else Some payload

let write ~dir ~gen payload =
  Fault.hit Fault.Checkpoint_write;
  let tmp = tmp_path ~dir in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     Fileio.write_fully fd (encode ~gen payload);
     Fileio.fsync fd
   with
  | () -> Unix.close fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  Fault.hit Fault.Checkpoint_rename;
  Unix.rename tmp (path ~dir ~gen);
  Fileio.fsync_dir dir

let read ~dir ~gen =
  let p = path ~dir ~gen in
  if not (Sys.file_exists p) then None
  else
    let ic = open_in_bin p in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode ~gen contents

(* All generations with a checkpoint file present, ascending.  Presence
   is not validity: [latest] re-reads and CRC-checks from the newest
   down. *)
let generations ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match Scanf.sscanf_opt name "checkpoint.%06d%!" (fun g -> g) with
           | Some g when file_name g = name -> Some g
           | _ -> None)
    |> List.sort compare

let latest ~dir =
  let rec newest_valid = function
    | [] -> None
    | gen :: older -> (
      match read ~dir ~gen with
      | Some payload -> Some (gen, payload)
      | None -> newest_valid older)
  in
  newest_valid (List.rev (generations ~dir))

let remove ~dir ~gen =
  let p = path ~dir ~gen in
  if Sys.file_exists p then Sys.remove p

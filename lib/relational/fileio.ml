(* Signal-safe file primitives shared by the WAL and the checkpoint
   store (see the .mli).  The EINTR retry matters: a signal landing
   mid-[Unix.write] — a SIGCHLD from a dead client process, an
   interval timer, the recovery harness's own machinery — raises
   [Unix_error (EINTR, _, _)] and would otherwise abort a commit or
   checkpoint that a simple retry completes. *)

let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let write_fully fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let written = ref 0 in
  while !written < len do
    written :=
      !written + retry_eintr (fun () -> Unix.write fd b !written (len - !written))
  done

let fsync fd = retry_eintr (fun () -> Unix.fsync fd)

let fsync_dir dir =
  match retry_eintr (fun () -> Unix.openfile dir [ Unix.O_RDONLY ] 0) with
  | fd ->
    (try fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

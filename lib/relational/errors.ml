(* Error values shared by every layer of the system.  All user-facing
   failures (bad SQL, schema violations, semantic errors during rule
   processing) are reported through [Error]; internal invariant
   violations use assertions instead. *)

type t =
  | Parse_error of { line : int; col : int; msg : string }
  | Unknown_table of string
  | Duplicate_table of string
  | Unknown_column of { table : string option; column : string }
  | Ambiguous_column of string
  | Type_error of string
  | Arity_error of { table : string; expected : int; got : int }
  | Not_null_violation of { table : string; column : string }
  | Unknown_rule of string
  | Duplicate_rule of string
  | Priority_cycle of string list
  | Rule_limit_exceeded of { rule : string; steps : int }
  | Unknown_procedure of string
  | Invalid_transition_reference of string
  | Transaction_error of string
  | Semantic_error of string
  | Unknown_prepared of string
  | Duplicate_prepared of string
  | Prepared_arity of { name : string; expected : int; got : int }
  | Parameter_error of string

exception Error of t

let to_string = function
  | Parse_error { line; col; msg } ->
    Printf.sprintf "parse error at line %d, column %d: %s" line col msg
  | Unknown_table t -> Printf.sprintf "unknown table %S" t
  | Duplicate_table t -> Printf.sprintf "table %S already exists" t
  | Unknown_column { table = Some t; column } ->
    Printf.sprintf "unknown column %S in table %S" column t
  | Unknown_column { table = None; column } ->
    Printf.sprintf "unknown column %S" column
  | Ambiguous_column c -> Printf.sprintf "ambiguous column reference %S" c
  | Type_error msg -> Printf.sprintf "type error: %s" msg
  | Arity_error { table; expected; got } ->
    Printf.sprintf "wrong number of values for table %S: expected %d, got %d"
      table expected got
  | Not_null_violation { table; column } ->
    Printf.sprintf "null value in non-null column %S of table %S" column table
  | Unknown_rule r -> Printf.sprintf "unknown rule %S" r
  | Duplicate_rule r -> Printf.sprintf "rule %S already exists" r
  | Priority_cycle rs ->
    Printf.sprintf "priority ordering creates a cycle: %s"
      (String.concat " -> " rs)
  | Rule_limit_exceeded { rule; steps } ->
    Printf.sprintf
      "rule processing exceeded its step limit at action %d (last rule %S); \
       possible non-terminating rule set"
      steps rule
  | Unknown_procedure p -> Printf.sprintf "unknown external procedure %S" p
  | Invalid_transition_reference msg ->
    Printf.sprintf
      "reference to transition table not matching any transition predicate: %s"
      msg
  | Transaction_error msg -> Printf.sprintf "transaction error: %s" msg
  | Semantic_error msg -> Printf.sprintf "semantic error: %s" msg
  | Unknown_prepared name -> Printf.sprintf "unknown prepared statement %S" name
  | Duplicate_prepared name ->
    Printf.sprintf "prepared statement %S already exists" name
  | Prepared_arity { name; expected; got } ->
    Printf.sprintf
      "wrong number of arguments for prepared statement %S: expected %d, got %d"
      name expected got
  | Parameter_error msg -> Printf.sprintf "parameter error: %s" msg

let raise_error e = raise (Error e)
let semantic fmt = Printf.ksprintf (fun msg -> raise_error (Semantic_error msg)) fmt
let type_error fmt = Printf.ksprintf (fun msg -> raise_error (Type_error msg)) fmt

let pp ppf e = Fmt.string ppf (to_string e)

(* Make [Error] print usefully in test failures and uncaught contexts. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Sopr error: " ^ to_string e)
    | _ -> None)

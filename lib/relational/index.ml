(* A secondary index: an access path from the values of one column to
   the set of handles of rows holding that value.  Indexes come in two
   kinds: [`Hash] supports equality probes only; [`Ordered] also
   supports range probes.  (Both kinds share the balanced-tree
   representation — the kind records the capability the index was
   declared with, which is what the planner consults.)

   The index is a persistent map, so it lives inside the (persistent)
   table value it indexes: snapshotting a table — and hence a database
   state — snapshots its indexes for free, which is what keeps index
   probes consistent against the pre-transition states the rule engine
   retains for transition tables and rollback.

   NULL is never indexed: SQL equality against NULL is never TRUE, so a
   probe for NULL correctly finds nothing, and rows whose indexed
   column is NULL are reachable only by scan (where the predicate
   evaluates to UNKNOWN and excludes them anyway).  The same holds for
   ranges: a comparison against NULL is UNKNOWN, so a range probe with
   a NULL bound finds nothing.

   Keys are compared with [Value.compare_total], whose behaviour on the
   comparable kinds (numeric cross-kind ordering, byte-wise strings,
   FALSE < TRUE) agrees with SQL comparison on the values a probe is
   allowed to use (see [compatible]). *)

module Value_map = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_total
end)

type kind = [ `Hash | `Ordered ]

type t = {
  ix_name : string;
  ix_column : string;
  ix_pos : int; (* position of the column in the table schema *)
  ix_kind : kind;
  ix_distinct : int; (* distinct non-null keys, kept incrementally *)
  entries : Handle.Set.t Value_map.t;
}

let create ~name ~column ~pos ~kind =
  {
    ix_name = name;
    ix_column = column;
    ix_pos = pos;
    ix_kind = kind;
    ix_distinct = 0;
    entries = Value_map.empty;
  }

let name t = t.ix_name
let column t = t.ix_column
let pos t = t.ix_pos
let kind t = t.ix_kind
let kind_name = function `Hash -> "hash" | `Ordered -> "ordered"

let add t v h =
  if Value.is_null v then t
  else
    match Value_map.find_opt v t.entries with
    | Some set ->
      { t with entries = Value_map.add v (Handle.Set.add h set) t.entries }
    | None ->
      {
        t with
        entries = Value_map.add v (Handle.Set.singleton h) t.entries;
        ix_distinct = t.ix_distinct + 1;
      }

let remove t v h =
  if Value.is_null v then t
  else
    match Value_map.find_opt v t.entries with
    | None -> t
    | Some set ->
      let set = Handle.Set.remove h set in
      if Handle.Set.is_empty set then
        {
          t with
          entries = Value_map.remove v t.entries;
          ix_distinct = t.ix_distinct - 1;
        }
      else { t with entries = Value_map.add v set t.entries }

let probe t v =
  if Value.is_null v then Handle.Set.empty
  else Option.value (Value_map.find_opt v t.entries) ~default:Handle.Set.empty

(* A range bound: the key value and whether the bound is inclusive. *)
type bound = Value.t * bool

let range t ~lower ~upper =
  let null_bound = function Some (v, _) -> Value.is_null v | None -> false in
  (* A comparison against NULL is UNKNOWN for every row, so the range
     selects nothing — mirroring the scan path faithfully. *)
  if null_bound lower || null_bound upper then Handle.Set.empty
  else
    let from_lower =
      match lower with
      | None -> Value_map.to_seq t.entries
      | Some (lv, incl) ->
        let s = Value_map.to_seq_from lv t.entries in
        if incl then s
        else Seq.drop_while (fun (k, _) -> Value.compare_total k lv = 0) s
    in
    let below_upper k =
      match upper with
      | None -> true
      | Some (uv, incl) ->
        let c = Value.compare_total k uv in
        if incl then c <= 0 else c < 0
    in
    Seq.fold_left
      (fun acc (_, set) -> Handle.Set.union set acc)
      Handle.Set.empty
      (Seq.take_while (fun (k, _) -> below_upper k) from_lower)

(* The literal prefix of a LIKE pattern (the characters before the
   first wildcard), and the smallest string greater than every string
   with that prefix — together a half-open key range covering every
   possible match.  The range is a superset of the matches; the caller
   re-applies the full predicate.  [None] upper means unbounded (the
   prefix is all 0xff bytes). *)
let like_prefix pattern =
  let n = String.length pattern in
  let rec prefix_len i =
    if i >= n then i
    else match pattern.[i] with '%' | '_' -> i | _ -> prefix_len (i + 1)
  in
  let len = prefix_len 0 in
  if len = 0 then None
  else
    let prefix = String.sub pattern 0 len in
    let rec succ_of i =
      if i < 0 then None
      else if prefix.[i] = '\xff' then succ_of (i - 1)
      else
        Some (String.sub prefix 0 i ^ String.make 1 (Char.chr (Char.code prefix.[i] + 1)))
    in
    Some (prefix, succ_of (len - 1))

let cardinality t = t.ix_distinct

(* May [v] be used as a probe key against a column of type [ty]?
   Comparable kinds only: probing silently returns the empty set for
   absent keys, so a value that would make the scan path raise a type
   error (e.g. a string against an int column) must NOT be probed — the
   caller falls back to the scan, which reports the error faithfully.
   NULL is always an acceptable key (it finds nothing, as SQL
   requires). *)
let compatible ty v =
  match v, ty with
  | Value.Null, _ -> true
  | (Value.Int _ | Value.Float _), (Schema.T_int | Schema.T_float) -> true
  | Value.Str _, Schema.T_string -> true
  | Value.Bool _, Schema.T_bool -> true
  | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _), _ -> false

let pp ppf t =
  Fmt.pf ppf "%s index %s on (%s) [%d keys]" (kind_name t.ix_kind) t.ix_name
    t.ix_column (cardinality t)

(* A secondary hash index: an equality access path from the values of
   one column to the set of handles of rows holding that value.

   The index is a persistent map, so it lives inside the (persistent)
   table value it indexes: snapshotting a table — and hence a database
   state — snapshots its indexes for free, which is what keeps index
   probes consistent against the pre-transition states the rule engine
   retains for transition tables and rollback.

   NULL is never indexed: SQL equality against NULL is never TRUE, so a
   probe for NULL correctly finds nothing, and rows whose indexed
   column is NULL are reachable only by scan (where the predicate
   evaluates to UNKNOWN and excludes them anyway).

   Keys are compared with [Value.compare_total], whose numeric
   cross-kind behaviour (Int 1 = Float 1.0) agrees with SQL equality on
   comparable values — the only values a probe is allowed to use (see
   [compatible]). *)

module Value_map = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_total
end)

type t = {
  ix_name : string;
  ix_column : string;
  ix_pos : int; (* position of the column in the table schema *)
  entries : Handle.Set.t Value_map.t;
}

let create ~name ~column ~pos =
  { ix_name = name; ix_column = column; ix_pos = pos; entries = Value_map.empty }

let name t = t.ix_name
let column t = t.ix_column
let pos t = t.ix_pos

let add t v h =
  if Value.is_null v then t
  else
    let set =
      Option.value (Value_map.find_opt v t.entries) ~default:Handle.Set.empty
    in
    { t with entries = Value_map.add v (Handle.Set.add h set) t.entries }

let remove t v h =
  if Value.is_null v then t
  else
    match Value_map.find_opt v t.entries with
    | None -> t
    | Some set ->
      let set = Handle.Set.remove h set in
      let entries =
        if Handle.Set.is_empty set then Value_map.remove v t.entries
        else Value_map.add v set t.entries
      in
      { t with entries }

let probe t v =
  if Value.is_null v then Handle.Set.empty
  else Option.value (Value_map.find_opt v t.entries) ~default:Handle.Set.empty

let cardinality t = Value_map.cardinal t.entries

(* May [v] be used as a probe key against a column of type [ty]?
   Comparable kinds only: probing silently returns the empty set for
   absent keys, so a value that would make the scan path raise a type
   error (e.g. a string against an int column) must NOT be probed — the
   caller falls back to the scan, which reports the error faithfully.
   NULL is always an acceptable key (it finds nothing, as SQL
   requires). *)
let compatible ty v =
  match v, ty with
  | Value.Null, _ -> true
  | (Value.Int _ | Value.Float _), (Schema.T_int | Schema.T_float) -> true
  | Value.Str _, Schema.T_string -> true
  | Value.Bool _, Schema.T_bool -> true
  | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _), _ -> false

let pp ppf t =
  Fmt.pf ppf "index %s on (%s) [%d keys]" t.ix_name t.ix_column
    (cardinality t)

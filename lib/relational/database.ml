(* A database state: a catalog of tables.  States are persistent
   values; the engine keeps the current state in a reference and passes
   old states around freely (pre-transition states, transition tables,
   rollback), exactly as the paper's semantics requires. *)

module Str_map = Map.Make (String)

type t = { tables : Table.t Str_map.t }

let empty = { tables = Str_map.empty }

let create_table db schema =
  let name = schema.Schema.table_name in
  if Str_map.mem name db.tables then
    Errors.raise_error (Errors.Duplicate_table name);
  { tables = Str_map.add name (Table.create schema) db.tables }

let drop_table db name =
  if not (Str_map.mem name db.tables) then
    Errors.raise_error (Errors.Unknown_table name);
  { tables = Str_map.remove name db.tables }

let has_table db name = Str_map.mem name db.tables

let table db name =
  match Str_map.find_opt name db.tables with
  | Some t -> t
  | None -> Errors.raise_error (Errors.Unknown_table name)

let schema db name = Table.schema (table db name)
let table_names db = List.map fst (Str_map.bindings db.tables)

let replace_table db tbl =
  { tables = Str_map.add (Table.name tbl) tbl db.tables }

(* Primitive mutations.  Each returns the new state; validation/
   coercion against the schema happens here so no layer can store an
   ill-typed row. *)

let insert db name row =
  let tbl = table db name in
  let row = Schema.coerce_row (Table.schema tbl) row in
  let handle = Handle.fresh name in
  (replace_table db (Table.insert tbl handle row), handle)

let delete db handle =
  let tbl = table db (Handle.table handle) in
  replace_table db (Table.delete tbl handle)

let update db handle row =
  let tbl = table db (Handle.table handle) in
  let row = Schema.coerce_row (Table.schema tbl) row in
  replace_table db (Table.update tbl handle row)

(* Look a tuple up in a given state; used both for current values and
   for values in pre-transition states. *)
let find_row db handle =
  match Str_map.find_opt (Handle.table handle) db.tables with
  | None -> None
  | Some tbl -> Table.find tbl handle

let get_row db handle =
  match find_row db handle with
  | Some row -> row
  | None ->
    Errors.semantic "tuple %s not found in this database state"
      (Fmt.str "%a" Handle.pp handle)

(* {2 Secondary indexes}

   Index names are unique across the whole database (like SQL index
   namespaces), so DROP INDEX needs only the name. *)

let find_index_owner db ix_name =
  Str_map.fold
    (fun _ tbl found ->
      match found with
      | Some _ -> found
      | None -> if Table.has_index tbl ix_name then Some tbl else None)
    db.tables None

let create_index db ~ix_name ~table:tbl_name ~column ~kind =
  (match find_index_owner db ix_name with
  | Some owner ->
    Errors.semantic "index %S already exists (on table %S)" ix_name
      (Table.name owner)
  | None -> ());
  let tbl = table db tbl_name in
  replace_table db (Table.create_index tbl ~ix_name ~column ~kind)

let drop_index db ix_name =
  match find_index_owner db ix_name with
  | None -> Errors.semantic "unknown index %S" ix_name
  | Some tbl -> replace_table db (Table.drop_index tbl ix_name)

let indexes db =
  Str_map.fold
    (fun name tbl acc ->
      acc @ List.map (fun ix -> (name, ix)) (Table.index_list tbl))
    db.tables []

let probe db ~table:tbl_name ~column values =
  match Str_map.find_opt tbl_name db.tables with
  | None -> None
  | Some tbl -> Table.probe tbl ~column values

let range_probe db ~table:tbl_name ~column ~lower ~upper =
  match Str_map.find_opt tbl_name db.tables with
  | None -> None
  | Some tbl -> Table.range_probe tbl ~column ~lower ~upper

let column_stats db ~table:tbl_name ~column =
  match Str_map.find_opt tbl_name db.tables with
  | None -> None
  | Some tbl -> Table.column_stats tbl column

let total_rows db =
  Str_map.fold (fun _ tbl acc -> acc + Table.cardinality tbl) db.tables 0

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (_, tbl) -> Table.pp ppf tbl))
    (Str_map.bindings db.tables)

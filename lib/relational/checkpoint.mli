(** Checkpoint store: numbered, CRC-validated snapshots published by
    atomic rename.

    Payload-agnostic: stores opaque bytes under a generation number.
    The durability layer decides what a snapshot contains; this module
    guarantees that {!latest} only ever returns a complete, CRC-valid
    snapshot — a crash during {!write} leaves the previous generation
    in place.

    {!write} passes {!Fault.Checkpoint_write} before the temp file is
    written and {!Fault.Checkpoint_rename} after the temp file is
    durable but before the atomic rename publishes it. *)

val file_name : int -> string
(** [file_name gen] = ["checkpoint.%06d"]. *)

val path : dir:string -> gen:int -> string

val write : dir:string -> gen:int -> string -> unit
(** Durably publish a snapshot: temp file + fsync + atomic rename +
    directory fsync. *)

val read : dir:string -> gen:int -> string option
(** The generation's payload, or [None] if missing, incomplete or
    corrupt. *)

val latest : dir:string -> (int * string) option
(** The newest generation with a valid snapshot.  Invalid newer files
    (from a crash mid-publication with a non-atomic filesystem, or
    manual corruption) are skipped, not fatal. *)

val generations : dir:string -> int list
(** Generations with a checkpoint file present (valid or not),
    ascending.  A missing directory reads as empty. *)

val remove : dir:string -> gen:int -> unit
(** Delete one generation's snapshot if present (checkpoint pruning). *)

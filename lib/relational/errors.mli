(** Error reporting shared by every layer.

    All user-facing failures — malformed SQL, schema violations,
    semantic errors during query or rule processing — are raised as
    {!Error}; internal invariant violations use assertions. *)

type t =
  | Parse_error of { line : int; col : int; msg : string }
  | Unknown_table of string
  | Duplicate_table of string
  | Unknown_column of { table : string option; column : string }
  | Ambiguous_column of string
  | Type_error of string
  | Arity_error of { table : string; expected : int; got : int }
  | Not_null_violation of { table : string; column : string }
  | Unknown_rule of string
  | Duplicate_rule of string
  | Priority_cycle of string list
      (** The offending path [r1 -> ... -> rn] that would close a cycle. *)
  | Rule_limit_exceeded of { rule : string; steps : int }
      (** The run-time divergence guard fired (paper Section 4.1,
          footnote 7); [rule] is the last rule that executed. *)
  | Unknown_procedure of string
  | Invalid_transition_reference of string
      (** A transition table was referenced outside rule processing, or
          by a rule without a matching basic transition predicate
          (paper Section 3's syntactic restriction). *)
  | Transaction_error of string
  | Semantic_error of string
  | Unknown_prepared of string
  | Duplicate_prepared of string
  | Prepared_arity of { name : string; expected : int; got : int }
      (** EXECUTE supplied the wrong number of arguments. *)
  | Parameter_error of string
      (** A positional '?' parameter appeared where none is allowed
          (DDL, rule bodies, direct execution) or was left unbound. *)

exception Error of t

val to_string : t -> string
(** Render an error for the user. *)

val raise_error : t -> 'a
(** [raise_error e] raises {!Error}[ e]. *)

val semantic : ('a, unit, string, 'b) format4 -> 'a
(** [semantic fmt ...] raises a {!Semantic_error} built with [fmt]. *)

val type_error : ('a, unit, string, 'b) format4 -> 'a
(** [type_error fmt ...] raises a {!Type_error} built with [fmt]. *)

val pp : Format.formatter -> t -> unit

(** Signal-safe file primitives shared by the WAL and the checkpoint
    store.

    [Unix.write] (and friends) can fail with [EINTR] when a signal with
    a handler lands mid-call — guaranteed traffic once a server process
    handles [SIGCHLD] or timers, and already possible under the
    fork+SIGKILL recovery harness.  A plain write loop turns that
    transient condition into a commit or checkpoint failure; every
    helper here retries instead, so a durability-path write only fails
    for real I/O errors. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run the thunk, retrying as long as it raises
    [Unix.Unix_error (EINTR, _, _)].  The thunk must be safe to
    re-invoke after an interrupted system call (true of [read], [write],
    [fsync], [openfile], [waitpid], ...). *)

val write_fully : Unix.file_descr -> string -> unit
(** Write the whole string, looping over partial writes and retrying
    interrupted ones.  Raises the underlying [Unix.Unix_error] for any
    failure other than [EINTR]. *)

val fsync : Unix.file_descr -> unit
(** [Unix.fsync] with [EINTR] retry. *)

val fsync_dir : string -> unit
(** Best-effort directory sync so a freshly created or renamed file
    survives a crash of the whole machine; failures (filesystems that
    refuse fsync on directories) are ignored — the recovery harness
    only models process death, where directory entries already
    persist. *)

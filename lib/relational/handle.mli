(** System tuple handles (paper Section 2): distinct, non-reusable
    values identifying a tuple and its containing table.

    Handles of deleted tuples remain valid identifiers of tuples that
    existed in a previous database state — transition effects and
    transition information rely on this. *)

type t

val fresh : string -> t
(** [fresh table] mints a new handle for a tuple of [table].  Handles
    are globally unique for the lifetime of the process and never
    reused. *)

val restore : id:int -> string -> t
(** [restore ~id table] rebuilds the handle a write-ahead-log record
    named.  For recovery only: the caller is responsible for replaying
    a log that minted [id] in the first place, and for
    {!advance_counter} afterwards so future {!fresh} handles stay
    unique. *)

val counter_value : unit -> int
(** The current value of the global handle counter (the id of the most
    recently minted handle).  Logged at each commit so recovery can
    restore uniqueness. *)

val advance_counter : int -> unit
(** [advance_counter n] makes the global counter at least [n]: handles
    minted from now on have ids greater than [n].  Never decreases the
    counter, so it is safe when other databases live in the same
    process. *)

val id : t -> int
val table : t -> string
(** The name of the table the handle's tuple belongs (or belonged) to. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Handle order is creation (insertion) order. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

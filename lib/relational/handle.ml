(* System tuple handles (paper Section 2): distinct, non-reusable
   values identifying a tuple and its containing table.  Handles of
   deleted tuples remain valid identifiers of tuples that existed in a
   previous database state. *)

type t = { id : int; table : string }

(* Non-reusable: a single global counter for the whole process.  The
   paper assumes a single stream of operation blocks, so no
   synchronization is required. *)
let counter = ref 0

let fresh table =
  incr counter;
  { id = !counter; table }

(* Recovery support: WAL replay re-creates tuples under their original
   handle ids, and after replay advances the counter so handles minted
   by the recovered process never collide with logged ones. *)
let restore ~id table = { id; table }
let counter_value () = !counter
let advance_counter n = if n > !counter then counter := n

let id h = h.id
let table h = h.table
let equal a b = a.id = b.id
let compare a b = compare a.id b.id
let hash h = h.id

let pp ppf h = Fmt.pf ppf "#%d@%s" h.id h.table

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

(** A minimal blocking client for the server's line protocol. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** TCP-connect to a server ([host] defaults to 127.0.0.1). *)

val request : t -> string -> (string, string) result
(** Send one request line (a SQL script or a ['\']-meta command) and
    read its framed response: [Ok body] / [Error body].  Raises
    [End_of_file] if the server closes the connection, and
    [Unix.Unix_error (EPIPE, _, _)] if it is already gone when we
    write. *)

val close : t -> unit

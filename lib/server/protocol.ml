(* The wire protocol, shared by the server's connection handler and the
   client library.

   Line-based, newline-framed:

     request   :=  one line — a ';'-separated SQL script, or a meta
                   command starting with '\' (\q, \stats, \checkpoint,
                   \version)
     response  :=  "ok <k>\n"  k payload lines
                |  "err <k>\n" k payload lines

   Payload lines never contain newlines (multi-line renderings are
   split and counted), so a reader needs no lookahead and a partial
   response is detectable by the line count.

   Writes go through [Fileio.write_fully] on the raw descriptor — one
   write per response, EINTR-retried, and failures surface as
   [Unix.Unix_error (EPIPE | ECONNRESET, ...)] rather than a channel's
   [Sys_error], which is what lets the server treat a dead client as a
   per-connection event. *)

let send_line fd line =
  Relational.Fileio.write_fully fd (line ^ "\n")

let write_response fd ~ok body =
  let lines = if body = "" then [] else String.split_on_char '\n' body in
  let buf = Buffer.create (String.length body + 16) in
  Buffer.add_string buf (if ok then "ok " else "err ");
  Buffer.add_string buf (string_of_int (List.length lines));
  Buffer.add_char buf '\n';
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Relational.Fileio.write_fully fd (Buffer.contents buf)

exception Malformed of string

let read_response ic =
  let status = input_line ic in
  match String.index_opt status ' ' with
  | None -> raise (Malformed status)
  | Some i -> (
    let tag = String.sub status 0 i in
    let count = String.sub status (i + 1) (String.length status - i - 1) in
    match (tag, int_of_string_opt count) with
    | ("ok" | "err"), Some n when n >= 0 ->
      let lines = List.init n (fun _ -> input_line ic) in
      let body = String.concat "\n" lines in
      if tag = "ok" then Ok body else Error body
    | _ -> raise (Malformed status))

(* The concurrent-session server: many client sessions multiplexed over
   one engine, with snapshot reads and first-committer-wins commits.

   The paper's semantics — a sequence of committed transitions, each
   one transaction's net effect — never required a single session; it
   only requires that the committed sequence LOOKS serial.  The server
   keeps exactly that: a PRIMARY engine holding the committed state
   (it never runs transactions itself), a monotone version counter,
   and a history of committed transitions' write sets.  Sessions work
   on [Engine.fork]s of the committed state:

   - Reads outside a transaction evaluate against a per-session
     snapshot fork, refreshed when the committed version moves.  The
     persistent storage makes the snapshot a pointer copy; readers
     never block writers and hold no locks while evaluating.

   - A transaction is a fork taken at some version v.  Its operations
     and rule processing run entirely on the fork.  At commit, the
     transaction's composite [Effect]'s write set (D ∪ U handles) is
     intersected with the write sets of transitions committed after v:
     any overlap, or any DDL after v, is a serialization failure and
     the transaction aborts with its exact snapshot restore (the PR2
     abort path).  First committer wins.  Inserts never collide —
     handles are minted from a process-global counter, so two sessions
     can never create the same handle.

     Write-write validation alone is SNAPSHOT ISOLATION: write skew
     and phantoms are possible, because nothing records what a
     transaction READ — in particular a scalar subquery or a rule
     condition evaluated during rule processing leaves no trace in the
     effect at all.  When the engine is configured with
     [track_selects] the server escalates to SERIALIZABLE: every
     transaction also claims, at table granularity, the set of base
     tables its statements could have read — collected statically from
     the statement ASTs (so a predicate that matched nothing still
     claims its table) and closed over the rule catalog (so reads
     performed by any rule the transaction could have woken are
     claimed too).  A commit conflicts if its read claims intersect
     the tables WRITTEN by any transition after v.  Table granularity
     over-approximates — disjoint-row writers to a table one of them
     reads will conflict and retry — which costs throughput under
     contention, never correctness.

   - A winning transaction becomes durable (WAL append — direct or via
     group commit), and only THEN is applied to the primary and
     published under the next version.  The claim-to-publish window is
     tracked in [in_flight], so a concurrent committer conflicts with a
     transaction that is durable (or flushing) but not yet published.
     Publishes happen strictly in claim order, and a group-commit
     ticket is taken at claim time under the state lock, so claim
     order, WAL order and version order are one and the same — replay
     of the log reproduces exactly the published sequence.

   Locking: [lock] guards version/history/in-flight/actives and every
   primary-engine mutation; the durable layer's own I/O lock guards the
   disk (order: state lock first, never the reverse); group-commit
   tickets are taken (briefly, under the state lock) at claim time and
   awaited on its private mutex/condvar with neither lock held.  Session
   threads are systhreads — evaluation interleaves at safepoints
   within one domain, so the shared persistent structures need no
   further synchronization; the only shared mutable caches (compiled
   rule forms) are write-once per generation, where a race costs a
   recompile, not correctness. *)

open Core
module Ast = Sqlf.Ast
module Parser = Sqlf.Parser
module Rule = Rules.Rule
module Wal = Relational.Wal
module Fileio = Relational.Fileio
module Durable = Durability.Durable
module Group_commit = Durability.Group_commit

type mode = Memory | Wal_sync | Wal_nosync | Wal_group

let mode_name = function
  | Memory -> "memory"
  | Wal_sync -> "sync"
  | Wal_nosync -> "nosync"
  | Wal_group -> "group"

type stats = {
  mutable sv_connections : int;
  mutable sv_requests : int;
  mutable sv_commits : int;  (* published transactions, DDL excluded *)
  mutable sv_conflicts : int;  (* serialization failures *)
  mutable sv_errors : int;  (* requests answered with err *)
  mutable sv_disconnects : int;  (* sessions that died mid-conversation *)
  mutable sv_checkpoint_failures : int;
}

type history_entry = {
  h_version : int;
  h_writes : Handle.Set.t;  (* deleted ∪ updated handles *)
  h_tables : Effect.Col_set.t;  (* tables written: inserted ∪ deleted ∪ updated *)
  h_ddl : bool;  (* DDL conflicts with every concurrent transaction *)
}

type t = {
  lock : Mutex.t;
  commit_cond : Condition.t;  (* signalled whenever in_flight shrinks *)
  primary : System.t;
  durable : Durable.t option;
  group : Group_commit.t option;
  serializable : bool;  (* table-granularity read claims (track_selects) *)
  mutable version : int;
  mutable history : history_entry list;  (* newest first, pruned *)
  (* txn id, write set, tables written *)
  mutable in_flight : (int * Handle.Set.t * Effect.Col_set.t) list;
  mutable active_txns : (int * int) list;  (* session id, start version *)
  mutable next_session : int;
  mutable next_txn : int;
  stats : stats;
}

type session = {
  server : t;
  sid : int;
  mutable txn : System.t option;  (* the open transaction's fork *)
  mutable txn_id : int;
  mutable start_version : int;
  mutable committed_at : int;  (* version of this session's last commit *)
  mutable reader : (int * System.t) option;  (* cached snapshot fork *)
  (* statement-level predicate footprint of the open transaction: the
     base tables its statements filter over (scan) and every table they
     reference at all (touch), collected from the ASTs — a predicate
     that matched zero tuples in the snapshot appears here even though
     the effect never saw it *)
  mutable scan_tables : Effect.Col_set.t;
  mutable touch_tables : Effect.Col_set.t;
  (* the session's prepared-statement namespace.  It lives on the
     SESSION, not on any engine fork — transaction forks and snapshot
     readers are transient, so the server re-installs a statement into
     whichever fork executes it.  A cached reader fork keeps its
     compiled plan until the committed version moves. *)
  prepared : (string, Ast.op) Hashtbl.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?config ?checkpoint_interval ?data_dir mode =
  let durable, primary =
    match mode with
    | Memory -> (None, System.create ?config ())
    | Wal_sync | Wal_nosync | Wal_group ->
      let dir =
        match data_dir with
        | Some d -> d
        | None ->
          Errors.semantic "server mode %S requires a data directory"
            (mode_name mode)
      in
      let sync = mode <> Wal_nosync in
      let d, _info = Durable.open_dir ?config ?checkpoint_interval ~sync dir in
      (Some d, Durable.system d)
  in
  let group =
    match (mode, durable) with
    | Wal_group, Some d ->
      Some (Group_commit.create ~flush:(fun txns -> Durable.append_txn_batch d txns))
    | _ -> None
  in
  {
    lock = Mutex.create ();
    commit_cond = Condition.create ();
    primary;
    durable;
    group;
    serializable =
      (match config with
      | Some c -> c.Engine.track_selects
      | None -> false);
    version = 0;
    history = [];
    in_flight = [];
    active_txns = [];
    next_session = 0;
    next_txn = 0;
    stats =
      {
        sv_connections = 0;
        sv_requests = 0;
        sv_commits = 0;
        sv_conflicts = 0;
        sv_errors = 0;
        sv_disconnects = 0;
        sv_checkpoint_failures = 0;
      };
  }

let system t = t.primary
let version t = with_lock t (fun () -> t.version)
let stats t = t.stats
let group_stats t = Option.map Group_commit.stats t.group
let group_pending t = Option.map Group_commit.pending t.group

let set_group_paused t paused =
  match t.group with
  | Some g -> Group_commit.set_paused g paused
  | None -> ()

let close t =
  match t.durable with Some d -> Durable.close d | None -> ()

(* ------------------------------------------------------------------ *)
(* Conflict detection                                                  *)

let writes_of (eff : Effect.t) =
  Handle.Map.fold (fun h _ s -> Handle.Set.add h s) eff.Effect.upd eff.Effect.del

(* Tables the transaction READ at some granularity: a delete or update
   reached its tuples through a predicate, and a tracked select read
   them — each is a table-level read as far as concurrent writers are
   concerned.  Seeds the serializable-mode claim set alongside the
   statement footprints. *)
let read_tables_of (eff : Effect.t) =
  let add h acc = Effect.Col_set.add (Handle.table h) acc in
  let acc = Handle.Set.fold add eff.Effect.del Effect.Col_set.empty in
  let acc = Handle.Map.fold (fun h _ a -> add h a) eff.Effect.upd acc in
  Handle.Map.fold (fun h _ a -> add h a) eff.Effect.sel acc

(* Tables the transaction wrote — what later claimers' read claims are
   validated against. *)
let write_tables_of (eff : Effect.t) =
  let add h acc = Effect.Col_set.add (Handle.table h) acc in
  let acc = Handle.Set.fold add eff.Effect.ins Effect.Col_set.empty in
  let acc = Handle.Set.fold add eff.Effect.del acc in
  Handle.Map.fold (fun h _ a -> add h a) eff.Effect.upd acc

(* Statement-level footprints, from the AST.  [op_scan_tables] is the
   tables an operation's predicates and embedded selects filter over —
   a read of the table as a whole, claimed even when the predicate
   matched nothing.  [op_touch_tables] adds the write target, seeding
   the rule-cascade closure below. *)
let add_expr_tables acc e =
  Ast.fold_base_tables_expr (fun a tb -> Effect.Col_set.add tb a) acc e

let add_select_tables acc sel =
  Ast.fold_base_tables_select (fun a tb -> Effect.Col_set.add tb a) acc sel

let op_scan_tables acc = function
  | Ast.Insert { source = `Values rows; _ } ->
    List.fold_left (List.fold_left add_expr_tables) acc rows
  | Ast.Insert { source = `Select sel; _ } -> add_select_tables acc sel
  | Ast.Delete { table; where } ->
    let acc = Effect.Col_set.add table acc in
    (match where with None -> acc | Some e -> add_expr_tables acc e)
  | Ast.Update { table; sets; where } ->
    let acc = Effect.Col_set.add table acc in
    let acc = List.fold_left (fun a (_, e) -> add_expr_tables a e) acc sets in
    (match where with None -> acc | Some e -> add_expr_tables acc e)
  | Ast.Select_op sel -> add_select_tables acc sel

let op_touch_tables acc op =
  let acc = op_scan_tables acc op in
  match op with
  | Ast.Insert { table; _ } | Ast.Delete { table; _ } | Ast.Update { table; _ } ->
    Effect.Col_set.add table acc
  | Ast.Select_op _ -> acc

(* Close the claim set over the rule catalog: any active rule the
   transaction's footprint could have woken — directly or through a
   cascade of rule actions — contributes the tables its condition and
   action predicates read, because those reads happened (or would have
   happened serially) during rule processing.  A static fixpoint over
   rule definitions: it over-approximates what actually fired, which
   only costs spurious conflicts, never misses. *)
let rule_closure_claims rules ~touched ~claims =
  let claims = ref claims and touched = ref touched in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Rule.t) ->
        if
          r.Rule.active
          && List.exists
               (fun tb -> Effect.Col_set.mem tb !touched)
               (Rule.relevant_tables r)
        then begin
          let c0 = !claims and t0 = !touched in
          (match Rule.condition r with
          | Some e ->
            claims := add_expr_tables !claims e;
            touched := add_expr_tables !touched e
          | None -> ());
          (match Rule.action r with
          | Ast.Act_block ops ->
            List.iter
              (fun op ->
                claims := op_scan_tables !claims op;
                touched := op_touch_tables !touched op)
              ops
          | Ast.Act_rollback | Ast.Act_call _ -> ());
          if
            not
              (Effect.Col_set.equal c0 !claims
              && Effect.Col_set.equal t0 !touched)
          then changed := true
        end)
      rules
  done;
  !claims

let overlap a b =
  (not (Handle.Set.is_empty a))
  && (not (Handle.Set.is_empty b))
  && Handle.Set.exists (fun h -> Handle.Set.mem h b) a

let overlap_tables a b = not (Effect.Col_set.disjoint a b)

(* Called with the state lock held.  History is pruned to entries newer
   than the oldest active transaction's start, so the scan covers the
   concurrency window, not the whole run.  Handle-granularity
   write-write overlap gives snapshot isolation.  [claims] (empty
   unless the server is serializable) is the transaction's
   table-granularity read set, validated against the tables every
   concurrent transition wrote: a read claim over a written table means
   the snapshot the transaction computed from may be stale, so it must
   retry.  The check is one-directional — a claimer checks transactions
   claimed before it, never the reverse — which is sound because
   publishes happen in claim order ({!await_publish_turn}): reads
   serialized BEFORE a write never needed to see it. *)
let conflicts t ~start_version ~writes ~claims =
  List.exists
    (fun e ->
      e.h_version > start_version
      && (e.h_ddl || overlap writes e.h_writes
          || overlap_tables claims e.h_tables))
    t.history
  || List.exists
       (fun (_, w, wt) -> overlap writes w || overlap_tables claims wt)
       t.in_flight

let prune_history t =
  let min_start =
    List.fold_left (fun acc (_, sv) -> min acc sv) t.version t.active_txns
  in
  t.history <- List.filter (fun e -> e.h_version > min_start) t.history

(* ------------------------------------------------------------------ *)
(* The commit protocol                                                 *)

let serialization_failure () =
  Errors.raise_error
    (Errors.Transaction_error
       "serialization failure: a concurrent transaction committed a \
        conflicting write (retry the transaction)")

let unclaim t txn_id =
  t.in_flight <- List.filter (fun (id, _, _) -> id <> txn_id) t.in_flight;
  Condition.broadcast t.commit_cond

(* The in-flight validation is one-directional — a claimer checks the
   transactions claimed before it, never the other way round — so the
   serialization order must BE the claim order.  Publishes therefore
   wait until they are the oldest claim standing; a failed claim
   (durability error) releases its slot through {!unclaim}, which wakes
   the waiters.  Called with the state lock held. *)
let await_publish_turn t txn_id =
  let oldest () =
    match List.rev t.in_flight with
    | (id, _, _) :: _ -> id
    | [] -> txn_id
  in
  while oldest () <> txn_id do
    Condition.wait t.commit_cond t.lock
  done

(* A checkpoint needs a moment when no transaction sits between WAL
   append and primary apply: the image must not claim records the
   primary has not absorbed (cp_next_seq would then skip a durable but
   unapplied transaction).  Holding the state lock with [in_flight]
   empty is exactly that moment. *)
let maybe_checkpoint_locked t =
  match t.durable with
  | Some d when Durable.checkpoint_due d && t.in_flight = [] -> (
    try Durable.checkpoint d
    with _ ->
      (* the committed transaction is already durable and published;
         a failed checkpoint only postpones log truncation *)
      t.stats.sv_checkpoint_failures <- t.stats.sv_checkpoint_failures + 1)
  | _ -> ()

(* The commit hook installed on every session fork.  Runs at the fork
   engine's commit point: a raise here makes the engine abort with its
   exact snapshot restore, which is how both serialization failures and
   failed WAL flushes surface to the session. *)
let session_commit_hook t session (txl : Engine.txn_log) =
  let eff = txl.Engine.txl_effect in
  let writes = writes_of eff in
  let wtables = write_tables_of eff in
  let claims =
    if not t.serializable then Effect.Col_set.empty
    else
      let eng =
        match session.txn with
        | Some sys -> System.engine sys
        | None -> System.engine t.primary
      in
      rule_closure_claims (Engine.rules eng)
        ~touched:
          (Effect.Col_set.union session.touch_tables (Effect.tables eff))
        ~claims:
          (Effect.Col_set.union session.scan_tables (read_tables_of eff))
  in
  (* claim: conflict-check against published history and the
     claim-to-publish window, then enter that window.  A group-commit
     ticket is taken inside the same critical section, so WAL batch
     order is identical to claim order — and hence to publish/version
     order, since publishes wait their claim turn.  Without this a
     transaction claiming just before a round closes could queue into
     the NEXT round, stalling every later claimer of the current round
     behind a second fsync. *)
  let ops, ticket =
    with_lock t (fun () ->
        if conflicts t ~start_version:session.start_version ~writes ~claims
        then begin
          t.stats.sv_conflicts <- t.stats.sv_conflicts + 1;
          serialization_failure ()
        end;
        let ops = Durable.dml_of_log txl in
        t.in_flight <- (session.txn_id, writes, wtables) :: t.in_flight;
        let ticket =
          Option.map (fun g -> Group_commit.enqueue g ops) t.group
        in
        (ops, ticket))
  in
  (* make it durable — outside the state lock, so the fsync (direct or
     via a group-commit round) never blocks readers or other claims *)
  (match (t.durable, t.group, ticket) with
  | None, _, _ -> ()
  | Some d, None, _ -> (
    try Durable.append_txn d ops
    with e ->
      with_lock t (fun () -> unclaim t session.txn_id);
      raise e)
  | Some _, Some g, Some tk -> (
    try Group_commit.await g tk
    with e ->
      with_lock t (fun () -> unclaim t session.txn_id);
      raise e)
  | Some _, Some _, None -> assert false);
  (* publish: apply to the primary and expose the new version, strictly
     in claim order *)
  with_lock t (fun () ->
      await_publish_turn t session.txn_id;
      unclaim t session.txn_id;
      let eng = System.engine t.primary in
      Engine.restore_database eng (Wal.apply (Engine.database eng) ops);
      t.version <- t.version + 1;
      t.history <-
        {
          h_version = t.version;
          h_writes = writes;
          h_tables = wtables;
          h_ddl = false;
        }
        :: t.history;
      session.committed_at <- t.version;
      t.stats.sv_commits <- t.stats.sv_commits + 1;
      maybe_checkpoint_locked t)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

let open_session t =
  with_lock t (fun () ->
      t.next_session <- t.next_session + 1;
      t.stats.sv_connections <- t.stats.sv_connections + 1;
      {
        server = t;
        sid = t.next_session;
        txn = None;
        txn_id = 0;
        start_version = 0;
        committed_at = 0;
        reader = None;
        scan_tables = Effect.Col_set.empty;
        touch_tables = Effect.Col_set.empty;
        prepared = Hashtbl.create 8;
      })

(* Fork a transaction context from the committed state.  The fork (a
   pointer copy thanks to persistent storage) happens under the state
   lock so the snapshot is consistent with its recorded version. *)
let start_txn t session =
  let sys =
    with_lock t (fun () ->
        let eng = Engine.fork (System.engine t.primary) in
        session.start_version <- t.version;
        t.next_txn <- t.next_txn + 1;
        session.txn_id <- t.next_txn;
        t.active_txns <- (session.sid, t.version) :: t.active_txns;
        System.of_engine eng)
  in
  Engine.set_commit_hook (System.engine sys)
    (Some (session_commit_hook t session));
  Engine.begin_txn (System.engine sys);
  session.scan_tables <- Effect.Col_set.empty;
  session.touch_tables <- Effect.Col_set.empty;
  session.txn <- Some sys

let end_txn t session =
  session.txn <- None;
  with_lock t (fun () ->
      t.active_txns <- List.filter (fun (sid, _) -> sid <> session.sid) t.active_txns;
      prune_history t)

let close_session t session =
  (match session.txn with
  | Some sys ->
    (try Engine.rollback_txn (System.engine sys) with _ -> ());
    end_txn t session
  | None -> ());
  session.reader <- None

(* The snapshot a non-transactional read evaluates against: cached per
   session, re-forked (under the lock, a pointer copy) whenever the
   committed version has moved.  Evaluation happens with no lock held. *)
let reader_sys t session =
  with_lock t (fun () ->
      match session.reader with
      | Some (v, sys) when v = t.version -> sys
      | _ ->
        let sys = System.of_engine (Engine.fork (System.engine t.primary)) in
        session.reader <- Some (t.version, sys);
        sys)

(* ------------------------------------------------------------------ *)
(* Statement dispatch                                                  *)

(* DDL executes on the primary, under the state lock, and publishes a
   conflicts-with-everything history entry: a session transaction
   forked before the DDL carries the old catalog and must not commit
   over the new one.  The durable layer's DDL hook logs the statement
   write-ahead as in the embedded system. *)
let exec_ddl t stmt =
  with_lock t (fun () ->
      let r = System.exec_statement t.primary stmt in
      t.version <- t.version + 1;
      t.history <-
        {
          h_version = t.version;
          h_writes = Handle.Set.empty;
          h_tables = Effect.Col_set.empty;
          h_ddl = true;
        }
        :: t.history;
      maybe_checkpoint_locked t;
      r)

(* Run one statement inside the session's open transaction, keeping the
   session's transaction bookkeeping in sync with the engine's: commit,
   rollback, a fired rollback rule, or an aborting error all close the
   engine transaction, and the session must notice whichever way the
   statement ended. *)
let record_footprint session stmt =
  if session.server.serializable then
    let claim op =
      session.scan_tables <- op_scan_tables session.scan_tables op;
      session.touch_tables <- op_touch_tables session.touch_tables op
    in
    match stmt with
    | Ast.Stmt_op op -> claim op
    | Ast.Stmt_execute (name, _) -> (
      (* the table footprint of an EXECUTE is its prepared body's —
         parameters bind values, never tables *)
      match Hashtbl.find_opt session.prepared name with
      | Some op -> claim op
      | None -> ())
    | _ -> ()

(* Make [name] executable on [sys]: the registry of record is the
   session's, so a transient fork learns the statement on first use. *)
let install_prepared session sys name =
  match Hashtbl.find_opt session.prepared name with
  | None -> Errors.raise_error (Errors.Unknown_prepared name)
  | Some op ->
    let eng = System.engine sys in
    if not (Engine.has_prepared eng name) then Engine.prepare eng ~name op

let in_txn_stmt t session sys stmt =
  let sync () =
    if not (Engine.in_transaction (System.engine sys)) then end_txn t session
  in
  record_footprint session stmt;
  match System.exec_statement sys stmt with
  | r ->
    sync ();
    (match (stmt, r) with
    | Ast.Stmt_commit, System.Outcome Engine.Committed ->
      (* surfacing the commit version lets clients order their commits
         against other sessions' (the differential harness replays in
         this order) *)
      System.Msg (Printf.sprintf "committed at version %d" session.committed_at)
    | _ -> r)
  | exception e ->
    sync ();
    raise e

(* An operation arriving outside any transaction is an implicit
   single-operation transaction — the paper's default
   one-block-one-transaction behaviour, served through the same fork +
   conflict-check + publish path as explicit transactions. *)
let autocommit t session stmt =
  start_txn t session;
  record_footprint session stmt;
  let sys = match session.txn with Some s -> s | None -> assert false in
  match
    (match stmt with
    | Ast.Stmt_execute (name, _) -> install_prepared session sys name
    | _ -> ());
    let r = System.exec_statement sys stmt in
    (r, Engine.commit (System.engine sys))
  with
  | r, Engine.Committed ->
    end_txn t session;
    (match r with System.Relation _ -> r | _ -> System.Outcome Engine.Committed)
  | _, Engine.Rolled_back ->
    end_txn t session;
    System.Outcome Engine.Rolled_back
  | exception e ->
    (match session.txn with
    | Some sys when Engine.in_transaction (System.engine sys) ->
      (try Engine.rollback_txn (System.engine sys) with _ -> ())
    | _ -> ());
    end_txn t session;
    raise e

let exec_stmt t session (stmt : Ast.statement) =
  match stmt with
  (* Prepared-statement management is SESSION state, independent of any
     open transaction (as in SQL: PREPARE/DEALLOCATE are not undone by
     rollback).  DEALLOCATE also drops the statement from any live fork
     so a later re-PREPARE under the same name cannot run a stale
     plan. *)
  | Ast.Stmt_prepare (name, op) ->
    if Hashtbl.mem session.prepared name then
      Errors.raise_error (Errors.Duplicate_prepared name);
    Hashtbl.replace session.prepared name op;
    System.Msg (Printf.sprintf "prepared %s" name)
  | Ast.Stmt_deallocate target ->
    (match target with
    | Some name ->
      if not (Hashtbl.mem session.prepared name) then
        Errors.raise_error (Errors.Unknown_prepared name);
      Hashtbl.remove session.prepared name
    | None -> Hashtbl.reset session.prepared);
    let drop sys =
      let eng = System.engine sys in
      match target with
      | Some name ->
        if Engine.has_prepared eng name then Engine.deallocate eng (Some name)
      | None -> Engine.deallocate eng None
    in
    Option.iter drop session.txn;
    (match session.reader with Some (_, sys) -> drop sys | None -> ());
    System.Msg
      (match target with
      | Some name -> Printf.sprintf "deallocated %s" name
      | None -> "deallocated all")
  | _ -> (
    match session.txn with
    | Some sys ->
      if System.is_ddl stmt then
        (* even rule DDL, which the engine allows mid-transaction, is
           rejected here: on a fork it would mutate the shared
           discrimination index behind the primary's back *)
        Errors.raise_error
          (Errors.Transaction_error
             "DDL inside a server transaction is not supported")
      else begin
        (match stmt with
        | Ast.Stmt_execute (name, _) -> install_prepared session sys name
        | _ -> ());
        in_txn_stmt t session sys stmt
      end
    | None -> (
      match stmt with
      | Ast.Stmt_begin ->
        start_txn t session;
        System.Msg "transaction started"
      | Ast.Stmt_commit | Ast.Stmt_rollback | Ast.Stmt_process_rules ->
        Errors.raise_error (Errors.Transaction_error "no open transaction")
      | _ when System.is_ddl stmt -> exec_ddl t stmt
      | Ast.Stmt_op (Ast.Select_op _) | Ast.Stmt_show_tables
      | Ast.Stmt_show_rules | Ast.Stmt_explain _ | Ast.Stmt_describe _ ->
        (* snapshot read: no locks held during evaluation *)
        System.exec_statement (reader_sys t session) stmt
      | Ast.Stmt_execute (name, _) -> (
        match Hashtbl.find_opt session.prepared name with
        | None -> Errors.raise_error (Errors.Unknown_prepared name)
        | Some (Ast.Select_op _) ->
          (* a prepared select is a snapshot read like any other: the
             cached reader fork keeps its compiled plan across
             EXECUTEs until the committed version moves *)
          let sys = reader_sys t session in
          install_prepared session sys name;
          System.exec_statement sys stmt
        | Some _ -> autocommit t session stmt)
      | Ast.Stmt_op _ -> autocommit t session stmt
      | _ ->
        (* every DDL constructor is caught by the is_ddl guard above *)
        assert false))

(* Execute a ';'-separated script, statement by statement.  Statements
   before a failing one keep their effects (matching the embedded
   REPL); the error is reported and the rest of the script skipped. *)
let exec_script t session text =
  match Parser.parse_script text with
  | stmts ->
    let buf = Buffer.create 64 in
    let rec run = function
      | [] -> Ok (Buffer.contents buf)
      | stmt :: rest -> (
        match exec_stmt t session stmt with
        | r ->
          if Buffer.length buf > 0 then Buffer.add_char buf '\n';
          Buffer.add_string buf (System.render_result r);
          run rest
        | exception Errors.Error e -> Error (Errors.to_string e))
    in
    run stmts
  | exception Errors.Error e -> Error (Errors.to_string e)

(* ------------------------------------------------------------------ *)
(* Meta commands and stats rendering                                   *)

let render_stats t =
  let s = t.stats in
  let base =
    with_lock t (fun () ->
        Printf.sprintf
          "version: %d\nconnections: %d\nrequests: %d\ncommits: %d\n\
           conflicts: %d\nerrors: %d\ndisconnects: %d\nopen transactions: %d"
          t.version s.sv_connections s.sv_requests s.sv_commits s.sv_conflicts
          s.sv_errors s.sv_disconnects
          (List.length t.active_txns))
  in
  match group_stats t with
  | None -> base
  | Some g ->
    Printf.sprintf
      "%s\ngroup commit: %d batches, %d txns, max batch %d" base
      g.Group_commit.gc_batches g.Group_commit.gc_txns g.Group_commit.gc_max_batch

let checkpoint_now t =
  match t.durable with
  | None -> Error "no data directory (in-memory server)"
  | Some d ->
    with_lock t (fun () ->
        if t.in_flight <> [] then
          Error "commits in flight; retry"
        else
          match Durable.checkpoint d with
          | () -> Ok (Printf.sprintf "checkpoint written (generation %d)"
                        (Durable.generation d))
          | exception Errors.Error e -> Error (Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* The socket front-end                                                *)

(* One request line in, one framed response out.  [`Quit] closes the
   conversation cleanly. *)
let handle_request t session line =
  t.stats.sv_requests <- t.stats.sv_requests + 1;
  let trimmed = String.trim line in
  if trimmed = "" then `Reply (Ok "")
  else if trimmed.[0] = '\\' then
    match trimmed with
    | "\\q" | "\\quit" -> `Quit
    | "\\stats" -> `Reply (Ok (render_stats t))
    | "\\version" -> `Reply (Ok (string_of_int (version t)))
    | "\\checkpoint" -> `Reply (checkpoint_now t)
    | other -> `Reply (Error (Printf.sprintf "unknown meta command %S" other))
  else `Reply (exec_script t session trimmed)

(* A client that vanishes mid-conversation — closed socket, reset
   connection, broken pipe on our response — is a per-connection event:
   roll back its open transaction, count it, close the descriptor.
   SIGPIPE is ignored process-wide (see [serve]) so the failure arrives
   as EPIPE from write, never as a fatal signal. *)
let connection_dead = function
  | End_of_file -> true
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> true
  | Sys_error _ -> true
  | _ -> false

let handle_connection t fd =
  let session = open_session t in
  let ic = Unix.in_channel_of_descr fd in
  let clean = ref false in
  (try
     let rec loop () =
       match input_line ic with
       | line -> (
         match handle_request t session line with
         | `Quit ->
           Protocol.write_response fd ~ok:true "bye";
           clean := true
         | `Reply (Ok body) ->
           Protocol.write_response fd ~ok:true body;
           loop ()
         | `Reply (Error msg) ->
           t.stats.sv_errors <- t.stats.sv_errors + 1;
           Protocol.write_response fd ~ok:false msg;
           loop ())
       | exception e when connection_dead e -> ()
     in
     loop ()
   with _ -> ());
  if not !clean then t.stats.sv_disconnects <- t.stats.sv_disconnects + 1;
  close_session t session;
  try Unix.close fd with Unix.Unix_error _ -> ()

type listener = {
  l_server : t;
  l_fd : Unix.file_descr;
  l_port : int;
  mutable l_thread : Thread.t;
  mutable l_conns : (Unix.file_descr * Thread.t) list;
  l_conns_lock : Mutex.t;
  mutable l_stopping : bool;
}

let port l = l.l_port

let accept_loop l =
  let rec loop () =
    match Unix.accept l.l_fd with
    | fd, _addr ->
      (* register under the lock BEFORE the thread can finish, and let
         the thread deregister itself, so the list tracks live
         connections only (not the total ever accepted) *)
      Mutex.lock l.l_conns_lock;
      let th =
        Thread.create
          (fun () ->
            handle_connection l.l_server fd;
            let me = Thread.id (Thread.self ()) in
            Mutex.lock l.l_conns_lock;
            l.l_conns <-
              List.filter (fun (_, t) -> Thread.id t <> me) l.l_conns;
            Mutex.unlock l.l_conns_lock)
          ()
      in
      l.l_conns <- (fd, th) :: l.l_conns;
      Mutex.unlock l.l_conns_lock;
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      () (* the listening socket was closed: shutting down *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* Ignore SIGPIPE for the whole process: a client that disconnects
   before reading its response must surface as EPIPE on our write (a
   per-connection error), not kill the server.  Idempotent. *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let start ?(host = "127.0.0.1") ?(port = 0) t =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let l =
    {
      l_server = t;
      l_fd = fd;
      l_port = bound_port;
      l_thread = Thread.self () (* replaced below *);
      l_conns = [];
      l_conns_lock = Mutex.create ();
      l_stopping = false;
    }
  in
  l.l_thread <- Thread.create (fun () -> accept_loop l) ();
  l

let stop l =
  if not l.l_stopping then begin
    l.l_stopping <- true;
    (* closing the descriptor does not wake a thread blocked in accept;
       shutting the listening socket down does (the accept returns
       EINVAL), and the close follows once the loop has exited *)
    (try Unix.shutdown l.l_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Thread.join l.l_thread;
    (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
    Mutex.lock l.l_conns_lock;
    let conns = l.l_conns in
    l.l_conns <- [];
    Mutex.unlock l.l_conns_lock;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> try Thread.join th with _ -> ()) conns
  end

(* A minimal blocking client for the line protocol: one request line
   out, one framed response in.  Used by the REPL-ish [sopr-server
   client], the workload driver, the smoke script and the tests. *)

type t = { fd : Unix.file_descr; ic : in_channel }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let request t line =
  Protocol.send_line t.fd line;
  Protocol.read_response t.ic

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** The concurrent-session server: many client sessions over one
    engine, with snapshot reads and first-committer-wins commits.

    Committed state lives in a primary engine that never runs
    transactions itself.  Sessions work on {!Core.Engine.fork}s — pointer
    copies thanks to the persistent storage: reads evaluate against a
    cached snapshot fork with no locks held, and a transaction runs
    entirely on its own fork, validated at commit by intersecting its
    composite [Effect]'s write set with the write sets of concurrently
    committed transitions (first committer wins; inserts never collide
    because handles come from a process-global counter).  That
    write-write validation is SNAPSHOT ISOLATION.  With
    [config.track_selects] on, the server runs SERIALIZABLE: each
    commit additionally claims, at table granularity, the base tables
    its statements could have read — from the statement ASTs, closed
    over the rule catalog so reads inside rule conditions and actions
    are claimed too — and conflicts with any concurrent transition
    that wrote a claimed table.  A winning transaction is made durable
    — directly, or through a group-commit round that batches
    concurrent commits into one WAL record and one fsync — and then
    applied to the primary under the next version, strictly in claim
    order. *)

open Core

type mode =
  | Memory  (** no durability; for tests and pure-concurrency runs *)
  | Wal_sync  (** one WAL record + fsync per commit *)
  | Wal_nosync  (** WAL records without fsync *)
  | Wal_group  (** concurrent commits share one WAL record + fsync *)

val mode_name : mode -> string

type stats = {
  mutable sv_connections : int;
  mutable sv_requests : int;
  mutable sv_commits : int;  (** published transactions, DDL excluded *)
  mutable sv_conflicts : int;  (** serialization failures *)
  mutable sv_errors : int;  (** requests answered with [err] *)
  mutable sv_disconnects : int;  (** sessions that died mid-conversation *)
  mutable sv_checkpoint_failures : int;
}

type t

val create :
  ?config:Engine.config -> ?checkpoint_interval:int -> ?data_dir:string ->
  mode -> t
(** [data_dir] is required for the WAL modes (the directory is created
    and recovered as in {!Durability.Durable.open_dir}) and ignored for
    [Memory].  [config.track_selects] selects the isolation level:
    snapshot isolation when off (the default), serializable when on. *)

val system : t -> System.t
(** The primary system — the committed state.  Callers must not run
    transactions on it; use sessions. *)

val version : t -> int
(** The committed version: the number of published transitions. *)

val stats : t -> stats
val group_stats : t -> Durability.Group_commit.stats option

val group_pending : t -> int option
(** Commits queued for the next group round ([None] outside
    [Wal_group]) — test synchronization for paused rounds. *)

val set_group_paused : t -> bool -> unit
(** Hold the group-commit leader before it collects a round — lets
    tests deterministically build batches bigger than one.  No effect
    outside [Wal_group] mode. *)

val close : t -> unit
(** Close the durable store (WAL modes).  Stop any listener first. *)

(** {1 Sessions}

    The embedded face of the server: what the socket front-end drives,
    exposed directly so tests and benchmarks can run sessions in
    process (each from its own thread). *)

type session

val open_session : t -> session
val close_session : t -> session -> unit
(** Rolls back the session's open transaction, if any. *)

val exec_stmt : t -> session -> Ast.statement -> System.exec_result
(** Execute one statement for this session: [begin] forks a
    transaction, statements inside it run on the fork, [commit]
    validates and publishes (the result is rewritten to
    ["committed at version N"] so clients can order commits), reads
    outside a transaction hit the session's snapshot, DML outside a
    transaction autocommits through the same fork-validate-publish
    path, and DDL — rejected inside server transactions — executes on
    the primary and conflicts with every concurrent transaction. *)

val exec_script : t -> session -> string -> (string, string) result
(** Parse and run a [';']-separated script, statement by statement;
    rendered results joined by newlines, or the first error (statements
    before it keep their effects, as in the embedded REPL). *)

val render_stats : t -> string

val checkpoint_now : t -> (string, string) result
(** Checkpoint if no commit is in flight ([Error] asks to retry). *)

(** {1 The socket front-end}

    Line protocol (see {!Protocol}): one request line in — a SQL script
    or a ['\']-meta command ([\q], [\stats], [\version],
    [\checkpoint]) — one framed [ok]/[err] response out.  SIGPIPE is
    ignored process-wide at {!start}, so a client that dies
    mid-conversation surfaces as [EPIPE]/[ECONNRESET] on its own
    connection: the handler rolls back the session's open transaction,
    counts a disconnect, and closes — other sessions never notice. *)

type listener

val start : ?host:string -> ?port:int -> t -> listener
(** Bind and listen ([port 0] — the default — picks an ephemeral port),
    accepting each connection onto its own thread. *)

val port : listener -> int
val stop : listener -> unit
(** Close the listening socket, shut down live connections, join all
    threads. *)

(** The line-based wire protocol shared by server and client.

    A request is one line (a ';'-separated SQL script or a
    ['\']-prefixed meta command); a response is a status line
    ["ok <k>"] or ["err <k>"] followed by exactly [k] newline-free
    payload lines. *)

val send_line : Unix.file_descr -> string -> unit
(** Write [line ^ "\n"] with a single EINTR-retried full write. *)

val write_response : Unix.file_descr -> ok:bool -> string -> unit
(** Frame [body] (split on newlines and counted) under an ["ok"] or
    ["err"] status line, as one write. *)

exception Malformed of string
(** A status line that does not parse — raised by {!read_response}. *)

val read_response : in_channel -> (string, string) result
(** Read one framed response; [Ok body] for ["ok"], [Error body] for
    ["err"].  Raises [End_of_file] on a closed peer. *)

(** Workload profiles: the YCSB-style knobs a scenario run is
    parameterized by, and the seeded sampler that turns a profile into
    a deterministic operation stream.

    Everything downstream of a profile is a pure function of
    [(profile, seed)]: the same pair regenerates the same transaction
    sequence, which is what lets the soak runner's forked crash child
    and its in-memory oracle replay identical workloads, and lets a
    failing run be reproduced from the seed its harness prints. *)

type t = {
  seed : int;  (** PRNG seed; the whole run is deterministic in it *)
  txns : int;  (** transactions to drive *)
  min_ops : int;  (** smallest operation block *)
  max_ops : int;  (** largest operation block *)
  read_frac : float;  (** fraction of operations that are reads, [0,1] *)
  keys : int;  (** key-space size per scenario entity *)
  theta : float;
      (** Zipfian skew for key choice, [0,1): 0 is uniform, 0.99 is the
          YCSB default "hotspot" skew *)
  rule_density : int;
      (** extra never-firing rules installed at setup — the knob that
          scales the rule set the engine must consider per transition *)
}

val default : t
(** seed 42, 100 txns, 1–4 ops, 25% reads, 64 keys, theta 0.6,
    no padding rules. *)

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range knobs (empty key space,
    [theta] outside [0,1), negative sizes, inverted op bounds). *)

val describe : t -> string
(** One-line rendering of every knob, for reports and failure
    messages. *)

(** The seeded sampler: one per run, advancing a private PRNG state.
    Key draws follow the bounded Zipfian distribution of Gray et al.
    (the YCSB generator) so a small set of hot keys absorbs most of
    the traffic when [theta] > 0. *)
module Sampler : sig
  type profile := t
  type t

  val create : profile -> t
  (** A fresh sampler seeded from the profile's [seed]. *)

  val with_state : profile -> Random.State.t -> t
  (** A sampler over a caller-owned PRNG state — for harnesses that
      thread one seeded state through several components. *)

  val profile : t -> profile

  val key : t -> int
  (** Zipfian-skewed key in [0, keys). *)

  val uniform : t -> int -> int
  (** Uniform in [0, n). *)

  val is_read : t -> bool
  (** True with probability [read_frac]. *)

  val txn_size : t -> int
  (** Uniform in [min_ops, max_ops]. *)

  val chance : t -> float -> bool
  (** True with the given probability. *)

  val pick : t -> 'a array -> 'a
  (** Uniform element of a non-empty array. *)
end

(* The built-in scenario corpus.  See scenarios.mli for the catalog.

   Conventions shared by every scenario:

   - all generated keys are non-negative, so padding rules can probe
     for impossible negative keys (their conditions are evaluated —
     real rule-set load — but never hold);
   - transaction blocks are DDL-free and procedure-free so they replay
     byte-identically through the WAL and the forked crash child;
   - negative literals are spelled [0 - n] (the dialect has no unary
     minus). *)

open Core
module Sampler = Profile.Sampler

let clamp lo hi n = max lo (min hi n)

(* [d]-signed delta expression: "col + 3" / "col - 3". *)
let delta col d =
  if d >= 0 then Printf.sprintf "%s + %d" col d
  else Printf.sprintf "%s - %d" col (-d)

(* Never-firing rules scaled by the rule-density knob: each one is
   triggered by inserts into [table] and probes for an impossible
   negative key, so the engine pays condition evaluation for a dense
   rule set without any semantic effect. *)
let pad_rules ~table ~col n =
  List.init n (fun i ->
      Printf.sprintf
        "create rule pad_%d when inserted into %s if exists (select * from %s \
         where %s = 0 - %d) then delete from %s where %s = 0 - %d"
        (i + 1) table table col (i + 2) table col (i + 2))

(* ------------------------------------------------------------------ *)
(* tenant-quota: multi-tenant quota enforcement                        *)

let tenant_quota = "tenant-quota"

let tq_tenants p = clamp 2 16 (p.Profile.keys / 4)

let tq_setup p =
  let t = tq_tenants p in
  let tenant_rows =
    String.concat ", "
      (List.init t (fun i -> Printf.sprintf "(%d, %d, 0)" i (4 + (i mod 5 * 4))))
  in
  [
    "create table tenant (tid int, quota int, used int)";
    "create table obj (oid int, tid int, size int)";
    "create index obj_tid on obj (tid)";
    "create index obj_oid on obj (oid)";
    Printf.sprintf "insert into tenant values %s" tenant_rows;
    (* set-oriented usage accounting: one update per transition,
       counting each tenant's inserted/deleted objects *)
    "create rule tq_track_ins when inserted into obj then update tenant set \
     used = used + (select count(*) from inserted obj o where o.tid = \
     tenant.tid) where tid in (select tid from inserted obj)";
    "create rule tq_track_del when deleted from obj then update tenant set \
     used = used - (select count(*) from deleted obj o where o.tid = \
     tenant.tid) where tid in (select tid from deleted obj)";
    (* the quota itself: violation rolls the whole transaction back *)
    "create rule tq_enforce when inserted into obj or updated tenant.used if \
     exists (select * from tenant where used > quota) then rollback";
  ]
  @ pad_rules ~table:"obj" ~col:"oid" p.Profile.rule_density

let tq_txn s =
  let p = Sampler.profile s in
  let t = tq_tenants p in
  let op () =
    if Sampler.is_read s then
      if Sampler.chance s 0.5 then
        Printf.sprintf "select used from tenant where tid = %d"
          (Sampler.key s mod t)
      else
        Printf.sprintf "select count(*) from obj where tid = %d"
          (Sampler.key s mod t)
    else if Sampler.chance s 0.6 then
      Printf.sprintf "insert into obj values (%d, %d, %d)" (Sampler.key s)
        (Sampler.key s mod t)
        (1 + Sampler.uniform s 100)
    else Printf.sprintf "delete from obj where oid = %d" (Sampler.key s)
  in
  String.concat "; " (List.init (Sampler.txn_size s) (fun _ -> op ()))

let tq_scenario =
  {
    Scenario.sc_name = tenant_quota;
    sc_doc =
      "multi-tenant quotas: rules keep per-tenant usage counters and roll \
       back transactions exceeding a quota";
    sc_tables = [ "tenant"; "obj" ];
    sc_setup = tq_setup;
    sc_txn = tq_txn;
    sc_invariants =
      [
        Scenario.zero_count "quota-respected"
          ~sql:"select count(*) from tenant where used > quota";
        Scenario.zero_count "usage-counter-consistent"
          ~sql:
            "select count(*) from tenant where used <> (select count(*) from \
             obj o where o.tid = tenant.tid)";
      ];
    sc_config = Engine.default_config;
  }

(* ------------------------------------------------------------------ *)
(* audit-trail: DML and retrieval auditing with per-row versions       *)

let audit_trail = "audit-trail"

let at_setup p =
  let seed_accounts = clamp 1 8 (p.Profile.keys / 8) in
  let rows =
    String.concat ", "
      (List.init seed_accounts (fun i -> Printf.sprintf "(%d, 100, 0)" i))
  in
  [
    (* the declared key matters beyond realism: version bumps join on
       id, so ids must be unique or a bump could leak onto a row that
       was inserted (not updated) in the same transaction *)
    "create table acct (id int primary key, bal int, version int)";
    "create table audit_log (kind string, id int, version int)";
    "create index acct_id on acct (id)";
    "create rule aud_ins when inserted into acct then insert into audit_log \
     (select 'I', id, version from inserted acct)";
    "create rule aud_upd when updated acct.bal then insert into audit_log \
     (select 'U', n.id, n.version from new updated acct.bal n)";
    "create rule ver_bump when updated acct.bal then update acct set version \
     = version + 1 where id in (select id from new updated acct.bal)";
    "create rule aud_del when deleted from acct then insert into audit_log \
     (select 'D', id, version from deleted acct)";
    (* Section 5.1: retrieval-triggered auditing *)
    "create rule aud_read when selected acct.bal then insert into audit_log \
     values ('R', 0 - 1, 0)";
    (* a conditional flag rule: negative balances are recorded *)
    "create rule aud_flag when updated acct.bal if exists (select * from new \
     updated acct.bal n where n.bal < 0) then insert into audit_log values \
     ('F', 0 - 1, 0)";
    (* seeded AFTER the rules so the seed rows are audited too — the
       invariants count every insert since table creation *)
    Printf.sprintf "insert into acct values %s" rows;
  ]
  @ pad_rules ~table:"acct" ~col:"id" p.Profile.rule_density

let at_txn s =
  let op () =
    if Sampler.is_read s then
      if Sampler.chance s 0.7 then
        Printf.sprintf "select bal from acct where id = %d" (Sampler.key s)
      else "select count(*) from audit_log where kind = 'U'"
    else
      match Sampler.uniform s 10 with
      | 0 | 1 | 2 ->
        Printf.sprintf "insert into acct values (%d, %d, 0)" (Sampler.key s)
          (Sampler.uniform s 200)
      | 3 | 4 | 5 | 6 ->
        Printf.sprintf "update acct set bal = %s where id = %d"
          (delta "bal" (Sampler.uniform s 100 - 40))
          (Sampler.key s)
      | _ -> Printf.sprintf "delete from acct where id = %d" (Sampler.key s)
  in
  String.concat "; " (List.init (Sampler.txn_size s) (fun _ -> op ()))

(* The audit invariants relate three quantities the rules maintain:
   live accounts = net inserts; net updates = versions accumulated by
   live rows plus versions frozen into delete records. *)
let at_kind_count s k =
  Scenario.int_value s
    (Printf.sprintf "select count(*) from audit_log where kind = '%s'" k)

let at_scenario =
  {
    Scenario.sc_name = audit_trail;
    sc_doc =
      "audit trail: rules record every net insert/update/delete (and reads, \
       via select tracking) and bump per-row versions";
    sc_tables = [ "acct"; "audit_log" ];
    sc_setup = at_setup;
    sc_txn = at_txn;
    sc_invariants =
      [
        Scenario.equal_ints "live-rows-equal-net-inserts"
          ~actual:(fun s -> Scenario.int_value s "select count(*) from acct")
          ~expected:(fun s -> at_kind_count s "I" - at_kind_count s "D");
        Scenario.equal_ints "update-audit-equals-version-total"
          ~actual:(fun s -> at_kind_count s "U")
          ~expected:(fun s ->
            Scenario.int_value s "select sum(version) from acct"
            + Scenario.int_value s
                "select sum(version) from audit_log where kind = 'D'");
      ];
    sc_config = { Engine.default_config with track_selects = true };
  }

(* ------------------------------------------------------------------ *)
(* matview: incremental aggregate maintenance                          *)

let matview = "matview"

let mv_custs p = clamp 2 12 (p.Profile.keys / 4)

let mv_setup p =
  let c = mv_custs p in
  let rows =
    String.concat ", " (List.init c (fun i -> Printf.sprintf "(%d, 0, 0)" i))
  in
  [
    "create table orders (oid int, cust int, amount int)";
    "create table cust_total (cust int, total int, cnt int)";
    "create index orders_oid on orders (oid)";
    "create index orders_cust on orders (cust)";
    Printf.sprintf "insert into cust_total values %s" rows;
    "create rule mv_ins when inserted into orders then update cust_total set \
     total = total + (select sum(o.amount) from inserted orders o where \
     o.cust = cust_total.cust), cnt = cnt + (select count(*) from inserted \
     orders o where o.cust = cust_total.cust) where cust in (select cust \
     from inserted orders)";
    "create rule mv_del when deleted from orders then update cust_total set \
     total = total - (select sum(o.amount) from deleted orders o where \
     o.cust = cust_total.cust), cnt = cnt - (select count(*) from deleted \
     orders o where o.cust = cust_total.cust) where cust in (select cust \
     from deleted orders)";
    "create rule mv_upd when updated orders.amount then update cust_total \
     set total = total + (select sum(n.amount) from new updated \
     orders.amount n where n.cust = cust_total.cust) - (select sum(o.amount) \
     from old updated orders.amount o where o.cust = cust_total.cust) where \
     cust in (select cust from new updated orders.amount)";
    (* consistency tripwire: a non-empty total over an empty count can
       only mean the maintenance rules diverged — roll back rather than
       commit a corrupt view *)
    "create rule mv_guard when updated cust_total.total if exists (select * \
     from cust_total where cnt = 0 and total <> 0) then rollback";
  ]
  @ pad_rules ~table:"orders" ~col:"oid" p.Profile.rule_density

let mv_txn s =
  let p = Sampler.profile s in
  let c = mv_custs p in
  let op () =
    if Sampler.is_read s then
      if Sampler.chance s 0.5 then
        Printf.sprintf "select total, cnt from cust_total where cust = %d"
          (Sampler.key s mod c)
      else
        Printf.sprintf "select sum(amount) from orders where cust = %d"
          (Sampler.key s mod c)
    else
      match Sampler.uniform s 10 with
      | 0 | 1 | 2 | 3 ->
        Printf.sprintf "insert into orders values (%d, %d, %d)" (Sampler.key s)
          (Sampler.key s mod c)
          (1 + Sampler.uniform s 50)
      | 4 | 5 | 6 ->
        Printf.sprintf "update orders set amount = %s where oid = %d"
          (delta "amount" (Sampler.uniform s 30 - 10))
          (Sampler.key s)
      | _ -> Printf.sprintf "delete from orders where oid = %d" (Sampler.key s)
  in
  String.concat "; " (List.init (Sampler.txn_size s) (fun _ -> op ()))

(* The materialized-view invariant: the maintained aggregates equal the
   aggregates recomputed from scratch, customer by customer. *)
let mv_view_consistent =
  {
    Scenario.inv_name = "view-equals-recomputation";
    inv_check =
      (fun s ->
        let recomputed = Hashtbl.create 16 in
        List.iter
          (fun row ->
            match row with
            | [| Value.Int cust; total; Value.Int cnt |] ->
              let total =
                match total with Value.Int t -> t | _ -> 0
              in
              Hashtbl.replace recomputed cust (total, cnt)
            | _ -> ())
          (snd
             (System.query s
                "select cust, sum(amount), count(*) from orders group by \
                 cust"));
        let rows =
          snd (System.query s "select cust, total, cnt from cust_total")
        in
        let bad =
          List.filter_map
            (fun row ->
              match row with
              | [| Value.Int cust; Value.Int total; Value.Int cnt |] ->
                let exp_total, exp_cnt =
                  Option.value
                    (Hashtbl.find_opt recomputed cust)
                    ~default:(0, 0)
                in
                if total = exp_total && cnt = exp_cnt then None
                else
                  Some
                    (Printf.sprintf
                       "cust %d: view (%d, %d) <> recomputed (%d, %d)" cust
                       total cnt exp_total exp_cnt)
              | _ -> Some "malformed cust_total row")
            rows
        in
        if bad = [] then None else Some (String.concat "; " bad));
  }

let mv_scenario =
  {
    Scenario.sc_name = matview;
    sc_doc =
      "denormalized aggregates: rules maintain per-customer totals as an \
       incremental materialized view, checked against recomputation";
    sc_tables = [ "orders"; "cust_total" ];
    sc_setup = mv_setup;
    sc_txn = mv_txn;
    sc_invariants =
      [
        mv_view_consistent;
        Scenario.zero_count "no-customerless-orders"
          ~sql:
            "select count(*) from orders where cust not in (select cust from \
             cust_total)";
      ];
    sc_config = Engine.default_config;
  }

(* ------------------------------------------------------------------ *)
(* ref-cascade: a four-level foreign-key chain from declarative DDL    *)

let ref_cascade = "ref-cascade"

let rc_regions p = clamp 2 8 (p.Profile.keys / 8)
let rc_depts p = clamp 4 16 (p.Profile.keys / 4)

let rc_setup p =
  let r = rc_regions p and d = rc_depts p in
  let region_rows =
    String.concat ", "
      (List.init r (fun i -> Printf.sprintf "(%d, 'r%d')" i i))
  in
  let dept_rows =
    String.concat ", "
      (List.init d (fun i -> Printf.sprintf "(%d, %d)" i (i mod r)))
  in
  [
    "create table region (rid int primary key, name string)";
    "create table dept (did int primary key, rid int, foreign key (rid) \
     references region (rid) on delete cascade)";
    "create table emp (eid int primary key, did int, foreign key (did) \
     references dept (did) on delete cascade)";
    "create table badge (bid int primary key, eid int, foreign key (eid) \
     references emp (eid) on delete set null)";
    "create index emp_did on emp (did)";
    "create index badge_eid on badge (eid)";
    Printf.sprintf "insert into region values %s" region_rows;
    Printf.sprintf "insert into dept values %s" dept_rows;
  ]
  @ pad_rules ~table:"emp" ~col:"eid" p.Profile.rule_density

let rc_txn s =
  let p = Sampler.profile s in
  let r = rc_regions p and d = rc_depts p in
  let op () =
    if Sampler.is_read s then
      if Sampler.chance s 0.5 then
        Printf.sprintf "select count(*) from emp where did = %d"
          (Sampler.key s mod d)
      else
        Printf.sprintf "select eid from badge where bid = %d" (Sampler.key s)
    else
      match Sampler.uniform s 20 with
      | 0 ->
        (* re-seed a region so deep deletes do not drain the hierarchy *)
        Printf.sprintf "insert into region values (%d, 'r')"
          (Sampler.key s mod r)
      | 1 | 2 ->
        (* the parent may be missing: the compiled FK check rolls back *)
        Printf.sprintf "insert into dept values (%d, %d)"
          (Sampler.key s mod d) (Sampler.key s mod r)
      | 3 | 4 | 5 | 6 | 7 ->
        Printf.sprintf "insert into emp values (%d, %d)" (Sampler.key s)
          (Sampler.key s mod d)
      | 8 | 9 | 10 | 11 ->
        Printf.sprintf "insert into badge values (%d, %d)" (Sampler.key s)
          (Sampler.key s)
      | 12 ->
        (* rare: a deep cascade across all four levels *)
        Printf.sprintf "delete from region where rid = %d"
          (Sampler.key s mod r)
      | 13 | 14 ->
        Printf.sprintf "delete from dept where did = %d" (Sampler.key s mod d)
      | 15 | 16 | 17 ->
        Printf.sprintf "delete from emp where eid = %d" (Sampler.key s)
      | _ -> Printf.sprintf "delete from badge where bid = %d" (Sampler.key s)
  in
  String.concat "; " (List.init (Sampler.txn_size s) (fun _ -> op ()))

let rc_scenario =
  {
    Scenario.sc_name = ref_cascade;
    sc_doc =
      "referential cascades at depth: a region->dept->emp->badge FK chain \
       compiled from DDL; deletes cascade, the leaf repairs by SET NULL, \
       orphans roll back";
    sc_tables = [ "region"; "dept"; "emp"; "badge" ];
    sc_setup = rc_setup;
    sc_txn = rc_txn;
    sc_invariants =
      [
        Scenario.zero_count "no-orphan-depts"
          ~sql:
            "select count(*) from dept where rid not in (select rid from \
             region)";
        Scenario.zero_count "no-orphan-emps"
          ~sql:
            "select count(*) from emp where did not in (select did from dept)";
        Scenario.zero_count "badge-owner-live-or-null"
          ~sql:
            "select count(*) from badge where eid is not null and eid not in \
             (select eid from emp)";
        Scenario.zero_count "emp-key-unique"
          ~sql:
            "select count(*) from (select eid from emp group by eid having \
             count(*) > 1)";
      ];
    sc_config = Engine.default_config;
  }

(* ------------------------------------------------------------------ *)
(* repair: constraint repair by clamping instead of rollback           *)

let repair = "repair"

let rp_setup p =
  let seed_staff = clamp 1 6 (p.Profile.keys / 8) in
  let rows =
    String.concat ", "
      (List.init seed_staff (fun i -> Printf.sprintf "(%d, %d)" i (20 + (i * 10))))
  in
  [
    "create table bounds (lo int, hi int)";
    "insert into bounds values (10, 100)";
    "create table staff (sid int, sal int)";
    "create index staff_sid on staff (sid)";
    Printf.sprintf "insert into staff values %s" rows;
    (* out-of-bounds salaries are repaired by clamping, not rolled back
       (the database-repairs reaction: restore consistency, keep the
       update) *)
    "create rule rp_clamp_hi when inserted into staff or updated staff.sal \
     if exists (select * from staff where sal > (select hi from bounds)) \
     then update staff set sal = (select hi from bounds) where sal > (select \
     hi from bounds)";
    "create rule rp_clamp_lo when inserted into staff or updated staff.sal \
     if exists (select * from staff where sal < (select lo from bounds)) \
     then update staff set sal = (select lo from bounds) where sal < (select \
     lo from bounds)";
    (* moving the bounds re-repairs the whole table *)
    "create rule rp_rebound_hi when updated bounds.hi then update staff set \
     sal = (select hi from bounds) where sal > (select hi from bounds)";
    "create rule rp_rebound_lo when updated bounds.lo then update staff set \
     sal = (select lo from bounds) where sal < (select lo from bounds)";
  ]
  @ pad_rules ~table:"staff" ~col:"sid" p.Profile.rule_density

let rp_txn s =
  let op () =
    if Sampler.is_read s then
      Printf.sprintf "select sal from staff where sid = %d" (Sampler.key s)
    else
      match Sampler.uniform s 30 with
      | 0 ->
        (* rare: tighten or loosen the ceiling; existing rows re-clamp *)
        Printf.sprintf "update bounds set hi = %d" (60 + Sampler.uniform s 81)
      | 1 ->
        Printf.sprintf "update bounds set lo = %d" (Sampler.uniform s 31)
      | n when n < 12 ->
        Printf.sprintf "insert into staff values (%d, %d)" (Sampler.key s)
          (Sampler.uniform s 151)
      | n when n < 24 ->
        Printf.sprintf "update staff set sal = %s where sid = %d"
          (delta "sal" (Sampler.uniform s 140 - 60))
          (Sampler.key s)
      | _ -> Printf.sprintf "delete from staff where sid = %d" (Sampler.key s)
  in
  String.concat "; " (List.init (Sampler.txn_size s) (fun _ -> op ()))

let rp_scenario =
  {
    Scenario.sc_name = repair;
    sc_doc =
      "constraint repair: salary bounds enforced by clamping rules instead \
       of rollback, re-repairing when the bounds move";
    sc_tables = [ "bounds"; "staff" ];
    sc_setup = rp_setup;
    sc_txn = rp_txn;
    sc_invariants =
      [
        Scenario.zero_count "salaries-within-bounds"
          ~sql:
            "select count(*) from staff where sal > (select hi from bounds) \
             or sal < (select lo from bounds)";
        Scenario.equal_ints "single-bounds-row"
          ~actual:(fun s -> Scenario.int_value s "select count(*) from bounds")
          ~expected:(fun _ -> 1);
      ];
    sc_config = Engine.default_config;
  }

(* ------------------------------------------------------------------ *)
(* order-rollup: join-heavy order/lineitem rollup                      *)

let order_rollup = "order-rollup"

let or_items p = clamp 2 16 (p.Profile.keys / 4)
let or_orders p = clamp 2 12 (p.Profile.keys / 8)

let or_setup p =
  let ni = or_items p and no = or_orders p in
  let item_rows =
    String.concat ", "
      (List.init ni (fun i -> Printf.sprintf "(%d, %d)" i (1 + (i mod 7 * 3))))
  in
  let order_rows =
    String.concat ", " (List.init no (fun i -> Printf.sprintf "(%d, 0, 0)" i))
  in
  [
    "create table item (iid int primary key, price int)";
    "create table ord (oid int primary key, total int, lines int)";
    "create table lineitem (lid int, oid int, iid int, qty int)";
    "create index li_lid on lineitem (lid)";
    "create index li_oid on lineitem (oid)";
    "create index item_iid on item (iid)";
    "create index li_qty on lineitem (qty) using ordered";
    Printf.sprintf "insert into item values %s" item_rows;
    Printf.sprintf "insert into ord values %s" order_rows;
    (* the rollup rules join the transition table against TWO base
       tables: item (to price each line) and the updated ord itself —
       the hash-join path in rule conditions carries this scenario *)
    "create rule or_ins when inserted into lineitem then update ord set \
     total = total + (select sum(l.qty * i.price) from inserted lineitem l, \
     item i where l.iid = i.iid and l.oid = ord.oid), lines = lines + \
     (select count(*) from inserted lineitem l where l.oid = ord.oid) where \
     oid in (select oid from inserted lineitem)";
    "create rule or_del when deleted from lineitem then update ord set total \
     = total - (select sum(l.qty * i.price) from deleted lineitem l, item i \
     where l.iid = i.iid and l.oid = ord.oid), lines = lines - (select \
     count(*) from deleted lineitem l where l.oid = ord.oid) where oid in \
     (select oid from deleted lineitem)";
    "create rule or_upd when updated lineitem.qty then update ord set total \
     = total + (select sum(n.qty * i.price) from new updated lineitem.qty n, \
     item i where n.iid = i.iid and n.oid = ord.oid) - (select sum(o.qty * \
     i.price) from old updated lineitem.qty o, item i where o.iid = i.iid \
     and o.oid = ord.oid) where oid in (select oid from new updated \
     lineitem.qty)";
    (* the quantity cap: a range predicate over the ordered qty index
       in a rule condition.  It rolls back rather than repairs — a rule
       that rewrote qty here would fold into the very transition the
       rollup rules read, making the totals order-dependent *)
    "create rule or_cap when inserted into lineitem or updated lineitem.qty \
     if exists (select * from lineitem where qty > 120) then rollback";
  ]
  @ pad_rules ~table:"lineitem" ~col:"lid" p.Profile.rule_density

let or_txn s =
  let p = Sampler.profile s in
  let ni = or_items p and no = or_orders p in
  let op () =
    if Sampler.is_read s then
      match Sampler.uniform s 3 with
      | 0 ->
        Printf.sprintf "select total, lines from ord where oid = %d"
          (Sampler.key s mod no)
      | 1 ->
        (* a range retrieval over the ordered qty index *)
        Printf.sprintf "select count(*) from lineitem where qty > %d"
          (Sampler.uniform s 91)
      | _ ->
        (* an ad-hoc join, priced the same way the rules price lines *)
        Printf.sprintf
          "select sum(l.qty * i.price) from lineitem l, item i where l.iid = \
           i.iid and l.oid = %d"
          (Sampler.key s mod no)
    else
      match Sampler.uniform s 10 with
      | 0 | 1 | 2 | 3 ->
        Printf.sprintf "insert into lineitem values (%d, %d, %d, %d)"
          (Sampler.key s) (Sampler.key s mod no) (Sampler.key s mod ni)
          (1 + Sampler.uniform s 120)
      | 4 | 5 | 6 ->
        Printf.sprintf "update lineitem set qty = %s where lid = %d"
          (delta "qty" (Sampler.uniform s 60 - 20))
          (Sampler.key s)
      | _ ->
        Printf.sprintf "delete from lineitem where lid = %d" (Sampler.key s)
  in
  String.concat "; " (List.init (Sampler.txn_size s) (fun _ -> op ()))

let or_scenario =
  {
    Scenario.sc_name = order_rollup;
    sc_doc =
      "join-heavy order/lineitem rollup: rules join each transition table \
       against the item and ord base tables to maintain priced per-order \
       totals, with a range-predicate quantity cap";
    sc_tables = [ "item"; "ord"; "lineitem" ];
    sc_setup = or_setup;
    sc_txn = or_txn;
    sc_invariants =
      [
        Scenario.zero_count "line-counts-match"
          ~sql:
            "select count(*) from ord where lines <> (select count(*) from \
             lineitem l where l.oid = ord.oid)";
        Scenario.zero_count "empty-orders-have-zero-total"
          ~sql:"select count(*) from ord where lines = 0 and total <> 0";
        Scenario.zero_count "totals-equal-priced-join"
          ~sql:
            "select count(*) from ord where lines > 0 and total <> (select \
             sum(l.qty * i.price) from lineitem l, item i where l.iid = \
             i.iid and l.oid = ord.oid)";
        Scenario.zero_count "quantities-capped"
          ~sql:"select count(*) from lineitem where qty > 120";
      ];
    sc_config = Engine.default_config;
  }

(* ------------------------------------------------------------------ *)

let registered = ref false

let register_all () =
  if not !registered then begin
    registered := true;
    List.iter Scenario.register
      [
        tq_scenario;
        at_scenario;
        mv_scenario;
        rc_scenario;
        rp_scenario;
        or_scenario;
      ]
  end

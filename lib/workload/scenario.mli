(** The scenario registry: reusable, invariant-checked workloads.

    A scenario packages the three things the paper's examples combine —
    a schema, a rule set enforcing or maintaining something over it,
    and traffic that stresses the rules — together with the
    machine-checkable invariants the rule set is supposed to preserve.
    One registered definition serves every consumer: the short
    deterministic tests under [dune runtest], the soak runner, the
    throughput benchmark (E17), the [sopr-workload] CLI, and the
    examples. *)

open Core

(** A machine-checkable property of the committed state.  [inv_check]
    returns [None] when the invariant holds and a human-readable
    description of the violation otherwise; it must be read-only and
    safe to run between any two transactions (and after any crash
    recovery). *)
type invariant = { inv_name : string; inv_check : System.t -> string option }

type t = {
  sc_name : string;
  sc_doc : string;  (** one-line description, shown by [sopr-workload list] *)
  sc_tables : string list;
      (** the tables whose contents are the scenario's observable state,
          in a fixed order — the runner's state digests and differential
          comparisons quantify over exactly these *)
  sc_setup : Profile.t -> string list;
      (** DDL, rules and seed data as individual statements, executed
          one at a time (rule actions are [';']-separated statement
          lists, so a rule definition must never share a script string
          with a following statement).  [rule_density] padding rules are
          included here. *)
  sc_txn : Profile.Sampler.t -> string;
      (** one transaction: a [';']-separated DML block.  Must be
          DDL-free (blocks replay through the WAL and the crash
          harness) and procedure-free (recovery cannot re-register
          OCaml code). *)
  sc_invariants : invariant list;
  sc_config : Engine.config;
      (** engine configuration the scenario needs (e.g. select tracking
          for retrieval-triggered rules) *)
}

val register : t -> unit
(** Raises [Invalid_argument] on a duplicate or empty name. *)

val find : string -> t option

val get : string -> t
(** Raises [Invalid_argument] with the known names listed. *)

val all : unit -> t list
(** In registration order. *)

val names : unit -> string list

(** {2 Invariant helpers} *)

val int_value : System.t -> string -> int
(** Evaluate a single-cell query as an int, mapping an empty result or
    SQL NULL (e.g. [sum] over no rows) to 0. *)

val zero_count : string -> sql:string -> invariant
(** The invariant that [sql] — a count-style single-cell query
    enumerating violations — evaluates to 0. *)

val equal_ints :
  string -> actual:(System.t -> int) -> expected:(System.t -> int) -> invariant
(** The invariant that two derived integers agree. *)

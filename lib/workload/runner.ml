(* Scenario drivers: in-memory differential, durable fault+crash soak,
   timed throughput.  All randomness is consumed up front (the whole
   transaction stream is generated before any execution), so a run is
   reproducible from the profile's seed alone. *)

open Core
module Durable = Durability.Durable
module Recovery = Durability.Recovery
module Compile = Sqlf.Compile

exception Check_failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Check_failed m)) fmt

(* The compiled path is the process default; every interpreted-twin
   operation restores it on any exit. *)
let with_compile flag f =
  let saved = !Compile.enabled in
  Compile.enabled := flag;
  Fun.protect ~finally:(fun () -> Compile.enabled := saved) f

(* ------------------------------------------------------------------ *)
(* Building blocks                                                     *)

let is_index_ddl stmt =
  let lower = String.lowercase_ascii (String.trim stmt) in
  String.length lower >= 12 && String.sub lower 0 12 = "create index"

let setup_statements ?(indexes = true) sc profile =
  let stmts = sc.Scenario.sc_setup profile in
  if indexes then stmts
  else List.filter (fun s -> not (is_index_ddl s)) stmts

let index_names sc profile =
  List.filter_map
    (fun stmt ->
      if not (is_index_ddl stmt) then None
      else
        match String.split_on_char ' ' (String.trim stmt) with
        | _create :: _index :: name :: _ -> Some name
        | _ -> None)
    (sc.Scenario.sc_setup profile)

let build ?indexes ?config sc profile =
  let config = Option.value config ~default:sc.Scenario.sc_config in
  let s = System.create ~config () in
  List.iter
    (fun stmt -> ignore (System.exec_one s stmt))
    (setup_statements ?indexes sc profile);
  s

let gen_blocks sc profile =
  let sampler = Profile.Sampler.create profile in
  List.init profile.Profile.txns (fun _ -> sc.Scenario.sc_txn sampler)

(* Value-only canonical state: sorted row renderings per observable
   table.  Comparable across independent systems (handle ids and index
   structures never appear) and across recoveries. *)
let state_digest sc s =
  String.concat "\n"
    (List.map
       (fun tbl ->
         match System.query s ("select * from " ^ tbl) with
         | _cols, rows ->
           let rendered =
             List.sort compare
               (List.map
                  (fun row ->
                    String.concat "|"
                      (Array.to_list (Array.map Value.to_string row)))
                  rows)
           in
           Printf.sprintf "%s:%s" tbl (String.concat ";" rendered)
         | exception _ -> tbl ^ ":<absent>")
       sc.Scenario.sc_tables)

let check_invariants sc ~context s =
  List.iter
    (fun inv ->
      match inv.Scenario.inv_check s with
      | None -> ()
      | Some detail ->
        failf "[%s] %s: invariant %S violated: %s" sc.Scenario.sc_name context
          inv.Scenario.inv_name detail
      | exception Errors.Error e ->
        failf "[%s] %s: invariant %S raised: %s" sc.Scenario.sc_name context
          inv.Scenario.inv_name (Errors.to_string e))
    sc.Scenario.sc_invariants

let n_invariants sc = List.length sc.Scenario.sc_invariants

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

type report = {
  r_scenario : string;
  r_txns : int;
  r_committed : int;
  r_rolled_back : int;
  r_injections : int;
  r_fsync_deaths : int;
  r_kills : int;
  r_recoveries : int;
  r_checks : int;
}

let empty_report name =
  {
    r_scenario = name;
    r_txns = 0;
    r_committed = 0;
    r_rolled_back = 0;
    r_injections = 0;
    r_fsync_deaths = 0;
    r_kills = 0;
    r_recoveries = 0;
    r_checks = 0;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %d txns (%d committed, %d rolled back), %d faults injected, %d \
     fsync deaths, %d kills, %d recoveries checked, %d invariant checks"
    r.r_scenario r.r_txns r.r_committed r.r_rolled_back r.r_injections
    r.r_fsync_deaths r.r_kills r.r_recoveries r.r_checks

(* ------------------------------------------------------------------ *)
(* Block execution, normalized                                         *)

(* Everything observable about one transaction: the outcome or the
   genuine-error string, plus select results with rows sorted (probe
   and scan twins may produce different physical row orders for the
   same unordered query). *)
type block_result =
  | Done of Engine.outcome * (string list * string list) list
  | Failed of string

let render_rels rels =
  List.map
    (fun r ->
      ( Array.to_list r.Eval.cols,
        List.sort compare
          (List.map
             (fun row ->
               String.concat "|"
                 (Array.to_list (Array.map Value.to_string row)))
             r.Eval.rows) ))
    rels

let run_block s sql =
  match System.exec_block s sql with
  | outcome, rels -> Done (outcome, render_rels rels)
  | exception Errors.Error e -> Failed (Errors.to_string e)

let check_same_result sc ~context ~label a b =
  let fail detail =
    failf "[%s] %s: %s diverged: %s" sc.Scenario.sc_name context label detail
  in
  match (a, b) with
  | Failed ea, Failed eb ->
    if ea <> eb then fail (Printf.sprintf "error %S <> %S" ea eb)
  | Done (oa, ra), Done (ob, rb) ->
    if oa <> ob then fail "different outcomes";
    if ra <> rb then fail "different select results"
  | Done _, Failed e | Failed e, Done _ ->
    fail (Printf.sprintf "one side errored (%s) and the other did not" e)

let count_outcome rep = function
  | Done (Engine.Committed, _) -> rep := { !rep with r_committed = !rep.r_committed + 1 }
  | Done (Engine.Rolled_back, _) ->
    rep := { !rep with r_rolled_back = !rep.r_rolled_back + 1 }
  | Failed e ->
    failf "genuine engine error in generated workload: %s" e

(* ------------------------------------------------------------------ *)
(* The in-memory differential run                                      *)

let run_short ?(check_every = 4) sc profile =
  Profile.validate profile;
  let blocks = gen_blocks sc profile in
  let primary = with_compile true (fun () -> build sc profile) in
  let interp = with_compile false (fun () -> build sc profile) in
  let scan = with_compile true (fun () -> build ~indexes:false sc profile) in
  let rep = ref (empty_report sc.Scenario.sc_name) in
  let compare_states context =
    let dp = state_digest sc primary in
    let di = with_compile false (fun () -> state_digest sc interp) in
    let ds = state_digest sc scan in
    if dp <> di then
      failf "[%s] %s: interpreted twin diverged from compiled"
        sc.Scenario.sc_name context;
    if dp <> ds then
      failf "[%s] %s: scan twin diverged from probe" sc.Scenario.sc_name
        context
  in
  List.iteri
    (fun i block ->
      let context = Printf.sprintf "txn %d" (i + 1) in
      let rp = with_compile true (fun () -> run_block primary block) in
      let ri = with_compile false (fun () -> run_block interp block) in
      let rs = with_compile true (fun () -> run_block scan block) in
      check_same_result sc ~context ~label:"compiled vs interpreted" rp ri;
      check_same_result sc ~context ~label:"probe vs scan" rp rs;
      rep := { !rep with r_txns = !rep.r_txns + 1 };
      count_outcome rep rp;
      if (i + 1) mod check_every = 0 then begin
        compare_states context;
        check_invariants sc ~context primary;
        rep := { !rep with r_checks = !rep.r_checks + n_invariants sc }
      end)
    blocks;
  compare_states "final";
  check_invariants sc ~context:"final (compiled)" primary;
  with_compile false (fun () ->
      check_invariants sc ~context:"final (interpreted)" interp);
  check_invariants sc ~context:"final (scan)" scan;
  rep := { !rep with r_checks = !rep.r_checks + (3 * n_invariants sc) };
  !rep

(* ------------------------------------------------------------------ *)
(* Discrimination-index differential: the same stream on a system with
   the rule index on and on the linear-scan oracle.  Selection is
   order-independent over equal candidate sets, so the two must agree
   on everything observable: per-transaction results, full execution
   traces (consideration and firing order included), value digests,
   lifetime firing counts.                                             *)

let run_index_differential ?(check_every = 4) sc profile =
  Profile.validate profile;
  let blocks = gen_blocks sc profile in
  let indexed = build sc profile in
  let oracle =
    build
      ~config:{ sc.Scenario.sc_config with Engine.rule_index = false }
      sc profile
  in
  Engine.set_tracing (System.engine indexed) true;
  Engine.set_tracing (System.engine oracle) true;
  let rep = ref (empty_report sc.Scenario.sc_name) in
  let compare_states context =
    if state_digest sc indexed <> state_digest sc oracle then
      failf "[%s] %s: indexed state diverged from the linear oracle"
        sc.Scenario.sc_name context
  in
  List.iteri
    (fun i block ->
      let context = Printf.sprintf "txn %d" (i + 1) in
      let ri = run_block indexed block in
      let ro = run_block oracle block in
      check_same_result sc ~context ~label:"indexed vs linear oracle" ri ro;
      let trace_i = Engine.trace (System.engine indexed) in
      let trace_o = Engine.trace (System.engine oracle) in
      if trace_i <> trace_o then
        failf
          "[%s] %s: indexed trace (considerations, firing order) diverged \
           from the linear oracle"
          sc.Scenario.sc_name context;
      rep := { !rep with r_txns = !rep.r_txns + 1 };
      count_outcome rep ri;
      if (i + 1) mod check_every = 0 then begin
        compare_states context;
        check_invariants sc ~context indexed;
        rep := { !rep with r_checks = !rep.r_checks + n_invariants sc }
      end)
    blocks;
  compare_states "final";
  check_invariants sc ~context:"final (indexed)" indexed;
  check_invariants sc ~context:"final (oracle)" oracle;
  rep := { !rep with r_checks = !rep.r_checks + (2 * n_invariants sc) };
  let si = Engine.stats (System.engine indexed) in
  let so = Engine.stats (System.engine oracle) in
  if si.Engine.rule_firings <> so.Engine.rule_firings then
    failf "[%s] firing counts diverged: indexed %d, oracle %d"
      sc.Scenario.sc_name si.Engine.rule_firings so.Engine.rule_firings;
  if so.Engine.rules_skipped <> 0 then
    failf "[%s] the linear oracle reported skipped rules" sc.Scenario.sc_name;
  !rep

(* ------------------------------------------------------------------ *)
(* Prepared-statement differential: the same stream executed directly
   and through PREPARE/EXECUTE.  Each generated statement is
   parameterized ([Ast.parameterize_op] lifts its bindable literals
   into `?` slots), prepared once per distinct shape, and then driven
   by binding the lifted constants — so repetitions of a shape must
   come back from the prepared-plan cache rather than re-compiling.    *)

let run_prepared_block s names executed block =
  let eng = System.engine s in
  (* PREPARE is session state, not transaction state: new shapes are
     registered before the block's transaction opens *)
  let items =
    List.map
      (fun stmt ->
        match stmt with
        | Ast.Stmt_op op ->
          let op', args = Ast.parameterize_op op in
          let text = Pretty.op_str op' in
          let name =
            match Hashtbl.find_opt names text with
            | Some n -> n
            | None ->
              let n = Printf.sprintf "w%d" (Hashtbl.length names) in
              Hashtbl.add names text n;
              Engine.prepare eng ~name:n op';
              n
          in
          incr executed;
          (name, Array.to_list args)
        | _ ->
          Errors.semantic "the prepared driver accepts data manipulation only")
      (Parser.parse_script block)
  in
  match
    Engine.begin_txn eng;
    (try
       let rels =
         List.concat_map
           (fun (name, args) ->
             let p = Engine.find_prepared eng name in
             let params = Engine.bind_params p args in
             Engine.submit_cops eng ~params [ Engine.prepared_cop eng p ])
           items
       in
       let outcome = Engine.commit eng in
       (outcome, rels)
     with e ->
       if Engine.in_transaction eng then Engine.rollback_txn eng;
       raise e)
  with
  | outcome, rels -> Done (outcome, render_rels rels)
  | exception Errors.Error e -> Failed (Errors.to_string e)

let run_prepared_differential ?(check_every = 4) sc profile =
  Profile.validate profile;
  let blocks = gen_blocks sc profile in
  let direct = build sc profile in
  let prepared = build sc profile in
  let names = Hashtbl.create 64 in
  let executed = ref 0 in
  let rep = ref (empty_report sc.Scenario.sc_name) in
  let compare_states context =
    if state_digest sc direct <> state_digest sc prepared then
      failf "[%s] %s: prepared-statement twin diverged from direct execution"
        sc.Scenario.sc_name context
  in
  List.iteri
    (fun i block ->
      let context = Printf.sprintf "txn %d" (i + 1) in
      let rd = run_block direct block in
      let rp = run_prepared_block prepared names executed block in
      check_same_result sc ~context ~label:"direct vs prepared" rd rp;
      rep := { !rep with r_txns = !rep.r_txns + 1 };
      count_outcome rep rd;
      if (i + 1) mod check_every = 0 then begin
        compare_states context;
        check_invariants sc ~context prepared;
        rep := { !rep with r_checks = !rep.r_checks + n_invariants sc }
      end)
    blocks;
  compare_states "final";
  check_invariants sc ~context:"final (direct)" direct;
  check_invariants sc ~context:"final (prepared)" prepared;
  rep := { !rep with r_checks = !rep.r_checks + (2 * n_invariants sc) };
  let st = Engine.stats (System.engine prepared) in
  let distinct = Hashtbl.length names in
  if !executed > distinct && st.Engine.stmt_cache_hits = 0 then
    failf
      "[%s] prepared plans never hit the cache (%d statements over %d \
       distinct shapes)"
      sc.Scenario.sc_name !executed distinct;
  !rep

(* ------------------------------------------------------------------ *)
(* Filesystem scratch helpers                                          *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Recovery differential: after every recovery the soak checks that    *)
(* (a) a compiled restore reproduces the expected state, (b) an        *)
(* interpreted restore agrees (the whole WAL replay runs through the   *)
(* tree-walking evaluator), and (c) with every index dropped the scan  *)
(* paths still see the same state and invariants.                      *)

let recovery_differential sc profile ~context ~expected dir =
  let config = sc.Scenario.sc_config in
  let probe, _ = Recovery.restore ~config dir in
  let dp = state_digest sc probe in
  (match expected with
  | Some d when d <> dp ->
    failf "[%s] %s: recovered state differs from the live state"
      sc.Scenario.sc_name context
  | _ -> ());
  check_invariants sc ~context:(context ^ " (probe restore)") probe;
  with_compile false (fun () ->
      let interp, _ = Recovery.restore ~config dir in
      if state_digest sc interp <> dp then
        failf "[%s] %s: interpreted recovery diverged from compiled"
          sc.Scenario.sc_name context;
      check_invariants sc ~context:(context ^ " (interpreted restore)") interp);
  let scan, _ = Recovery.restore ~config dir in
  List.iter
    (fun ix -> ignore (System.exec_one scan ("drop index " ^ ix)))
    (index_names sc profile);
  if state_digest sc scan <> dp then
    failf "[%s] %s: scan state diverged after dropping indexes"
      sc.Scenario.sc_name context;
  check_invariants sc ~context:(context ^ " (scan restore)") scan;
  3 * n_invariants sc

(* ------------------------------------------------------------------ *)
(* The durable soak: live-fault phase + fork/SIGKILL crash phase       *)

let open_durable sc dir = Durable.open_dir ~config:sc.Scenario.sc_config dir

let setup_durable sc profile d =
  List.iter
    (fun stmt -> ignore (Durable.exec d stmt))
    (setup_statements sc profile)

(* Phase 1: drive the stream on a durable system, arming a fault on
   every [fault_every]-th block.  Aborts must restore the
   pre-transaction state; a Wal_fsync death is survived by abandoning
   the live system and reopening (the transaction IS committed —
   retrying would apply it twice); the first manual checkpoint sweeps
   the checkpoint fault sites. *)
let live_fault_phase sc profile ~fault_every ~dir rep blocks =
  mkdir_p dir;
  let d = ref (fst (open_durable sc dir)) in
  setup_durable sc profile !d;
  let ckpt_every = max 16 (List.length blocks / 8) in
  let ckpt_swept = ref false in
  let recoveries = ref 0 in
  let bump_checks n = rep := { !rep with r_checks = !rep.r_checks + n } in
  let sweep_checkpoint () =
    let live = Durable.system !d in
    let fp0 = state_digest sc live in
    let gen0 = Durable.generation !d in
    List.iter
      (fun k ->
        Fault.arm k;
        (match Durable.checkpoint !d with
        | () -> failf "[%s] checkpoint sweep: expected an injection" sc.Scenario.sc_name
        | exception Fault.Injected _ ->
          rep := { !rep with r_injections = !rep.r_injections + 1 });
        Fault.disarm ();
        if Durable.generation !d <> gen0 then
          failf "[%s] a failed checkpoint advanced the generation"
            sc.Scenario.sc_name;
        incr recoveries;
        bump_checks
          (recovery_differential sc profile
             ~context:(Printf.sprintf "after failed checkpoint (arm %d)" k)
             ~expected:(Some fp0) dir))
      [ 1; 2 ];
    Durable.checkpoint !d
  in
  List.iteri
    (fun i block ->
      rep := { !rep with r_txns = !rep.r_txns + 1 };
      let live () = Durable.system !d in
      if fault_every > 0 && (i + 1) mod fault_every = 0 then begin
        (* deterministic countdown cycling over the first ~25 hit
           points of the block — deep enough to reach commit and WAL
           sites on small blocks *)
        let k = 1 + (i * 7 mod 25) in
        let pre = state_digest sc (live ()) in
        Fault.arm k;
        match run_block (live ()) block with
        | r ->
          Fault.disarm ();
          count_outcome rep r
        | exception Fault.Injected Fault.Wal_fsync ->
          Fault.disarm ();
          rep :=
            {
              !rep with
              r_injections = !rep.r_injections + 1;
              r_fsync_deaths = !rep.r_fsync_deaths + 1;
              (* the record is durable: the transaction committed even
                 though the writer never saw the append return *)
              r_committed = !rep.r_committed + 1;
            };
          Durable.close !d;
          incr recoveries;
          bump_checks
            (recovery_differential sc profile
               ~context:(Printf.sprintf "after fsync death (txn %d)" (i + 1))
               ~expected:None dir);
          d := fst (open_durable sc dir)
        | exception Fault.Injected _ ->
          Fault.disarm ();
          rep := { !rep with r_injections = !rep.r_injections + 1 };
          if state_digest sc (live ()) <> pre then
            failf "[%s] txn %d: induced abort did not restore the snapshot"
              sc.Scenario.sc_name (i + 1);
          (* the fault-free retry *)
          count_outcome rep (run_block (live ()) block)
      end
      else count_outcome rep (run_block (live ()) block);
      if (i + 1) mod ckpt_every = 0 then
        if !ckpt_swept then Durable.checkpoint !d
        else begin
          ckpt_swept := true;
          sweep_checkpoint ()
        end)
    blocks;
  let live = Durable.system !d in
  check_invariants sc ~context:"live-fault phase final" live;
  bump_checks (n_invariants sc);
  incr recoveries;
  bump_checks
    (recovery_differential sc profile ~context:"live-fault phase final"
       ~expected:(Some (state_digest sc live)) dir);
  Durable.close !d;
  rep := { !rep with r_recoveries = !rep.r_recoveries + !recoveries }

(* Phase 2: the crash harness.  A clean reference run records the
   value digest keyed by durable record count — block execution is
   deterministic and every committed effectful block appends exactly
   one Txn record, so [digest_at.(records)] is the expected state of
   ANY recovery whose log holds that many records.  Forked children
   then replay the identical workload and die by real SIGKILL at an
   armed fault site; recovery must land exactly on a committed-prefix
   boundary. *)
let crash_phase sc profile ~kills ~root rep blocks =
  let config = sc.Scenario.sc_config in
  let ref_dir = Filename.concat root "reference" in
  mkdir_p ref_dir;
  let d, _ = open_durable sc ref_dir in
  setup_durable sc profile d;
  Fault.enable true;
  Fault.disarm ();
  let digest_at = Hashtbl.create 64 in
  let records () = (Durable.status d).Durable.st_wal_records in
  Hashtbl.replace digest_at (records ()) (state_digest sc (Durable.system d));
  let hits_after = Array.make (List.length blocks) 0 in
  List.iteri
    (fun i block ->
      rep := { !rep with r_txns = !rep.r_txns + 1 };
      count_outcome rep (run_block (Durable.system d) block);
      Hashtbl.replace digest_at (records ())
        (state_digest sc (Durable.system d));
      hits_after.(i) <- Fault.observed_hits ())
    blocks;
  check_invariants sc ~context:"crash-phase reference final"
    (Durable.system d);
  rep := { !rep with r_checks = !rep.r_checks + n_invariants sc };
  Fault.reset ();
  Durable.close d;
  let n = Array.length hits_after in
  (* kill points: the (approximate) hit counts at evenly spread block
     positions.  The child's own hit numbering runs a little behind
     (it never executes the reference run's digest queries), so each
     kill lands at or before the chosen block — anywhere mid-run is a
     valid crash point, including a clean run killed at the end. *)
  let kill_points =
    List.sort_uniq compare
      (List.init (max 0 kills) (fun j ->
           max 1 hits_after.(min (n - 1) ((n * (j + 1) / (kills + 1))))))
  in
  List.iter
    (fun h ->
      let kdir = Filename.concat root (Printf.sprintf "kill-%d" h) in
      rm_rf kdir;
      mkdir_p kdir;
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        (* the child re-runs the deterministic workload and dies by
           real SIGKILL at the h-th fault-site hit: no atexit, no
           buffer flushing, no unwinding — a crash *)
        (try
           Fault.reset ();
           let d, _ = open_durable sc kdir in
           setup_durable sc profile d;
           Fault.arm h;
           List.iter
             (fun b -> ignore (run_block (Durable.system d) b))
             blocks
         with _ -> ());
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        assert false
      | pid ->
        let _, status = Unix.waitpid [] pid in
        (match status with
        | Unix.WSIGNALED s when s = Sys.sigkill -> ()
        | _ -> failf "[%s] crash child did not die by SIGKILL" sc.Scenario.sc_name);
        let sys_r, info = Recovery.restore ~config kdir in
        if info.Recovery.ri_torn then
          failf "[%s] kill at hit %d left a torn tail (SIGKILL cannot tear)"
            sc.Scenario.sc_name h;
        let k = info.Recovery.ri_records in
        (match Hashtbl.find_opt digest_at k with
        | None ->
          failf
            "[%s] kill at hit %d: %d durable records do not match any \
             committed-prefix boundary"
            sc.Scenario.sc_name h k
        | Some expected ->
          if state_digest sc sys_r <> expected then
            failf
              "[%s] kill at hit %d: recovery (%d records) is not the \
               committed-prefix state"
              sc.Scenario.sc_name h k);
        rep :=
          {
            !rep with
            r_kills = !rep.r_kills + 1;
            r_recoveries = !rep.r_recoveries + 1;
          };
        rep :=
          {
            !rep with
            r_checks =
              !rep.r_checks
              + recovery_differential sc profile
                  ~context:(Printf.sprintf "after kill at hit %d" h)
                  ~expected:None kdir;
          };
        rm_rf kdir)
    kill_points

let soak ~dir ?(kills = 3) ?(fault_every = 5) sc profile =
  Profile.validate profile;
  let rep = ref (empty_report sc.Scenario.sc_name) in
  let root = Filename.concat dir sc.Scenario.sc_name in
  rm_rf root;
  mkdir_p root;
  Fun.protect ~finally:Fault.reset (fun () ->
      let blocks = gen_blocks sc profile in
      live_fault_phase sc profile ~fault_every
        ~dir:(Filename.concat root "live") rep blocks;
      crash_phase sc profile ~kills ~root rep blocks);
  !rep

(* ------------------------------------------------------------------ *)
(* Timed throughput (E17, CLI)                                         *)

let throughput ?(duration = 1.0) sc profile =
  Profile.validate profile;
  let blocks = Array.of_list (gen_blocks sc profile) in
  if Array.length blocks = 0 then invalid_arg "throughput: txns must be > 0";
  let s = build sc profile in
  let start = Unix.gettimeofday () in
  let n = ref 0 in
  while Unix.gettimeofday () -. start < duration do
    ignore (run_block s blocks.(!n mod Array.length blocks));
    incr n
  done;
  let elapsed = Unix.gettimeofday () -. start in
  (float_of_int !n /. elapsed, !n)

(** Drive a registered scenario with generated traffic.

    Three drivers share one deterministic transaction stream (all
    blocks are generated up front from the profile's seed, so a run is
    reproducible from [seed] alone):

    - {!run_short}: in-memory differential — the same blocks executed
      on a compiled+indexed system, an interpreted twin and a scan
      (index-free) twin, with per-transaction result comparison and
      invariant checks.  This is the [dune runtest] short mode.
    - {!soak}: durable — a live fault-injection phase (PR 2 sites armed
      mid-run, abort-restores-snapshot asserted, fsync-point deaths
      survived by reopening) followed by a fork+SIGKILL crash phase
      (PR 5 harness), with invariants and scan/probe/compiled-vs-
      interpreted differential equivalence checked after every
      recovery.
    - {!throughput}: plain timed execution for the E17 benchmark and
      the CLI.

    All checks raise {!Check_failed}; drivers never assert through a
    test framework so the CLI and the benchmarks can reuse them. *)

open Core

exception Check_failed of string
(** An invariant violation or differential divergence, with scenario,
    context and detail in the message. *)

(** {2 Building blocks} *)

val setup_statements : ?indexes:bool -> Scenario.t -> Profile.t -> string list
(** The scenario's setup, optionally with [create index] statements
    filtered out ([indexes:false] builds the scan twin). *)

val index_names : Scenario.t -> Profile.t -> string list
(** Names of the indexes the setup creates (parsed from the DDL), for
    dropping on a restored system. *)

val build :
  ?indexes:bool -> ?config:Engine.config -> Scenario.t -> Profile.t ->
  System.t
(** A fresh in-memory system with the scenario's setup applied (one
    statement at a time — rule DDL must never share a script string
    with a following statement).  [config] overrides the scenario's
    engine configuration (e.g. to build the linear-scan oracle). *)

val gen_blocks : Scenario.t -> Profile.t -> string list
(** The profile's whole transaction stream: [txns] blocks from a fresh
    sampler seeded with [profile.seed]. *)

val state_digest : Scenario.t -> System.t -> string
(** Canonical value-only rendering of the scenario's observable tables
    (sorted rows, no handles) — comparable across independent systems
    and across recoveries.  Missing tables render as [<absent>]. *)

val check_invariants : Scenario.t -> context:string -> System.t -> unit
(** Evaluate every declared invariant; raise {!Check_failed} naming the
    first violated one. *)

(** One transaction's observable result: outcome plus select results
    with rows rendered and sorted (probe and scan twins may produce
    different physical row orders for the same unordered query), or
    the genuine-error string. *)
type block_result =
  | Done of Engine.outcome * (string list * string list) list
  | Failed of string

val run_block : System.t -> string -> block_result
(** Execute one generated block as one transaction.  Faults injected by
    an armed {!Core.Fault} countdown propagate ({!Fault.Injected} is
    not an engine error); genuine engine errors normalize to
    [Failed]. *)

(** {2 Reports} *)

type report = {
  r_scenario : string;
  r_txns : int;  (** transactions driven (unique blocks, not retries) *)
  r_committed : int;
  r_rolled_back : int;
  r_injections : int;  (** live faults injected (soak only) *)
  r_fsync_deaths : int;  (** Wal_fsync deaths survived by reopening *)
  r_kills : int;  (** fork+SIGKILL crash/recovery rounds *)
  r_recoveries : int;  (** recoveries differentially checked *)
  r_checks : int;  (** invariant evaluations that held *)
}

val pp_report : Format.formatter -> report -> unit

(** {2 Drivers} *)

val run_short : ?check_every:int -> Scenario.t -> Profile.t -> report
(** The in-memory differential run described above.  [check_every]
    (default 4) sets how often digests and invariants are compared
    between per-transaction result checks. *)

val run_index_differential :
  ?check_every:int -> Scenario.t -> Profile.t -> report
(** The same stream on a system with the rule discrimination index on
    and on the linear-scan oracle ([rule_index = false]), asserting
    identical per-transaction results, execution traces (consideration
    and firing order included), value digests, invariants and lifetime
    firing counts. *)

val run_prepared_differential :
  ?check_every:int -> Scenario.t -> Profile.t -> report
(** The same stream executed directly and through PREPARE/EXECUTE:
    each generated statement has its bindable literals lifted into
    positional parameters ({!Ast.parameterize_op}), is prepared once
    per distinct shape, and runs by binding the lifted constants —
    asserting identical per-transaction results, value digests and
    invariants, and that repeated shapes were served from the
    prepared-plan cache. *)

val soak :
  dir:string -> ?kills:int -> ?fault_every:int -> Scenario.t -> Profile.t ->
  report
(** The durable fault+crash soak described above, using [dir] as the
    scratch root (created if needed; contents are disposable).  The
    transaction stream is driven twice — once through the live-fault
    phase, once as the crash phase's reference run — so the soak
    drives [2 * txns] transactions total.  [kills] (default 3) is the
    number of SIGKILL points; [fault_every] (default 5) arms a live
    fault on every n-th block of the fault phase. *)

val throughput : ?duration:float -> Scenario.t -> Profile.t -> float * int
(** Execute the stream (repeating it as needed) on an in-memory system
    for at least [duration] seconds (default 1.0) and return
    (transactions per second, transactions executed). *)

(** Drive a scenario through the concurrent-session server.

    The generated transaction stream is partitioned round-robin over
    [clients] real TCP sessions, each wrapping its blocks in
    [begin; ...; commit] and retrying on serialization failure.  The
    run then proves serializability: commits report their publish
    versions, the committed blocks are replayed in that order on a
    plain in-memory system, and the value digests must match.  The
    server runs with [track_selects] on, which escalates it from
    snapshot isolation (write skew possible) to serializable:
    table-granularity read claims join the commit validation — without
    them the replay check genuinely fails under durable commit
    latencies, as rule conditions and scalar subqueries read tables
    their transaction never writes.  The
    scenario's invariants are checked on the server's primary system,
    and the server's conflict counter must agree with the clients'.

    All failures raise {!Runner.Check_failed}. *)

type report = {
  sd_scenario : string;
  sd_clients : int;
  sd_txns : int;  (** unique blocks driven, not retries *)
  sd_committed : int;
  sd_rolled_back : int;  (** rule-initiated rollbacks (net effect empty) *)
  sd_conflicts : int;  (** serialization failures, all retried *)
  sd_checks : int;  (** invariant evaluations + the replay differential *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?clients:int ->
  ?mode:Sopr_server.Server.mode ->
  ?data_dir:string ->
  Scenario.t ->
  Profile.t ->
  report
(** Defaults: 4 clients, {!Sopr_server.Server.Memory} (no [data_dir]
    needed).  WAL modes require [data_dir], as in
    {!Sopr_server.Server.create}. *)

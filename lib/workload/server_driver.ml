(* Drive a scenario's generated transaction stream through concurrent
   client sessions over loopback TCP, then prove serializability: every
   commit reports its publish version, so replaying the committed
   blocks in version order on a plain in-memory system must reproduce
   the server's final state exactly (value digests — handle allocation
   interleaves across sessions, so handle order cannot be compared). *)

open Core
module Server = Sopr_server.Server
module Client = Sopr_server.Client

let failf fmt = Printf.ksprintf (fun m -> raise (Runner.Check_failed m)) fmt

type report = {
  sd_scenario : string;
  sd_clients : int;
  sd_txns : int;
  sd_committed : int;
  sd_rolled_back : int;
  sd_conflicts : int;
  sd_checks : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %d txns over %d sessions (%d committed, %d rolled back), %d \
     serialization conflicts retried, serial replay matched, %d invariant \
     checks"
    r.sd_scenario r.sd_txns r.sd_clients r.sd_committed r.sd_rolled_back
    r.sd_conflicts r.sd_checks

(* The wire protocol is line-oriented: generated SQL must never smuggle
   a newline into the request. *)
let oneline s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The commit statement answers ["committed at version N"] — the
   server's publish order, which is the serialization order. *)
let commit_version body =
  let marker = "committed at version " in
  let nh = String.length body and nn = String.length marker in
  let rec last i best =
    if i + nn > nh then best
    else if String.sub body i nn = marker then last (i + 1) (Some (i + nn))
    else last (i + 1) best
  in
  match last 0 None with
  | None -> None
  | Some j ->
    let k = ref j in
    while !k < nh && body.[!k] >= '0' && body.[!k] <= '9' do
      incr k
    done;
    int_of_string_opt (String.sub body j (!k - j))

let max_attempts = 1000

let run ?(clients = 4) ?(mode = Server.Memory) ?data_dir sc profile =
  Profile.validate profile;
  let blocks = Array.of_list (Runner.gen_blocks sc profile) in
  (* Write-write conflicts alone give snapshot isolation; scenarios
     whose transactions write rows computed from reads (the repair
     cascade's rule conditions and scalar subqueries) exhibit write
     skew under a long commit window (one fsync is plenty).  With
     [track_selects] the server runs serializable — table-granularity
     read claims join the commit validation — which is what makes the
     serial-replay check sound. *)
  let config = { sc.Scenario.sc_config with Engine.track_selects = true } in
  let srv = Server.create ~config ?data_dir mode in
  let listener = Server.start srv in
  let port = Server.port listener in
  Fun.protect ~finally:(fun () ->
      Server.stop listener;
      Server.close srv)
  @@ fun () ->
  let setup = Client.connect ~port () in
  List.iter
    (fun stmt ->
      match Client.request setup (oneline stmt) with
      | Ok _ -> ()
      | Error e -> failf "[%s] setup: %s" sc.Scenario.sc_name e)
    (Runner.setup_statements sc profile);
  Client.close setup;
  (* Setup DML autocommits through the publish path, so the workload's
     first commit lands at [base_version + 1]. *)
  let base_version = Server.version srv in
  let lock = Mutex.create () in
  let committed = ref [] (* (version, block index) *)
  and rolled_back = ref 0
  and conflicts = ref 0
  and trouble = ref [] in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let worker w =
    let c = Client.connect ~port () in
    Fun.protect ~finally:(fun () -> try Client.close c with _ -> ())
    @@ fun () ->
    let i = ref w in
    while !i < Array.length blocks do
      let bi = !i in
      let txn = "begin; " ^ oneline blocks.(bi) ^ "; commit" in
      let rec attempt n =
        if n > max_attempts then
          failf "[%s] txn %d: still conflicting after %d attempts"
            sc.Scenario.sc_name (bi + 1) max_attempts;
        match Client.request c txn with
        | Ok body -> (
          match commit_version body with
          | Some v -> locked (fun () -> committed := (v, bi) :: !committed)
          | None -> locked (fun () -> incr rolled_back))
        | Error e when contains e "serialization failure" ->
          locked (fun () -> incr conflicts);
          ignore (Client.request c "rollback");
          Thread.yield ();
          attempt (n + 1)
        | Error e ->
          ignore (Client.request c "rollback");
          failf "[%s] txn %d: genuine error from generated workload: %s"
            sc.Scenario.sc_name (bi + 1) e
      in
      attempt 1;
      i := !i + clients
    done
  in
  let threads =
    List.init clients (fun w ->
        Thread.create
          (fun w ->
            try worker w
            with e -> locked (fun () -> trouble := e :: !trouble))
          w)
  in
  List.iter Thread.join threads;
  (match !trouble with e :: _ -> raise e | [] -> ());
  (* Serial replay in publish order: the differential oracle. *)
  let order =
    List.sort (fun (a, _) (b, _) -> compare a b) !committed
  in
  (match order with
  | (v, _) :: _ when v <> base_version + 1 ->
    failf "[%s] first workload commit at version %d, expected %d"
      sc.Scenario.sc_name v (base_version + 1)
  | _ -> ());
  List.iteri
    (fun k (v, _) ->
      if v <> base_version + 1 + k then
        failf "[%s] commit versions are not dense at %d" sc.Scenario.sc_name v)
    order;
  let replay = Runner.build ~config sc profile in
  List.iter
    (fun (v, bi) ->
      match Runner.run_block replay blocks.(bi) with
      | Runner.Done (Engine.Committed, _) -> ()
      | Runner.Done (Engine.Rolled_back, _) ->
        failf "[%s] replay of version %d rolled back but the server \
               committed it"
          sc.Scenario.sc_name v
      | Runner.Failed e ->
        failf "[%s] replay of version %d errored: %s" sc.Scenario.sc_name v e)
    order;
  if Runner.state_digest sc replay
     <> Runner.state_digest sc (Server.system srv)
  then
    failf "[%s] concurrent execution diverged from serial replay in commit \
           order"
      sc.Scenario.sc_name;
  Runner.check_invariants sc ~context:"server final" (Server.system srv);
  let st = Server.stats srv in
  if st.Server.sv_conflicts <> !conflicts then
    failf "[%s] server counted %d conflicts, clients saw %d"
      sc.Scenario.sc_name st.Server.sv_conflicts !conflicts;
  {
    sd_scenario = sc.Scenario.sc_name;
    sd_clients = clients;
    sd_txns = Array.length blocks;
    sd_committed = List.length order;
    sd_rolled_back = !rolled_back;
    sd_conflicts = !conflicts;
    sd_checks = List.length sc.Scenario.sc_invariants + 1;
  }

(* Workload profiles and the seeded YCSB-style sampler. *)

type t = {
  seed : int;
  txns : int;
  min_ops : int;
  max_ops : int;
  read_frac : float;
  keys : int;
  theta : float;
  rule_density : int;
}

let default =
  {
    seed = 42;
    txns = 100;
    min_ops = 1;
    max_ops = 4;
    read_frac = 0.25;
    keys = 64;
    theta = 0.6;
    rule_density = 0;
  }

let validate p =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if p.keys < 1 then bad "workload profile: keys must be >= 1 (got %d)" p.keys;
  if p.txns < 0 then bad "workload profile: txns must be >= 0 (got %d)" p.txns;
  if p.min_ops < 1 then
    bad "workload profile: min_ops must be >= 1 (got %d)" p.min_ops;
  if p.max_ops < p.min_ops then
    bad "workload profile: max_ops (%d) < min_ops (%d)" p.max_ops p.min_ops;
  if not (p.read_frac >= 0.0 && p.read_frac <= 1.0) then
    bad "workload profile: read_frac must be in [0,1] (got %g)" p.read_frac;
  if not (p.theta >= 0.0 && p.theta < 1.0) then
    bad "workload profile: theta must be in [0,1) (got %g)" p.theta;
  if p.rule_density < 0 then
    bad "workload profile: rule_density must be >= 0 (got %d)" p.rule_density

let describe p =
  Printf.sprintf
    "seed=%d txns=%d ops=%d..%d read_frac=%.2f keys=%d theta=%.2f \
     rule_density=%d"
    p.seed p.txns p.min_ops p.max_ops p.read_frac p.keys p.theta p.rule_density

module Sampler = struct
  (* The bounded Zipfian generator of Gray et al. ("Quickly generating
     billion-record synthetic databases", SIGMOD 1994), the same
     construction YCSB uses: closed-form inverse sampling against the
     truncated zeta normalizer.  Valid for theta in (0,1); theta = 0
     degenerates to uniform and is special-cased. *)
  type zipf = { zn : int; ztheta : float; alpha : float; zetan : float; eta : float }

  let zeta n theta =
    let z = ref 0.0 in
    for i = 1 to n do
      z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !z

  let make_zipf n theta =
    if theta <= 0.0 || n <= 1 then None
    else
      let zetan = zeta n theta in
      let eta =
        (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
        /. (1.0 -. (zeta 2 theta /. zetan))
      in
      Some { zn = n; ztheta = theta; alpha = 1.0 /. (1.0 -. theta); zetan; eta }

  type profile = t

  type nonrec t = { p : profile; st : Random.State.t; zipf : zipf option }

  let with_state p st =
    validate p;
    { p; st; zipf = make_zipf p.keys p.theta }

  let create p = with_state p (Random.State.make [| p.seed |])
  let profile s = s.p

  let key s =
    match s.zipf with
    | None -> if s.p.keys = 1 then 0 else Random.State.int s.st s.p.keys
    | Some z ->
      let u = Random.State.float s.st 1.0 in
      let uz = u *. z.zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. Float.pow 0.5 z.ztheta then 1
      else
        let k =
          int_of_float
            (float_of_int z.zn
            *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha)
        in
        if k < 0 then 0 else if k >= z.zn then z.zn - 1 else k

  let uniform s n = if n <= 1 then 0 else Random.State.int s.st n
  let is_read s = Random.State.float s.st 1.0 < s.p.read_frac
  let txn_size s = s.p.min_ops + uniform s (s.p.max_ops - s.p.min_ops + 1)
  let chance s pr = Random.State.float s.st 1.0 < pr
  let pick s a = a.(uniform s (Array.length a))
end

(* The scenario registry. *)

open Core

type invariant = { inv_name : string; inv_check : System.t -> string option }

type t = {
  sc_name : string;
  sc_doc : string;
  sc_tables : string list;
  sc_setup : Profile.t -> string list;
  sc_txn : Profile.Sampler.t -> string;
  sc_invariants : invariant list;
  sc_config : Engine.config;
}

(* Registration order matters (reports, benches and the CLI list
   scenarios in it), so the registry is an ordered assoc list. *)
let registry : t list ref = ref []

let register sc =
  if sc.sc_name = "" then invalid_arg "scenario: empty name";
  if List.exists (fun s -> s.sc_name = sc.sc_name) !registry then
    invalid_arg (Printf.sprintf "scenario %S already registered" sc.sc_name);
  registry := !registry @ [ sc ]

let find name = List.find_opt (fun s -> s.sc_name = name) !registry
let all () = !registry
let names () = List.map (fun s -> s.sc_name) !registry

let get name =
  match find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scenario %S (known: %s)" name
         (String.concat ", " (names ())))

(* ------------------------------------------------------------------ *)
(* Invariant helpers                                                   *)

let int_value s sql =
  match System.query_value s sql with
  | Value.Int n -> n
  | Value.Null -> 0
  | v ->
    failwith
      (Printf.sprintf "invariant query %S: expected int, got %s" sql
         (Value.to_string v))

let zero_count name ~sql =
  {
    inv_name = name;
    inv_check =
      (fun s ->
        let n = int_value s sql in
        if n = 0 then None
        else Some (Printf.sprintf "%d violating rows (%s)" n sql));
  }

let equal_ints name ~actual ~expected =
  {
    inv_name = name;
    inv_check =
      (fun s ->
        let a = actual s and e = expected s in
        if a = e then None
        else Some (Printf.sprintf "actual %d <> expected %d" a e));
  }

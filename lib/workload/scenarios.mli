(** The built-in scenario corpus.

    Six workloads covering the shapes the paper motivates production
    rules with — integrity enforcement, auditing, derived data — plus
    the richer-than-rollback reactions of the database-repairs line of
    work:

    - {b tenant-quota}: multi-tenant quota enforcement.  Rules maintain
      a per-tenant usage counter and roll back any transaction that
      would exceed a tenant's quota.
    - {b audit-trail}: every net insert/update/delete of the account
      table is recorded by rules (updates also bump a per-row version),
      and reads are audited through select tracking (Section 5.1).
    - {b matview}: denormalized per-customer aggregates maintained
      incrementally by rules — rules as an incremental materialized
      view, with a rule-based consistency tripwire.
    - {b ref-cascade}: a four-level foreign-key chain declared in DDL
      and compiled into rules (Section 6): deletes cascade three levels
      deep, the leaf repairs by SET NULL, orphan inserts roll back.
    - {b repair}: constraint {e repair} policies — salary bounds
      enforced by clamping rules instead of rollback, including
      re-repair when the bounds themselves move.
    - {b order-rollup}: a join-heavy order/lineitem rollup.  Rules join
      each transition table against two base tables (item for prices,
      ord for the running totals), so the cost-based planner's hash
      joins and the ordered-index range clamp carry the workload.

    Each scenario declares machine-checkable invariants the runner
    verifies between transactions and after every crash recovery. *)

val tenant_quota : string
val audit_trail : string
val matview : string
val ref_cascade : string
val repair : string
val order_rollup : string

val register_all : unit -> unit
(** Register the corpus into {!Scenario}'s registry.  Idempotent. *)

(* Benchmark harness.

   The paper (SIGMOD 1990) is a semantics/design paper and publishes no
   experimental tables or figures; its one figure is the rule-execution
   algorithm itself.  Each experiment here regenerates a measurable
   artifact or claim of the paper — see DESIGN.md's experiment index
   and EXPERIMENTS.md for the recorded shapes:

     E1 (Figure 1 / Ex 4.1)  cascade depth scaling of the algorithm
     E2 (Section 1 claim)    set-oriented vs instance-oriented rules
     E3 (Definition 2.1)     transition-effect composition cost
     E4 (Section 4.3)        per-rule trans-info maintenance vs #rules
     E5 (Section 3)          transition-table materialization
     E6 (Section 4.4)        rule-selection strategies
     E7 (Section 5.1 ext)    select-tracking overhead
     E8 (Section 6 / CW90)   compiled constraints vs hand-written rules
     E9 (ablation)           uncorrelated-subquery caching
     E10 (Section 4.3)       per-rule pruning of transition info
     E11 (ablation)          hash equi-joins inside rule actions
     E12 (ablation)           secondary hash indexes on point queries
     E13 (robustness)        abort/retry overhead under fault injection
     E14 (observability)     instrumentation overhead when off/on
     E15 (ablation)          compiled closures vs the interpreter
     E16 (durability)        WAL overhead, recovery time, checkpoints
     E17 (workload corpus)   per-scenario txn/s under the generator
     E18 (discrimination)    rule-count sweep: indexed vs linear scan
     E19 (concurrency)       server commit throughput vs client count
     E20 (cost planner)      hash join and range probes at 10^4..10^6 rows
     E21 (prepared stmts)    PREPARE/EXECUTE vs re-parse + re-compile

   Run with:  dune exec bench/main.exe            (all experiments)
              dune exec bench/main.exe -- E2 E3   (a subset)            *)

open Core
open Bechamel
open Bench_support

let vi n = Value.Int n
let vs s = Value.Str s

let insert_op table rows =
  Ast.Insert
    {
      table;
      columns = None;
      source = `Values (List.map (List.map (fun v -> Ast.Lit v)) rows);
    }

let parse_ops sql =
  List.map
    (function Ast.Stmt_op op -> op | _ -> failwith "expected DML")
    (Parser.parse_script sql)

let ignore_exec s sql = ignore (System.exec s sql)

(* ------------------------------------------------------------------ *)
(* E1: cascade depth — the paper's Example 4.1 recursive delete over a
   binary management tree of a given depth.                            *)

let rule_41 =
  "create rule ex41 when deleted from emp then delete from emp where dept_no \
   in (select dept_no from dept where mgr_no in (select emp_no from deleted \
   emp)); delete from dept where mgr_no in (select emp_no from deleted emp)"

(* Heap-numbered binary tree: employee [e] at depth < [d] manages
   department [e] containing employees [2e] and [2e+1]. *)
let org_system ?config depth =
  let s = System.create ?config () in
  ignore_exec s
    "create table emp (name string, emp_no int, salary float, dept_no int);\n\
     create table dept (dept_no int, mgr_no int)";
  ignore_exec s rule_41;
  let emps = ref [] and depts = ref [] in
  let rec build e level =
    let parent_dept = if e = 1 then 0 else e / 2 in
    emps :=
      [ vs (Printf.sprintf "e%d" e); vi e; Value.Float 1000.0; vi parent_dept ]
      :: !emps;
    if level < depth then begin
      depts := [ vi e; vi e ] :: !depts;
      build (2 * e) (level + 1);
      build ((2 * e) + 1) (level + 1)
    end
  in
  build 1 1;
  ignore (Engine.execute_block (System.engine s) [ insert_op "dept" !depts ]);
  ignore (Engine.execute_block (System.engine s) [ insert_op "emp" !emps ]);
  s

let e1_test =
  Test.make_indexed_with_resource ~name:"e1-cascade" ~fmt:"%s:depth=%d"
    ~args:[ 2; 4; 6; 8 ] Test.multiple
    ~allocate:(fun depth -> org_system depth)
    ~free:(fun _ -> ())
    (fun _depth ->
      Staged.stage (fun s ->
          ignore
            (Engine.execute_block (System.engine s)
               (parse_ops "delete from emp where emp_no = 1"))))

let e1 () =
  print_header "E1" "Figure 1 cascade: recursive delete over org tree depth"
    "rule processing cost grows with cascade depth; firings = depth";
  let rows =
    List.map
      (fun (name, ns) ->
        let depth = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        let nodes = (1 lsl depth) - 1 in
        [ string_of_int depth; string_of_int nodes; pretty_ns ns ])
      (run_test e1_test)
  in
  print_table [ "depth"; "employees"; "time/txn" ] rows

(* ------------------------------------------------------------------ *)
(* E2: set-oriented vs instance-oriented — the audit-rule workload.    *)

(* The rule's condition consults a reference table (a realistic
   policy-lookup pattern).  A set-oriented engine evaluates it ONCE per
   transition; an instance-oriented engine evaluates it once per
   affected tuple — this is precisely the amortization Section 1
   claims for set-oriented rules. *)
let audit_rule =
  "create rule audit when inserted into t if (select min(threshold) from \
   policy) <= (select max(a) from inserted t) then insert into log (select a \
   from inserted t)"

let policy_rows = 200

let fill_policy exec_block =
  exec_block
    [ insert_op "policy" (List.init policy_rows (fun i -> [ vi (-i) ])) ]

let set_system () =
  let s = System.create () in
  ignore_exec s
    "create table t (a int);\ncreate table log (a int);\ncreate table policy \
     (threshold int)";
  ignore_exec s audit_rule;
  fill_policy (fun ops -> ignore (Engine.execute_block (System.engine s) ops));
  s

let instance_system () =
  let ie = Instance_engine.create Database.empty in
  Instance_engine.create_table ie
    (Schema.table "t" [ Schema.column "a" Schema.T_int ]);
  Instance_engine.create_table ie
    (Schema.table "log" [ Schema.column "a" Schema.T_int ]);
  Instance_engine.create_table ie
    (Schema.table "policy" [ Schema.column "threshold" Schema.T_int ]);
  (match Parser.parse_statement_string audit_rule with
  | Ast.Stmt_create_rule def -> ignore (Instance_engine.create_rule ie def)
  | _ -> assert false);
  fill_policy (fun ops -> ignore (Instance_engine.execute_block ie ops));
  ie

let batch n = [ insert_op "t" (List.init n (fun i -> [ vi i ])) ]
let e2_args = [ 1; 16; 128; 512 ]

let e2_set_test =
  Test.make_indexed_with_resource ~name:"e2-set" ~fmt:"%s:n=%d" ~args:e2_args
    Test.multiple
    ~allocate:(fun _ -> set_system ())
    ~free:(fun _ -> ())
    (fun n ->
      let ops = batch n in
      Staged.stage (fun s -> ignore (Engine.execute_block (System.engine s) ops)))

let e2_instance_test =
  Test.make_indexed_with_resource ~name:"e2-instance" ~fmt:"%s:n=%d"
    ~args:e2_args Test.multiple
    ~allocate:(fun _ -> instance_system ())
    ~free:(fun _ -> ())
    (fun n ->
      let ops = batch n in
      Staged.stage (fun ie -> ignore (Instance_engine.execute_block ie ops)))

let e2 () =
  print_header "E2" "set-oriented vs instance-oriented rule execution"
    "one set-oriented firing beats n per-tuple firings; gap grows with batch \
     size";
  let set_rows = run_test e2_set_test in
  let inst_rows = run_test e2_instance_test in
  let rows =
    List.map2
      (fun (sname, sns) (_, ins) ->
        let n = int_of_string (List.nth (String.split_on_char '=' sname) 1) in
        [
          string_of_int n;
          pretty_ns sns;
          pretty_ns ins;
          ratio ins sns;
          pretty_ns (sns /. float_of_int n);
          pretty_ns (ins /. float_of_int n);
        ])
      set_rows inst_rows
  in
  print_table
    [
      "batch"; "set-oriented"; "instance"; "inst/set"; "set per-tuple";
      "inst per-tuple";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: transition-effect composition (Definition 2.1).                 *)

let effect_history k =
  (* alternating inserts/updates/deletes over a pool of handles *)
  let handles = Array.init ((k / 2) + 1) (fun _ -> Handle.fresh "t") in
  List.init k (fun i ->
      let h = handles.(i mod Array.length handles) in
      match i mod 3 with
      | 0 -> Effect.of_inserted [ h ]
      | 1 -> Effect.of_updated [ (h, [ "a" ]) ]
      | _ -> Effect.of_deleted [ h ])

(* a single effect touching k distinct tuples *)
let bulk_effect kind k =
  let handles = List.init k (fun _ -> Handle.fresh "t") in
  match kind with
  | `Ins -> Effect.of_inserted handles
  | `Upd -> Effect.of_updated (List.map (fun h -> (h, [ "a" ])) handles)

let e3_args = [ 16; 64; 256; 1024 ]

let e3_pair_test =
  Test.make_indexed ~name:"e3-one-compose" ~fmt:"%s:k=%d" ~args:e3_args
    (fun k ->
      let a = bulk_effect `Ins k and b = bulk_effect `Upd k in
      Staged.stage (fun () -> Effect.compose a b))

let e3_fold_test =
  Test.make_indexed ~name:"e3-fold" ~fmt:"%s:k=%d" ~args:e3_args (fun k ->
      let effects = effect_history k in
      Staged.stage (fun () -> List.fold_left Effect.compose Effect.empty effects))

let e3 () =
  print_header "E3" "transition-effect composition (Definition 2.1)"
    "one composition is near-linear in the sizes of the two effects; \
     incrementally folding k single-tuple transitions costs O(size of the \
     running composite) per step, so the fold total is superlinear";
  let pair = run_test e3_pair_test in
  let fold = run_test e3_fold_test in
  let rows =
    List.map2
      (fun (name, pns) (_, fns) ->
        let k = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        [
          string_of_int k;
          pretty_ns pns;
          pretty_ns (pns /. float_of_int k);
          pretty_ns fns;
          pretty_ns (fns /. float_of_int k);
        ])
      pair fold
  in
  print_table
    [
      "k"; "compose two k-effects"; "  per tuple"; "fold k singletons";
      "  per step";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: per-rule transition-information maintenance (Figure 1's
   modify-trans-info runs for EVERY rule on every transition).         *)

let counter_system ?(prune_info = false) extra_rules =
  (* pruning off by default here: E4 measures Figure 1's naive
     cost model; E10 measures the Section 4.3 optimization *)
  let config = { Engine.default_config with prune_info } in
  let s = System.create ~config () in
  ignore_exec s "create table c (n int);\ncreate table unrelated (x int)";
  ignore_exec s
    "create rule dec when updated c.n or inserted into c if exists (select * \
     from c where n > 0) then update c set n = n - 1 where n > 0";
  for i = 1 to extra_rules do
    ignore_exec s
      (Printf.sprintf
         "create rule dormant_%d when inserted into unrelated then delete \
          from unrelated where x < 0"
         i)
  done;
  s

let e4_test =
  Test.make_indexed_with_resource ~name:"e4-rules" ~fmt:"%s:r=%d"
    ~args:[ 0; 16; 64; 256 ] Test.multiple
    ~allocate:(fun r -> counter_system r)
    ~free:(fun _ -> ())
    (fun _ ->
      let ops = [ insert_op "c" [ [ vi 20 ] ] ] in
      Staged.stage (fun s -> ignore (Engine.execute_block (System.engine s) ops)))

let e4 () =
  print_header "E4"
    "trans-info maintenance: 20-step cascade with r dormant rules (naive)"
    "cost grows with the number of defined rules (Figure 1 maintains \
     composite info per rule); the workload itself is constant.  E10 \
     measures the paper's own Section 4.3 remedy";
  let rows =
    List.map
      (fun (name, ns) ->
        let r = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        [ string_of_int r; pretty_ns ns ])
      (run_test e4_test)
  in
  print_table [ "dormant rules"; "time/txn (20 firings)" ] rows

(* ------------------------------------------------------------------ *)
(* E5: transition-table materialization.                               *)

let updated_info n =
  (* a database with n rows, all updated once *)
  let db =
    Database.create_table Database.empty
      (Schema.table "t"
         [ Schema.column "a" Schema.T_int; Schema.column "b" Schema.T_string ])
  in
  let db, handles =
    List.fold_left
      (fun (db, hs) i ->
        let db, h = Database.insert db "t" [| vi i; vs "x" |] in
        (db, h :: hs))
      (db, [])
      (List.init n (fun i -> i))
  in
  let old_db = db in
  let db =
    List.fold_left
      (fun db h ->
        let row = Database.get_row db h in
        Database.update db h [| Value.add row.(0) (vi 1); row.(1) |])
      db handles
  in
  let eff = Effect.of_updated (List.map (fun h -> (h, [ "a" ])) handles) in
  (Trans_info.init eff old_db, db)

let e5_args = [ 16; 128; 1024 ]

let e5_test_of tt_name tt =
  Test.make_indexed ~name:tt_name ~fmt:"%s:n=%d" ~args:e5_args (fun n ->
      let ti, db = updated_info n in
      Staged.stage (fun () ->
          ignore (Rules.Transition_tables.materialize ti ~current_db:db (tt n))))

let e5 () =
  print_header "E5" "transition-table materialization"
    "materialization is linear in the number of changed tuples; NEW values \
     cost a current-state lookup, OLD values are pre-recorded";
  let old_rows =
    run_test (e5_test_of "old" (fun _ -> Ast.Tt_old_updated ("t", Some "a")))
  in
  let new_rows =
    run_test (e5_test_of "new" (fun _ -> Ast.Tt_new_updated ("t", Some "a")))
  in
  let rows =
    List.map2
      (fun (name, ons) (_, nns) ->
        let n = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        [ string_of_int n; pretty_ns ons; pretty_ns nns ])
      old_rows new_rows
  in
  print_table [ "updated tuples"; "old updated t.a"; "new updated t.a" ] rows

(* ------------------------------------------------------------------ *)
(* E6: rule-selection strategies over mutually-triggering rules.       *)

let strategy_system strategy k =
  let config = { Engine.default_config with strategy } in
  let s = System.create ~config () in
  ignore_exec s "create table t (x int);\ncreate table trace (who string)";
  for i = 1 to k do
    ignore_exec s
      (Printf.sprintf
         "create rule sr_%d when inserted into t or inserted into trace if \
          (select count(*) from trace where who = 'sr_%d') < 3 then insert \
          into trace values ('sr_%d')"
         i i i)
  done;
  s

let e6_test_of name strategy =
  Test.make_with_resource ~name Test.multiple
    ~allocate:(fun () -> strategy_system strategy 8)
    ~free:(fun _ -> ())
    (Staged.stage (fun s ->
         ignore
           (Engine.execute_block (System.engine s)
              [ insert_op "t" [ [ vi 1 ] ] ])))

let e6 () =
  print_header "E6" "rule-selection strategies (8 mutually-triggering rules)"
    "all strategies reach quiescence with the same number of firings; \
     selection policy changes order, not totals";
  let results =
    List.concat_map run_test
      [
        e6_test_of "creation-order" Selection.Creation_order;
        e6_test_of "least-recently-considered"
          Selection.Least_recently_considered;
        e6_test_of "most-recently-considered" Selection.Most_recently_considered;
      ]
  in
  let firings strategy =
    let s = strategy_system strategy 8 in
    ignore (Engine.execute_block (System.engine s) [ insert_op "t" [ [ vi 1 ] ] ]);
    (Engine.stats (System.engine s)).Engine.rule_firings
  in
  let counts =
    [
      firings Selection.Creation_order;
      firings Selection.Least_recently_considered;
      firings Selection.Most_recently_considered;
    ]
  in
  let rows =
    List.map2
      (fun (name, ns) c -> [ name; pretty_ns ns; string_of_int c ])
      results counts
  in
  print_table [ "strategy"; "time/txn"; "firings" ] rows

(* ------------------------------------------------------------------ *)
(* E7: select-tracking overhead (Section 5.1 extension).               *)

let readonly_system track =
  let config = { Engine.default_config with track_selects = track } in
  let s = System.create ~config () in
  ignore_exec s "create table t (a int, b int)";
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "t" (List.init 1000 (fun i -> [ vi i; vi (i * 2) ])) ]);
  s

let e7_queries =
  parse_ops
    (String.concat ";\n"
       (List.init 20 (fun i ->
            Printf.sprintf "select b from t where a >= %d and a < %d" (i * 50)
              ((i * 50) + 25))))

let e7_test_of name track =
  Test.make_with_resource ~name Test.multiple
    ~allocate:(fun () -> readonly_system track)
    ~free:(fun _ -> ())
    (Staged.stage (fun s ->
         let eng = System.engine s in
         Engine.begin_txn eng;
         ignore (Engine.submit_ops eng e7_queries);
         ignore (Engine.commit eng)))

let e7 () =
  print_header "E7" "retrieval tracking overhead (Section 5.1)"
    "maintaining the S component costs a per-read overhead; with tracking \
     off, reads carry no rule bookkeeping";
  let off = run_test (e7_test_of "tracking-off" false) in
  let on = run_test (e7_test_of "tracking-on" true) in
  let rows =
    List.map2
      (fun (_, off_ns) (_, on_ns) ->
        [ pretty_ns off_ns; pretty_ns on_ns; ratio on_ns off_ns ])
      off on
  in
  print_table [ "tracking off"; "tracking on"; "overhead" ] rows

(* ------------------------------------------------------------------ *)
(* E8: compiled constraints vs the hand-written Example 3.1 rule.      *)

let fk_children = 100

let handwritten_fk_system () =
  let s = System.create () in
  ignore_exec s
    "create table dept (dept_no int, mgr_no int);\n\
     create table emp (name string, emp_no int, salary float, dept_no int)";
  ignore_exec s
    "create rule cascade_hand when deleted from dept then delete from emp \
     where dept_no in (select dept_no from deleted dept)";
  ignore
    (Engine.execute_block (System.engine s) [ insert_op "dept" [ [ vi 1; vi 1 ] ] ]);
  ignore
    (Engine.execute_block (System.engine s)
       [
         insert_op "emp"
           (List.init fk_children (fun i ->
                [ vs "e"; vi i; Value.Float 1.0; vi 1 ]));
       ]);
  s

let compiled_fk_system () =
  let s = System.create () in
  ignore_exec s "create table dept (dept_no int primary key, mgr_no int)";
  ignore_exec s
    "create table emp (name string, emp_no int, salary float, dept_no int, \
     foreign key (dept_no) references dept (dept_no) on delete cascade)";
  ignore
    (Engine.execute_block (System.engine s) [ insert_op "dept" [ [ vi 1; vi 1 ] ] ]);
  ignore
    (Engine.execute_block (System.engine s)
       [
         insert_op "emp"
           (List.init fk_children (fun i ->
                [ vs "e"; vi i; Value.Float 1.0; vi 1 ]));
       ]);
  s

let e8_test_of name make =
  Test.make_with_resource ~name Test.multiple
    ~allocate:(fun () -> make ())
    ~free:(fun _ -> ())
    (Staged.stage (fun s ->
         ignore
           (Engine.execute_block (System.engine s)
              (parse_ops "delete from dept where dept_no = 1"))))

let e8 () =
  print_header "E8" "constraint compiler vs hand-written rule (CW90 direction)"
    "the compiled cascade behaves like the hand-written Example 3.1 rule; \
     the compiled version adds a bounded checking-rule overhead";
  let hand = run_test (e8_test_of "hand-written" handwritten_fk_system) in
  let compiled = run_test (e8_test_of "compiled" compiled_fk_system) in
  let rows =
    List.map2
      (fun (_, h) (_, c) -> [ pretty_ns h; pretty_ns c; ratio c h ])
      hand compiled
  in
  print_table [ "hand-written rule"; "compiled constraints"; "compiled/hand" ] rows

(* ------------------------------------------------------------------ *)
(* E9: ablation — uncorrelated-subquery caching in the evaluator.
   Section 1 argues that set-oriented rules keep the door open for
   query optimization "directly applicable to the rules themselves";
   this measures one such optimization on the Example 4.1 cascade.     *)

let e9_test_of name optimize =
  let config = { Engine.default_config with optimize } in
  Test.make_indexed_with_resource ~name ~fmt:"%s:depth=%d" ~args:[ 4; 6 ]
    Test.multiple
    ~allocate:(fun depth -> org_system ~config depth)
    ~free:(fun _ -> ())
    (fun _depth ->
      Staged.stage (fun s ->
          ignore
            (Engine.execute_block (System.engine s)
               (parse_ops "delete from emp where emp_no = 1"))))

let e9 () =
  print_header "E9"
    "ablation: uncorrelated-subquery caching (set-oriented optimization)"
    "without the cache, the nested IN-subqueries of Example 4.1 are \
     re-evaluated per candidate tuple and the cascade goes quadratic; the \
     optimization restores near-linear behaviour";
  let on = run_test (e9_test_of "optimized" true) in
  let off = run_test (e9_test_of "naive" false) in
  let rows =
    List.map2
      (fun (name, on_ns) (_, off_ns) ->
        let depth = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        [
          string_of_int depth;
          pretty_ns on_ns;
          pretty_ns off_ns;
          ratio off_ns on_ns;
        ])
      on off
  in
  print_table [ "depth"; "with caching"; "without"; "speedup" ] rows

(* ------------------------------------------------------------------ *)
(* E10: ablation — per-rule pruning of transition information, the
   optimization the paper itself sketches in Section 4.3 ("we need only
   save the subset of that information relevant to the particular
   rule").                                                              *)

let e10_test_of name prune_info =
  Test.make_indexed_with_resource ~name ~fmt:"%s:r=%d" ~args:[ 64; 256 ]
    Test.multiple
    ~allocate:(fun r -> counter_system ~prune_info r)
    ~free:(fun _ -> ())
    (fun _ ->
      let ops = [ insert_op "c" [ [ vi 20 ] ] ] in
      Staged.stage (fun s -> ignore (Engine.execute_block (System.engine s) ops)))

let e10 () =
  print_header "E10"
    "ablation: per-rule pruning of transition information (Section 4.3)"
    "pruning makes dormant rules (whose predicates mention unaffected \
     tables) nearly free to maintain; semantics are unchanged \
     (property-tested)";
  let pruned = run_test (e10_test_of "pruned" true) in
  let naive = run_test (e10_test_of "naive" false) in
  let rows =
    List.map2
      (fun (name, p) (_, n) ->
        let r = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        [ string_of_int r; pretty_ns p; pretty_ns n; ratio n p ])
      pruned naive
  in
  print_table [ "dormant rules"; "pruned"; "naive"; "speedup" ] rows

(* ------------------------------------------------------------------ *)
(* E11: ablation — hash equi-joins vs nested loops, on the rule
   workloads themselves (Section 1: optimization "directly applicable
   to the rules themselves").                                           *)

let join_system n =
  let s = System.create () in
  ignore_exec s
    "create table emp (emp_no int, dept_no int);\n\
     create table dept (dept_no int, budget float);\n\
     create table report (emp_no int)";
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "dept" (List.init (n / 4) (fun i -> [ vi i; vi 100 ])) ]);
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "emp" (List.init n (fun i -> [ vi i; vi (i mod (n / 4)) ])) ]);
  (* the rule's action joins emp with dept *)
  ignore_exec s
    "create rule flag_rich when updated dept.budget then insert into report \
     (select e.emp_no from emp e, dept d where e.dept_no = d.dept_no and \
     d.budget > 1000)";
  s

let e11_args = [ 64; 256; 1024 ]

let e11_test_of name enabled =
  Test.make_indexed_with_resource ~name ~fmt:"%s:n=%d" ~args:e11_args
    Test.multiple
    ~allocate:(fun n -> join_system n)
    ~free:(fun _ -> ())
    (fun _ ->
      let ops = parse_ops "update dept set budget = budget * 20" in
      Staged.stage (fun s ->
          Eval.join_optimization := enabled;
          ignore (Engine.execute_block (System.engine s) ops);
          Eval.join_optimization := true))

let e11 () =
  print_header "E11" "ablation: hash equi-join inside rule actions"
    "a rule action joining n employees with n/4 departments is quadratic \
     under nested loops and near-linear with the hash join";
  let fast = run_test (e11_test_of "hash-join" true) in
  let slow = run_test (e11_test_of "nested-loop" false) in
  let rows =
    List.map2
      (fun (name, f) (_, sl) ->
        let n = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        [ string_of_int n; pretty_ns f; pretty_ns sl; ratio sl f ])
      fast slow
  in
  print_table [ "employees"; "hash join"; "nested loop"; "speedup" ] rows

(* ------------------------------------------------------------------ *)
(* E12: ablation — secondary hash indexes on selective point queries.
   The access-path planner answers sargable equality predicates with an
   index probe instead of a sequential scan; a batch of point queries
   over a table of n rows is O(batch * n) under scans and O(batch)
   under probes.                                                        *)

let point_queries = 100

let e12_ops n =
  parse_ops
    (String.concat ";\n"
       (List.init point_queries (fun i ->
            Printf.sprintf "select v from big where k = %d" (i * 37 mod n))))

let big_system ~indexed n =
  let s = System.create () in
  ignore_exec s "create table big (k int, v int)";
  if indexed then ignore_exec s "create index big_k on big (k)";
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "big" (List.init n (fun i -> [ vi i; vi (i * 3) ])) ]);
  s

let e12_args = [ 256; 1024; 4096 ]

let e12_test_of name indexed =
  Test.make_indexed_with_resource ~name ~fmt:"%s:n=%d" ~args:e12_args
    Test.multiple
    ~allocate:(fun n -> big_system ~indexed n)
    ~free:(fun _ -> ())
    (fun n ->
      let ops = e12_ops n in
      Staged.stage (fun s ->
          let eng = System.engine s in
          Engine.begin_txn eng;
          ignore (Engine.submit_ops eng ops);
          ignore (Engine.commit eng)))

let e12 () =
  print_header "E12" "ablation: secondary hash indexes on point queries"
    "100 equality point queries per transaction: a scan touches all n rows \
     per query, a probe touches the matches; the gap grows linearly with \
     table size";
  let probe = run_test (e12_test_of "indexed" true) in
  let scan = run_test (e12_test_of "scan" false) in
  let access_counts indexed n =
    let s = big_system ~indexed n in
    let eng = System.engine s in
    Engine.begin_txn eng;
    ignore (Engine.submit_ops eng (e12_ops n));
    ignore (Engine.commit eng);
    let st = Engine.stats eng in
    (st.Engine.seq_scans, st.Engine.index_probes)
  in
  let rows =
    List.map2
      (fun (name, p) (_, sc) ->
        let n = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        let _, probes = access_counts true n in
        let scans, _ = access_counts false n in
        [
          string_of_int n; pretty_ns p; pretty_ns sc; ratio sc p;
          string_of_int probes; string_of_int scans;
        ])
      probe scan
  in
  print_table
    [ "rows"; "indexed"; "scan"; "speedup"; "probes"; "scans" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13: abort/retry overhead of the exception-safety machinery.  The
   engine snapshots the database at block and transaction start;
   because the store is a persistent structure, taking and restoring a
   snapshot is O(1), so a transaction that faults, aborts and is
   retried should cost about one extra attempt regardless of database
   size.  The faulted arm injects at the first DML hit point of the
   first attempt, observes the abort, and re-runs the block.           *)

let e13_system n =
  let s = System.create () in
  ignore_exec s "create table t (a int, b int)";
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "t" (List.init n (fun i -> [ vi i; vi 0 ])) ]);
  s

(* a net no-op block, so the table size is stable across iterations *)
let e13_ops =
  parse_ops "insert into t values (0 - 1, 0); delete from t where a = 0 - 1"

let e13_test_of name faulted =
  Test.make_indexed_with_resource ~name ~fmt:"%s:n=%d" ~args:[ 256; 4096 ]
    Test.multiple
    ~allocate:(fun n -> e13_system n)
    ~free:(fun _ -> Fault.enable false)
    (fun _n ->
      Staged.stage (fun s ->
          let eng = System.engine s in
          if faulted then begin
            Fault.arm 1;
            (match Engine.execute_block eng e13_ops with
            | _ -> ()
            | exception Fault.Injected _ -> ());
            Fault.disarm ()
          end;
          ignore (Engine.execute_block eng e13_ops)))

let e13 () =
  print_header "E13" "abort/retry overhead (exception-safe transactions)"
    "snapshot restoration is O(1) on the persistent store: a faulted \
     transaction that aborts and retries costs about one extra attempt, \
     independent of database size";
  let clean = run_test (e13_test_of "clean" false) in
  let faulted = run_test (e13_test_of "abort-retry" true) in
  let rows =
    List.map2
      (fun (name, c) (_, f) ->
        let n = int_of_string (List.nth (String.split_on_char '=' name) 1) in
        [ string_of_int n; pretty_ns c; pretty_ns f; ratio f c ])
      clean faulted
  in
  print_table [ "rows"; "clean"; "abort+retry"; "retry/clean" ] rows

(* ------------------------------------------------------------------ *)
(* E14: instrumentation overhead.  The observability layer (execution
   traces, per-rule metrics, wall-clock timing) must be free when off:
   the trace guard is one boolean test, metric counts are two integer
   bumps, and with no clock installed not a single clock read happens.
   Three arms over the same depth-6 Example 4.1 cascade: everything
   off (the default), tracing on, tracing + clock on.                  *)

let e14_depth = 6

(* A steady-state transaction: insert a leaf employee and delete it
   again, so every iteration runs real rule processing (the Example 4.1
   rule is triggered by the delete and its condition subqueries run)
   while the database returns to the same state. *)
let e14_ops =
  parse_ops
    "insert into emp values ('tmp', 9999, 1.0, 2); delete from emp where \
     emp_no = 9999"

let e14_test_of name ~tracing ~clocked =
  Test.make_with_resource ~name Test.multiple
    ~allocate:(fun () ->
      let s = org_system e14_depth in
      let eng = System.engine s in
      Engine.set_tracing eng tracing;
      Engine.set_clock eng (if clocked then Some Unix.gettimeofday else None);
      s)
    ~free:(fun _ -> ())
    (Staged.stage (fun s ->
         ignore (Engine.execute_block (System.engine s) e14_ops)))

let e14 () =
  print_header "E14" "instrumentation overhead (trace + metrics + clock)"
    "the observability layer costs ~nothing when off; tracing adds list \
     conses, the clock adds two time reads per condition/action";
  let off = run_test (e14_test_of "instrumentation-off" ~tracing:false ~clocked:false) in
  let traced = run_test (e14_test_of "tracing-on" ~tracing:true ~clocked:false) in
  let timed = run_test (e14_test_of "tracing+clock" ~tracing:true ~clocked:true) in
  let base = match off with (_, ns) :: _ -> ns | [] -> nan in
  let rows =
    List.map
      (fun (name, ns) -> [ name; pretty_ns ns; ratio ns base ])
      (off @ traced @ timed)
  in
  print_table [ "arm"; "time/txn"; "vs off" ] rows

(* ------------------------------------------------------------------ *)
(* E15: compiled positional closures vs the tree-walking interpreter.
   Three arms, each run under both evaluators (the [Sqlf.Compile.enabled]
   switch, flipped inside the measured closure so rule-level caches are
   shared):

   - where-scan: one query whose WHERE is evaluated per row of an
     n-row table — the per-row name-resolution cost the compiler
     removes, in isolation;
   - conditions: a transaction considered by 32 rules whose aggregate
     subquery conditions never fire — Figure 1's condition-evaluation
     loop, where the engine re-enters cached compiled forms;
   - cascade: the Example 4.1 steady-state transaction on the depth-6
     org tree — rule actions with nested subqueries, end to end.

   Equivalence of the two evaluators is enforced by
   test/test_compile_diff.ml; this experiment records what the
   equivalence buys.  Results are also written to BENCH_PR4.json.      *)

let e15_scan_args = if tiny then [ 256 ] else [ 1024; 4096 ]

let e15_scan_system n =
  let s = System.create () in
  ignore_exec s "create table t (a int, b int, s string)";
  ignore
    (Engine.execute_block (System.engine s)
       [
         insert_op "t"
           (List.init n (fun i ->
                [ vi (i mod 97); vi (i mod 31); vs (if i mod 2 = 0 then "x" else "y") ]));
       ]);
  s

let e15_query =
  Parser.parse_select_string
    "select count(*) from t where ((a + b) * 2 > 50 and s = 'x') or b \
     between 10 and 20"

let e15_scan_test name flag =
  Test.make_indexed_with_resource ~name ~fmt:"%s:n=%d" ~args:e15_scan_args
    Test.multiple
    ~allocate:(fun n -> e15_scan_system n)
    ~free:(fun _ -> ())
    (fun _ ->
      Staged.stage (fun s ->
          Sqlf.Compile.enabled := flag;
          ignore (Engine.query (System.engine s) e15_query)))

let e15_rule_count = 32
let e15_seed_rows = if tiny then 32 else 256

let e15_rule_system () =
  let s = System.create () in
  ignore_exec s "create table c (n int);\ncreate table log (x int)";
  for i = 1 to e15_rule_count do
    ignore_exec s
      (Printf.sprintf
         "create rule watch_%d when inserted into c or updated c.n if \
          (select count(*) from c where n = %d) > %d then insert into log \
          values (%d)"
         i i (e15_seed_rows + 1) i)
  done;
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "c" (List.init e15_seed_rows (fun i -> [ vi i ])) ]);
  s

let e15_rule_ops = parse_ops "insert into c values (0); delete from c where n = 0"

let e15_rules_test name flag =
  Test.make_with_resource ~name Test.multiple
    ~allocate:(fun () -> e15_rule_system ())
    ~free:(fun _ -> ())
    (Staged.stage (fun s ->
         Sqlf.Compile.enabled := flag;
         ignore (Engine.execute_block (System.engine s) e15_rule_ops)))

let e15_cascade_test name flag =
  Test.make_with_resource ~name Test.multiple
    ~allocate:(fun () -> org_system e14_depth)
    ~free:(fun _ -> ())
    (Staged.stage (fun s ->
         Sqlf.Compile.enabled := flag;
         ignore (Engine.execute_block (System.engine s) e14_ops)))

(* Hand-rolled JSON, one object per (arm, size): the machine-readable
   record CI parse-checks and EXPERIMENTS.md quotes. *)
let write_bench_json path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"E15\",\n  \"description\": \"compiled \
        positional closures vs tree-walking interpreter\",\n  \"unit\": \
        \"ns_per_txn\",\n  \"tiny\": %b,\n  \"results\": [\n"
       tiny);
  List.iteri
    (fun i (arm, n, compiled_ns, interp_ns) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"arm\": \"%s\", \"n\": %d, \"compiled_ns\": %.1f, \
            \"interpreted_ns\": %.1f, \"speedup\": %.2f}%s\n"
           arm n compiled_ns interp_ns (interp_ns /. compiled_ns)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nresults written to %s\n" path

let e15 () =
  print_header "E15" "compiled closures vs the tree-walking interpreter"
    "resolving column references to positions once per statement beats \
     per-row name lookup; rule processing re-enters cached compiled forms";
  let arg_of name =
    match String.split_on_char '=' name with
    | [ _; n ] -> int_of_string n
    | _ -> 0
  in
  let measure arm make =
    let compiled = run_test (make (arm ^ "-compiled") true) in
    let interp = run_test (make (arm ^ "-interpreted") false) in
    Sqlf.Compile.enabled := true;
    List.map2
      (fun (name, c) (_, i) -> (arm, arg_of name, c, i))
      compiled interp
  in
  let scan = measure "where-scan" e15_scan_test in
  let conditions =
    List.map
      (fun (a, _, c, i) -> (a, e15_rule_count, c, i))
      (measure "conditions" e15_rules_test)
  in
  let cascade =
    List.map
      (fun (a, _, c, i) -> (a, e14_depth, c, i))
      (measure "cascade" e15_cascade_test)
  in
  let all = scan @ conditions @ cascade in
  print_table
    [ "arm"; "n"; "compiled"; "interpreted"; "speedup" ]
    (List.map
       (fun (arm, n, c, i) ->
         [ arm; string_of_int n; pretty_ns c; pretty_ns i; ratio i c ])
       all);
  write_bench_json "BENCH_PR4.json" all

(* ------------------------------------------------------------------ *)
(* E16: durability — per-transaction WAL overhead, recovery time as a
   function of log length, and the checkpoint ablation.  Three arms
   for the overhead question: the plain in-memory system, the durable
   system with fsync dropped, and the durable system with one fsync
   per commit.  The gap between the first two is the cost of building
   and writing the record; the gap to the third is the disk.  Rule
   firings ride inside the logged net effect (the audit rule fires on
   every measured transaction), so replay never re-runs them.          *)

module Durable = Durability.Durable
module Recovery = Durability.Recovery

let bench_dir_counter = ref 0

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir label =
  incr bench_dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sopr-bench-%d-%d-%s" (Unix.getpid ())
         !bench_dir_counter label)
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

let e16_rows = 20

let e16_setup =
  "create table t (a int, b int);\n\
   create table log (n int);\n\
   create rule audit when updated t.b then insert into log values (1)"

let e16_seed s =
  ignore_exec s e16_setup;
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "t" (List.init e16_rows (fun i -> [ vi i; vi 0 ])) ])

(* the steady-state transaction: ten updated tuples plus one audit-rule
   insert per commit — a non-trivial but constant-size WAL record *)
let e16_txn_ops = parse_ops "update t set b = b + 1 where a < 10"

let e16_mem_test =
  Test.make_with_resource ~name:"e16-memory" Test.multiple
    ~allocate:(fun () ->
      let s = System.create () in
      e16_seed s;
      s)
    ~free:(fun _ -> ())
    (Staged.stage (fun s ->
         ignore (Engine.execute_block (System.engine s) e16_txn_ops)))

let e16_durable_test name sync =
  Test.make_with_resource ~name Test.multiple
    ~allocate:(fun () ->
      let dir = fresh_dir name in
      let d, _ = Durable.open_dir ~sync dir in
      e16_seed (Durable.system d);
      (d, dir))
    ~free:(fun (d, dir) ->
      Durable.close d;
      rm_rf dir)
    (Staged.stage (fun (d, _) ->
         ignore
           (Engine.execute_block (System.engine (Durable.system d)) e16_txn_ops)))

let e16_log_args = if tiny then [ 64; 256 ] else [ 256; 1024; 4096 ]

(* Build a data directory whose WAL holds [n] single-insert commits.
   Written with [sync:false] — the bytes are identical either way and
   recovery cost does not depend on how they were written.  The
   checkpointed variant publishes a checkpoint 16 commits before the
   end, so restoration loads the snapshot and replays a short suffix. *)
let e16_build_log ?checkpoint_at n =
  let dir = fresh_dir "log" in
  let d, _ = Durable.open_dir ~sync:false dir in
  ignore (Durable.exec d "create table t (a int, b int)");
  let eng = System.engine (Durable.system d) in
  for i = 1 to n do
    ignore (Engine.execute_block eng [ insert_op "t" [ [ vi i; vi 0 ] ] ]);
    if checkpoint_at = Some i then Durable.checkpoint d
  done;
  Durable.close d;
  dir

let e16_restore_test name ~checkpoint =
  Test.make_indexed_with_resource ~name ~fmt:"%s:n=%d" ~args:e16_log_args
    Test.multiple
    ~allocate:(fun n ->
      e16_build_log
        ?checkpoint_at:(if checkpoint then Some (n - 16) else None)
        n)
    ~free:rm_rf
    (fun _ -> Staged.stage (fun dir -> ignore (Recovery.restore dir)))

let write_e16_json path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"E16\",\n  \"description\": \"durability: \
        per-transaction WAL overhead, recovery time vs log length, \
        checkpoint ablation\",\n  \"unit\": \"ns\",\n  \"tiny\": %b,\n  \
        \"results\": [\n"
       tiny);
  List.iteri
    (fun i (arm, n, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"arm\": \"%s\", \"n\": %d, \"ns\": %.1f}%s\n"
           arm n ns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nresults written to %s\n" path

let e16 () =
  print_header "E16" "durability: WAL overhead, recovery time, checkpoints"
    "synchronous logging costs one record build + fsync per transaction; \
     recovery replays the log linearly; a checkpoint collapses replay to \
     snapshot load plus a short suffix";
  let overhead =
    run_test e16_mem_test
    @ run_test (e16_durable_test "e16-wal-nosync" false)
    @ run_test (e16_durable_test "e16-wal-sync" true)
  in
  let base = match overhead with (_, ns) :: _ -> ns | [] -> nan in
  print_table [ "arm"; "time/txn"; "vs memory" ]
    (List.map (fun (name, ns) -> [ name; pretty_ns ns; ratio ns base ]) overhead);
  let arg_of name =
    match String.split_on_char '=' name with
    | [ _; n ] -> int_of_string n
    | _ -> 0
  in
  let wal_only = run_test (e16_restore_test "e16-recover-wal" ~checkpoint:false) in
  let ckpt = run_test (e16_restore_test "e16-recover-ckpt" ~checkpoint:true) in
  print_table
    [ "log records"; "wal-only restore"; "checkpointed restore"; "speedup" ]
    (List.map2
       (fun (name, w) (_, c) ->
         [ string_of_int (arg_of name); pretty_ns w; pretty_ns c; ratio w c ])
       wal_only ckpt);
  let rows =
    List.map (fun (name, ns) -> (name, 1, ns)) overhead
    @ List.map (fun (name, ns) -> ("recover-wal-only", arg_of name, ns)) wal_only
    @ List.map
        (fun (name, ns) -> ("recover-checkpointed", arg_of name, ns))
        ckpt
  in
  write_e16_json "BENCH_PR5.json" rows

(* ------------------------------------------------------------------ *)
(* E17: the scenario corpus under the YCSB-style generator — sustained
   transactions/second per scenario, and the cost of a dense rule set
   (the rule-density knob installs never-firing rules the engine must
   still consider every transition).  Unlike E1–E16 this measures
   whole mixed transactions (reads and writes, rule processing, index
   maintenance) over the same workloads the soak harness verifies.    *)

let e17_profile =
  {
    Workload.Profile.default with
    Workload.Profile.txns = (if tiny then 40 else 200);
    theta = 0.75;
  }

let e17_duration = if tiny then 0.05 else 1.0

let write_e17_json path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"E17\",\n  \"description\": \"scenario corpus \
        under the YCSB-style workload generator: sustained transaction \
        throughput per scenario, with and without a dense rule set\",\n  \
        \"unit\": \"txn_per_s\",\n  \"tiny\": %b,\n  \"results\": [\n"
       tiny);
  List.iteri
    (fun i (arm, density, txn_s, txns) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"arm\": \"%s\", \"rule_density\": %d, \"txn_per_s\": %.1f, \
            \"txns\": %d}%s\n"
           arm density txn_s txns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nresults written to %s\n" path

let e17 () =
  print_header "E17" "scenario corpus throughput (workload generator)"
    "mixed read/write transactions with Zipfian key skew, rules firing on \
     every write path; padding the rule set with never-firing rules prices \
     rule-set consideration per transition";
  Workload.Scenarios.register_all ();
  let densities = [ 0; 32 ] in
  let rows =
    List.concat_map
      (fun sc ->
        List.map
          (fun density ->
            let profile =
              { e17_profile with Workload.Profile.rule_density = density }
            in
            let txn_s, txns =
              Workload.Runner.throughput ~duration:e17_duration sc profile
            in
            (sc.Workload.Scenario.sc_name, density, txn_s, txns))
          densities)
      (Workload.Scenario.all ())
  in
  print_table
    [ "scenario"; "extra rules"; "txn/s"; "txns measured" ]
    (List.map
       (fun (arm, density, txn_s, txns) ->
         [
           arm;
           string_of_int density;
           Printf.sprintf "%10.0f" txn_s;
           string_of_int txns;
         ])
       rows);
  write_e17_json "BENCH_PR6.json" rows

(* ------------------------------------------------------------------ *)
(* E18: rule discrimination — per-transaction cost as the rule catalog
   grows from 10 to 10k while the set of rules the transaction can
   trigger stays constant (one firing audit rule; every padding rule
   is registered on a table the transaction never touches).  Three
   arms: the discrimination index (default), the linear scan it
   replaced ([rule_index = false] — the differential oracle), and the
   instance-oriented engine as the non-set-oriented baseline.  The
   claim: indexed cost is flat in the catalog size, both scans
   degrade linearly.                                                   *)

let e18_args = if tiny then [ 10; 100 ] else [ 10; 100; 1_000; 10_000 ]

let e18_audit_rule =
  "create rule audit when inserted into hot then insert into log values (1)"

(* Padding rules never woken by the measured transaction: they watch a
   table the workload never touches.  Built as ASTs directly so the
   10k-rule setup does not price the SQL parser. *)
let e18_pad_def i =
  {
    Ast.rule_name = Printf.sprintf "pad%05d" i;
    trans_preds = [ Ast.Tp_inserted "cold" ];
    condition = None;
    action = Ast.Act_rollback;
  }

let e18_system ?config n =
  let s = System.create ?config () in
  ignore_exec s
    "create table hot (a int);\ncreate table log (n int);\n\
     create table cold (a int)";
  ignore_exec s e18_audit_rule;
  for i = 1 to n - 1 do
    ignore (Engine.create_rule (System.engine s) (e18_pad_def i))
  done;
  s

let e18_instance_system n =
  let ie = Instance_engine.create Database.empty in
  Instance_engine.create_table ie
    (Schema.table "hot" [ Schema.column "a" Schema.T_int ]);
  Instance_engine.create_table ie
    (Schema.table "log" [ Schema.column "n" Schema.T_int ]);
  Instance_engine.create_table ie
    (Schema.table "cold" [ Schema.column "a" Schema.T_int ]);
  (match Parser.parse_statement_string e18_audit_rule with
  | Ast.Stmt_create_rule def -> ignore (Instance_engine.create_rule ie def)
  | _ -> assert false);
  for i = 1 to n - 1 do
    ignore (Instance_engine.create_rule ie (e18_pad_def i))
  done;
  ie

let e18_txn_ops = parse_ops "insert into hot values (0)"

let e18_engine_test name config =
  Test.make_indexed_with_resource ~name ~fmt:"%s:n=%d" ~args:e18_args
    Test.multiple
    ~allocate:(fun n -> e18_system ?config n)
    ~free:(fun _ -> ())
    (fun _ ->
      Staged.stage (fun s ->
          ignore (Engine.execute_block (System.engine s) e18_txn_ops)))

let e18_instance_test =
  Test.make_indexed_with_resource ~name:"e18-instance" ~fmt:"%s:n=%d"
    ~args:e18_args Test.multiple
    ~allocate:(fun n -> e18_instance_system n)
    ~free:(fun _ -> ())
    (fun _ ->
      Staged.stage (fun ie -> ignore (Instance_engine.execute_block ie e18_txn_ops)))

let write_e18_json path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"E18\",\n  \"description\": \"rule \
        discrimination index: per-transaction cost vs rule-catalog size at \
        a constant fired fraction — indexed vs linear scan vs \
        instance-oriented baseline\",\n  \"unit\": \"ns_per_txn\",\n  \
        \"tiny\": %b,\n  \"results\": [\n"
       tiny);
  List.iteri
    (fun i (arm, n, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"arm\": \"%s\", \"rules\": %d, \"ns\": %.1f}%s\n"
           arm n ns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nresults written to %s\n" path

let e18 () =
  print_header "E18" "rule discrimination: cost vs rule-catalog size"
    "with (table, op, column) discrimination the per-transition cost tracks \
     the rules the transition can wake, not the catalog; the linear scan \
     and the instance engine degrade with every rule defined";
  let arg_of name =
    match String.split_on_char '=' name with
    | [ _; n ] -> int_of_string n
    | _ -> 0
  in
  let indexed = run_test (e18_engine_test "e18-indexed" None) in
  let linear =
    run_test
      (e18_engine_test "e18-linear"
         (Some { Engine.default_config with Engine.rule_index = false }))
  in
  let instance = run_test e18_instance_test in
  print_table
    [ "rules"; "indexed"; "linear scan"; "instance"; "linear/indexed" ]
    (List.map2
       (fun ((name, ins), (_, lns)) (_, bns) ->
         [
           string_of_int (arg_of name);
           pretty_ns ins;
           pretty_ns lns;
           pretty_ns bns;
           ratio lns ins;
         ])
       (List.combine indexed linear)
       instance);
  let rows =
    List.map (fun (name, ns) -> ("indexed", arg_of name, ns)) indexed
    @ List.map (fun (name, ns) -> ("linear-scan", arg_of name, ns)) linear
    @ List.map (fun (name, ns) -> ("instance", arg_of name, ns)) instance
  in
  write_e18_json "BENCH_PR7.json" rows

(* ------------------------------------------------------------------ *)
(* E19: server commit throughput — txn/s vs concurrent client count
   over real loopback TCP, one arm per durability mode.  Every client
   commits single-row transactions against its own key (no conflicts),
   so the experiment prices the commit path itself: nosync is the
   wire-plus-validation ceiling, sync pays one fsync per commit, and
   group commit amortizes the fsync across whatever commits pile up
   while the previous round's flush is in flight.                      *)

module Server = Sopr_server.Server
module Client = Sopr_server.Client

let e19_clients = if tiny then [ 1; 2 ] else [ 1; 2; 4; 8; 16 ]
let e19_duration = if tiny then 0.05 else 2.0

let e19_arms =
  [
    ("nosync", Server.Wal_nosync);
    ("sync", Server.Wal_sync);
    ("group", Server.Wal_group);
  ]

let e19_run mode clients =
  let dir = fresh_dir "e19" in
  let srv = Server.create ~data_dir:dir mode in
  let listener = Server.start srv in
  let port = Server.port listener in
  let setup = Client.connect ~port () in
  let seed = Buffer.create 256 in
  Buffer.add_string seed "create table kv (id int, v int)";
  for i = 0 to clients - 1 do
    Buffer.add_string seed (Printf.sprintf "; insert into kv values (%d, 0)" i)
  done;
  (match Client.request setup (Buffer.contents seed) with
  | Ok _ -> ()
  | Error e -> failwith e);
  Client.close setup;
  let counts = Array.make clients 0 in
  let deadline = Unix.gettimeofday () +. e19_duration in
  let worker i =
    let c = Client.connect ~port () in
    let txn =
      Printf.sprintf "begin; update kv set v = v + 1 where id = %d; commit" i
    in
    while Unix.gettimeofday () < deadline do
      match Client.request c txn with
      | Ok _ -> counts.(i) <- counts.(i) + 1
      | Error e -> failwith e
    done;
    Client.close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Server.stop listener;
  Server.close srv;
  rm_rf dir;
  let txns = Array.fold_left ( + ) 0 counts in
  (float_of_int txns /. elapsed, txns)

let write_e19_json path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"E19\",\n  \"description\": \
        \"concurrent-session server over loopback TCP: sustained commit \
        throughput vs client count for per-commit fsync, no fsync, and \
        group commit\",\n  \"unit\": \"txn_per_s\",\n  \"tiny\": %b,\n  \
        \"results\": [\n"
       tiny);
  List.iteri
    (fun i (arm, clients, txn_s, txns) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"arm\": \"%s\", \"clients\": %d, \"txn_per_s\": %.1f, \
            \"txns\": %d}%s\n"
           arm clients txn_s txns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nresults written to %s\n" path

let e19 () =
  print_header "E19" "server commit throughput vs concurrent clients"
    "group commit amortizes the fsync over whatever commits pile up during \
     the previous round's flush, so sync-durable throughput scales with \
     writer count instead of being pinned at one fsync per transaction";
  let rows =
    List.concat_map
      (fun (arm, mode) ->
        List.map
          (fun clients ->
            let txn_s, txns = e19_run mode clients in
            (arm, clients, txn_s, txns))
          e19_clients)
      e19_arms
  in
  print_table
    [ "arm"; "clients"; "txn/s"; "txns measured" ]
    (List.map
       (fun (arm, clients, txn_s, txns) ->
         [
           arm;
           string_of_int clients;
           Printf.sprintf "%10.0f" txn_s;
           string_of_int txns;
         ])
       rows);
  write_e19_json "BENCH_PR8.json" rows

(* ------------------------------------------------------------------ *)
(* E20: the cost-based access-path planner on a join-heavy rule
   cascade.  A transaction inserts a batch of lineitems; one rule
   prices the batch by joining the transition table against the item
   base table, a second consumes the priced rows through a range
   predicate over an ordered index.  Two ablations, each measured at
   10^4..10^6 item rows: the pricing join under hash join vs nested
   loops, and a 1%-selective range retrieval under the cost model
   (ordered-index range probe) vs the equality-only planner (seq
   scan).  Sizes this large make bechamel's repetition pointless, so
   arms are timed directly over a fixed iteration count, as in E19.    *)

let e20_sizes = if tiny then [ 1_000 ] else [ 10_000; 100_000; 1_000_000 ]
let e20_batch = 64
let e20_join_iters = if tiny then 2 else 5
let e20_range_iters = if tiny then 3 else 20

let e20_system n =
  let s = System.create () in
  ignore_exec s
    "create table item (iid int, price int);\n\
     create table lineitem (lid int, iid int, qty int);\n\
     create table priced (lid int, cost int);\n\
     create index item_iid on item (iid);\n\
     create index item_price on item (price) using ordered;\n\
     create index priced_cost on priced (cost) using ordered";
  let eng = System.engine s in
  let chunk = 100_000 in
  let rec seed i =
    if i < n then begin
      let m = min chunk (n - i) in
      let rows =
        List.init m (fun j -> [ vi (i + j); vi ((i + j) mod 1000) ])
      in
      ignore (Engine.execute_block eng [ insert_op "item" rows ]);
      seed (i + m)
    end
  in
  seed 0;
  (* the cascade: pricing joins the transition table against item;
     the flush range-deletes what pricing inserted, so the priced
     table stays empty between transactions and every measured
     iteration does identical work *)
  ignore_exec s
    "create rule e20_price when inserted into lineitem then insert into \
     priced select l.lid, l.qty * i.price from inserted lineitem l, item i \
     where l.iid = i.iid;\n\
     create rule e20_flush when inserted into priced then delete from \
     priced where cost >= 0";
  s

let e20_join_txn n iter =
  let rows =
    List.init e20_batch (fun j ->
        let k = ((iter * 7919) + (j * 104729)) mod n in
        Printf.sprintf "(%d, %d, %d)" ((iter * e20_batch) + j) k (1 + (j mod 9)))
  in
  Printf.sprintf "insert into lineitem values %s" (String.concat ", " rows)

let e20_timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let e20_join_ms s n ~hash =
  Eval.join_optimization := hash;
  (* one warm-up transaction keeps rule compilation off the clock;
     nested loops at the largest size are quadratic enough that a
     single measured pass is already seconds of work *)
  let iters = if (not hash) && n >= 1_000_000 then 1 else e20_join_iters in
  ignore_exec s (e20_join_txn n (1000 + if hash then 0 else 1));
  let dt =
    e20_timed (fun () ->
        for iter = 0 to iters - 1 do
          ignore_exec s (e20_join_txn n ((if hash then 0 else 4000) + iter))
        done)
  in
  Eval.join_optimization := true;
  (dt *. 1e3 /. float_of_int iters, iters)

let e20_range_sql = "select count(*) from item where price between 100 and 109"

let e20_range_ms s ~cost =
  Eval.cost_model := cost;
  ignore (System.query s e20_range_sql);
  let dt =
    e20_timed (fun () ->
        for _ = 1 to e20_range_iters do
          ignore (System.query s e20_range_sql)
        done)
  in
  Eval.cost_model := true;
  dt *. 1e3 /. float_of_int e20_range_iters

let write_e20_json path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"E20\",\n  \"description\": \"cost-based \
        access paths on a join-heavy rule cascade: batch pricing via a \
        transition-table join under hash join vs nested loops, and a \
        1%%-selective retrieval under ordered-index range probes vs seq \
        scans\",\n  \"unit\": \"ms_per_op\",\n  \"tiny\": %b,\n  \
        \"results\": [\n"
       tiny);
  List.iteri
    (fun i (section, arm, n, ms, iters) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"section\": \"%s\", \"arm\": \"%s\", \"rows\": %d, \
            \"ms_per_op\": %.3f, \"iters\": %d}%s\n"
           section arm n ms iters
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nresults written to %s\n" path

let e20 () =
  print_header "E20" "cost-based planner: hash joins and range probes at scale"
    "pricing a 64-row batch against n items is O(batch * n) under nested \
     loops and O(n + batch) under the hash join; a 1%-selective range \
     retrieval touches n rows by scan and ~n/100 by ordered-index probe";
  let results = ref [] in
  let table_rows =
    List.map
      (fun n ->
        let s = e20_system n in
        let hash_ms, hash_iters = e20_join_ms s n ~hash:true in
        let nl_ms, nl_iters = e20_join_ms s n ~hash:false in
        let probe_ms = e20_range_ms s ~cost:true in
        let scan_ms = e20_range_ms s ~cost:false in
        results :=
          !results
          @ [
              ("rule_join", "hash_join", n, hash_ms, hash_iters);
              ("rule_join", "nested_loop", n, nl_ms, nl_iters);
              ("range_select", "range_probe", n, probe_ms, e20_range_iters);
              ("range_select", "seq_scan", n, scan_ms, e20_range_iters);
            ];
        [
          string_of_int n;
          Printf.sprintf "%8.2f ms" hash_ms;
          Printf.sprintf "%8.2f ms" nl_ms;
          ratio nl_ms hash_ms;
          Printf.sprintf "%8.3f ms" probe_ms;
          Printf.sprintf "%8.3f ms" scan_ms;
          ratio scan_ms probe_ms;
        ])
      e20_sizes
  in
  print_table
    [
      "items"; "join: hash"; "join: nested"; "speedup"; "range: probe";
      "range: scan"; "speedup";
    ]
    table_rows;
  write_e20_json "BENCH_PR9.json" !results

(* ------------------------------------------------------------------ *)
(* E21: the prepared-statement pipeline.  Three arms over two statement
   sizes (a ~30-byte point select and a ~1 KB select whose predicate
   carries a large IN list): parse-only through the streaming lexer,
   parse+compile against the fixture catalog, and end-to-end EXECUTE of
   the prepared form — the EXECUTE text stays tiny regardless of the
   prepared body's size, and the compiled plan is served from the
   generation-keyed cache, so its cost is bind + run rather than
   re-parse + re-compile.  Parsing is microseconds, so arms are timed
   directly over a fixed iteration count, as in E19/E20.               *)

let e21_iters = if tiny then 500 else 20_000

(* pad the body with an IN list until the statement is ~1 KB; the
   [param] variant swaps the trailing range for `?` placeholders so
   the prepared form has the same shape and length *)
let e21_big_stmt ~param =
  let buf = Buffer.create 1200 in
  Buffer.add_string buf
    "select a, b, (a + b) s1, (a * b) s2, (b - a) s3 from t where a in (";
  let i = ref 0 in
  while Buffer.length buf < 980 do
    if !i > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (string_of_int (100000 + !i));
    incr i
  done;
  Buffer.add_string buf
    (if param then ") and b between ? and ?"
     else ") and b between 10 and 20");
  Buffer.contents buf

let e21_cases =
  [
    ( "small",
      "select a from t where a = 42",
      "select a from t where a = ?",
      "execute p21_small (42)" );
    ("1kb", e21_big_stmt ~param:false, e21_big_stmt ~param:true,
     "execute p21_1kb (10, 20)");
  ]

let e21_system () =
  let s = System.create () in
  ignore_exec s "create table t (a int, b int)";
  ignore
    (Engine.execute_block (System.engine s)
       [ insert_op "t" (List.init 4 (fun i -> [ vi i; vi (10 + i) ])) ]);
  List.iter
    (fun (name, _, prep, _) ->
      ignore_exec s (Printf.sprintf "prepare p21_%s as %s" name prep))
    e21_cases;
  s

let e21_timed_ns f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to e21_iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int e21_iters

let write_e21_json path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"E21\",\n  \"description\": \"prepared \
        statements: parse-only vs parse+compile vs EXECUTE against the \
        generation-keyed statement cache, at ~30 B and ~1 KB statement \
        sizes\",\n  \"unit\": \"ns_per_op\",\n  \"tiny\": %b,\n  \
        \"results\": [\n"
       tiny);
  List.iteri
    (fun i (size, bytes, arm, ns) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"size\": \"%s\", \"bytes\": %d, \"arm\": \"%s\", \
            \"ns_per_op\": %.1f, \"iters\": %d}%s\n"
           size bytes arm ns e21_iters
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nresults written to %s\n" path

let e21 () =
  print_header "E21" "prepared statements: PREPARE/EXECUTE vs re-parse"
    "EXECUTE of a prepared 1 KB statement costs bind + cached plan, \
     independent of body size; unprepared execution re-pays lexing, \
     parsing and compilation on every call";
  let s = e21_system () in
  let db = Engine.database (System.engine s) in
  let results = ref [] in
  let table_rows =
    List.map
      (fun (size, literal, _, exec_sql) ->
        let bytes = String.length literal in
        (* warm the execute path so the cached-plan arm measures hits *)
        ignore (System.exec_one s exec_sql);
        let parse_ns =
          e21_timed_ns (fun () ->
              ignore (Parser.parse_statement_string literal))
        in
        let compile_ns =
          e21_timed_ns (fun () ->
              match Parser.parse_statement_string literal with
              | Ast.Stmt_op op -> ignore (Sqlf.Dml.compile_op db op)
              | _ -> failwith "expected DML")
        in
        let exec_ns =
          e21_timed_ns (fun () -> ignore (System.exec_one s exec_sql))
        in
        results :=
          !results
          @ [
              (size, bytes, "parse_only", parse_ns);
              (size, bytes, "parse_compile", compile_ns);
              (size, bytes, "execute_cached", exec_ns);
            ];
        [
          size;
          string_of_int bytes ^ " B";
          pretty_ns parse_ns;
          pretty_ns compile_ns;
          pretty_ns exec_ns;
          ratio compile_ns exec_ns;
        ])
      e21_cases
  in
  print_table
    [
      "stmt"; "bytes"; "parse only"; "parse+compile"; "execute (cached)";
      "speedup";
    ]
    table_rows;
  write_e21_json "BENCH_PR10.json" !results

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.uppercase_ascii names
    | _ -> List.map fst experiments
  in
  print_endline
    "sopr benchmark harness — experiments derived from the paper's claims\n\
     (the paper has no experimental tables; see EXPERIMENTS.md)";
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None -> Printf.printf "unknown experiment %s\n" id)
    requested

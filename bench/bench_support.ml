(* Shared machinery for the benchmark harness: running Bechamel tests
   and printing result tables.

   Every experiment in main.ml produces one printed table; the rows
   come from OLS estimates (nanoseconds per run) of the monotonic
   clock.  Numbers are indicative (an in-memory engine on whatever
   machine runs the bench); EXPERIMENTS.md records the qualitative
   shapes that must hold. *)

open Bechamel
open Toolkit

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]

let instances = Instance.[ monotonic_clock ]

(* SOPR_BENCH_TINY=1 shrinks workload sizes and measurement quotas so
   the harness finishes in seconds — the CI smoke mode.  Numbers from
   a tiny run are meaningless; it only proves the experiments run. *)
let tiny = Sys.getenv_opt "SOPR_BENCH_TINY" <> None

let default_cfg =
  let quota = if tiny then 0.02 else 0.4 in
  Benchmark.cfg ~limit:50 ~quota:(Time.second quota) ~stabilize:false
    ~kde:None ()

(* Run a test (possibly grouped/indexed) and return (name, ns/run)
   rows in the order Bechamel produced them. *)
let run_test ?(cfg = default_cfg) test =
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Test.names test in
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt results name with
      | None -> None
      | Some ols_result -> (
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> Some (name, est)
        | Some [] | None -> None))
    names

let pretty_ns ns =
  if ns < 1_000.0 then Printf.sprintf "%8.1f ns" ns
  else if ns < 1_000_000.0 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else if ns < 1_000_000_000.0 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else Printf.sprintf "%8.2f s " (ns /. 1e9)

let print_header id title claim =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "%s  %s\n" id title;
  Printf.printf "claim: %s\n" claim;
  Printf.printf "%s\n" (String.make 78 '-')

let print_table columns rows =
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length columns)
      rows
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line cells = String.concat " | " (List.map2 pad cells widths) in
  print_endline (line columns);
  print_endline
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let ratio a b = if b = 0.0 then "n/a" else Printf.sprintf "%6.2fx" (a /. b)

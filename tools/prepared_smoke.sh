#!/usr/bin/env bash
# Prepared-statement smoke against a live server: boot sopr-server over
# a scratch data directory, drive PREPARE/EXECUTE/DEALLOCATE through
# two client sessions, and diff the combined transcript against the
# checked-in golden.
#
# What it pins down, beyond the shell-level prepared_smoke golden:
#   - prepared statements are a per-session namespace (a second session
#     cannot EXECUTE the first session's name);
#   - EXECUTE works inside an explicit transaction and via autocommit;
#   - DDL committed mid-session invalidates the cached plan, and the
#     next EXECUTE recompiles against the new catalog rather than
#     running a stale plan;
#   - DEALLOCATE + re-PREPARE runs the new body, not the old plan.
#
# The transcript is byte-deterministic: clients run one after another,
# versions are counted from a fresh directory, and the variable parts
# (port, data directory, server log) never reach it.
#
# Usage: tools/prepared_smoke.sh [--update]
#   --update  rewrite tools/prepared_smoke.golden from this run
set -euo pipefail

cd "$(dirname "$0")/.."
server=${SOPR_SERVER:-_build/default/bin/sopr_server.exe}
golden=tools/prepared_smoke.golden

if [ ! -x "$server" ]; then
  echo "server binary not found: $server (dune build bin/sopr_server.exe)" >&2
  exit 1
fi

dir=$(mktemp -d)
srv_pid=""
trap '[ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null; rm -rf "$dir"' EXIT

start_server() {
  : >"$dir/server.log"
  "$server" serve --port 0 --data-dir "$dir/data" --group \
    >"$dir/server.log" 2>&1 &
  srv_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
      "$dir/server.log")
    [ -n "$port" ] && return 0
    sleep 0.1
  done
  echo "server did not come up; log follows" >&2
  cat "$dir/server.log" >&2
  exit 1
}

stop_server() {
  kill -TERM "$srv_pid"
  wait "$srv_pid" 2>/dev/null || true
  srv_pid=""
}

client() {
  echo "== $1 ==" >>"$dir/transcript"
  "$server" client --port "$port" >>"$dir/transcript"
}

start_server

# Session 1: prepare a reader and a writer, run both inside and outside
# an explicit transaction, then change the catalog under the cached
# plan — the EXECUTE after the index DDL must recompile, not reuse.
client alice <<'EOF'
create table acct (id int, bal int)
insert into acct values (1, 100); insert into acct values (2, 200)
prepare bal as select bal from acct where id = ?
prepare credit as update acct set bal = bal + ? where id = ?
execute bal (1)
execute credit (25, 1)
execute bal (1)
begin; execute credit (1000, 2); rollback
execute bal (2)
create index acct_id on acct (id)
execute bal (2)
execute bal (1, 2)
deallocate bal
prepare bal as select bal + 1000 from acct where id = ?
execute bal (1)
\q
EOF

# Session 2: fresh namespace — alice's names are gone; its own PREPARE
# sees alice's committed writes.
client bob <<'EOF'
execute bal (1)
prepare total as select sum(bal) from acct
execute total
deallocate all
execute total
\q
EOF

stop_server

if [ "${1:-}" = "--update" ]; then
  cp "$dir/transcript" "$golden"
  echo "updated $golden"
  exit 0
fi

if ! diff -u "$golden" "$dir/transcript"; then
  echo "prepared smoke transcript diverged from $golden" >&2
  exit 1
fi
echo "prepared smoke: transcript matches $golden"

#!/usr/bin/env bash
# Server smoke: boot sopr-server with group commit over a scratch data
# directory, run a scripted multi-client conversation against it,
# restart the server to prove the conversation was durable, and diff
# the combined client transcript against the checked-in golden.
#
# The transcript is byte-deterministic: clients run one after another
# (no racing commits), versions are counted from a fresh directory, and
# the variable parts (port, data directory, server log) never reach it.
#
# Usage: tools/server_smoke.sh [--update]
#   --update  rewrite tools/server_smoke.golden from this run
set -euo pipefail

cd "$(dirname "$0")/.."
server=${SOPR_SERVER:-_build/default/bin/sopr_server.exe}
golden=tools/server_smoke.golden

if [ ! -x "$server" ]; then
  echo "server binary not found: $server (dune build bin/sopr_server.exe)" >&2
  exit 1
fi

dir=$(mktemp -d)
srv_pid=""
trap '[ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null; rm -rf "$dir"' EXIT

start_server() {
  : >"$dir/server.log"
  "$server" serve --port 0 --data-dir "$dir/data" --group \
    >"$dir/server.log" 2>&1 &
  srv_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
      "$dir/server.log")
    [ -n "$port" ] && return 0
    sleep 0.1
  done
  echo "server did not come up; log follows" >&2
  cat "$dir/server.log" >&2
  exit 1
}

stop_server() {
  kill -TERM "$srv_pid"
  wait "$srv_pid" 2>/dev/null || true
  srv_pid=""
}

client() {
  echo "== $1 ==" >>"$dir/transcript"
  "$server" client --port "$port" >>"$dir/transcript"
}

start_server

# Session 1 installs the schema and a rule, and commits a transaction
# that fires it.
client alice <<'EOF'
create table fleet (id int, mi int)
create table log (mi int)
create rule odometer when updated fleet.mi then insert into log (select mi from new updated fleet.mi)
insert into fleet values (1, 0); insert into fleet values (2, 0)
begin; update fleet set mi = mi + 120 where id = 1; commit
select id, mi from fleet
select mi from log
\q
EOF

# Session 2 sees session 1's committed state and commits its own
# transaction; the rule fires again.
client bob <<'EOF'
select mi from fleet where id = 1
begin; update fleet set mi = mi + 80 where id = 2; commit
select mi from log
\version
\q
EOF

# Restart: everything above came back from the WAL.
stop_server
start_server

client carol <<'EOF'
select id, mi from fleet
select mi from log
\version
\q
EOF

stop_server

if [ "${1:-}" = "--update" ]; then
  cp "$dir/transcript" "$golden"
  echo "updated $golden"
  exit 0
fi

if ! diff -u "$golden" "$dir/transcript"; then
  echo "server smoke transcript diverged from $golden" >&2
  exit 1
fi
echo "server smoke: transcript matches $golden"

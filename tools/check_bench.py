#!/usr/bin/env python3
"""Schema check for benchmark result files (BENCH_*.json).

Every machine-readable benchmark record the harness emits must:

  - be valid JSON with the envelope keys ``experiment`` (non-empty
    string), ``tiny`` (bool) and ``results`` (non-empty list);
  - contain only finite numbers (no NaN/Infinity smuggled in via the
    lax JSON parsers some tools use);
  - when checked in (``--checked-in``), come from a full-size run
    (``tiny`` must be false — tiny-mode numbers are meaningless and
    exist only to prove the experiments execute).

``--compare`` reads the whole set of records together and checks the
trajectory-level invariants that individual-file validation cannot:

  - every result row within a file carries the same key schema (a new
    arm or a renamed field is schema drift and must be deliberate);
  - the E21 prepared-statement record is present — the statement cache
    is load-bearing and its benchmark must not silently disappear;
  - E21's claim holds: at the ~1 KB statement size, EXECUTE against
    the cached plan beats parse+compile — by at least 5x in a
    full-size record, or at all in a tiny smoke record.

Usage:  check_bench.py [--checked-in] [--compare] FILE [FILE ...]
"""

import json
import math
import sys


def walk_numbers(node, path, problems):
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if not math.isfinite(node):
            problems.append(f"{path}: non-finite number {node!r}")
    elif isinstance(node, dict):
        for key, value in node.items():
            walk_numbers(value, f"{path}.{key}", problems)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk_numbers(value, f"{path}[{i}]", problems)


def check_file(filename, checked_in):
    problems = []
    try:
        with open(filename) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return [f"unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return ["top level is not an object"]

    experiment = doc.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        problems.append("missing or empty 'experiment'")

    tiny = doc.get("tiny")
    if not isinstance(tiny, bool):
        problems.append("'tiny' missing or not a boolean")
    elif checked_in and tiny:
        problems.append("checked-in results must come from a full run (tiny=false)")

    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("'results' missing, not a list, or empty")
    else:
        for i, row in enumerate(results):
            if not isinstance(row, dict) or not row:
                problems.append(f"results[{i}] is not a non-empty object")

    walk_numbers(doc, "$", problems)
    return problems


def check_schema_consistency(filename, doc, problems):
    """All result rows in one record must share a key schema."""
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return
    first = results[0]
    if not isinstance(first, dict):
        return
    schema = set(first.keys())
    for i, row in enumerate(results[1:], start=1):
        if isinstance(row, dict) and set(row.keys()) != schema:
            problems.append(
                f"schema drift: results[{i}] keys {sorted(row.keys())} "
                f"!= results[0] keys {sorted(schema)}"
            )


def check_e21(filename, doc, problems):
    """The prepared-statement claim: cached EXECUTE beats parse+compile
    at the 1 KB statement size (5x when full-size, >1x when tiny)."""
    by_arm = {}
    for row in doc.get("results", []):
        if isinstance(row, dict) and row.get("size") == "1kb":
            by_arm[row.get("arm")] = row.get("ns_per_op")
    compile_ns = by_arm.get("parse_compile")
    cached_ns = by_arm.get("execute_cached")
    if not isinstance(compile_ns, (int, float)) or not isinstance(
        cached_ns, (int, float)
    ):
        problems.append("E21 record lacks 1kb parse_compile/execute_cached rows")
        return
    if cached_ns <= 0:
        problems.append(f"E21 execute_cached ns_per_op not positive: {cached_ns}")
        return
    factor = 1.0 if doc.get("tiny") else 5.0
    if compile_ns < factor * cached_ns:
        problems.append(
            f"E21 claim violated at 1kb: execute_cached {cached_ns:.0f} ns "
            f"must be at least {factor:g}x faster than parse_compile "
            f"{compile_ns:.0f} ns"
        )


def compare_files(files):
    """Cross-file trajectory checks; returns a list of problem strings."""
    problems = []
    docs = {}
    for filename in files:
        try:
            with open(filename) as f:
                docs[filename] = json.load(f)
        except (OSError, ValueError) as exc:
            problems.append(f"{filename}: unreadable or invalid JSON: {exc}")
    for filename, doc in docs.items():
        if isinstance(doc, dict):
            local = []
            check_schema_consistency(filename, doc, local)
            problems.extend(f"{filename}: {p}" for p in local)
    e21_docs = [
        (filename, doc)
        for filename, doc in docs.items()
        if isinstance(doc, dict) and doc.get("experiment") == "E21"
    ]
    if not e21_docs:
        problems.append(
            "no E21 (prepared statements) record among "
            + ", ".join(sorted(docs)) if docs else "no files readable"
        )
    for filename, doc in e21_docs:
        local = []
        check_e21(filename, doc, local)
        problems.extend(f"{filename}: {p}" for p in local)
    return problems


def main(argv):
    args = argv[1:]
    checked_in = "--checked-in" in args
    compare = "--compare" in args
    files = [a for a in args if a not in ("--checked-in", "--compare")]
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failed = False
    for filename in files:
        problems = check_file(filename, checked_in)
        if problems:
            failed = True
            for p in problems:
                print(f"{filename}: {p}", file=sys.stderr)
        else:
            print(f"{filename}: ok")
    if compare:
        problems = compare_files(files)
        if problems:
            failed = True
            for p in problems:
                print(p, file=sys.stderr)
        else:
            print(f"compare: ok ({len(files)} records)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Schema check for benchmark result files (BENCH_*.json).

Every machine-readable benchmark record the harness emits must:

  - be valid JSON with the envelope keys ``experiment`` (non-empty
    string), ``tiny`` (bool) and ``results`` (non-empty list);
  - contain only finite numbers (no NaN/Infinity smuggled in via the
    lax JSON parsers some tools use);
  - when checked in (``--checked-in``), come from a full-size run
    (``tiny`` must be false — tiny-mode numbers are meaningless and
    exist only to prove the experiments execute).

Usage:  check_bench.py [--checked-in] FILE [FILE ...]
"""

import json
import math
import sys


def walk_numbers(node, path, problems):
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if not math.isfinite(node):
            problems.append(f"{path}: non-finite number {node!r}")
    elif isinstance(node, dict):
        for key, value in node.items():
            walk_numbers(value, f"{path}.{key}", problems)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk_numbers(value, f"{path}[{i}]", problems)


def check_file(filename, checked_in):
    problems = []
    try:
        with open(filename) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return [f"unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return ["top level is not an object"]

    experiment = doc.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        problems.append("missing or empty 'experiment'")

    tiny = doc.get("tiny")
    if not isinstance(tiny, bool):
        problems.append("'tiny' missing or not a boolean")
    elif checked_in and tiny:
        problems.append("checked-in results must come from a full run (tiny=false)")

    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("'results' missing, not a list, or empty")
    else:
        for i, row in enumerate(results):
            if not isinstance(row, dict) or not row:
                problems.append(f"results[{i}] is not a non-empty object")

    walk_numbers(doc, "$", problems)
    return problems


def main(argv):
    args = argv[1:]
    checked_in = "--checked-in" in args
    files = [a for a in args if a != "--checked-in"]
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failed = False
    for filename in files:
        problems = check_file(filename, checked_in)
        if problems:
            failed = True
            for p in problems:
                print(f"{filename}: {p}", file=sys.stderr)
        else:
            print(f"{filename}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

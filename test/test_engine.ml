(* Semantics tests for the set-oriented rule engine (paper Section 4). *)

open Core
open Helpers

let counter_system () =
  system "create table c (n int);\ncreate table log (msg string, n int)"

let test_no_rules_commit () =
  let s = counter_system () in
  Alcotest.(check bool) "commits" true (exec_committed s "insert into c values (1)");
  Alcotest.(check int) "row stored" 1 (int_cell s "select count(*) from c")

let test_not_triggered_by_other_table () =
  let s = counter_system () in
  run s "create rule r when inserted into log then delete from c";
  run s "insert into c values (1)";
  Alcotest.(check int) "untouched" 1 (int_cell s "select count(*) from c")

let test_empty_effect_triggers_nothing () =
  let s = counter_system () in
  run s "create rule r when deleted from c then insert into log values ('fired', 0)";
  (* a delete selecting no tuples produces an empty effect *)
  run s "delete from c where n = 999";
  Alcotest.(check int) "no firing" 0 (int_cell s "select count(*) from log")

let test_condition_false_no_action () =
  let s = counter_system () in
  run s
    "create rule r when inserted into c if (select count(*) from c) > 10 then \
     insert into log values ('fired', 0)";
  run s "insert into c values (1)";
  Alcotest.(check int) "not fired" 0 (int_cell s "select count(*) from log")

let test_condition_sees_current_state () =
  let s = counter_system () in
  (* condition reads the post-transition (current) state *)
  run s
    "create rule r when inserted into c if (select count(*) from c) = 2 then \
     insert into log values ('two', 2)";
  run s "insert into c values (1)";
  Alcotest.(check int) "first: one row, no fire" 0
    (int_cell s "select count(*) from log");
  run s "insert into c values (2)";
  Alcotest.(check int) "second: fires" 1 (int_cell s "select count(*) from log")

(* Self-triggering rule reaching a fixpoint (Section 4.1): decrement a
   counter until it reaches zero. *)
let test_self_triggering_fixpoint () =
  let s = counter_system () in
  run s "create rule dec when updated c.n or inserted into c if exists (select * from c where n > 0) then update c set n = n - 1 where n > 0";
  run s "insert into c values (5)";
  Alcotest.(check int) "reached zero" 0 (int_cell s "select n from c");
  let st = Engine.stats (System.engine s) in
  Alcotest.(check int) "fired five times" 5 st.Engine.rule_firings

(* A rule whose action makes no changes stops being re-triggered: its
   new transition information is empty. *)
let test_acting_rule_info_resets () =
  let s = counter_system () in
  run s
    "create rule r when inserted into c then delete from c where n < 0";
  run s "insert into c values (1)";
  (* delete selected nothing -> empty effect -> r not re-triggered *)
  let st = Engine.stats (System.engine s) in
  Alcotest.(check int) "fired once" 1 st.Engine.rule_firings

(* Two triggered rules: the first (by priority) executes; the second is
   then considered against the COMPOSITE effect of both transitions
   (Section 4.2). *)
let test_composite_effect_for_waiting_rule () =
  let s =
    system
      "create table t (a int);\n\
       create table audit (total int)"
  in
  (* hi fires first and inserts 10 more rows into t; lo then counts ALL
     inserted rows (external 2 + rule-inserted 10) because its
     transition tables are based on the composite effect *)
  run s
    "create rule hi when inserted into t if (select count(*) from t) < 10 \
     then insert into t (select a + 100 from inserted t); insert into t \
     (select a + 200 from inserted t)";
  run s
    "create rule lo when inserted into t then insert into audit values \
     ((select count(*) from inserted t))";
  run s "create rule priority hi before lo";
  run s "insert into t values (1), (2)";
  (* hi fires on {1,2} inserting {101,102,201,202}; then hi reconsidered
     on its own effect {101,102,201,202}: condition (count(t)=6 < 10)
     holds, inserts {201,202,301,302,401,402} wait - carefully:
     hi's second firing sees only its own previous transition (4 rows),
     inserts 8 more; now count(t)=14, condition false. lo then sees the
     composite: 2 + 4 + 8 = 14 inserted rows. *)
  Alcotest.(check int) "lo saw composite" 14 (int_cell s "select total from audit")

(* A higher-priority rule that undoes the triggering changes prevents a
   lower-priority rule from firing (trigger permanence, Section 1 /
   4.2: composite effect netting). *)
let test_undo_removes_triggering () =
  let s = counter_system () in
  run s "create rule censor when inserted into c then delete from c where n > 100";
  run s
    "create rule logger when inserted into c then insert into log values \
     ('saw', (select count(*) from inserted c))";
  run s "create rule priority censor before logger";
  run s "insert into c values (200)";
  (* censor deleted the only inserted row: logger's composite effect is
     empty, so it never fires *)
  Alcotest.(check int) "logger suppressed" 0
    (int_cell s "select count(*) from log");
  run s "insert into c values (1)";
  Alcotest.(check int) "logger fires normally" 1
    (int_cell s "select count(*) from log")

(* A rule whose condition was false is reconsidered after another
   rule's transition (Section 4.2). *)
let test_condition_retry_after_new_transition () =
  let s = counter_system () in
  run s
    "create rule threshold when inserted into c if (select count(*) from c) \
     >= 3 then insert into log values ('full', 3)";
  run s
    "create rule filler when inserted into c if (select count(*) from c) < 3 \
     then insert into c values (99)";
  (* threshold considered first (creation order), condition false; filler
     fires adding rows; threshold must be reconsidered *)
  run s "insert into c values (1)";
  Alcotest.(check int) "eventually fired" 1
    (int_cell s "select count(*) from log");
  Alcotest.(check int) "three rows" 3 (int_cell s "select count(*) from c")

let test_rollback_action () =
  let s = counter_system () in
  run s "insert into c values (1)";
  run s
    "create rule guard when updated c.n if exists (select * from c where n < \
     0) then rollback";
  Alcotest.(check bool) "rolled back" false
    (exec_committed s "update c set n = -5");
  Alcotest.(check int) "value restored" 1 (int_cell s "select n from c");
  Alcotest.(check bool) "legal update commits" true
    (exec_committed s "update c set n = 7");
  Alcotest.(check int) "value updated" 7 (int_cell s "select n from c")

let test_rollback_undoes_rule_actions_too () =
  let s = counter_system () in
  run s "create rule chain when inserted into c then insert into log values ('x', 1)";
  run s
    "create rule guard when inserted into log then rollback";
  run s "insert into c values (1)";
  Alcotest.(check int) "c restored" 0 (int_cell s "select count(*) from c");
  Alcotest.(check int) "log restored" 0 (int_cell s "select count(*) from log")

let test_divergence_guard () =
  let config = { Engine.default_config with max_steps = 25 } in
  let s = system ~config "create table c (n int)" in
  run s "create rule forever when updated c.n then update c set n = n + 1";
  run s "insert into c values (0)";
  (match System.exec s "update c set n = 1" with
  | _ -> Alcotest.fail "expected divergence error"
  | exception Errors.Error (Errors.Rule_limit_exceeded { steps; _ }) ->
    (* the reported count is the attempted action execution that
       tripped the limit: one past the configured maximum *)
    Alcotest.(check int) "steps" 26 steps);
  (* the transaction was rolled back *)
  Alcotest.(check int) "state restored" 0 (int_cell s "select n from c")

let test_deactivate_activate () =
  let s = counter_system () in
  run s "create rule r when inserted into c then insert into log values ('x', 1)";
  run s "deactivate rule r";
  run s "insert into c values (1)";
  Alcotest.(check int) "inactive" 0 (int_cell s "select count(*) from log");
  run s "activate rule r";
  run s "insert into c values (2)";
  Alcotest.(check int) "active" 1 (int_cell s "select count(*) from log")

let test_drop_rule () =
  let s = counter_system () in
  run s "create rule r when inserted into c then insert into log values ('x', 1)";
  run s "drop rule r";
  run s "insert into c values (1)";
  Alcotest.(check int) "dropped" 0 (int_cell s "select count(*) from log");
  expect_error (fun () -> System.exec s "drop rule r")

let test_duplicate_rule_rejected () =
  let s = counter_system () in
  run s "create rule r when inserted into c then delete from log";
  expect_error (fun () ->
      System.exec s "create rule r when inserted into c then delete from log")

let test_priority_cycle_rejected () =
  let s = counter_system () in
  run s "create rule a when inserted into c then delete from log";
  run s "create rule b when inserted into c then delete from log";
  run s "create rule priority a before b";
  expect_error (fun () -> System.exec s "create rule priority b before a");
  expect_error (fun () -> System.exec s "create rule priority a before a")

let test_priority_unknown_rule_rejected () =
  let s = counter_system () in
  run s "create rule a when inserted into c then delete from log";
  expect_error (fun () -> System.exec s "create rule priority a before ghost")

(* Explicit transactions: several statements form one operation block;
   rules run at commit. *)
let test_explicit_transaction () =
  let s = counter_system () in
  run s
    "create rule r when inserted into c then insert into log values ('batch', \
     (select count(*) from inserted c))";
  run s "begin";
  run s "insert into c values (1)";
  run s "insert into c values (2)";
  run s "insert into c values (3)";
  Alcotest.(check int) "rules not yet run" 0
    (int_cell s "select count(*) from log");
  run s "commit";
  (* one firing over the whole set, not three *)
  Alcotest.(check int) "one firing" 1 (int_cell s "select count(*) from log");
  Alcotest.(check int) "saw all three" 3 (int_cell s "select n from log")

let test_explicit_rollback_statement () =
  let s = counter_system () in
  run s "begin";
  run s "insert into c values (1)";
  run s "rollback";
  Alcotest.(check int) "nothing" 0 (int_cell s "select count(*) from c")

(* Section 5.3 rule triggering points. *)
let test_process_rules_triggering_point () =
  let s = counter_system () in
  run s
    "create rule r when inserted into c then insert into log values ('seen', \
     (select count(*) from inserted c))";
  run s "begin";
  run s "insert into c values (1)";
  run s "insert into c values (2)";
  run s "process rules";
  (* first processing: one firing over two inserts *)
  Alcotest.(check int) "first batch" 2 (int_cell s "select max(n) from log");
  run s "insert into c values (3)";
  run s "commit";
  (* second processing sees only the third insert *)
  Alcotest.(check rows_testable) "two firings"
    [ [| vi 2 |]; [| vi 1 |] ]
    (rows s "select n from log");
  Alcotest.(check int) "three rows" 3 (int_cell s "select count(*) from c")

let test_rollback_after_triggering_point_restores_all () =
  let s = counter_system () in
  run s
    "create rule guard when inserted into c if exists (select * from c where \
     n < 0) then rollback";
  run s "begin";
  run s "insert into c values (1)";
  run s "process rules";
  run s "insert into c values (-1)";
  (* commit triggers the guard; rollback must restore to the state
     before the FIRST block, discarding the already-processed insert *)
  (match System.exec s "commit" with
  | [ System.Outcome Engine.Rolled_back ] -> ()
  | _ -> Alcotest.fail "expected rollback");
  Alcotest.(check int) "everything gone" 0 (int_cell s "select count(*) from c")

(* Section 5.1: rules triggered by data retrieval. *)
let test_select_triggered_rule () =
  let config = { Engine.default_config with track_selects = true } in
  let s =
    system ~config
      "create table secrets (id int, payload string);\n\
       create table audit (id int)"
  in
  run s
    "create rule auditor when selected secrets then insert into audit (select \
     id from selected secrets)";
  run s "insert into secrets values (1, 'a'), (2, 'b')";
  Alcotest.(check int) "no audit yet" 0 (int_cell s "select count(*) from audit");
  (* retrieval inside a transaction triggers the rule at commit *)
  run s "begin";
  run s "select payload from secrets where id = 2";
  run s "commit";
  Alcotest.(check rows_testable) "read audited" [ [| vi 2 |] ]
    (rows s "select id from audit")

let test_select_not_tracked_by_default () =
  let s =
    system
      "create table secrets (id int, payload string);\n\
       create table audit (id int)"
  in
  run s
    "create rule auditor when selected secrets then insert into audit (select \
     id from selected secrets)";
  run s "insert into secrets values (1, 'a')";
  run s "begin";
  run s "select payload from secrets";
  run s "commit";
  Alcotest.(check int) "not tracked" 0 (int_cell s "select count(*) from audit")

(* Section 5.2: external procedure actions. *)
let test_external_procedure_action () =
  let s = counter_system () in
  let observed = ref [] in
  System.register_procedure s "observe" (fun ctx ->
      let rel =
        ctx.Procedures.query
          (Parser.parse_select_string "select n from inserted c")
      in
      observed :=
        List.map (fun row -> row.(0)) rel.Eval.rows @ !observed;
      (* the returned block is the action's database effect *)
      [
        (match Parser.parse_statement_string
                 "insert into log values ('proc', 0)"
         with
        | Ast.Stmt_op op -> op
        | _ -> assert false);
      ]);
  run s "create rule r when inserted into c then call observe";
  run s "insert into c values (41), (42)";
  Alcotest.(check int) "procedure saw both" 2 (List.length !observed);
  Alcotest.(check int) "block applied" 1 (int_cell s "select count(*) from log")

let test_unknown_procedure () =
  let s = counter_system () in
  run s "create rule r when inserted into c then call ghost";
  expect_error (fun () -> System.exec s "insert into c values (1)")

let test_error_mid_block_aborts () =
  let s = counter_system () in
  run s "insert into c values (1)";
  (* second op references an unknown column: whole block must abort *)
  (match
     System.exec_block s
       "insert into c values (2); update c set nope = 1"
   with
  | _ -> Alcotest.fail "expected error"
  | exception Errors.Error _ -> ());
  Alcotest.(check int) "block undone" 1 (int_cell s "select count(*) from c")

let test_stats_counting () =
  let s = counter_system () in
  run s "create rule r when inserted into c then delete from log";
  run s "insert into c values (1)";
  run s "insert into c values (2)";
  let st = Engine.stats (System.engine s) in
  Alcotest.(check int) "transactions" 2 st.Engine.transactions;
  Alcotest.(check int) "firings" 2 st.Engine.rule_firings;
  Alcotest.(check bool) "conditions >= firings" true
    (st.Engine.conditions_evaluated >= st.Engine.rule_firings)

(* Selection strategies: with mutually-triggering rules, least- vs
   most-recently-considered visit in different orders. *)
let strategy_trace strategy =
  let config = { Engine.default_config with strategy } in
  let s =
    system ~config
      "create table t (x int);\ncreate table trace (who string, seq int)"
  in
  (* both rules append their name; each fires at most twice via a
     guard on how many times it has written *)
  run s
    "create rule ra when inserted into t or inserted into trace if (select \
     count(*) from trace where who = 'ra') < 2 then insert into trace values \
     ('ra', (select count(*) from trace))";
  run s
    "create rule rb when inserted into t or inserted into trace if (select \
     count(*) from trace where who = 'rb') < 2 then insert into trace values \
     ('rb', (select count(*) from trace))";
  run s "insert into t values (1)";
  string_list_cells s "select who from trace order by seq"

let test_selection_strategies () =
  (* creation order keeps preferring ra until its condition goes false *)
  Alcotest.(check (list string)) "creation order chains first rule"
    [ "ra"; "ra"; "rb"; "rb" ]
    (strategy_trace Selection.Creation_order);
  (* least-recently-considered also alternates, starting with ra *)
  Alcotest.(check (list string)) "lrc alternates"
    [ "ra"; "rb"; "ra"; "rb" ]
    (strategy_trace Selection.Least_recently_considered);
  (* most-recently-considered chains the same rule while possible *)
  Alcotest.(check (list string)) "mrc chains"
    [ "ra"; "ra"; "rb"; "rb" ]
    (strategy_trace Selection.Most_recently_considered)

let test_priority_beats_strategy () =
  let config =
    { Engine.default_config with strategy = Selection.Most_recently_considered }
  in
  let s =
    system ~config "create table t (x int);\ncreate table trace (who string)"
  in
  run s
    "create rule lo when inserted into t then insert into trace values ('lo')";
  run s
    "create rule hi when inserted into t then insert into trace values ('hi')";
  run s "create rule priority hi before lo";
  run s "insert into t values (1)";
  Alcotest.(check (list string)) "hi first" [ "hi"; "lo" ]
    (string_list_cells s "select who from trace")

(* The execution trace must record the exact event sequence of
   Figure 1: the external transition, each consideration in priority
   order, each firing, and quiescence. *)
let test_trace_event_sequence () =
  let s = counter_system () in
  run s
    "create rule a when inserted into c then insert into log values ('a', 1)";
  run s
    "create rule b when inserted into c then insert into log values ('b', 2)";
  run s "create rule priority b before a";
  Engine.set_tracing (System.engine s) true;
  run s "insert into c values (7)";
  let expected =
    [
      Engine.Ev_external { effect_size = 1 };
      Engine.Ev_considered { rule = "b"; condition_held = true };
      Engine.Ev_fired { rule = "b"; effect_size = 1 };
      Engine.Ev_considered { rule = "a"; condition_held = true };
      Engine.Ev_fired { rule = "a"; effect_size = 1 };
      Engine.Ev_quiescent;
    ]
  in
  Alcotest.(check bool)
    "exact trace sequence" true
    (Engine.trace (System.engine s) = expected)

(* The Section 4.3 pruning optimization must be semantically invisible:
   the composite-effect scenario behaves identically with it on or
   off. *)
let test_prune_info_equivalence () =
  let outcome prune_info =
    let config = { Engine.default_config with prune_info } in
    let s =
      system ~config
        "create table t (a int);\ncreate table audit (total int)"
    in
    run s
      "create rule hi when inserted into t if (select count(*) from t) < 10 \
       then insert into t (select a + 100 from inserted t); insert into t \
       (select a + 200 from inserted t)";
    run s
      "create rule lo when inserted into t then insert into audit values \
       ((select count(*) from inserted t))";
    run s "create rule priority hi before lo";
    run s "insert into t values (1), (2)";
    ( int_cell s "select total from audit",
      int_cell s "select count(*) from t",
      (Engine.stats (System.engine s)).Engine.rule_firings )
  in
  let pruned = outcome true and naive = outcome false in
  Alcotest.(check (triple int int int)) "identical behaviour" naive pruned

let suite =
  [
    Alcotest.test_case "no rules" `Quick test_no_rules_commit;
    Alcotest.test_case "prune-info optimization invisible" `Quick
      test_prune_info_equivalence;
    Alcotest.test_case "not triggered by other table" `Quick
      test_not_triggered_by_other_table;
    Alcotest.test_case "empty effect triggers nothing" `Quick
      test_empty_effect_triggers_nothing;
    Alcotest.test_case "false condition blocks action" `Quick
      test_condition_false_no_action;
    Alcotest.test_case "condition sees current state" `Quick
      test_condition_sees_current_state;
    Alcotest.test_case "self-triggering fixpoint" `Quick
      test_self_triggering_fixpoint;
    Alcotest.test_case "acting rule info resets" `Quick
      test_acting_rule_info_resets;
    Alcotest.test_case "waiting rule sees composite effect" `Quick
      test_composite_effect_for_waiting_rule;
    Alcotest.test_case "undo removes triggering" `Quick
      test_undo_removes_triggering;
    Alcotest.test_case "condition retried after new transition" `Quick
      test_condition_retry_after_new_transition;
    Alcotest.test_case "rollback action" `Quick test_rollback_action;
    Alcotest.test_case "rollback undoes rule actions" `Quick
      test_rollback_undoes_rule_actions_too;
    Alcotest.test_case "divergence guard" `Quick test_divergence_guard;
    Alcotest.test_case "deactivate/activate" `Quick test_deactivate_activate;
    Alcotest.test_case "drop rule" `Quick test_drop_rule;
    Alcotest.test_case "duplicate rule rejected" `Quick
      test_duplicate_rule_rejected;
    Alcotest.test_case "priority cycle rejected" `Quick
      test_priority_cycle_rejected;
    Alcotest.test_case "priority needs known rules" `Quick
      test_priority_unknown_rule_rejected;
    Alcotest.test_case "explicit transaction batches" `Quick
      test_explicit_transaction;
    Alcotest.test_case "explicit rollback statement" `Quick
      test_explicit_rollback_statement;
    Alcotest.test_case "process rules triggering point" `Quick
      test_process_rules_triggering_point;
    Alcotest.test_case "rollback restores past triggering point" `Quick
      test_rollback_after_triggering_point_restores_all;
    Alcotest.test_case "select-triggered rule (ext 5.1)" `Quick
      test_select_triggered_rule;
    Alcotest.test_case "selects untracked by default" `Quick
      test_select_not_tracked_by_default;
    Alcotest.test_case "external procedure action (ext 5.2)" `Quick
      test_external_procedure_action;
    Alcotest.test_case "unknown procedure" `Quick test_unknown_procedure;
    Alcotest.test_case "error mid-block aborts" `Quick test_error_mid_block_aborts;
    Alcotest.test_case "stats counting" `Quick test_stats_counting;
    Alcotest.test_case "selection strategies" `Quick test_selection_strategies;
    Alcotest.test_case "priority beats strategy" `Quick
      test_priority_beats_strategy;
  ]

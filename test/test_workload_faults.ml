(* Fault site x scenario matrix.

   For every registered scenario, a durable system is driven through a
   deterministic workload slice with a fault injected at hit point 1,
   2, 3, ... of each transaction until an attempt runs fault-free (the
   PR 2 sweep, applied to the scenario corpus).  Asserted throughout:

   - abort-restores-snapshot: any induced abort (every site up to and
     including Wal_append) leaves the observable state exactly the
     pre-transaction state;
   - Wal_fsync is process death with the record durable: the harness
     abandons the live system and reopens, never retries, and the
     recovered state must satisfy the scenario's invariants;
   - post-recovery invariants: on a sample of induced aborts,
     [Recovery.restore] must agree with the live state and satisfy the
     invariants;
   - the checkpoint fault sites leave nothing behind;
   - coverage: per scenario, the sweep must actually inject at every
     engine site the scenario can reach plus both WAL sites — a
     scenario whose rules never evaluate a condition (or whose traffic
     never commits) would silently weaken the matrix. *)

open Helpers
module Profile = Workload.Profile
module Scenario = Workload.Scenario
module Scenarios = Workload.Scenarios
module Runner = Workload.Runner
module TR = Test_recovery
module Recovery = Durability.Recovery
module Durable = Durability.Durable
module Fault = Core.Fault

let () = Scenarios.register_all ()

let with_faults f = Fun.protect ~finally:Fault.reset f

let matrix_profile =
  { Profile.default with Profile.seed = seed ~default:42; txns = 16 }

(* One scenario's sweep; returns the set of sites injected. *)
let sweep_scenario sc =
  let injected : (Fault.site, int) Hashtbl.t = Hashtbl.create 16 in
  let note site =
    Hashtbl.replace injected site
      (1 + Option.value (Hashtbl.find_opt injected site) ~default:0)
  in
  let total () = Hashtbl.fold (fun _ n acc -> n + acc) injected 0 in
  TR.in_dir ("matrix-" ^ sc.Scenario.sc_name) (fun dir ->
      let open_d () = fst (Durable.open_dir ~config:sc.Scenario.sc_config dir) in
      let d = ref (open_d ()) in
      List.iter
        (fun stmt -> ignore (Durable.exec !d stmt))
        (Runner.setup_statements sc matrix_profile);
      let blocks = Runner.gen_blocks sc matrix_profile in
      let digest () = Runner.state_digest sc (Durable.system !d) in
      List.iteri
        (fun i block ->
          (* sample the fsync-death window on a few blocks; otherwise
             stop the sweep at the Wal_append abort and finish with a
             clean, comparable commit (a committed block's hit sequence
             always ends ..., Wal_append, Wal_fsync) *)
          let kill_fsync = (i + 1) mod 6 = 0 in
          let rec attempt k =
            let pre = digest () in
            Fault.arm k;
            match Runner.run_block (Durable.system !d) block with
            | _ -> Fault.disarm ()
            | exception Fault.Injected Fault.Wal_fsync ->
              Fault.disarm ();
              note Fault.Wal_fsync;
              (* the record is durable; the writer died: reopen, do NOT
                 retry — the transaction is committed *)
              Durable.close !d;
              d := open_d ();
              Runner.check_invariants sc
                ~context:(Printf.sprintf "txn %d after fsync death" (i + 1))
                (Durable.system !d)
            | exception Fault.Injected site ->
              Fault.disarm ();
              note site;
              if digest () <> pre then
                Alcotest.failf "[%s] abort at %s did not restore the snapshot"
                  sc.Scenario.sc_name (Fault.site_name site);
              if total () mod 5 = 0 then begin
                let sys_r, _ =
                  Recovery.restore ~config:sc.Scenario.sc_config dir
                in
                Alcotest.(check string)
                  (Printf.sprintf "[%s] restore after abort at %s equals live"
                     sc.Scenario.sc_name (Fault.site_name site))
                  pre
                  (Runner.state_digest sc sys_r);
                Runner.check_invariants sc
                  ~context:(Fault.site_name site ^ " post-recovery") sys_r
              end;
              if site = Fault.Wal_append && not kill_fsync then begin
                Fault.disarm ();
                ignore (Runner.run_block (Durable.system !d) block)
              end
              else attempt (k + 1)
          in
          attempt 1;
          if (i + 1) mod 4 = 0 then
            Runner.check_invariants sc
              ~context:(Printf.sprintf "after txn %d" (i + 1))
              (Durable.system !d))
        blocks;
      (* the checkpoint sites: both precede any durable mutation *)
      let fp0 = digest () in
      List.iter
        (fun (k, expected) ->
          Fault.arm k;
          (match Durable.checkpoint !d with
          | () -> Alcotest.fail "expected a checkpoint injection"
          | exception Fault.Injected site ->
            note site;
            Alcotest.(check string) "checkpoint faulted at the expected site"
              (Fault.site_name expected) (Fault.site_name site));
          Fault.disarm ();
          let sys_r, _ = Recovery.restore ~config:sc.Scenario.sc_config dir in
          Alcotest.(check string)
            (Printf.sprintf "[%s] failed checkpoint changed nothing durable"
               sc.Scenario.sc_name)
            fp0
            (Runner.state_digest sc sys_r))
        [ (1, Fault.Checkpoint_write); (2, Fault.Checkpoint_rename) ];
      Durable.checkpoint !d;
      Runner.check_invariants sc ~context:"after clean checkpoint"
        (Durable.system !d);
      let sys_r, info = Recovery.restore ~config:sc.Scenario.sc_config dir in
      Alcotest.(check bool) "restores from the new checkpoint" true
        info.Recovery.ri_checkpoint_used;
      Alcotest.(check string) "checkpointed restore equals live" (digest ())
        (Runner.state_digest sc sys_r);
      Durable.close !d;
      injected)

let expected_sites =
  [
    Fault.Dml_op;
    Fault.Query_eval;
    Fault.Rule_condition;
    Fault.Rule_action;
    Fault.Commit_point;
    Fault.Wal_append;
    Fault.Wal_fsync;
    Fault.Checkpoint_write;
    Fault.Checkpoint_rename;
  ]

let matrix_case name () =
  with_seed_reported matrix_profile.Profile.seed (fun () ->
      with_faults (fun () ->
          let sc = Scenario.get name in
          let injected = sweep_scenario sc in
          List.iter
            (fun site ->
              Alcotest.(check bool)
                (Printf.sprintf "[%s] injected at %s" name
                   (Fault.site_name site))
                true
                (Hashtbl.mem injected site))
            expected_sites;
          Alcotest.(check bool)
            (Printf.sprintf "[%s] procedure-free corpus never faults in a \
                             procedure" name)
            true
            (not (Hashtbl.mem injected Fault.Procedure_call))))

let suite =
  List.map
    (fun name -> Alcotest.test_case ("matrix: " ^ name) `Slow (matrix_case name))
    (Scenario.all () |> List.map (fun sc -> sc.Scenario.sc_name))

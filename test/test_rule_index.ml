(* Rule discrimination index (PR 7).

   Layers:

   - unit tests of the index structure itself (registration keys,
     wildcard vs per-column update/select posting lists, incremental
     add/remove);
   - a qcheck property that [Rule_index.matching] is sound AND complete
     against the linear triggering filter: for randomized rule sets and
     composed effects, membership in the matched set coincides exactly
     with [Effect.satisfies_any];
   - engine-level regressions for the subtle paths the index rewiring
     introduced: rules woken mid-processing by a rule firing catch up
     on the composite transition (insert-then-delete netting must
     still cancel), the acting rule's per-rule state always restarts,
     and DDL-generation mismatches rebuild the index;
   - the two stale-state bugfixes: dropping and recreating a rule
     resets its consideration recency (fair selection under
     least-recently-considered), and bulk rule creation is linear — a
     structural sharing assertion, not a wall-clock one;
   - the observability counters ([rules skipped] stays zero on the
     linear oracle and is exactly the non-woken remainder indexed);
   - the PR 6 workload scenarios run differentially: index on vs the
     linear-scan oracle, asserting identical results, traces, digests,
     invariants and firing counts ({!Runner.run_index_differential}). *)

open Helpers
open Core
module Rule = Rules.Rule
module Rule_index = Rules.Rule_index
module Selection = Rules.Selection
module Profile = Workload.Profile
module Scenario = Workload.Scenario
module Scenarios = Workload.Scenarios
module Runner = Workload.Runner

(* Registration normally happens in test_workload's module
   initializer; guard so this suite also runs standalone. *)
let ensure_scenarios () =
  if Scenario.names () = [] then Scenarios.register_all ()

let rule_def ?condition name preds action =
  { Ast.rule_name = name; trans_preds = preds; condition; action }

let mk_rule ~seq ?condition name preds =
  Rule.create ~seq (rule_def ?condition name preds Ast.Act_rollback)

let names_of set = Rule_index.Str_set.elements set

let check_names label expected set =
  Alcotest.(check (list string)) label expected (names_of set)

(* ------------------------------------------------------------------ *)
(* Index structure units                                               *)

let test_keys_of_rule () =
  let r =
    mk_rule ~seq:1 "r"
      [
        Ast.Tp_updated ("t", Some "a");
        Ast.Tp_inserted "t";
        Ast.Tp_updated ("t", None);
        Ast.Tp_selected ("u", Some "b");
        Ast.Tp_inserted "t" (* duplicate: deduplicated *);
      ]
  in
  let rendered = List.map Rule_index.key_to_string (Rule_index.keys_of_rule r) in
  Alcotest.(check (list string))
    "stable, deduplicated rendering"
    [ "insert(t)"; "update(t.*)"; "update(t.a)"; "select(u.b)" ]
    rendered

let test_matching_posting_lists () =
  let r_ins = mk_rule ~seq:1 "r_ins" [ Ast.Tp_inserted "t" ] in
  let r_del = mk_rule ~seq:2 "r_del" [ Ast.Tp_deleted "t" ] in
  let r_upd_a = mk_rule ~seq:3 "r_upd_a" [ Ast.Tp_updated ("t", Some "a") ] in
  let r_upd_any = mk_rule ~seq:4 "r_upd_any" [ Ast.Tp_updated ("t", None) ] in
  let r_sel_b = mk_rule ~seq:5 "r_sel_b" [ Ast.Tp_selected ("u", Some "b") ] in
  let idx =
    Rule_index.rebuild ~generation:0
      [ r_ins; r_del; r_upd_a; r_upd_any; r_sel_b ]
  in
  Alcotest.(check int) "registered" 5 (Rule_index.registered idx);
  let ht = Handle.fresh "t" and hu = Handle.fresh "u" in
  check_names "insert t" [ "r_ins" ]
    (Rule_index.matching idx (Effect.of_inserted [ ht ]));
  check_names "update t.a hits column and wildcard"
    [ "r_upd_a"; "r_upd_any" ]
    (Rule_index.matching idx (Effect.of_updated [ (ht, [ "a" ]) ]));
  check_names "update t.b hits wildcard only" [ "r_upd_any" ]
    (Rule_index.matching idx (Effect.of_updated [ (ht, [ "b" ]) ]));
  check_names "select u.b" [ "r_sel_b" ]
    (Rule_index.matching idx (Effect.of_selected [ (hu, [ "b" ]) ]));
  check_names "select u.c misses" []
    (Rule_index.matching idx (Effect.of_selected [ (hu, [ "c" ]) ]));
  let composite =
    Effect.compose
      (Effect.of_deleted [ ht ])
      (Effect.of_updated [ (ht, [ "a" ]) ])
  in
  check_names "composite unions per-op matches"
    [ "r_del"; "r_upd_a"; "r_upd_any" ]
    (Rule_index.matching idx composite);
  (* incremental removal unregisters every key of the rule *)
  Rule_index.remove idx r_upd_any;
  Alcotest.(check int) "registered after remove" 4
    (Rule_index.registered idx);
  check_names "update t.b after removing wildcard rule" []
    (Rule_index.matching idx (Effect.of_updated [ (ht, [ "b" ]) ]));
  Rule_index.add idx r_upd_any;
  check_names "re-added" [ "r_upd_any" ]
    (Rule_index.matching idx (Effect.of_updated [ (ht, [ "b" ]) ]))

(* ------------------------------------------------------------------ *)
(* Soundness and completeness property                                 *)

(* Small vocabularies so collisions (several rules on one key, effects
   touching registered and unregistered keys) are frequent. *)
let prop_tables = [| "t0"; "t1"; "t2" |]
let prop_cols = [| "a"; "b"; "c" |]

let gen_pred st =
  let open QCheck.Gen in
  let t = prop_tables.(int_bound 2 st) in
  let col st = if bool st then None else Some prop_cols.(int_bound 2 st) in
  match int_bound 3 st with
  | 0 -> Ast.Tp_inserted t
  | 1 -> Ast.Tp_deleted t
  | 2 -> Ast.Tp_updated (t, col st)
  | _ -> Ast.Tp_selected (t, col st)

let gen_rules st =
  let open QCheck.Gen in
  let n = 1 + int_bound 19 st in
  List.init n (fun i ->
      let preds = List.init (1 + int_bound 2 st) (fun _ -> gen_pred st) in
      mk_rule ~seq:(i + 1) (Printf.sprintf "r%d" i) preds)

(* A composed effect over a small handle pool, so insert-then-delete
   netting and multi-table composites occur. *)
let gen_effect st =
  let open QCheck.Gen in
  let pool =
    Array.init 6 (fun i -> Handle.fresh prop_tables.(i mod Array.length prop_tables))
  in
  let one st =
    let h = pool.(int_bound (Array.length pool - 1) st) in
    match int_bound 3 st with
    | 0 -> Effect.of_inserted [ h ]
    | 1 -> Effect.of_deleted [ h ]
    | 2 -> Effect.of_updated [ (h, [ prop_cols.(int_bound 2 st) ]) ]
    | _ -> Effect.of_selected [ (h, [ prop_cols.(int_bound 2 st) ]) ]
  in
  List.fold_left
    (fun acc e -> Effect.compose acc e)
    Effect.empty
    (List.init (int_bound 7 st) (fun _ -> one st))

let print_case (rules, eff) =
  let rule_str r =
    Printf.sprintf "%s: [%s]" r.Rule.name
      (String.concat "; "
         (List.map
            (fun k -> Rule_index.key_to_string k)
            (Rule_index.keys_of_rule r)))
  in
  Printf.sprintf "rules = %s\neffect = %s"
    (String.concat " | " (List.map rule_str rules))
    (Format.asprintf "%a" Effect.pp eff)

let prop_sound_complete =
  QCheck.Test.make ~name:"matching = { r | satisfies_any eff (preds r) }"
    ~count:500
    (QCheck.make ~print:print_case (fun st -> (gen_rules st, gen_effect st)))
    (fun (rules, eff) ->
      let idx = Rule_index.rebuild ~generation:0 rules in
      let matched = Rule_index.matching idx eff in
      List.for_all
        (fun r ->
          Rule_index.Str_set.mem r.Rule.name matched
          = Effect.satisfies_any eff (Rule.trans_preds r))
        rules)

(* ------------------------------------------------------------------ *)
(* Engine-level semantics under the index                              *)

let oracle_config =
  { Engine.default_config with Engine.rule_index = false }

(* A rule woken mid-processing must catch up on the whole composite
   transition: rows inserted by the external statement and deleted by
   a rule net to nothing, so a delete-triggered rule never sees them.
   A naive wake-up that initializes from the firing's own effect would
   fire here. *)
let netting_script =
  "create table a (x int);\n\
   create table b (x int)"

let netting_setup s =
  run s "create rule purge when inserted into a then delete from a where x >= 0";
  run s
    "create rule watcher when deleted from a then insert into b values (99)";
  run s "insert into a values (1), (2)"

let test_netting_matches_oracle () =
  let check config =
    let s = system ?config netting_script in
    netting_setup s;
    Alcotest.(check int) "purged" 0 (int_cell s "select count(*) from a");
    (* the deleted rows never existed before the transition: the
       delete-triggered watcher must not fire *)
    Alcotest.(check int) "watcher inert" 0
      (int_cell s "select count(*) from b")
  in
  check None;
  check (Some oracle_config)

(* The acting rule's per-rule state restarts after it fires even when
   its own firing touches none of its registration keys — otherwise it
   would stay triggered forever and trip the step limit. *)
let test_acting_rule_resets () =
  let s = system "create table a (x int);\ncreate table b (x int)" in
  run s "create rule fwd when inserted into a then insert into b values (1)";
  run s "insert into a values (7)";
  Alcotest.(check int) "fired exactly once" 1
    (int_cell s "select count(*) from b");
  Alcotest.(check int) "one firing recorded" 1
    (Engine.stats (System.engine s)).Engine.rule_firings

(* A cascade wakes a rule that matched nothing at the external
   transition; the chain must run identically with and without the
   index. *)
let test_cascade_wakeup_matches_oracle () =
  let counts config =
    let s =
      system ?config
        "create table a (x int);\ncreate table b (x int);\n\
         create table c (x int)"
    in
    run s "create rule ab when inserted into a then insert into b values (1)";
    run s "create rule bc when inserted into b then insert into c values (2)";
    run s "insert into a values (0)";
    ( int_cell s "select count(*) from b",
      int_cell s "select count(*) from c",
      (Engine.stats (System.engine s)).Engine.rule_firings )
  in
  let indexed = counts None and oracle = counts (Some oracle_config) in
  Alcotest.(check (triple int int int)) "cascade equal" oracle indexed;
  let b, c, firings = indexed in
  Alcotest.(check (triple int int int)) "cascade ran" (1, 1, 2) (b, c, firings)

(* Table/index DDL bumps the engine's DDL generation; the discrimination
   index must rebuild on the mismatch instead of serving stale keys. *)
let test_ddl_generation_rebuild () =
  let s = system "create table t (x int);\ncreate table log (x int)" in
  run s "create rule r when inserted into t then insert into log values (1)";
  run s "create index t_x on t (x)";
  run s "insert into t values (3)";
  Alcotest.(check int) "rule survived the rebuild" 1
    (int_cell s "select count(*) from log");
  run s "drop index t_x";
  run s "insert into t values (4)";
  Alcotest.(check int) "and the second rebuild" 2
    (int_cell s "select count(*) from log")

let test_deactivate_reactivate_index () =
  let s = system "create table t (x int);\ncreate table log (x int)" in
  run s "create rule r when inserted into t then insert into log values (1)";
  run s "deactivate rule r";
  run s "insert into t values (1)";
  Alcotest.(check int) "deactivated: unregistered" 0
    (int_cell s "select count(*) from log");
  run s "activate rule r";
  run s "insert into t values (2)";
  Alcotest.(check int) "reactivated: registered again" 1
    (int_cell s "select count(*) from log")

(* ------------------------------------------------------------------ *)
(* Observability counters                                              *)

(* Three rules, one on the touched table.  Under the index every
   candidate scan examines exactly the woken rule and skips the other
   two, so [rules_skipped] is exactly twice [candidates_considered]
   whatever the scan count; the linear oracle skips nothing. *)
let stats_system config =
  let s =
    system ?config "create table t (x int);\ncreate table u (x int)"
  in
  run s
    "create rule rt when inserted into t if (select count(*) from t) < 0 \
     then rollback";
  run s
    "create rule ru1 when inserted into u if (select count(*) from u) < 0 \
     then rollback";
  run s
    "create rule ru2 when deleted from u if (select count(*) from u) < 0 \
     then rollback";
  run s "insert into t values (1)";
  Engine.stats (System.engine s)

let test_stats_counters () =
  let st = stats_system None in
  Alcotest.(check bool) "considered some" true
    (st.Engine.candidates_considered > 0);
  Alcotest.(check int) "skips = 2 x examined"
    (2 * st.Engine.candidates_considered)
    st.Engine.rules_skipped;
  let so = stats_system (Some oracle_config) in
  Alcotest.(check int) "oracle skips nothing" 0 so.Engine.rules_skipped;
  Alcotest.(check bool) "oracle examines the catalog" true
    (so.Engine.candidates_considered >= 3)

let test_explain_rule_keys () =
  let s = system "create table t (a int, b int)" in
  run s
    "create rule r when inserted into t or updated t.a if (select count(*) \
     from t) < 0 then rollback";
  Alcotest.(check (list string))
    "engine reports the registration keys"
    [ "insert(t)"; "update(t.a)" ]
    (Engine.rule_index_keys (System.engine s) "r")

(* ------------------------------------------------------------------ *)
(* Stale-state bugfixes                                                *)

let considered_order eng =
  List.filter_map
    (function
      | Engine.Ev_considered { rule; _ } -> Some rule
      | _ -> None)
    (Engine.trace eng)

(* Dropping a rule must clear its consideration recency: a recreated
   rule is brand new and, under least-recently-considered selection,
   goes first.  Before the fix the stale [last_considered] entry made
   the engine treat the newcomer as the most recently considered
   rule. *)
let test_drop_recreate_fair_selection () =
  let config =
    Some
      {
        Engine.default_config with
        Engine.strategy = Selection.Least_recently_considered;
      }
  in
  let s = system ?config "create table t (x int)" in
  let mk name =
    run s
      (Printf.sprintf
         "create rule %s when inserted into t if (select count(*) from t) < \
          0 then rollback"
         name)
  in
  mk "alpha";
  mk "beta";
  let eng = System.engine s in
  Engine.set_tracing eng true;
  run s "insert into t values (1)";
  Alcotest.(check (list string))
    "first transition considers in creation order" [ "alpha"; "beta" ]
    (considered_order eng);
  run s "drop rule beta";
  mk "beta";
  run s "insert into t values (2)";
  (* recreated beta has never been considered: least recently
     considered selects it before alpha *)
  Alcotest.(check (list string))
    "recreated rule treated as never considered" [ "beta"; "alpha" ]
    (considered_order eng)

(* Rule creation is O(1): the catalog keeps a newest-first list, so the
   list before a creation is physically the tail of the list after it.
   Structural, not wall-clock — no timing flake. *)
let test_create_rule_structural_append () =
  let s = system "create table t (x int)" in
  let eng = System.engine s in
  run s "create rule r1 when inserted into t then rollback";
  let before = Engine.rules_rev eng in
  run s "create rule r2 when inserted into t then rollback";
  (match Engine.rules_rev eng with
  | newest :: tail ->
    Alcotest.(check string) "newest first" "r2" newest.Rule.name;
    Alcotest.(check bool) "previous list is the physical tail" true
      (tail == before)
  | [] -> Alcotest.fail "catalog empty after create");
  (* bulk creation stays linear and preserves creation order *)
  let n = 2000 in
  for i = 1 to n do
    ignore
      (Engine.create_rule eng
         (rule_def
            (Printf.sprintf "bulk%04d" i)
            [ Ast.Tp_inserted "t" ]
            Ast.Act_rollback))
  done;
  let all = Engine.rules eng in
  Alcotest.(check int) "catalog size" (n + 2) (List.length all);
  Alcotest.(check string) "creation order preserved" "r1"
    (List.hd all).Rule.name;
  Alcotest.(check string) "last created is last" "bulk2000"
    (List.nth all (n + 1)).Rule.name

(* ------------------------------------------------------------------ *)
(* Workload differential: index on vs linear oracle                    *)

let test_scenario_differential name () =
  ensure_scenarios ();
  let sc = Scenario.get name in
  let sd = seed ~default:Profile.default.Profile.seed in
  with_seed_reported sd (fun () ->
      let profile =
        {
          Profile.default with
          Profile.seed = sd;
          txns = 30;
          rule_density = 8;
        }
      in
      ignore (Runner.run_index_differential ~check_every:4 sc profile))

let differential_cases () =
  ensure_scenarios ();
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "differential vs linear oracle: %s" name)
        `Quick
        (test_scenario_differential name))
    (Scenario.names ())

let suite =
  [
    Alcotest.test_case "registration keys" `Quick test_keys_of_rule;
    Alcotest.test_case "posting lists and maintenance" `Quick
      test_matching_posting_lists;
    qtest prop_sound_complete;
    Alcotest.test_case "composite netting matches oracle" `Quick
      test_netting_matches_oracle;
    Alcotest.test_case "acting rule state resets" `Quick
      test_acting_rule_resets;
    Alcotest.test_case "cascade wake-up matches oracle" `Quick
      test_cascade_wakeup_matches_oracle;
    Alcotest.test_case "ddl generation rebuild" `Quick
      test_ddl_generation_rebuild;
    Alcotest.test_case "deactivate unregisters, activate restores" `Quick
      test_deactivate_reactivate_index;
    Alcotest.test_case "skip counters" `Quick test_stats_counters;
    Alcotest.test_case "explain rule index keys" `Quick
      test_explain_rule_keys;
    Alcotest.test_case "drop/recreate resets consideration recency" `Quick
      test_drop_recreate_fair_selection;
    Alcotest.test_case "rule creation is a structural prepend" `Quick
      test_create_rule_structural_append;
  ]
  @ differential_cases ()

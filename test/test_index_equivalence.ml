(* The differential harness for the secondary-index subsystem.

   Index probes are an optimization of a formally specified semantics
   (paper Section 4, Figure 1), so the optimized path must be proven
   equivalent to the scan path.  The tests here come in two layers:

   - unit tests for index maintenance, snapshot consistency (probes
     against retained pre-transition states must see those states),
     the CREATE INDEX / DROP INDEX statements and their errors, and
     the probe-equals-filtered-scan contract;

   - a differential property: randomized transaction sequences — op
     blocks with equality/IN/IN-subquery predicates driving a rule set
     that inserts, deletes, updates and rolls back — executed twice,
     once on a system with indexes and predicate pushdown and once on
     an index-free system with pushdown disabled, asserting identical
     outcomes, select results, rule-firing traces and final states.

   Handles are process-global and the two systems interleave their
   allocation, so comparisons are value-based (rows, names, sizes) —
   trace events are already handle-free by construction. *)

open Core
open Helpers

(* ------------------------------------------------------------------ *)
(* Unit tests: maintenance and snapshot consistency                    *)

let two_col_schema name a b =
  Schema.table name [ Schema.column a Schema.T_int; Schema.column b Schema.T_int ]

let test_maintenance () =
  let db = Database.create_table Database.empty (two_col_schema "t" "a" "b") in
  let db = Database.create_index db ~ix_name:"t_a" ~table:"t" ~column:"a" in
  let db, h1 = Database.insert db "t" [| vi 1; vi 10 |] in
  let db, h2 = Database.insert db "t" [| vi 1; vi 20 |] in
  let db, h3 = Database.insert db "t" [| vi 2; vi 30 |] in
  let db, _h4 = Database.insert db "t" [| vnull; vi 40 |] in
  let probe db v =
    match Database.probe db ~table:"t" ~column:"a" [ v ] with
    | Some pairs -> List.map fst pairs
    | None -> Alcotest.fail "expected a usable index"
  in
  Alcotest.(check int) "two rows with a=1" 2 (List.length (probe db (vi 1)));
  Alcotest.(check bool) "handle order" true (probe db (vi 1) = [ h1; h2 ]);
  Alcotest.(check int) "null never indexed" 0 (List.length (probe db vnull));
  (* delete unindexes *)
  let db = Database.delete db h1 in
  Alcotest.(check bool) "after delete" true (probe db (vi 1) = [ h2 ]);
  (* update moves the entry to the new key *)
  let db = Database.update db h3 [| vi 1; vi 30 |] in
  Alcotest.(check bool) "after update" true (probe db (vi 1) = [ h2; h3 ]);
  Alcotest.(check int) "old key vacated" 0 (List.length (probe db (vi 2)));
  (* numeric cross-kind probe agrees with SQL equality *)
  Alcotest.(check int) "float probe hits int key" 2
    (List.length (probe db (vf 1.0)))

let test_snapshot_consistency () =
  (* a retained pre-transition state must answer probes with its own
     rows, not the current ones — this is what rollback and transition
     tables rely on *)
  let db = Database.create_table Database.empty (two_col_schema "t" "a" "b") in
  let db = Database.create_index db ~ix_name:"t_a" ~table:"t" ~column:"a" in
  let db, h1 = Database.insert db "t" [| vi 5; vi 0 |] in
  let snapshot = db in
  let db, _ = Database.insert db "t" [| vi 5; vi 1 |] in
  let db = Database.update db h1 [| vi 6; vi 0 |] in
  let count st v =
    match Database.probe st ~table:"t" ~column:"a" [ vi v ] with
    | Some pairs -> List.length pairs
    | None -> Alcotest.fail "expected a usable index"
  in
  Alcotest.(check int) "snapshot still sees a=5 once" 1 (count snapshot 5);
  Alcotest.(check int) "snapshot sees no a=6" 0 (count snapshot 6);
  Alcotest.(check int) "current sees one a=5" 1 (count db 5);
  Alcotest.(check int) "current sees one a=6" 1 (count db 6)

let test_probe_incompatible_type () =
  let db = Database.create_table Database.empty (two_col_schema "t" "a" "b") in
  let db = Database.create_index db ~ix_name:"t_a" ~table:"t" ~column:"a" in
  let db, _ = Database.insert db "t" [| vi 1; vi 2 |] in
  (* a string probe against an int column must refuse (None), so the
     scan path gets to raise its type error *)
  Alcotest.(check bool) "string probe refused" true
    (Database.probe db ~table:"t" ~column:"a" [ vs "x" ] = None);
  Alcotest.(check bool) "no index on b" true
    (Database.probe db ~table:"t" ~column:"b" [ vi 2 ] = None)

let test_ddl_statements () =
  let s = system "create table emp (name string, dno int)" in
  run s "create index emp_dno on emp (dno)";
  run s "insert into emp values ('a', 1); insert into emp values ('b', 2)";
  Alcotest.(check (list string))
    "probe answers the query" [ "a" ]
    (string_list_cells s "select name from emp where dno = 1");
  (* duplicate name is rejected database-wide *)
  expect_error (fun () -> run s "create index emp_dno on emp (name)");
  (* unknown column and unknown table *)
  expect_error (fun () -> run s "create index emp_x on emp (nope)");
  expect_error (fun () -> run s "create index emp_x on nosuch (dno)");
  (* multi-column index lists are a parse error *)
  expect_error (fun () -> run s "create index emp_nd on emp (name, dno)");
  run s "drop index emp_dno";
  expect_error (fun () -> run s "drop index emp_dno");
  Alcotest.(check (list string))
    "scan answers after drop" [ "a" ]
    (string_list_cells s "select name from emp where dno = 1")

let test_ddl_rejected_in_transaction () =
  let s = system "create table t (a int, b int)" in
  run s "begin";
  expect_error (fun () -> run s "create index t_a on t (a)");
  run s "rollback"

let test_stats_count_probes () =
  let s = system "create table t (a int, b int)" in
  run s "create index t_a on t (a)";
  run s "insert into t values (1, 1); insert into t values (2, 2)";
  let st = Engine.stats (System.engine s) in
  let probes0 = st.Engine.index_probes and scans0 = st.Engine.seq_scans in
  ignore (rows s "select b from t where a = 1");
  Alcotest.(check int) "one probe" (probes0 + 1) st.Engine.index_probes;
  ignore (rows s "select b from t where b = 1");
  Alcotest.(check int) "unindexed column scans" (scans0 + 1) st.Engine.seq_scans

let test_probe_equals_filtered_scan () =
  (* concrete spot check of the planner contract: identical rows in
     identical order, whatever the predicate shape *)
  let setup indexed =
    let s = system "create table t (a int, b int)" in
    if indexed then run s "create index t_a on t (a)";
    run s
      "insert into t values (1, 10); insert into t values (2, 20); insert \
       into t values (1, 30); insert into t values (3, 40); insert into t \
       values (null, 50)";
    s
  in
  let queries =
    [
      "select b from t where a = 1";
      "select b from t where 1 = a";
      "select b from t where a in (1, 3)";
      "select b from t where a in (1, null)";
      "select b from t where a = null";
      "select b from t where a = 1 and b > 15";
      "select b from t where a in (select a from t where b = 40)";
      "select t1.b, t2.b from t t1, t t2 where t1.a = 2 and t2.a = t1.a";
    ]
  in
  let s_ix = setup true and s_plain = setup false in
  List.iter
    (fun q ->
      Alcotest.check rows_testable q (rows s_plain q) (rows s_ix q))
    queries

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)

(* Total index probes observed across all property executions; a
   follow-up test asserts the optimized side actually probed, so the
   property cannot pass vacuously. *)
let probes_seen = ref 0

let schema_sql =
  "create table t (a int, b int);\n\
   create table u (a int, c int)"

(* A terminating rule set exercising every trigger kind and action
   shape.  Rules triggered by t act only on u; the one u-triggered
   rule quiesces by making its own condition false; r5 rolls the
   transaction back when updates push b past 100. *)
let rules_sql =
  [
    "create rule r1 when inserted into t if exists (select * from inserted t \
     where a = 3) then insert into u values (3, 0)";
    "create rule r2 when deleted from t then delete from u where a in \
     (select a from deleted t)";
    "create rule r3 when updated t.a if (select count(*) from new updated \
     t.a where a = 5) > 0 then update u set c = c + 1 where a = 5";
    "create rule r4 when inserted into u or deleted from u or updated u.c \
     if (select count(*) from u where a = 99) > 3 then delete from u where \
     a = 99";
    "create rule r5 when updated t.b if (select count(*) from new updated \
     t.b where b > 100) > 0 then rollback";
  ]

let gen_small st = QCheck.Gen.int_bound 12 st

let gen_term st =
  let open QCheck.Gen in
  if int_bound 9 st = 0 then "null" else string_of_int (gen_small st)

(* One operation as SQL.  Predicates are deliberately heavy on the
   sargable shapes the planner recognizes — equality, IN lists, IN
   subqueries — over both indexed (a) and unindexed (b, c) columns,
   and updates rewrite the indexed column itself. *)
let gen_op st =
  let open QCheck.Gen in
  match int_bound 11 st with
  | 0 | 1 ->
    Printf.sprintf "insert into t values (%s, %s)" (gen_term st) (gen_term st)
  | 2 | 3 ->
    Printf.sprintf "insert into u values (%s, %s)" (gen_term st) (gen_term st)
  | 4 -> Printf.sprintf "delete from t where a = %s" (gen_term st)
  | 5 ->
    Printf.sprintf "delete from u where a in (%d, %d)" (gen_small st)
      (gen_small st)
  | 6 ->
    Printf.sprintf "update t set b = b + 1 where a = %d" (gen_small st)
  | 7 ->
    (* rewrite the indexed column *)
    Printf.sprintf "update t set a = %d where a = %d" (gen_small st)
      (gen_small st)
  | 8 ->
    Printf.sprintf
      "update u set c = c + 1 where a in (select a from t where b = %d)"
      (gen_small st)
  | 9 -> Printf.sprintf "select a, b from t where a = %s" (gen_term st)
  | 10 ->
    (* occasionally large enough to trip the rollback rule r5 *)
    Printf.sprintf "update t set b = %d where a = %d"
      (if int_bound 3 st = 0 then 200 else gen_small st)
      (gen_small st)
  | _ ->
    Printf.sprintf "insert into u values (99, %d); insert into u values \
                    (99, %d)" (gen_small st) (gen_small st)

let gen_block st =
  let open QCheck.Gen in
  let n = 1 + int_bound 3 st in
  String.concat "; " (List.init n (fun _ -> gen_op st))

let gen_txns st =
  let open QCheck.Gen in
  let n = 3 + int_bound 5 st in
  List.init n (fun _ -> gen_block st)

let arb_txns =
  QCheck.make ~print:(fun blocks -> String.concat ";\n-- block --\n" blocks)
    gen_txns

let config = { Engine.default_config with max_steps = 300 }

let make_system ~indexed =
  let s = system ~config schema_sql in
  if indexed then begin
    run s "create index t_a on t (a)";
    run s "create index u_a on u (a)"
  end;
  List.iter (run s) rules_sql;
  Engine.set_tracing (System.engine s) true;
  s

let with_pushdown flag f =
  let saved = !Eval.predicate_pushdown in
  Eval.predicate_pushdown := flag;
  Fun.protect ~finally:(fun () -> Eval.predicate_pushdown := saved) f

(* Execute one block and normalize everything observable about it:
   outcome or error string, and the produced select results. *)
let run_block s sql =
  match System.exec_block s sql with
  | outcome, rels ->
    Ok
      ( outcome,
        List.map (fun r -> (Array.to_list r.Eval.cols, r.Eval.rows)) rels )
  | exception Errors.Error e -> Error (Errors.to_string e)

let check_same_relation label (cols_a, rows_a) (cols_b, rows_b) =
  Alcotest.(check (list string)) (label ^ " cols") cols_a cols_b;
  Alcotest.check rows_testable (label ^ " rows") rows_a rows_b

let check_same_result label a b =
  match a, b with
  | Error ea, Error eb -> Alcotest.(check string) (label ^ " error") ea eb
  | Ok (oa, ra), Ok (ob, rb) ->
    Alcotest.(check bool)
      (label ^ " outcome") true
      (oa = ob && List.length ra = List.length rb);
    List.iter2 (fun x y -> check_same_relation label x y) ra rb
  | _ ->
    Alcotest.failf "%s: one side errored and the other did not" label

let prop_index_equivalence =
  QCheck.Test.make
    ~name:"indexes on = indexes off (states, traces, results)" ~count:80
    arb_txns
    (fun blocks ->
      let s_ix = make_system ~indexed:true in
      let s_plain = make_system ~indexed:false in
      List.iter
        (fun block ->
          let r_ix = with_pushdown true (fun () -> run_block s_ix block) in
          let r_plain =
            with_pushdown false (fun () -> run_block s_plain block)
          in
          check_same_result "block" r_ix r_plain;
          (* the trace of each transaction must match event for event;
             events carry only rule names, sizes and booleans, so
             structural equality is handle-free *)
          let tr_ix = Engine.trace (System.engine s_ix) in
          let tr_plain = Engine.trace (System.engine s_plain) in
          Alcotest.(check bool) "identical traces" true (tr_ix = tr_plain))
        blocks;
      (* final states: same rows in the same order, table by table *)
      List.iter
        (fun tbl ->
          let final s = Table.rows (Database.table (System.database s) tbl) in
          Alcotest.check rows_testable
            (Printf.sprintf "final state of %s" tbl)
            (final s_plain) (final s_ix))
        [ "t"; "u" ];
      let st_ix = Engine.stats (System.engine s_ix) in
      let st_plain = Engine.stats (System.engine s_plain) in
      Alcotest.(check int)
        "same rule firings" st_plain.Engine.rule_firings
        st_ix.Engine.rule_firings;
      probes_seen := !probes_seen + st_ix.Engine.index_probes;
      true)

(* Runs after the property (Alcotest executes a suite in order): the
   equivalence above is meaningless if the optimized side never took
   the probe path. *)
let test_probes_actually_happened () =
  Alcotest.(check bool)
    (Printf.sprintf "probes were exercised (%d seen)" !probes_seen)
    true (!probes_seen > 0)

let suite =
  [
    Alcotest.test_case "index maintenance" `Quick test_maintenance;
    Alcotest.test_case "snapshot consistency" `Quick test_snapshot_consistency;
    Alcotest.test_case "incompatible probes refused" `Quick
      test_probe_incompatible_type;
    Alcotest.test_case "create/drop index statements" `Quick test_ddl_statements;
    Alcotest.test_case "index DDL rejected in transaction" `Quick
      test_ddl_rejected_in_transaction;
    Alcotest.test_case "stats count probes and scans" `Quick
      test_stats_count_probes;
    Alcotest.test_case "probe = filtered scan" `Quick
      test_probe_equals_filtered_scan;
    qtest prop_index_equivalence;
    Alcotest.test_case "differential run exercised probes" `Quick
      test_probes_actually_happened;
  ]

(* The differential harness for the secondary-index subsystem.

   Index probes are an optimization of a formally specified semantics
   (paper Section 4, Figure 1), so the optimized path must be proven
   equivalent to the scan path.  The tests here come in two layers:

   - unit tests for index maintenance, snapshot consistency (probes
     against retained pre-transition states must see those states),
     the CREATE INDEX / DROP INDEX statements and their errors, and
     the probe-equals-filtered-scan contract;

   - a differential property: randomized transaction sequences — op
     blocks with equality/IN/IN-subquery predicates driving a rule set
     that inserts, deletes, updates and rolls back — executed twice,
     once on a system with indexes and predicate pushdown and once on
     an index-free system with pushdown disabled, asserting identical
     outcomes, select results, rule-firing traces and final states.

   Handles are process-global and the two systems interleave their
   allocation, so comparisons are value-based (rows, names, sizes) —
   trace events are already handle-free by construction. *)

open Core
open Helpers

(* ------------------------------------------------------------------ *)
(* Unit tests: maintenance and snapshot consistency                    *)

let two_col_schema name a b =
  Schema.table name [ Schema.column a Schema.T_int; Schema.column b Schema.T_int ]

let test_maintenance () =
  let db = Database.create_table Database.empty (two_col_schema "t" "a" "b") in
  let db =
    Database.create_index db ~ix_name:"t_a" ~table:"t" ~column:"a" ~kind:`Hash
  in
  let db, h1 = Database.insert db "t" [| vi 1; vi 10 |] in
  let db, h2 = Database.insert db "t" [| vi 1; vi 20 |] in
  let db, h3 = Database.insert db "t" [| vi 2; vi 30 |] in
  let db, _h4 = Database.insert db "t" [| vnull; vi 40 |] in
  let probe db v =
    match Database.probe db ~table:"t" ~column:"a" [ v ] with
    | Some pairs -> List.map fst pairs
    | None -> Alcotest.fail "expected a usable index"
  in
  Alcotest.(check int) "two rows with a=1" 2 (List.length (probe db (vi 1)));
  Alcotest.(check bool) "handle order" true (probe db (vi 1) = [ h1; h2 ]);
  Alcotest.(check int) "null never indexed" 0 (List.length (probe db vnull));
  (* delete unindexes *)
  let db = Database.delete db h1 in
  Alcotest.(check bool) "after delete" true (probe db (vi 1) = [ h2 ]);
  (* update moves the entry to the new key *)
  let db = Database.update db h3 [| vi 1; vi 30 |] in
  Alcotest.(check bool) "after update" true (probe db (vi 1) = [ h2; h3 ]);
  Alcotest.(check int) "old key vacated" 0 (List.length (probe db (vi 2)));
  (* numeric cross-kind probe agrees with SQL equality *)
  Alcotest.(check int) "float probe hits int key" 2
    (List.length (probe db (vf 1.0)))

let test_ordered_range_maintenance () =
  let db = Database.create_table Database.empty (two_col_schema "t" "a" "b") in
  let db =
    Database.create_index db ~ix_name:"t_a" ~table:"t" ~column:"a"
      ~kind:`Ordered
  in
  let db, h1 = Database.insert db "t" [| vi 1; vi 10 |] in
  let db, h2 = Database.insert db "t" [| vi 3; vi 20 |] in
  let db, h3 = Database.insert db "t" [| vi 5; vi 30 |] in
  let db, _ = Database.insert db "t" [| vnull; vi 40 |] in
  let range db ~lower ~upper =
    match Database.range_probe db ~table:"t" ~column:"a" ~lower ~upper with
    | Some pairs -> List.map fst pairs
    | None -> Alcotest.fail "expected an ordered index"
  in
  let check msg expected got =
    Alcotest.(check bool) msg true (got = expected)
  in
  check "a >= 1 in handle order" [ h1; h2; h3 ]
    (range db ~lower:(Some (vi 1, true)) ~upper:None);
  check "a > 1 excludes the bound" [ h2; h3 ]
    (range db ~lower:(Some (vi 1, false)) ~upper:None);
  check "a <= 3" [ h1; h2 ]
    (range db ~lower:None ~upper:(Some (vi 3, true)));
  check "a < 3" [ h1 ] (range db ~lower:None ~upper:(Some (vi 3, false)));
  check "2 <= a <= 5" [ h2; h3 ]
    (range db ~lower:(Some (vi 2, true)) ~upper:(Some (vi 5, true)));
  check "unbounded = all non-null keys" [ h1; h2; h3 ]
    (range db ~lower:None ~upper:None);
  (* NULL keys are never indexed and NULL bounds select nothing *)
  check "null bound selects nothing" []
    (range db ~lower:(Some (vnull, true)) ~upper:None);
  (* cross-kind numeric bounds agree with SQL comparison semantics *)
  check "float bound over int keys" [ h2; h3 ]
    (range db ~lower:(Some (vf 2.5, false)) ~upper:None);
  (* a type-incompatible bound refuses, so the scan raises the error *)
  Alcotest.(check bool) "string bound refused" true
    (Database.range_probe db ~table:"t" ~column:"a"
       ~lower:(Some (vs "x", true))
       ~upper:None
    = None);
  (* equality probes still work over the ordered representation *)
  (match Database.probe db ~table:"t" ~column:"a" [ vi 3 ] with
  | Some pairs -> check "equality probe" [ h2 ] (List.map fst pairs)
  | None -> Alcotest.fail "expected a usable index");
  (* a hash index over the other column answers no range probes *)
  let db =
    Database.create_index db ~ix_name:"t_b" ~table:"t" ~column:"b" ~kind:`Hash
  in
  Alcotest.(check bool) "hash index has no range capability" true
    (Database.range_probe db ~table:"t" ~column:"b"
       ~lower:(Some (vi 0, true))
       ~upper:None
    = None);
  (* maintenance: delete and update keep the ordered index current *)
  let db = Database.delete db h2 in
  let db = Database.update db h3 [| vi 2; vi 30 |] in
  check "after delete and update" [ h1; h3 ]
    (range db ~lower:(Some (vi 0, true)) ~upper:None)

let test_like_prefix_bounds () =
  Alcotest.(check bool) "plain prefix" true
    (Index.like_prefix "ab%" = Some ("ab", Some "ac"));
  Alcotest.(check bool) "underscore also ends the prefix" true
    (Index.like_prefix "ab_c" = Some ("ab", Some "ac"));
  Alcotest.(check bool) "no wildcard: exact-match range" true
    (Index.like_prefix "ab" = Some ("ab", Some "ac"));
  Alcotest.(check bool) "no literal prefix" true (Index.like_prefix "%x" = None);
  Alcotest.(check bool) "empty pattern" true (Index.like_prefix "" = None);
  (* 0xff bytes cannot be incremented: the range is open above *)
  Alcotest.(check bool) "all-0xff prefix is open above" true
    (Index.like_prefix "\xff\xff%" = Some ("\xff\xff", None));
  Alcotest.(check bool) "trailing 0xff increments the earlier byte" true
    (Index.like_prefix "a\xff%" = Some ("a\xff", Some "b"))

let test_snapshot_consistency () =
  (* a retained pre-transition state must answer probes with its own
     rows, not the current ones — this is what rollback and transition
     tables rely on *)
  let db = Database.create_table Database.empty (two_col_schema "t" "a" "b") in
  let db =
    Database.create_index db ~ix_name:"t_a" ~table:"t" ~column:"a" ~kind:`Hash
  in
  let db, h1 = Database.insert db "t" [| vi 5; vi 0 |] in
  let snapshot = db in
  let db, _ = Database.insert db "t" [| vi 5; vi 1 |] in
  let db = Database.update db h1 [| vi 6; vi 0 |] in
  let count st v =
    match Database.probe st ~table:"t" ~column:"a" [ vi v ] with
    | Some pairs -> List.length pairs
    | None -> Alcotest.fail "expected a usable index"
  in
  Alcotest.(check int) "snapshot still sees a=5 once" 1 (count snapshot 5);
  Alcotest.(check int) "snapshot sees no a=6" 0 (count snapshot 6);
  Alcotest.(check int) "current sees one a=5" 1 (count db 5);
  Alcotest.(check int) "current sees one a=6" 1 (count db 6)

let test_probe_incompatible_type () =
  let db = Database.create_table Database.empty (two_col_schema "t" "a" "b") in
  let db =
    Database.create_index db ~ix_name:"t_a" ~table:"t" ~column:"a" ~kind:`Hash
  in
  let db, _ = Database.insert db "t" [| vi 1; vi 2 |] in
  (* a string probe against an int column must refuse (None), so the
     scan path gets to raise its type error *)
  Alcotest.(check bool) "string probe refused" true
    (Database.probe db ~table:"t" ~column:"a" [ vs "x" ] = None);
  Alcotest.(check bool) "no index on b" true
    (Database.probe db ~table:"t" ~column:"b" [ vi 2 ] = None)

let test_ddl_statements () =
  let s = system "create table emp (name string, dno int)" in
  run s "create index emp_dno on emp (dno)";
  run s "insert into emp values ('a', 1); insert into emp values ('b', 2)";
  Alcotest.(check (list string))
    "probe answers the query" [ "a" ]
    (string_list_cells s "select name from emp where dno = 1");
  (* duplicate name is rejected database-wide *)
  expect_error (fun () -> run s "create index emp_dno on emp (name)");
  (* unknown column and unknown table *)
  expect_error (fun () -> run s "create index emp_x on emp (nope)");
  expect_error (fun () -> run s "create index emp_x on nosuch (dno)");
  (* multi-column index lists are a parse error *)
  expect_error (fun () -> run s "create index emp_nd on emp (name, dno)");
  run s "drop index emp_dno";
  expect_error (fun () -> run s "drop index emp_dno");
  Alcotest.(check (list string))
    "scan answers after drop" [ "a" ]
    (string_list_cells s "select name from emp where dno = 1")

let test_ddl_rejected_in_transaction () =
  let s = system "create table t (a int, b int)" in
  run s "begin";
  expect_error (fun () -> run s "create index t_a on t (a)");
  run s "rollback"

let test_stats_count_probes () =
  let s = system "create table t (a int, b int)" in
  run s "create index t_a on t (a)";
  run s "insert into t values (1, 1); insert into t values (2, 2)";
  let st = Engine.stats (System.engine s) in
  let probes0 = st.Engine.index_probes and scans0 = st.Engine.seq_scans in
  ignore (rows s "select b from t where a = 1");
  Alcotest.(check int) "one probe" (probes0 + 1) st.Engine.index_probes;
  ignore (rows s "select b from t where b = 1");
  Alcotest.(check int) "unindexed column scans" (scans0 + 1) st.Engine.seq_scans

let test_probe_equals_filtered_scan () =
  (* concrete spot check of the planner contract: identical rows in
     identical order, whatever the predicate shape *)
  let setup indexed =
    let s =
      system "create table t (a int, b int);\ncreate table sv (name string, v int)"
    in
    if indexed then begin
      run s "create index t_a on t (a)";
      run s "create index t_b on t (b) using ordered";
      run s "create index sv_name on sv (name) using ordered"
    end;
    run s
      "insert into t values (1, 10); insert into t values (2, 20); insert \
       into t values (1, 30); insert into t values (3, 40); insert into t \
       values (null, 50)";
    run s
      "insert into sv values ('ada', 1); insert into sv values ('adb', 2); \
       insert into sv values ('bob', 3); insert into sv values (null, 4)";
    s
  in
  let queries =
    [
      "select b from t where a = 1";
      "select b from t where 1 = a";
      "select b from t where a in (1, 3)";
      "select b from t where a in (1, null)";
      "select b from t where a = null";
      "select b from t where a = 1 and b > 15";
      "select b from t where a in (select a from t where b = 40)";
      "select t1.b, t2.b from t t1, t t2 where t1.a = 2 and t2.a = t1.a";
      (* range shapes over the ordered index, including NULL rows and
         NULL bounds *)
      "select a from t where b > 15";
      "select a from t where b >= 30";
      "select a from t where 30 > b";
      "select a from t where b <= 20";
      "select a from t where b < null";
      "select a from t where b between 15 and 45";
      "select a from t where b between 45 and 15";
      "select a from t where b > 15 and a = 1";
      "select a from t where b > (select 10 + 10)";
      (* prefix LIKE over an ordered string index *)
      "select v from sv where name like 'ad%'";
      "select v from sv where name like 'ad_'";
      "select v from sv where name like '%b'";
      "select v from sv where name like 'bob'";
      "select v from sv where name like null";
    ]
  in
  let s_ix = setup true and s_plain = setup false in
  List.iter
    (fun q ->
      Alcotest.check rows_testable q (rows s_plain q) (rows s_ix q))
    queries

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)

(* Total index/range probes observed across all property executions;
   follow-up tests assert the optimized side actually probed, so the
   property cannot pass vacuously. *)
let probes_seen = ref 0
let ranges_seen = ref 0

let schema_sql =
  "create table t (a int, b int);\n\
   create table u (a int, c int)"

(* A terminating rule set exercising every trigger kind and action
   shape.  Rules triggered by t act only on u; the one u-triggered
   rule quiesces by making its own condition false; r5 rolls the
   transaction back when updates push b past 100. *)
let rules_sql =
  [
    "create rule r1 when inserted into t if exists (select * from inserted t \
     where a = 3) then insert into u values (3, 0)";
    "create rule r2 when deleted from t then delete from u where a in \
     (select a from deleted t)";
    "create rule r3 when updated t.a if (select count(*) from new updated \
     t.a where a = 5) > 0 then update u set c = c + 1 where a = 5";
    "create rule r4 when inserted into u or deleted from u or updated u.c \
     if (select count(*) from u where a = 99) > 3 then delete from u where \
     a = 99";
    "create rule r5 when updated t.b if (select count(*) from new updated \
     t.b where b > 100) > 0 then rollback";
  ]

let gen_small st = QCheck.Gen.int_bound 12 st

let gen_term st =
  let open QCheck.Gen in
  if int_bound 9 st = 0 then "null" else string_of_int (gen_small st)

(* One operation as SQL.  Predicates are deliberately heavy on the
   sargable shapes the planner recognizes — equality, IN lists, IN
   subqueries, range comparisons and BETWEEN — over indexed columns
   (hash on a, ordered on b) and unindexed ones (c), and updates
   rewrite the indexed columns themselves. *)
let gen_op st =
  let open QCheck.Gen in
  match int_bound 14 st with
  | 0 | 1 ->
    Printf.sprintf "insert into t values (%s, %s)" (gen_term st) (gen_term st)
  | 2 | 3 ->
    Printf.sprintf "insert into u values (%s, %s)" (gen_term st) (gen_term st)
  | 4 -> Printf.sprintf "delete from t where a = %s" (gen_term st)
  | 5 ->
    Printf.sprintf "delete from u where a in (%d, %d)" (gen_small st)
      (gen_small st)
  | 6 ->
    Printf.sprintf "update t set b = b + 1 where a = %d" (gen_small st)
  | 7 ->
    (* rewrite the indexed column *)
    Printf.sprintf "update t set a = %d where a = %d" (gen_small st)
      (gen_small st)
  | 8 ->
    Printf.sprintf
      "update u set c = c + 1 where a in (select a from t where b = %d)"
      (gen_small st)
  | 9 -> Printf.sprintf "select a, b from t where a = %s" (gen_term st)
  | 10 ->
    (* occasionally large enough to trip the rollback rule r5 *)
    Printf.sprintf "update t set b = %d where a = %d"
      (if int_bound 3 st = 0 then 200 else gen_small st)
      (gen_small st)
  | 11 -> Printf.sprintf "select a, b from t where b < %s" (gen_term st)
  | 12 ->
    Printf.sprintf "select a, b from t where b between %d and %d"
      (gen_small st) (gen_small st)
  | 13 ->
    (* a range over the ordered column combined with an equality over
       the hash column: the cost model must pick one, the oracle the
       other shape *)
    Printf.sprintf "delete from t where b >= %d and a = %d" (gen_small st)
      (gen_small st)
  | _ ->
    Printf.sprintf "insert into u values (99, %d); insert into u values \
                    (99, %d)" (gen_small st) (gen_small st)

let gen_block st =
  let open QCheck.Gen in
  let n = 1 + int_bound 3 st in
  String.concat "; " (List.init n (fun _ -> gen_op st))

let gen_txns st =
  let open QCheck.Gen in
  let n = 3 + int_bound 5 st in
  List.init n (fun _ -> gen_block st)

let arb_txns =
  QCheck.make ~print:(fun blocks -> String.concat ";\n-- block --\n" blocks)
    gen_txns

let config = { Engine.default_config with max_steps = 300 }

let make_system ~indexed =
  let s = system ~config schema_sql in
  if indexed then begin
    run s "create index t_a on t (a)";
    run s "create index t_b on t (b) using ordered";
    run s "create index u_a on u (a)"
  end;
  List.iter (run s) rules_sql;
  Engine.set_tracing (System.engine s) true;
  s

let with_planner ~pushdown ~cost f =
  let saved_p = !Eval.predicate_pushdown and saved_c = !Eval.cost_model in
  Eval.predicate_pushdown := pushdown;
  Eval.cost_model := cost;
  Fun.protect
    ~finally:(fun () ->
      Eval.predicate_pushdown := saved_p;
      Eval.cost_model := saved_c)
    f

(* Execute one block and normalize everything observable about it:
   outcome or error string, and the produced select results. *)
let run_block s sql =
  match System.exec_block s sql with
  | outcome, rels ->
    Ok
      ( outcome,
        List.map (fun r -> (Array.to_list r.Eval.cols, r.Eval.rows)) rels )
  | exception Errors.Error e -> Error (Errors.to_string e)

let check_same_relation label (cols_a, rows_a) (cols_b, rows_b) =
  Alcotest.(check (list string)) (label ^ " cols") cols_a cols_b;
  Alcotest.check rows_testable (label ^ " rows") rows_a rows_b

let check_same_result label a b =
  match a, b with
  | Error ea, Error eb -> Alcotest.(check string) (label ^ " error") ea eb
  | Ok (oa, ra), Ok (ob, rb) ->
    Alcotest.(check bool)
      (label ^ " outcome") true
      (oa = ob && List.length ra = List.length rb);
    List.iter2 (fun x y -> check_same_relation label x y) ra rb
  | _ ->
    Alcotest.failf "%s: one side errored and the other did not" label

(* The optimized side runs with pushdown on and the cost model either
   on (ranking over equality/range/prefix shapes) or off (the
   historical first-equality-match planner, the oracle the acceptance
   criteria call for); the plain side always scans. *)
let prop_index_equivalence ~cost =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "indexes on = indexes off (cost model %s)"
         (if cost then "on" else "off"))
    ~count:80 arb_txns
    (fun blocks ->
      let s_ix = make_system ~indexed:true in
      let s_plain = make_system ~indexed:false in
      List.iter
        (fun block ->
          let r_ix =
            with_planner ~pushdown:true ~cost (fun () -> run_block s_ix block)
          in
          let r_plain =
            with_planner ~pushdown:false ~cost:true (fun () ->
                run_block s_plain block)
          in
          check_same_result "block" r_ix r_plain;
          (* the trace of each transaction must match event for event;
             events carry only rule names, sizes and booleans, so
             structural equality is handle-free *)
          let tr_ix = Engine.trace (System.engine s_ix) in
          let tr_plain = Engine.trace (System.engine s_plain) in
          Alcotest.(check bool) "identical traces" true (tr_ix = tr_plain))
        blocks;
      (* final states: same rows in the same order, table by table *)
      List.iter
        (fun tbl ->
          let final s = Table.rows (Database.table (System.database s) tbl) in
          Alcotest.check rows_testable
            (Printf.sprintf "final state of %s" tbl)
            (final s_plain) (final s_ix))
        [ "t"; "u" ];
      let st_ix = Engine.stats (System.engine s_ix) in
      let st_plain = Engine.stats (System.engine s_plain) in
      Alcotest.(check int)
        "same rule firings" st_plain.Engine.rule_firings
        st_ix.Engine.rule_firings;
      probes_seen := !probes_seen + st_ix.Engine.index_probes;
      ranges_seen := !ranges_seen + st_ix.Engine.range_probes;
      true)

(* Runs after the properties (Alcotest executes a suite in order): the
   equivalence above is meaningless if the optimized side never took
   the probe paths. *)
let test_probes_actually_happened () =
  Alcotest.(check bool)
    (Printf.sprintf "probes were exercised (%d seen)" !probes_seen)
    true (!probes_seen > 0);
  Alcotest.(check bool)
    (Printf.sprintf "range probes were exercised (%d seen)" !ranges_seen)
    true (!ranges_seen > 0)

let suite =
  [
    Alcotest.test_case "index maintenance" `Quick test_maintenance;
    Alcotest.test_case "ordered range maintenance" `Quick
      test_ordered_range_maintenance;
    Alcotest.test_case "like prefix bounds" `Quick test_like_prefix_bounds;
    Alcotest.test_case "snapshot consistency" `Quick test_snapshot_consistency;
    Alcotest.test_case "incompatible probes refused" `Quick
      test_probe_incompatible_type;
    Alcotest.test_case "create/drop index statements" `Quick test_ddl_statements;
    Alcotest.test_case "index DDL rejected in transaction" `Quick
      test_ddl_rejected_in_transaction;
    Alcotest.test_case "stats count probes and scans" `Quick
      test_stats_count_probes;
    Alcotest.test_case "probe = filtered scan" `Quick
      test_probe_equals_filtered_scan;
    qtest (prop_index_equivalence ~cost:true);
    qtest (prop_index_equivalence ~cost:false);
    Alcotest.test_case "differential run exercised probes" `Quick
      test_probes_actually_happened;
  ]

(* Test runner aggregating all suites. *)

let () =
  Alcotest.run "sopr"
    [
      ("value", Test_value.suite);
      ("schema-storage", Test_schema.suite);
      ("effect", Test_effect.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("eval", Test_eval.suite);
      ("dml", Test_dml.suite);
      ("trans-info", Test_trans_info.suite);
      ("transition-tables", Test_transition_tables.suite);
      ("engine", Test_engine.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("instance-engine", Test_instance_engine.suite);
      ("analysis", Test_analysis.suite);
      ("constraints", Test_constraints.suite);
      ("system", Test_system.suite);
      ("sql-edge-cases", Test_sql_edge_cases.suite);
      ("functions", Test_functions.suite);
      ("scripts", Test_scripts.suite);
      ("interplay", Test_interplay.suite);
      ("properties", Test_properties.suite);
      ("index-equivalence", Test_index_equivalence.suite);
      ("priority", Test_priority.suite);
      ("explain", Test_explain.suite);
      ("compile-diff", Test_compile_diff.suite);
      ("prepared", Test_prepared.suite);
      ("rule-index", Test_rule_index.suite);
    ("fault-injection", Test_fault_injection.suite);
      ("recovery", Test_recovery.suite);
      ("config-matrix", Test_config_matrix.suite);
      ("workload", Test_workload.suite);
      ("workload-faults", Test_workload_faults.suite);
      ("server", Test_server.suite);
    ]

(* The concurrent-session server: sessions, snapshot reads,
   first-committer-wins validation, group commit, and the socket
   front-end.

   Four families:
   - unit tests for the signal-safe write helper (EINTR storms) and the
     group-commit leader/follower protocol (batching, collective
     failure);
   - session semantics over an in-memory server: snapshot isolation,
     conflict detection, rules on session transactions, DDL fencing;
   - durability: batches as single WAL records, fsync/append failures
     failing every member with exact snapshot restore, and recovery;
   - the socket layer: dead clients, and the two concurrency harnesses
     (concurrent sessions ≡ serial replay; SIGKILL under group commit
     keeps every batch all-or-none). *)

open Core
module Server = Sopr_server.Server
module Client = Sopr_server.Client
module Fileio = Relational.Fileio
module Wal = Relational.Wal
module Fault = Relational.Fault
module Durable = Durability.Durable
module Recovery = Durability.Recovery
module Group_commit = Durability.Group_commit

(* ------------------------------------------------------------------ *)
(* Scratch directories (same contract as the recovery harness)         *)

let scratch_root = Filename.get_temp_dir_name ()

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_counter = ref 0

let in_dir label f =
  incr dir_counter;
  let d =
    Filename.concat scratch_root
      (Printf.sprintf "sopr-server-%d-%03d-%s" (Unix.getpid ()) !dir_counter
         label)
  in
  rm_rf d;
  mkdir_p d;
  match f d with
  | v ->
    rm_rf d;
    v
  | exception e ->
    Printf.eprintf "server harness: keeping failing data directory %s\n%!" d;
    raise e

(* Poll for an asynchronous condition (thread scheduling is not ours to
   command); fails the test after ~5s. *)
let eventually ?(timeout = 5.0) what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.002;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Session conveniences                                                 *)

let sx srv sess sql =
  match Server.exec_script srv sess sql with
  | Ok body -> body
  | Error e -> Alcotest.failf "unexpected error for %S: %s" sql e

let sx_err srv sess sql =
  match Server.exec_script srv sess sql with
  | Ok body -> Alcotest.failf "expected an error for %S, got: %s" sql body
  | Error e -> e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec probe i = i + m <= n && (String.sub s i m = sub || probe (i + 1)) in
  probe 0

(* Value-only canonical state: sorted row renderings per table, so it
   is comparable across systems whose handle orders differ (concurrent
   sessions interleave handle allocation; a serial replay does not). *)
let value_digest sys tables =
  String.concat "\n"
    (List.map
       (fun tbl ->
         let _cols, rows = System.query sys ("select * from " ^ tbl) in
         let rendered =
           List.sort compare
             (List.map
                (fun row ->
                  String.concat "|"
                    (Array.to_list (Array.map Value.to_string row)))
                rows)
         in
         tbl ^ ":" ^ String.concat ";" rendered)
       tables)

(* ------------------------------------------------------------------ *)
(* write_fully under an EINTR storm (the signal-safety regression)     *)

(* A pipe with a deliberately slow reader keeps the writer blocked in
   [write]; an interval timer then delivers SIGALRM every 2ms, so the
   blocked syscalls keep returning EINTR (OCaml installs handlers
   without SA_RESTART) and partial writes abound (the payload is far
   larger than the pipe buffer).  [write_fully] must deliver every byte
   anyway.  Before the EINTR retry existed, this test dies with
   [Unix_error (EINTR, "write", _)] out of the durability path's old
   bare [Unix.write] loop. *)
let test_write_fully_eintr () =
  let r, w = Unix.pipe () in
  let total = 4 * 1024 * 1024 in
  let payload = String.init total (fun i -> Char.chr ((i * 131) land 0xff)) in
  let received = Buffer.create total in
  let reader =
    Thread.create
      (fun () ->
        let buf = Bytes.create 8192 in
        let rec loop () =
          Thread.delay 0.0002;
          match Unix.read r buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        in
        loop ())
      ()
  in
  let ticks = ref 0 in
  let old_alrm =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr ticks))
  in
  let set_timer v =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = v; it_value = v })
  in
  Fun.protect
    ~finally:(fun () ->
      set_timer 0.;
      ignore (Sys.signal Sys.sigalrm old_alrm);
      (try Unix.close w with Unix.Unix_error _ -> ());
      (try Thread.join reader with _ -> ());
      try Unix.close r with Unix.Unix_error _ -> ())
    (fun () ->
      set_timer 0.002;
      Fileio.write_fully w payload;
      set_timer 0.;
      Unix.close w;
      Thread.join reader);
  Alcotest.(check int) "every byte arrived" total (Buffer.length received);
  Alcotest.(check bool) "bytes intact" true (Buffer.contents received = payload);
  Alcotest.(check bool) "the signal storm actually fired" true (!ticks > 0)

(* ------------------------------------------------------------------ *)
(* Group commit: leader/follower protocol                              *)

let gc_ops i = [ Wal.L_delete { table = "t"; id = i } ]

let test_group_batching () =
  let flushed = ref [] in
  let flock = Mutex.create () in
  let g =
    Group_commit.create ~flush:(fun txns ->
        Mutex.lock flock;
        flushed := txns :: !flushed;
        Mutex.unlock flock)
  in
  Group_commit.set_paused g true;
  let n = 6 in
  let threads =
    List.init n (fun i -> Thread.create (fun () -> Group_commit.submit g (gc_ops i)) ())
  in
  eventually "all submitters queued" (fun () -> Group_commit.pending g = n);
  Group_commit.set_paused g false;
  List.iter Thread.join threads;
  let st = Group_commit.stats g in
  Alcotest.(check int) "one flush round" 1 st.Group_commit.gc_batches;
  Alcotest.(check int) "six transactions carried" n st.Group_commit.gc_txns;
  Alcotest.(check int) "batch size recorded" n st.Group_commit.gc_max_batch;
  let ids =
    List.concat_map
      (List.filter_map (function
        | [ Wal.L_delete { id; _ } ] -> Some id
        | _ -> None))
      !flushed
  in
  Alcotest.(check (list int))
    "every transaction flushed exactly once, in queue order"
    (List.init n Fun.id) (List.sort compare ids)

let test_group_failure_collective () =
  let g = Group_commit.create ~flush:(fun _ -> failwith "disk on fire") in
  Group_commit.set_paused g true;
  let n = 3 in
  let failures = Array.make n "" in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            match Group_commit.submit g (gc_ops i) with
            | () -> ()
            | exception Failure msg -> failures.(i) <- msg)
          ())
  in
  eventually "all submitters queued" (fun () -> Group_commit.pending g = n);
  Group_commit.set_paused g false;
  List.iter Thread.join threads;
  Array.iteri
    (fun i msg ->
      Alcotest.(check string)
        (Printf.sprintf "submitter %d got the flush failure" i)
        "disk on fire" msg)
    failures;
  Alcotest.(check int) "one failed round" 1
    (Group_commit.stats g).Group_commit.gc_batches

(* ------------------------------------------------------------------ *)
(* Session semantics (in-memory server)                                *)

let test_sessions_basics () =
  let srv = Server.create Server.Memory in
  let a = Server.open_session srv in
  ignore (sx srv a "create table t (a int, b int)");
  Alcotest.(check int) "DDL bumps the version" 1 (Server.version srv);
  ignore (sx srv a "insert into t values (1, 10)");
  Alcotest.(check int) "autocommit publishes" 2 (Server.version srv);
  Alcotest.(check bool) "snapshot read sees it" true
    (contains (sx srv a "select * from t") "(1 row)");
  let body = sx srv a "begin; insert into t values (2, 20); commit" in
  Alcotest.(check bool) "commit reports its version" true
    (contains body "committed at version 3");
  Alcotest.(check bool) "both rows visible" true
    (contains (sx srv a "select * from t") "(2 rows)");
  ignore (sx srv a "begin; insert into t values (3, 30); rollback");
  Alcotest.(check int) "rollback publishes nothing" 3 (Server.version srv);
  Alcotest.(check bool) "rolled-back row absent" true
    (contains (sx srv a "select * from t") "(2 rows)");
  Alcotest.(check bool) "commit without a transaction is an error" true
    (contains (sx_err srv a "commit") "no open transaction");
  Alcotest.(check int) "two write transactions committed" 2
    (Server.stats srv).Server.sv_commits;
  Server.close_session srv a

let test_snapshot_isolation () =
  let srv = Server.create Server.Memory in
  let a = Server.open_session srv in
  let b = Server.open_session srv in
  ignore (sx srv a "create table t (a int); insert into t values (1)");
  Alcotest.(check bool) "b sees the seed" true
    (contains (sx srv b "select * from t") "(1 row)");
  ignore (sx srv a "begin; insert into t values (2)");
  Alcotest.(check bool) "b's snapshot ignores a's open transaction" true
    (contains (sx srv b "select * from t") "(1 row)");
  Alcotest.(check bool) "a's transaction sees its own insert" true
    (contains (sx srv a "select * from t") "(2 rows)");
  ignore (sx srv a "commit");
  Alcotest.(check bool) "b's snapshot refreshes after the commit" true
    (contains (sx srv b "select * from t") "(2 rows)");
  Server.close_session srv a;
  Server.close_session srv b

let test_first_committer_wins () =
  let srv = Server.create Server.Memory in
  let a = Server.open_session srv in
  let b = Server.open_session srv in
  ignore
    (sx srv a
       "create table acc (id int, bal int); insert into acc values (1, 100); \
        insert into acc values (2, 200)");
  (* write-write conflict on the same tuple: first committer wins *)
  ignore (sx srv a "begin; update acc set bal = 5 where id = 1");
  ignore (sx srv b "begin; update acc set bal = 7 where id = 1");
  ignore (sx srv a "commit");
  let msg = sx_err srv b "commit" in
  Alcotest.(check bool) "loser gets a serialization failure" true
    (contains msg "serialization failure");
  Alcotest.(check int) "conflict counted" 1 (Server.stats srv).Server.sv_conflicts;
  Alcotest.(check bool) "the winner's value stands" true
    (contains (sx srv b "select bal from acc where id = 1") "5");
  (* disjoint tuples: both commit *)
  ignore (sx srv a "begin; update acc set bal = 11 where id = 1");
  ignore (sx srv b "begin; update acc set bal = 22 where id = 2");
  ignore (sx srv a "commit");
  ignore (sx srv b "commit");
  Alcotest.(check bool) "disjoint writers both committed" true
    (contains (sx srv a "select * from acc where bal = 22") "(1 row)");
  (* inserts allocate fresh handles and can never collide *)
  ignore (sx srv a "begin; insert into acc values (3, 300)");
  ignore (sx srv b "begin; insert into acc values (4, 400)");
  ignore (sx srv a "commit");
  ignore (sx srv b "commit");
  Alcotest.(check bool) "concurrent inserters both committed" true
    (contains (sx srv a "select * from acc") "(4 rows)");
  Server.close_session srv a;
  Server.close_session srv b

(* The serializable escalation.  A rule's scalar-subquery read of a
   table a concurrent transaction UPDATED is invisible to handle-level
   validation: the read leaves no trace in the effect, and the updated
   row is not in the reader's write set.  Under plain snapshot
   isolation the commit below goes through against a stale bound
   (write skew); with [track_selects] the server claims the tables any
   rule the transaction could have woken reads, and must retry. *)
let skew_setup =
  "create table bounds (lo int); insert into bounds values (10); create \
   table staff (sid int, sal int); create rule clamp when inserted into \
   staff then update staff set sal = (select lo from bounds) where sal < \
   (select lo from bounds)"

let test_serializable_rule_reads () =
  (* default config: snapshot isolation — the anomaly commits *)
  let srv = Server.create Server.Memory in
  let a = Server.open_session srv in
  let b = Server.open_session srv in
  ignore (sx srv a skew_setup);
  ignore (sx srv b "begin; insert into staff values (1, 0)");
  ignore (sx srv a "update bounds set lo = 25");
  ignore (sx srv b "commit");
  Alcotest.(check bool) "SI: the clamp used the stale bound (write skew)"
    true
    (contains (sx srv a "select sal from staff") "10");
  Server.close_session srv a;
  Server.close_session srv b;
  (* track_selects: serializable — the stale rule read conflicts *)
  let config = { Engine.default_config with Engine.track_selects = true } in
  let srv = Server.create ~config Server.Memory in
  let a = Server.open_session srv in
  let b = Server.open_session srv in
  ignore (sx srv a skew_setup);
  ignore (sx srv b "begin; insert into staff values (1, 0)");
  ignore (sx srv a "update bounds set lo = 25");
  let msg = sx_err srv b "commit" in
  Alcotest.(check bool) "serializable: stale rule read is a conflict" true
    (contains msg "serialization failure");
  Alcotest.(check int) "conflict counted" 1
    (Server.stats srv).Server.sv_conflicts;
  ignore (sx srv b "begin; insert into staff values (1, 0); commit");
  Alcotest.(check bool) "the retry clamps against the fresh bound" true
    (contains (sx srv a "select sal from staff") "25");
  Server.close_session srv a;
  Server.close_session srv b

let test_rules_on_sessions () =
  let srv = Server.create Server.Memory in
  let a = Server.open_session srv in
  let b = Server.open_session srv in
  ignore
    (sx srv a
       "create table t (a int); create table log (n int); create rule audit \
        when inserted into t then insert into log (select count(*) from \
        inserted t)");
  ignore (sx srv b "begin; insert into t values (1); insert into t values (2); commit");
  Alcotest.(check bool) "the rule fired once on the session's net effect" true
    (contains (sx srv a "select * from log") "(1 row)");
  Alcotest.(check bool) "and saw the whole transition" true
    (contains (sx srv a "select n from log") "2");
  Server.close_session srv a;
  Server.close_session srv b

let test_ddl_fencing () =
  let srv = Server.create Server.Memory in
  let a = Server.open_session srv in
  let b = Server.open_session srv in
  ignore (sx srv a "create table t (a int); insert into t values (1)");
  (* DDL is not allowed inside a server transaction: on a fork it would
     mutate the shared rule index behind the primary's back *)
  ignore (sx srv a "begin; insert into t values (2)");
  Alcotest.(check bool) "DDL rejected inside a transaction" true
    (contains
       (sx_err srv a "create rule r1 when inserted into t then rollback")
       "DDL inside a server transaction");
  ignore (sx srv a "commit");
  (* DDL conflicts with every concurrently-started transaction *)
  ignore (sx srv b "begin; update t set a = 9 where a = 1");
  ignore (sx srv a "create index t_a on t (a)");
  Alcotest.(check bool) "transaction spanning DDL fails validation" true
    (contains (sx_err srv b "commit") "serialization failure");
  Server.close_session srv a;
  Server.close_session srv b

(* ------------------------------------------------------------------ *)
(* Durable group commit                                                *)

(* Run [BEGIN; sql; COMMIT] on its own session from a thread; store
   [Ok body] or the exception. *)
type txn_result = T_ok of string | T_err of string | T_exn of exn

let txn_thread srv sql =
  Thread.create
    (fun result ->
      let sess = Server.open_session srv in
      (match Server.exec_script srv sess ("begin; " ^ sql ^ "; commit") with
      | Ok body -> result := T_ok body
      | Error e -> result := T_err e
      | exception e -> result := T_exn e);
      Server.close_session srv sess)

let three_queued srv =
  (* all three committers are blocked in the paused round: the group
     queue length is the authoritative signal *)
  match Server.group_pending srv with Some n -> n = 3 | None -> false

let test_group_commit_one_record () =
  in_dir "group-batch" @@ fun dir ->
  let srv = Server.create ~data_dir:dir Server.Wal_group in
  let a = Server.open_session srv in
  ignore (sx srv a "create table t (a int, b int)");
  Server.set_group_paused srv true;
  let results = Array.init 3 (fun _ -> ref (T_err "not run")) in
  let threads =
    List.init 3 (fun i ->
        txn_thread srv
          (Printf.sprintf "insert into t values (%d, %d)" i (i * 10))
          results.(i))
  in
  eventually "three commits queued" (fun () -> three_queued srv);
  Server.set_group_paused srv false;
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match !r with
      | T_ok body ->
        Alcotest.(check bool)
          (Printf.sprintf "writer %d committed" i)
          true
          (contains body "committed at version")
      | T_err e -> Alcotest.failf "writer %d failed: %s" i e
      | T_exn e -> Alcotest.failf "writer %d raised: %s" i (Printexc.to_string e))
    results;
  let st =
    match Server.group_stats srv with Some s -> s | None -> assert false
  in
  Alcotest.(check int) "one flush round" 1 st.Group_commit.gc_batches;
  Alcotest.(check int) "batch of three" 3 st.Group_commit.gc_max_batch;
  (* on disk: the whole round is ONE Batch record (one frame, one CRC) *)
  let scan = Wal.read ~dir ~gen:0 in
  let batches =
    List.filter_map
      (fun r ->
        match r.Wal.payload with
        | Wal.Batch { txns; _ } -> Some (List.length txns)
        | Wal.Txn _ | Wal.Ddl _ -> None)
      scan.Wal.records
  in
  Alcotest.(check (list int)) "one batch record carrying all three" [ 3 ] batches;
  Server.close srv;
  (* and it recovers *)
  let sys, _info = Recovery.restore dir in
  let _cols, rows = System.query sys "select * from t" in
  Alcotest.(check int) "all three transactions recovered" 3 (List.length rows)

let test_batch_fsync_failure_fails_all () =
  in_dir "batch-fsync" @@ fun dir ->
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let srv = Server.create ~data_dir:dir Server.Wal_group in
  let a = Server.open_session srv in
  ignore (sx srv a "create table t (a int); insert into t values (0)");
  let digest_before = Recovery.fingerprint (Server.system srv) in
  let version_before = Server.version srv in
  Fault.enable true;
  Fault.disarm ();
  Server.set_group_paused srv true;
  let results = Array.init 3 (fun _ -> ref (T_err "not run")) in
  let threads =
    List.init 3 (fun i ->
        txn_thread srv
          (Printf.sprintf "insert into t values (%d)" (100 + i))
          results.(i))
  in
  eventually "three commits queued" (fun () -> three_queued srv);
  (* the round's single append hits Wal_append then Wal_fsync; arm the
     second so the batch IS written and fsynced, but the writer is told
     it failed — the strictest case: every member must abort in memory
     even though the record is durable *)
  Fault.arm 2;
  Server.set_group_paused srv false;
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match !r with
      | T_exn (Fault.Injected Fault.Wal_fsync) -> ()
      | T_ok body -> Alcotest.failf "writer %d committed through a failed batch: %s" i body
      | T_err e -> Alcotest.failf "writer %d got a soft error: %s" i e
      | T_exn e -> Alcotest.failf "writer %d raised %s" i (Printexc.to_string e))
    results;
  Fault.disarm ();
  Alcotest.(check string) "every member aborted with its exact snapshot restored"
    digest_before
    (Recovery.fingerprint (Server.system srv));
  Alcotest.(check int) "no version published" version_before (Server.version srv);
  Alcotest.(check int) "no commit counted" 1 (Server.stats srv).Server.sv_commits;
  Server.close srv;
  (* the frame reached disk before the injected failure: recovery reads
     it and resolves in favour of the log, the only defensible reading
     of a record that is durable *)
  let sys, _info = Recovery.restore dir in
  let _cols, rows = System.query sys "select * from t" in
  Alcotest.(check int) "recovery replays the durable batch" 4 (List.length rows)

let test_batch_append_failure_fails_all () =
  in_dir "batch-append" @@ fun dir ->
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let srv = Server.create ~data_dir:dir Server.Wal_group in
  let a = Server.open_session srv in
  ignore (sx srv a "create table t (a int); insert into t values (0)");
  let digest_before = Recovery.fingerprint (Server.system srv) in
  Fault.enable true;
  Fault.disarm ();
  Server.set_group_paused srv true;
  let results = Array.init 3 (fun _ -> ref (T_err "not run")) in
  let threads =
    List.init 3 (fun i ->
        txn_thread srv
          (Printf.sprintf "insert into t values (%d)" (200 + i))
          results.(i))
  in
  eventually "three commits queued" (fun () -> three_queued srv);
  (* fail BEFORE any byte reaches the file: nothing durable, every
     member aborts, memory and disk agree the batch never happened *)
  Fault.arm 1;
  Server.set_group_paused srv false;
  List.iter Thread.join threads;
  Array.iter
    (fun r ->
      match !r with
      | T_exn (Fault.Injected Fault.Wal_append) -> ()
      | other ->
        Alcotest.failf "expected the injected append failure, got %s"
          (match other with
          | T_ok b -> "commit: " ^ b
          | T_err e -> "error: " ^ e
          | T_exn e -> Printexc.to_string e))
    results;
  Fault.disarm ();
  Alcotest.(check string) "exact snapshot restore" digest_before
    (Recovery.fingerprint (Server.system srv));
  (* the server is fully operational: the claim window drained, so the
     same transactions retry cleanly *)
  let b = Server.open_session srv in
  ignore (sx srv b "begin; insert into t values (201); commit");
  Alcotest.(check bool) "retry commits" true
    (contains (sx srv b "select * from t") "(2 rows)");
  Server.close srv;
  let sys, _info = Recovery.restore dir in
  let _cols, rows = System.query sys "select * from t" in
  Alcotest.(check int) "disk agrees: seed plus the retry only" 2
    (List.length rows)

(* ------------------------------------------------------------------ *)
(* The socket layer: dead clients                                      *)

(* Prepared statements over sessions: the namespace is per-session (a
   fork's registry dies with the fork; the session re-installs), reads
   keep their compiled plan across EXECUTEs at one version, and DDL
   from another session invalidates — never stales — a prepared plan. *)
let test_prepared_sessions () =
  let srv = Server.create Server.Memory in
  let a = Server.open_session srv in
  let b = Server.open_session srv in
  ignore (sx srv a "create table t (a int, b int)");
  ignore (sx srv a "insert into t values (1, 10); insert into t values (2, 20)");
  ignore (sx srv a "prepare by_a as select b from t where a = ?");
  Alcotest.(check bool) "EXECUTE of a prepared select" true
    (contains (sx srv a "execute by_a (2)") "(1 row)");
  Alcotest.(check bool) "re-EXECUTE with another binding" true
    (contains (sx srv a "execute by_a (1)") "(1 row)");
  (* the namespace is the session's, not the server's *)
  Alcotest.(check bool) "other sessions do not see the name" true
    (contains (sx_err srv b "execute by_a (1)") "unknown prepared statement");
  ignore (sx srv b "prepare by_a as select a from t where b = ?");
  Alcotest.(check bool) "same name, independent statement" true
    (contains (sx srv b "execute by_a (20)") "(1 row)");
  (* prepared DML autocommits like any operation *)
  ignore (sx srv a "prepare ins as insert into t values (?, ?)");
  let v0 = Server.version srv in
  ignore (sx srv a "execute ins (3, 30)");
  Alcotest.(check int) "prepared DML publishes a version" (v0 + 1)
    (Server.version srv);
  (* DDL from another session: the next EXECUTE sees the new catalog *)
  ignore (sx srv b "create index t_a_ix on t (a)");
  Alcotest.(check bool) "prepared select survives foreign DDL" true
    (contains (sx srv a "execute by_a (3)") "(1 row)");
  (* EXECUTE inside an explicit transaction, then rollback *)
  ignore (sx srv a "begin; execute ins (4, 40); rollback");
  Alcotest.(check bool) "rolled-back prepared insert absent" true
    (contains (sx srv a "select * from t") "(3 rows)");
  (* PREPARE survives a rollback (session state, not txn state) *)
  ignore (sx srv a "begin; prepare tmp as select a from t; rollback");
  Alcotest.(check bool) "PREPARE is not transactional" true
    (contains (sx srv a "execute tmp") "(3 rows)");
  (* DEALLOCATE then re-PREPARE under the same name must not run the
     stale plan out of a cached fork *)
  ignore (sx srv a "deallocate by_a");
  ignore (sx srv a "prepare by_a as select a + 100 from t where a = ?");
  Alcotest.(check bool) "re-PREPARE replaces the plan" true
    (contains (sx srv a "execute by_a (1)") "101");
  Server.close_session srv a;
  Server.close_session srv b

let test_dead_client () =
  let srv = Server.create Server.Memory in
  let listener = Server.start ~port:0 srv in
  Fun.protect ~finally:(fun () -> Server.stop listener) @@ fun () ->
  let port = Server.port listener in
  let c1 = Client.connect ~port () in
  (match Client.request c1 "create table t (a int); insert into t values (1)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup failed: %s" e);
  (* client 2 opens a transaction, updates, and vanishes without a word:
     its open transaction must be rolled back and counted, with no
     collateral damage to other sessions *)
  let c2 = Client.connect ~port () in
  (match Client.request c2 "begin; update t set a = 99 where a = 1" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "begin/update failed: %s" e);
  Client.close c2;
  (* client 3 fires a request and slams the door without reading the
     response, so the server's answer meets a dead socket (EPIPE or
     ECONNRESET — and never SIGPIPE, which is ignored) *)
  let fd3 = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd3 (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Sopr_server.Protocol.send_line fd3 "select * from t";
  Unix.close fd3;
  eventually "both disconnects observed" (fun () ->
      (Server.stats srv).Server.sv_disconnects >= 2);
  (* the dead session's transaction is gone: the row is untouched and
     not write-locked in any sense — a new transaction wins cleanly *)
  (match Client.request c1 "begin; update t set a = 2 where a = 1; commit" with
  | Ok body ->
    Alcotest.(check bool) "post-disconnect commit succeeds" true
      (contains body "committed at version")
  | Error e -> Alcotest.failf "post-disconnect commit failed: %s" e);
  (match Client.request c1 "select a from t" with
  | Ok body ->
    Alcotest.(check bool) "dead client's update was rolled back" true
      (contains body "2" && not (contains body "99"))
  | Error e -> Alcotest.failf "select failed: %s" e);
  Client.close c1

(* ------------------------------------------------------------------ *)
(* Differential: concurrent sessions ≡ serial replay                   *)

let diff_setup =
  [
    "create table acct (id int, bal int)";
    "create table counter (id int, n int)";
    "create table audit (n int)";
    "insert into counter values (0, 0)";
    "create rule tally when updated counter.n then insert into audit (select \
     n from new updated counter.n)";
  ]

let diff_tables = [ "acct"; "counter"; "audit" ]

let test_differential_concurrent_vs_serial () =
  let sessions = 4 and txns_per = 12 in
  let srv = Server.create Server.Memory in
  let s0 = Server.open_session srv in
  List.iter (fun sql -> ignore (sx srv s0 sql)) diff_setup;
  List.iter
    (fun s ->
      List.iter
        (fun k ->
          ignore
            (sx srv s0
               (Printf.sprintf "insert into acct values (%d, 0)" ((s * 10) + k))))
        [ 0; 1; 2 ])
    (List.init sessions Fun.id);
  (* each thread: bump a private row (usually conflict-free) and RMW the
     shared counter (the contention point), retrying on serialization
     failure; record each committed block with its published version *)
  let committed = ref [] in
  let clock = Mutex.create () in
  let record version block =
    Mutex.lock clock;
    committed := (version, block) :: !committed;
    Mutex.unlock clock
  in
  let parse_version body =
    (* "committed at version N" is the last line *)
    let n = String.length body in
    let rec last_line i = if i > 0 && body.[i - 1] <> '\n' then last_line (i - 1) else i in
    let line = String.sub body (last_line n) (n - last_line n) in
    match String.rindex_opt line ' ' with
    | Some i ->
      int_of_string
        (String.sub line (i + 1) (String.length line - i - 1))
    | None -> Alcotest.failf "no version in %S" body
  in
  let worker s =
    let sess = Server.open_session srv in
    for k = 1 to txns_per do
      let row = (s * 10) + (k mod 3) in
      let block =
        Printf.sprintf
          "update acct set bal = bal + 1 where id = %d; update counter set n \
           = n + 1 where id = 0"
          row
      in
      let rec attempt tries =
        if tries > 200 then Alcotest.failf "worker %d starved" s;
        match
          Server.exec_script srv sess ("begin; " ^ block ^ "; commit")
        with
        | Ok body -> record (parse_version body) block
        | Error e when contains e "serialization failure" ->
          Thread.delay (0.0003 *. float_of_int (1 + (tries mod 5)));
          attempt (tries + 1)
        | Error e -> Alcotest.failf "worker %d: %s" s e
      in
      attempt 0
    done;
    Server.close_session srv sess
  in
  let threads =
    List.init sessions (fun s -> Thread.create worker s)
  in
  List.iter Thread.join threads;
  let total = sessions * txns_per in
  Alcotest.(check int) "every transaction eventually committed" total
    (List.length !committed);
  (* the shared counter proves no lost updates: snapshot reads plus
     first-committer-wins write validation serialize the RMW *)
  let final_n =
    match System.query_value (Server.system srv) "select n from counter" with
    | Value.Int n -> n
    | v -> Alcotest.failf "counter: %s" (Value.to_string v)
  in
  Alcotest.(check int) "no lost update on the contended counter" total final_n;
  (* serial replay in commit order on an embedded engine must reach the
     identical value state — the committed history IS serializable in
     version order *)
  let serial = System.create () in
  List.iter (fun sql -> ignore (System.exec serial sql)) diff_setup;
  List.iter
    (fun s ->
      List.iter
        (fun k ->
          ignore
            (System.exec serial
               (Printf.sprintf "insert into acct values (%d, 0)" ((s * 10) + k))))
        [ 0; 1; 2 ])
    (List.init sessions Fun.id);
  let in_order =
    List.sort (fun (v1, _) (v2, _) -> compare v1 v2) !committed
  in
  List.iter
    (fun (_v, block) -> ignore (System.exec serial ("begin; " ^ block ^ "; commit")))
    in_order;
  Alcotest.(check string) "concurrent history ≡ serial replay (value state)"
    (value_digest serial diff_tables)
    (value_digest (Server.system srv) diff_tables);
  Server.close_session srv s0

(* ------------------------------------------------------------------ *)
(* Crash: SIGKILL under group commit — per-batch all-or-none           *)

(* A forked child serves concurrent writers in group-commit mode and is
   SIGKILLed mid-stream; each transaction inserts K rows under one tag.
   Whatever prefix survived, recovery must show every tag with 0 or K
   rows: a batch is one frame under one CRC, so no member transaction —
   and no prefix of one — can surface alone. *)
let test_sigkill_group_commit () =
  in_dir "crash-group" @@ fun root ->
  let dir = Filename.concat root "data" in
  let k_rows = 3 and writers = 4 in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try
       let srv = Server.create ~data_dir:dir Server.Wal_group in
       let s = Server.open_session srv in
       ignore (sx srv s "create table m (tag int, seq int)");
       let worker w =
         let sess = Server.open_session srv in
         let i = ref 0 in
         while true do
           incr i;
           let tag = (w * 10000) + !i in
           let block =
             String.concat "; "
               (List.init k_rows (fun j ->
                    Printf.sprintf "insert into m values (%d, %d)" tag j))
           in
           ignore (Server.exec_script srv sess ("begin; " ^ block ^ "; commit"))
         done;
         ignore sess
       in
       let _threads = List.init writers (fun w -> Thread.create worker w) in
       (* die mid-activity once enough commits have published, with a
          hard cap so a wedged child cannot hang the suite *)
       let tries = ref 0 in
       while Server.version srv < 15 && !tries < 4000 do
         incr tries;
         Thread.delay 0.005
       done
     with _ -> ());
    Unix.kill (Unix.getpid ()) Sys.sigkill;
    assert false
  | pid ->
    let _, status = Unix.waitpid [] pid in
    (match status with
    | Unix.WSIGNALED s when s = Sys.sigkill -> ()
    | _ -> Alcotest.fail "child did not die by SIGKILL");
    let scan = Wal.read ~dir ~gen:0 in
    Alcotest.(check bool) "no torn tail" false scan.Wal.torn;
    let batched_txns =
      List.fold_left
        (fun acc r ->
          match r.Wal.payload with
          | Wal.Batch { txns; _ } -> acc + List.length txns
          | Wal.Txn _ | Wal.Ddl _ -> acc)
        0 scan.Wal.records
    in
    Alcotest.(check bool) "the child committed through batches" true
      (batched_txns > 0);
    let sys, _info = Recovery.restore dir in
    let _cols, rows = System.query sys "select tag from m" in
    let counts = Hashtbl.create 64 in
    List.iter
      (fun row ->
        match row with
        | [| Value.Int tag |] ->
          Hashtbl.replace counts tag
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag))
        | _ -> Alcotest.fail "unexpected row shape")
      rows;
    Alcotest.(check bool) "some transactions survived" true
      (Hashtbl.length counts > 0);
    Hashtbl.iter
      (fun tag n ->
        if n <> k_rows then
          Alcotest.failf
            "transaction %d is torn: %d of %d rows survived the crash" tag n
            k_rows)
      counts

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "write_fully survives an EINTR storm" `Slow
      test_write_fully_eintr;
    Alcotest.test_case "group commit batches a paused round" `Quick
      test_group_batching;
    Alcotest.test_case "a failed flush fails every member" `Quick
      test_group_failure_collective;
    Alcotest.test_case "sessions: versions, autocommit, transactions" `Quick
      test_sessions_basics;
    Alcotest.test_case "snapshot isolation across sessions" `Quick
      test_snapshot_isolation;
    Alcotest.test_case "first committer wins" `Quick test_first_committer_wins;
    Alcotest.test_case "serializable mode catches stale rule reads" `Quick
      test_serializable_rule_reads;
    Alcotest.test_case "rules fire on session transactions" `Quick
      test_rules_on_sessions;
    Alcotest.test_case "DDL fencing" `Quick test_ddl_fencing;
    Alcotest.test_case "a group round is one WAL record" `Quick
      test_group_commit_one_record;
    Alcotest.test_case "batch fsync failure fails every member" `Quick
      test_batch_fsync_failure_fails_all;
    Alcotest.test_case "batch append failure leaves nothing durable" `Quick
      test_batch_append_failure_fails_all;
    Alcotest.test_case "prepared statements are per-session" `Quick
      test_prepared_sessions;
    Alcotest.test_case "dead clients roll back and disconnect" `Quick
      test_dead_client;
    Alcotest.test_case "concurrent sessions equal serial replay" `Slow
      test_differential_concurrent_vs_serial;
    Alcotest.test_case "SIGKILL under group commit is all-or-none" `Slow
      test_sigkill_group_commit;
  ]

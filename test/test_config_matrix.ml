(* Configuration-matrix tests: the engine's optimizations — transition
   info pruning (paper Section 4.3) and uncorrelated-subquery caching —
   must be semantically invisible, separately and combined.  The
   paper's worked examples 3.1, 4.1 and 4.2 are run under all four
   [prune_info] x [optimize] combinations and must produce identical
   final states and firing counts. *)

open Core
open Helpers

let combos =
  [
    (true, true); (true, false); (false, true); (false, false);
  ]

let combo_label (prune_info, optimize) =
  Printf.sprintf "prune_info=%b optimize=%b" prune_info optimize

(* Run [scenario] under every combination and check that each result
   equals the default-configuration (both on) result. *)
let check_matrix scenario check_equal =
  let result combo =
    let prune_info, optimize = combo in
    let config = { Engine.default_config with prune_info; optimize } in
    scenario (paper_system ~config ())
  in
  let reference = result (true, true) in
  List.iter
    (fun combo -> check_equal (combo_label combo) reference (result combo))
    combos

let eq_triple label = Alcotest.(check (triple (list string) int int)) label

(* Example 3.1: cascaded delete of employees in deleted departments. *)
let scenario_31 s =
  run s
    "create rule ex31 when deleted from dept then delete from emp where \
     dept_no in (select dept_no from deleted dept)";
  run s "insert into dept values (1, 100), (2, 200), (3, 300)";
  run s
    "insert into emp values ('a', 1, 10000, 1), ('b', 2, 10000, 2), ('c', 3, \
     10000, 2), ('d', 4, 10000, 3)";
  ignore (System.exec_block s "delete from dept where dept_no in (1, 2)");
  ( string_list_cells s "select name from emp",
    int_cell s "select count(*) from dept",
    (Engine.stats (System.engine s)).Engine.rule_firings )

let test_example_3_1_matrix () =
  check_matrix scenario_31 eq_triple

(* Example 4.1: recursive cascade over the management hierarchy. *)
let scenario_41 s =
  run s
    "create rule ex41 when deleted from emp then delete from emp where \
     dept_no in (select dept_no from dept where mgr_no in (select emp_no from \
     deleted emp)); delete from dept where mgr_no in (select emp_no from \
     deleted emp)";
  run s "insert into dept values (1, 100), (2, 200), (3, 300)";
  run s
    "insert into emp values ('Jane', 100, 60000, 0), ('Mary', 200, 70000, 1), \
     ('Jim', 300, 40000, 1), ('Bill', 400, 25000, 2), ('Sam', 500, 30000, 3), \
     ('Sue', 600, 30000, 3)";
  run s "delete from emp where emp_no = 100";
  ( string_list_cells s "select name from emp",
    int_cell s "select count(*) from dept",
    (Engine.stats (System.engine s)).Engine.rule_firings )

let test_example_4_1_matrix () =
  check_matrix scenario_41 eq_triple

(* Example 4.2: salary-update control with a composite transition
   predicate and an aggregate condition over new updated. *)
let scenario_42 s =
  run s
    "create rule ex42 when updated emp.salary if (select avg(salary) from new \
     updated emp.salary) > 50000 then delete from emp where emp_no in (select \
     emp_no from new updated emp.salary) and salary > 80000";
  run s "insert into emp values ('Bill', 1, 25000, 1), ('Mary', 2, 70000, 1)";
  ignore
    (System.exec_block s
       "update emp set salary = 30000 where emp_no = 1; update emp set salary \
        = 85000 where emp_no = 2");
  ( string_list_cells s "select name from emp",
    int_cell s "select count(*) from emp",
    (Engine.stats (System.engine s)).Engine.rule_firings )

let test_example_4_2_matrix () =
  check_matrix scenario_42 eq_triple

let suite =
  [
    Alcotest.test_case "example 3.1 under all configs" `Quick
      test_example_3_1_matrix;
    Alcotest.test_case "example 4.1 under all configs" `Quick
      test_example_4_1_matrix;
    Alcotest.test_case "example 4.2 under all configs" `Quick
      test_example_4_2_matrix;
  ]

(* Scalar function tests, end-to-end through SQL. *)

open Core
open Helpers

let s () =
  let s =
    system "create table t (n int, f float, v string)"
  in
  run s "insert into t values (-3, 2.5, ' Hello ')";
  s

let one s sql = cell s sql

let test_numeric_functions () =
  let s = s () in
  Alcotest.check value_testable "abs int" (vi 3) (one s "select abs(n) from t");
  Alcotest.check value_testable "abs float" (vf 2.5) (one s "select abs(0 - f) from t");
  Alcotest.check value_testable "sign" (vi (-1)) (one s "select sign(n) from t");
  Alcotest.check value_testable "floor" (vi 2) (one s "select floor(f) from t");
  Alcotest.check value_testable "ceil" (vi 3) (one s "select ceil(f) from t");
  (* half rounds away from zero *)
  Alcotest.check value_testable "round" (vi 3) (one s "select round(f) from t");
  Alcotest.check value_testable "round digits" (vf 2.5)
    (one s "select round(f, 1) from t");
  Alcotest.check value_testable "null propagates" vnull
    (one s "select abs(null) from t")

let test_string_functions () =
  let s = s () in
  Alcotest.check value_testable "upper" (vs " HELLO ")
    (one s "select upper(v) from t");
  Alcotest.check value_testable "lower" (vs " hello ")
    (one s "select lower(v) from t");
  Alcotest.check value_testable "length" (vi 7) (one s "select length(v) from t");
  Alcotest.check value_testable "trim" (vs "Hello") (one s "select trim(v) from t");
  Alcotest.check value_testable "substr" (vs "Hel")
    (one s "select substr(trim(v), 1, 3) from t");
  Alcotest.check value_testable "substr overflow" (vs "")
    (one s "select substr(v, 100) from t")

let test_null_handling_functions () =
  let s = s () in
  Alcotest.check value_testable "coalesce" (vi 5)
    (one s "select coalesce(null, null, 5, 7) from t");
  Alcotest.check value_testable "coalesce all null" vnull
    (one s "select coalesce(null, null) from t");
  Alcotest.check value_testable "ifnull hit" (vi 9)
    (one s "select ifnull(null, 9) from t");
  Alcotest.check value_testable "ifnull miss" (vi (-3))
    (one s "select ifnull(n, 9) from t");
  Alcotest.check value_testable "nullif equal" vnull
    (one s "select nullif(1, 1) from t");
  Alcotest.check value_testable "nullif different" (vi 1)
    (one s "select nullif(1, 2) from t")

let test_functions_in_predicates_and_rules () =
  let s =
    system "create table emp (name string, salary float);\ncreate table log \
            (name string)"
  in
  (* functions compose with rules and transition tables *)
  run s
    "create rule shout when inserted into emp then insert into log (select \
     upper(name) from inserted emp where abs(salary) > 100)";
  run s "insert into emp values ('ada', 200), ('bob', 50)";
  Alcotest.(check (list string)) "rule used functions" [ "ADA" ]
    (string_list_cells s "select name from log")

let test_function_errors () =
  let s = s () in
  expect_error (fun () -> System.query s "select nosuchfn(1) from t");
  expect_error (fun () -> System.query s "select abs(1, 2) from t");
  expect_error (fun () -> System.query s "select upper(1) from t");
  expect_error (fun () -> System.query s "select length() from t")

(* Regression: floor/ceil/round used to pipe any float through an
   unchecked [int_of_float], so nan silently became 0 and out-of-range
   values became garbage.  They now raise a type error; in-range
   conversions are unchanged. *)
let test_int_conversion_checked () =
  let s = s () in
  expect_error (fun () -> System.query s "select floor(nan) from t");
  expect_error (fun () -> System.query s "select ceil(nan) from t");
  expect_error (fun () -> System.query s "select round(nan) from t");
  expect_error (fun () -> System.query s "select floor(infinity) from t");
  expect_error (fun () -> System.query s "select ceil(0 - infinity) from t");
  expect_error (fun () -> System.query s "select round(infinity) from t");
  (* 5e18 > 2^62: representable as a float, not as an int *)
  expect_error (fun () ->
      System.query s "select floor(5000000000000000000.0) from t");
  (* boundary: 2^62 - 512 is the largest double below 2^62 *)
  Alcotest.check value_testable "largest convertible double"
    (vi 4611686018427387392)
    (one s "select floor(4611686018427387392.0) from t");
  Alcotest.check value_testable "floor still works" (vi 2)
    (one s "select floor(f) from t")

(* Regression: [round(int, digits)] used to bounce the int through
   float and back, so it could overflow or lose precision; an int input
   with non-negative digits is already rounded and must come back as
   the same int. *)
let test_round_int_input () =
  let s = s () in
  Alcotest.check value_testable "round(int, 1) is the int" (vi (-3))
    (one s "select round(n, 1) from t");
  Alcotest.check value_testable "round(int, 0) is the int" (vi (-3))
    (one s "select round(n, 0) from t");
  (* a 62-bit int that a float round-trip would corrupt *)
  Alcotest.check value_testable "huge int unharmed"
    (vi 4611686018427387891)
    (one s "select round(4611686018427387891, 2) from t");
  (* negative digits genuinely round, still as an int *)
  Alcotest.check value_testable "round(125, -1)" (vi 130)
    (one s "select round(125, 0 - 1) from t")

let test_function_round_trip () =
  let sql = "select coalesce(upper(v), substr(v, 1, 2)) from t" in
  let ast = Parser.parse_statement_string sql in
  match ast with
  | Ast.Stmt_op op ->
    Alcotest.(check bool) "round trip" true
      (Parser.parse_statement_string (Pretty.op_str op) = ast)
  | _ -> Alcotest.fail "statement kind"

let suite =
  [
    Alcotest.test_case "numeric functions" `Quick test_numeric_functions;
    Alcotest.test_case "string functions" `Quick test_string_functions;
    Alcotest.test_case "null-handling functions" `Quick
      test_null_handling_functions;
    Alcotest.test_case "functions inside rules" `Quick
      test_functions_in_predicates_and_rules;
    Alcotest.test_case "function errors" `Quick test_function_errors;
    Alcotest.test_case "checked int conversions (regression)" `Quick
      test_int_conversion_checked;
    Alcotest.test_case "round on int input (regression)" `Quick
      test_round_int_input;
    Alcotest.test_case "function round trip" `Quick test_function_round_trip;
  ]

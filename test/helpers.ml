(* Shared helpers for the test suites. *)

open Core

let value_testable =
  Alcotest.testable (fun ppf v -> Fmt.string ppf (Value.to_string v)) Value.equal

let row_testable =
  Alcotest.testable (fun ppf r -> Fmt.string ppf (Row.to_string r)) Row.equal

let rows_testable = Alcotest.list row_testable

(* Build a fresh system and run a setup script. *)
let system ?config script =
  let s = System.create ?config () in
  ignore (System.exec s script);
  s

(* The emp/dept schema used throughout the paper's examples. *)
let paper_schema =
  "create table emp (name string, emp_no int, salary float, dept_no int);\n\
   create table dept (dept_no int, mgr_no int)"

let paper_system ?config () = system ?config paper_schema

let run s sql = ignore (System.exec s sql)

(* Run a query and return the rows. *)
let rows s sql = snd (System.query s sql)

(* Run a query and return the single cell. *)
let cell s sql = System.query_value s sql

let int_cell s sql =
  match cell s sql with
  | Value.Int n -> n
  | v -> Alcotest.failf "expected int cell, got %s" (Value.to_string v)

let float_cell s sql =
  match cell s sql with
  | Value.Float f -> f
  | Value.Int n -> float_of_int n
  | v -> Alcotest.failf "expected numeric cell, got %s" (Value.to_string v)

let string_list_cells s sql =
  List.map
    (fun row ->
      match row with
      | [| Value.Str name |] -> name
      | _ -> Alcotest.failf "expected single string column")
    (rows s sql)

(* Expect that evaluating [f] raises an [Errors.Error]. *)
let expect_error f =
  match f () with
  | _ -> Alcotest.fail "expected an error"
  | exception Errors.Error _ -> ()

let check_outcome = Alcotest.(check bool)

let committed = function
  | System.Outcome Engine.Committed -> true
  | System.Outcome Engine.Rolled_back -> false
  | System.Msg _ | System.Relation _ -> true

(* Execute one SQL statement and report whether the transaction
   committed. *)
let exec_committed s sql =
  List.for_all committed (System.exec s sql)

let vi n = Value.Int n
let vf f = Value.Float f
let vs s = Value.Str s
let vb b = Value.Bool b
let vnull = Value.Null

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Seed plumbing for the randomized suites.

   Every suite that derives work from a PRNG seed routes it through
   here, so a failing run can be reproduced with

     SOPR_SEED=<n> dune runtest

   The override narrows a suite's seed list to the one given seed;
   [with_seed_reported] prints the seed of the failing iteration on any
   exception, before re-raising it for the framework to report. *)

let seed_env = "SOPR_SEED"

let seed_override () =
  match Sys.getenv_opt seed_env with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None ->
      invalid_arg (Printf.sprintf "%s=%S is not an integer" seed_env s))

(* A suite's deterministic seed list, narrowed by the override. *)
let seeds ~default = match seed_override () with Some s -> [ s ] | None -> default

(* A suite's single seed, replaced by the override. *)
let seed ~default = Option.value (seed_override ()) ~default

let with_seed_reported s f =
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Printf.eprintf "\n[seed] failing under seed %d — reproduce with %s=%d\n%!"
      s seed_env s;
    Printexc.raise_with_backtrace e bt

(* qcheck properties read QCHECK_SEED; bridge the override to it so one
   variable reproduces every randomized suite. *)
let () =
  match (seed_override (), Sys.getenv_opt "QCHECK_SEED") with
  | Some s, None -> Unix.putenv "QCHECK_SEED" (string_of_int s)
  | _ -> ()

(* Prepared statements and the statement cache.

   PREPARE name AS <stmt> parses and registers a parameterized DML
   statement; EXECUTE binds constants into a parameter frame and runs
   the compiled plan without re-parsing or re-compiling; DEALLOCATE
   drops one name or all of them.  Unprepared statements go through an
   engine-level statement cache keyed on (canonical text, DDL
   generation, planner switches).  This suite covers:

   - the user-visible lifecycle and its typed errors (wrong arity,
     unknown/duplicate names, parameters outside PREPARE);
   - the cache-validity matrix: hits on repetition, invalidation on
     DDL-generation bumps and planner-switch flips, teardown on
     DEALLOCATE and on session forks;
   - the differential oracle: EXECUTE under the compiled path
     (parameter frame) equals EXECUTE under the interpreter
     (substitution into the tree);
   - the streaming lexer against the legacy list-materializing lexer,
     by qcheck over generated statement soup;
   - parse/print round-trips for the new statement forms. *)

open Core
open Helpers
module Compile = Sqlf.Compile
module Lexer = Sqlf.Lexer
module Token = Sqlf.Token
module Pretty = Sqlf.Pretty

let stats s = Engine.stats (System.engine s)

(* Rows of a statement that is not plain SELECT text (EXECUTE). *)
let erows s sql =
  match System.exec_one s sql with
  | System.Relation rel -> rel.Eval.rows
  | _ -> Alcotest.failf "expected rows from %s" sql

(* Expect a specific typed error. *)
let expect_err ~name pred f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an error" name
  | exception Errors.Error e ->
    if not (pred e) then
      Alcotest.failf "%s: wrong error: %s" name (Errors.to_string e)

let fixture () =
  system
    "create table emp (name string, emp_no int, salary float);\n\
     insert into emp values ('ada', 1, 100.0);\n\
     insert into emp values ('bob', 2, 200.0);\n\
     insert into emp values ('cyd', 3, 300.0)"

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let test_lifecycle () =
  let s = fixture () in
  run s "prepare by_no as select name from emp where emp_no = ?";
  Alcotest.(check (list (list value_testable)))
    "execute binds the constant"
    [ [ Value.Str "bob" ] ]
    (List.map Array.to_list (erows s "execute by_no (2)"));
  Alcotest.(check (list (list value_testable)))
    "re-execute with a different binding"
    [ [ Value.Str "cyd" ] ]
    (List.map Array.to_list (erows s "execute by_no (3)"));
  (* DML through EXECUTE runs as its own transaction *)
  run s "prepare raise as update emp set salary = salary + ? where emp_no = ?";
  run s "execute raise (5.0, 1)";
  Alcotest.(check (float 0.001))
    "update applied" 105.0
    (float_cell s "select salary from emp where emp_no = 1");
  run s "deallocate by_no";
  expect_err ~name:"executing a deallocated name"
    (function Errors.Unknown_prepared "by_no" -> true | _ -> false)
    (fun () -> erows s "execute by_no (2)");
  run s "deallocate all";
  expect_err ~name:"deallocate all empties the namespace"
    (function Errors.Unknown_prepared "raise" -> true | _ -> false)
    (fun () -> run s "execute raise (1.0, 1)")

let test_zero_param_and_empty_args () =
  let s = fixture () in
  run s "prepare all_emps as select name from emp order by name";
  Alcotest.(check int) "no params, bare execute" 3
    (List.length (erows s "execute all_emps"));
  Alcotest.(check int) "no params, empty parens" 3
    (List.length (erows s "execute all_emps ()"))

let test_typed_errors () =
  let s = fixture () in
  run s "prepare p as select name from emp where emp_no = ?";
  expect_err ~name:"duplicate name"
    (function Errors.Duplicate_prepared "p" -> true | _ -> false)
    (fun () -> run s "prepare p as select * from emp");
  expect_err ~name:"too few arguments"
    (function
      | Errors.Prepared_arity { name = "p"; expected = 1; got = 0 } -> true
      | _ -> false)
    (fun () -> erows s "execute p");
  expect_err ~name:"too many arguments"
    (function
      | Errors.Prepared_arity { name = "p"; expected = 1; got = 3 } -> true
      | _ -> false)
    (fun () -> erows s "execute p (1, 2, 3)");
  expect_err ~name:"unknown name"
    (function Errors.Unknown_prepared "q" -> true | _ -> false)
    (fun () -> erows s "execute q (1)");
  expect_err ~name:"deallocating an unknown name"
    (function Errors.Unknown_prepared "q" -> true | _ -> false)
    (fun () -> run s "deallocate q")

let is_param_error = function Errors.Parameter_error _ -> true | _ -> false

let test_params_only_in_prepare () =
  let s = fixture () in
  expect_err ~name:"? in a direct select" is_param_error (fun () ->
      rows s "select name from emp where emp_no = ?");
  expect_err ~name:"? in a direct update" is_param_error (fun () ->
      run s "update emp set salary = ? where emp_no = 1");
  expect_err ~name:"? in EXPLAIN" is_param_error (fun () ->
      run s "explain select * from emp where emp_no = ?");
  (* rule bodies compile at DDL time: nothing would ever bind them *)
  expect_err ~name:"? in a rule condition" is_param_error (fun () ->
      run s
        "create rule r when inserted into emp if exists (select * from emp \
         where salary > ?) then rollback");
  expect_err ~name:"? in a rule action" is_param_error (fun () ->
      run s
        "create rule r when inserted into emp then update emp set salary = ? \
         where emp_no = 1");
  expect_err ~name:"? in an assertion" is_param_error (fun () ->
      run s "create assertion a check (not exists (select * from emp where \
             salary < ?))");
  (* and PREPARE itself admits DML only *)
  expect_error (fun () -> run s "prepare d as create table t2 (x int)")

(* ------------------------------------------------------------------ *)
(* Statement cache                                                     *)

let test_cache_hits_on_repetition () =
  let s = fixture () in
  let st = stats s in
  let h0 = st.Engine.stmt_cache_hits and m0 = st.Engine.stmt_cache_misses in
  run s "select name from emp where emp_no = 2";
  run s "select name from emp where emp_no = 2";
  run s "select name from emp where emp_no = 2";
  Alcotest.(check int) "one miss" (m0 + 1) st.Engine.stmt_cache_misses;
  Alcotest.(check int) "then hits" (h0 + 2) st.Engine.stmt_cache_hits;
  (* equivalent concrete syntax canonicalizes to the same key *)
  run s "SELECT name FROM emp WHERE emp_no = 2";
  Alcotest.(check int) "case-insensitive hit" (h0 + 3)
    st.Engine.stmt_cache_hits

let test_cache_invalidation_on_ddl () =
  let s = fixture () in
  let st = stats s in
  run s "prepare p as select name from emp where emp_no = ?";
  run s "execute p (1)";
  run s "execute p (1)";
  let i0 = st.Engine.stmt_cache_invalidations in
  run s "create index ix on emp (emp_no)";
  Alcotest.(check (list (list value_testable)))
    "correct result after DDL"
    [ [ Value.Str "ada" ] ]
    (List.map Array.to_list (erows s "execute p (1)"));
  Alcotest.(check int) "DDL invalidated the prepared plan" (i0 + 1)
    st.Engine.stmt_cache_invalidations;
  (* the recompiled plan now uses the index *)
  let probes0 = st.Engine.index_probes in
  run s "execute p (2)";
  Alcotest.(check bool) "recompiled plan probes the new index" true
    (st.Engine.index_probes > probes0)

let test_cache_invalidation_on_planner_flip () =
  let s = fixture () in
  let st = stats s in
  run s "prepare p as select name from emp where emp_no = ?";
  run s "execute p (1)";
  let i0 = st.Engine.stmt_cache_invalidations in
  let saved = !Eval.predicate_pushdown in
  Fun.protect
    ~finally:(fun () -> Eval.predicate_pushdown := saved)
    (fun () ->
      Eval.predicate_pushdown := not saved;
      run s "execute p (1)";
      Alcotest.(check int) "planner flip invalidated the plan" (i0 + 1)
        st.Engine.stmt_cache_invalidations);
  run s "execute p (1)";
  Alcotest.(check int) "flipping back invalidates again" (i0 + 2)
    st.Engine.stmt_cache_invalidations

let test_fork_gets_fresh_namespace () =
  let s = fixture () in
  let eng = System.engine s in
  run s "prepare p as select name from emp where emp_no = ?";
  run s "select name from emp";
  Alcotest.(check bool) "parent cache is warm" true
    (Engine.stmt_cache_size eng > 0);
  let f = Engine.fork eng in
  Alcotest.(check int) "fork starts with an empty statement cache" 0
    (Engine.stmt_cache_size f);
  Alcotest.(check (list string)) "fork starts with no prepared statements" []
    (Engine.prepared_names f);
  Alcotest.(check bool) "parent keeps its registry" true
    (Engine.has_prepared eng "p")

let test_explain_reports_cache_state () =
  let s = fixture () in
  let explain sql =
    match System.exec_one s ("explain " ^ sql) with
    | System.Msg m -> m
    | _ -> Alcotest.fail "explain returned a non-message"
  in
  let has_line needle msg =
    List.exists (String.equal needle) (String.split_on_char '\n' msg)
  in
  let sql = "select name from emp where emp_no = 2" in
  Alcotest.(check bool) "miss before first execution" true
    (has_line "  statement cache: miss" (explain sql));
  run s sql;
  Alcotest.(check bool) "hit after execution" true
    (has_line "  statement cache: hit" (explain sql));
  run s "create index ix2 on emp (salary)";
  Alcotest.(check bool) "stale after DDL" true
    (has_line "  statement cache: stale" (explain sql))

(* ------------------------------------------------------------------ *)
(* Differential oracle: compiled frame binding = interpreter           *)
(* substitution                                                        *)

let with_compile flag f =
  let saved = !Compile.enabled in
  Compile.enabled := flag;
  Fun.protect ~finally:(fun () -> Compile.enabled := saved) f

(* Run the same prepared-statement script on two fresh systems, one per
   evaluator, and compare every rendered result (including errors). *)
let differential script =
  let run_path flag =
    with_compile flag (fun () ->
        let s = fixture () in
        run s "create table log (name string, salary float)";
        run s
          "create rule audit when updated emp.salary then insert into log \
           (select name, salary from new updated emp.salary)";
        List.map
          (fun stmt ->
            match System.exec_one s stmt with
            | r -> System.render_result r
            | exception Errors.Error e -> "error: " ^ Errors.to_string e)
          script)
  in
  let compiled = run_path true and interpreted = run_path false in
  Alcotest.(check (list string)) "compiled = interpreted" interpreted compiled

let test_execute_differential () =
  differential
    [
      "prepare by_no as select name, salary from emp where emp_no = ?";
      "prepare raise as update emp set salary = salary * ? where salary >= ?";
      "prepare add as insert into emp values (?, ?, ?)";
      "prepare fire as delete from emp where emp_no = ?";
      "execute by_no (2)";
      "execute raise (1.1, 150.0)";
      "execute by_no (3)";
      "execute add ('dee', 4, 400.0)";
      "execute by_no (4)";
      "execute fire (1)";
      "select name from emp order by emp_no";
      "select name, salary from log order by salary";
      (* error paths must render identically too *)
      "execute by_no ()";
      "execute by_no (1, 2)";
      "execute nope (1)";
      (* NULL binds like any other constant *)
      "execute by_no (null)";
    ]

let test_execute_inside_transaction () =
  List.iter
    (fun flag ->
      with_compile flag (fun () ->
          let s = fixture () in
          run s "prepare bump as update emp set salary = salary + ? where \
                 emp_no = ?";
          run s "begin";
          run s "execute bump (10.0, 1)";
          run s "execute bump (20.0, 1)";
          Alcotest.(check (float 0.001)) "both executes visible in-transaction"
            130.0
            (float_cell s "select salary from emp where emp_no = 1");
          run s "rollback";
          Alcotest.(check (float 0.001)) "rollback undoes both" 100.0
            (float_cell s "select salary from emp where emp_no = 1")))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Streaming lexer = legacy lexer                                      *)

let stream_tokens src =
  let st = Lexer.make src in
  let rec go acc =
    let tok = Lexer.next_token st in
    match tok.Token.token with
    | Token.Eof -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  go []

let lex_outcome lex src =
  match lex src with
  | toks ->
    Ok
      (List.map
         (fun { Token.token; line; col } -> (Token.to_string token, line, col))
         toks)
  | exception Errors.Error e -> Error (Errors.to_string e)

(* Statement soup: fragments that cover every scanner state, including
   ones that end in lex errors. *)
let fragment =
  QCheck.Gen.oneofl
    [
      "select"; "SELECT"; "from"; "where"; "prepare"; "execute"; "?"; "emp";
      "dept_no"; "42"; "4.5"; "1e3"; "2.5e-2"; "'it''s'"; "''"; "'abc'";
      "<="; ">="; "<>"; "!="; "||"; "="; "("; ")"; ","; ";"; "."; "*"; "+";
      "-"; "/"; "<"; ">"; "-- line comment\n"; "/* block\ncomment */"; "\n";
      "  "; "\t"; "selection"; "_x"; "'unterminated"; "/* unterminated";
      "@"; "42abc"; "0.5.5"; "null"; "infinity"; "nan";
    ]

let gen_soup =
  QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 40) fragment))

let prop_streaming_lexer_equals_legacy =
  QCheck.Test.make ~name:"streaming lexer = legacy tokenize" ~count:500
    (QCheck.make gen_soup ~print:(fun s -> s))
    (fun src ->
      let legacy = lex_outcome Lexer.tokenize src in
      let streamed = lex_outcome stream_tokens src in
      if legacy <> streamed then
        QCheck.Test.fail_reportf "legacy and streaming disagree on %S" src;
      true)

(* ------------------------------------------------------------------ *)
(* Parse/print round-trips                                             *)

let test_round_trip () =
  List.iter
    (fun (src, printed) ->
      let stmt = Parser.parse_statement_string src in
      Alcotest.(check string) src printed (Pretty.statement_str stmt);
      (* printing then reparsing is a fixed point *)
      let again = Parser.parse_statement_string printed in
      Alcotest.(check string) "fixed point" printed
        (Pretty.statement_str again))
    [
      ( "PREPARE p AS SELECT name FROM emp WHERE emp_no = ?",
        "prepare p as select name from emp where (emp_no = ?)" );
      ( "prepare q as update emp set salary = ? where name like ?",
        "prepare q as update emp set salary = ? where (name like ?)" );
      ("execute p (1, 'it''s', 2.5, null)", "execute p (1, 'it''s', 2.5, NULL)");
      ("EXECUTE p", "execute p");
      ("execute p ()", "execute p");
      ("deallocate p", "deallocate p");
      ("DEALLOCATE ALL", "deallocate all");
    ]

let test_param_numbering_is_statement_order () =
  match
    Parser.parse_statement_string
      "prepare p as select * from emp where salary > ? and emp_no in (?, ?)"
  with
  | Ast.Stmt_prepare (_, op) ->
    Alcotest.(check int) "three parameters" 3 (Ast.param_count_op op);
    (* substituting distinct constants shows the numbering is
       left-to-right in statement order *)
    let bound =
      Ast.subst_params_op
        [| Value.Int 10; Value.Int 20; Value.Int 30 |]
        op
    in
    Alcotest.(check string) "numbered left to right"
      "select * from emp where ((salary > 10) and (emp_no in (20, 30)))"
      (Pretty.op_str bound)
  | _ -> Alcotest.fail "expected a PREPARE statement"

(* Select tracking (Section 5.1) must see the BOUND predicate: the
   read set is computed by interpreting the select's WHERE over the
   stored AST, and a dangling [?] would error out and conservatively
   count every row as selected — firing selected-rules on selects
   that matched nothing.  Found by the prepared workload
   differential. *)
let test_tracked_select_binds_params () =
  let config = { Engine.default_config with Engine.track_selects = true } in
  let s = system ~config "" in
  run s "create table t (a int, b int)";
  run s "create table log (n int)";
  run s "create rule read_audit when selected t.a then insert into log values (1)";
  run s "insert into t values (1, 10), (2, 20)";
  run s "prepare q as select a from t where a = ?";
  let log_count () =
    match erows s "select count(*) from log" with
    | [ [| Value.Int n |] ] -> n
    | _ -> Alcotest.fail "expected a count"
  in
  (* the direct and prepared forms of the same empty select must agree:
     nothing was read, so the selected-rule must not fire *)
  run s "begin";
  run s "select a from t where a = 99";
  run s "commit";
  let after_direct_empty = log_count () in
  run s "begin";
  run s "execute q (99)";
  run s "commit";
  Alcotest.(check int) "empty EXECUTE reads nothing" after_direct_empty
    (log_count ());
  (* and a matching select must fire identically under both forms *)
  run s "begin";
  run s "select a from t where a = 1";
  run s "commit";
  let fired = log_count () - after_direct_empty in
  Alcotest.(check bool) "direct non-empty select fires" true (fired > 0);
  run s "begin";
  run s "execute q (1)";
  run s "commit";
  Alcotest.(check int) "EXECUTE tracks like the direct select"
    (after_direct_empty + (2 * fired))
    (log_count ())

let suite =
  [
    Alcotest.test_case "prepare/execute/deallocate lifecycle" `Quick
      test_lifecycle;
    Alcotest.test_case "zero-parameter statements" `Quick
      test_zero_param_and_empty_args;
    Alcotest.test_case "typed errors: arity, unknown, duplicate" `Quick
      test_typed_errors;
    Alcotest.test_case "parameters allowed only under PREPARE" `Quick
      test_params_only_in_prepare;
    Alcotest.test_case "statement cache hits on repetition" `Quick
      test_cache_hits_on_repetition;
    Alcotest.test_case "invalidation: DDL generation bump" `Quick
      test_cache_invalidation_on_ddl;
    Alcotest.test_case "invalidation: planner-switch flip" `Quick
      test_cache_invalidation_on_planner_flip;
    Alcotest.test_case "fork gets a fresh statement namespace" `Quick
      test_fork_gets_fresh_namespace;
    Alcotest.test_case "EXPLAIN reports cache state" `Quick
      test_explain_reports_cache_state;
    Alcotest.test_case "EXECUTE differential: frame binding = substitution"
      `Quick test_execute_differential;
    Alcotest.test_case "EXECUTE inside explicit transactions" `Quick
      test_execute_inside_transaction;
    Alcotest.test_case "select tracking binds parameters" `Quick
      test_tracked_select_binds_params;
    qtest prop_streaming_lexer_equals_legacy;
    Alcotest.test_case "parse/print round trips" `Quick test_round_trip;
    Alcotest.test_case "parameters number in statement order" `Quick
      test_param_numbering_is_statement_order;
  ]

(* The durability subsystem, proven by a kill-based recovery harness.

   The recovery invariant (stated in lib/durability/recovery.ml): after
   a crash at ANY point, [Recovery.restore] produces exactly the state
   of the committed-transition prefix whose WAL records were durable at
   the moment of death — nothing more, nothing less, and rule firings
   are never re-run on replay.

   Layers of this suite:

   - unit tests for the WAL frame format: the CRC-32 test vector,
     frame/scan round trips, torn tails at EVERY truncation offset of a
     multi-record image, corrupted bytes, and [open_append]'s
     truncate-then-resume behaviour;

   - unit tests for the checkpoint store: round trips, fallback past a
     corrupt newest generation, and the two checkpoint fault sites
     (both of which precede any state mutation, so a failed checkpoint
     leaves the store untouched and a retry just works);

   - targeted durability tests: live-equals-recovered fingerprints,
     replay of every DDL kind, write-ahead DDL fault windows,
     transaction-sensitive DDL, checkpoint-during-transaction
     rejection, and restore idempotence;

   - the systematic sweep: the PR 2 fault-injection workload driven
     through a durable system against an in-memory oracle, with a fault
     injected at hit point 1, 2, ... of every transaction.  An induced
     abort must leave disk describing the pre-transaction state; an
     injection at [Wal_fsync] (record durable, process died before the
     in-memory commit) is handled as process death — the store is
     reopened and must contain the committed transaction;

   - the crash harness: a forked child runs the workload and SIGKILLs
     itself at a chosen fault site; the parent restores the directory
     and checks it equals the reference prefix with the same number of
     durable transaction records.  A truncated-log corpus (every frame
     boundary, off-by-one cuts, random cuts, byte flips) covers the
     torn-tail windows a mid-[write] crash would leave.

   Data directories live under [SOPR_RECOVERY_DIR] when set (CI sets it
   so a failing directory can be uploaded as an artifact) and are kept
   on failure. *)

open Core
open Helpers
module Wal = Relational.Wal
module Checkpoint = Relational.Checkpoint
module Recovery = Durability.Recovery
module Durable = Durability.Durable
module FI = Test_fault_injection

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                  *)

let scratch_root =
  match Sys.getenv_opt "SOPR_RECOVERY_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.get_temp_dir_name ()

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_counter = ref 0

let fresh_dir label =
  incr dir_counter;
  let d =
    Filename.concat scratch_root
      (Printf.sprintf "sopr-recovery-%d-%03d-%s" (Unix.getpid ()) !dir_counter
         label)
  in
  rm_rf d;
  mkdir_p d;
  d

(* Run [f] over a fresh directory: removed on success, kept (and named
   on stderr, for the CI artifact upload) on failure. *)
let in_dir label f =
  let d = fresh_dir label in
  match f d with
  | v ->
    rm_rf d;
    v
  | exception e ->
    Printf.eprintf "recovery harness: keeping failing data directory %s\n%!" d;
    raise e

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let flip_byte s pos =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* WAL frame format                                                     *)

let pp_record ppf (r : Wal.record) =
  match r.Wal.payload with
  | Wal.Ddl s -> Fmt.pf ppf "#%d ddl %S" r.Wal.seq s
  | Wal.Txn { handle_ctr; ops } ->
    Fmt.pf ppf "#%d txn ctr=%d ops=[%a]" r.Wal.seq handle_ctr
      (Fmt.list ~sep:Fmt.comma Wal.pp_dml)
      ops
  | Wal.Batch { handle_ctr; txns } ->
    Fmt.pf ppf "#%d batch ctr=%d txns=[%a]" r.Wal.seq handle_ctr
      (Fmt.list ~sep:Fmt.semi (Fmt.list ~sep:Fmt.comma Wal.pp_dml))
      txns

let record_t = Alcotest.testable pp_record ( = )

let sample_records =
  [
    { Wal.seq = 1; payload = Wal.Ddl "create table t (a int, b int)" };
    {
      Wal.seq = 2;
      payload =
        Wal.Txn
          {
            handle_ctr = 3;
            ops =
              [
                Wal.L_insert
                  { table = "t"; id = 1; row = [| vi 7; vnull |] };
                Wal.L_update { table = "t"; id = 1; row = [| vi 7; vi 8 |] };
                Wal.L_delete { table = "t"; id = 2 };
              ];
          };
    };
    (* an effect-free committed transaction still logs a record *)
    { Wal.seq = 3; payload = Wal.Txn { handle_ctr = 5; ops = [] } };
  ]

let sample_frames = List.map Wal.frame sample_records
let sample_image = Wal.file_header ^ String.concat "" sample_frames

(* Byte offsets at which a complete prefix of the image ends:
   [hdr; hdr+|f1|; hdr+|f1|+|f2|; ...]. *)
let boundaries_of frames =
  List.rev
    (List.fold_left
       (fun acc f -> (List.hd acc + String.length f) :: acc)
       [ String.length Wal.file_header ]
       frames)

let test_crc32 () =
  (* the standard CRC-32 check value (IEEE 802.3 / zlib polynomial) *)
  Alcotest.(check int) "check vector" 0xcbf43926 (Wal.crc32 "123456789");
  Alcotest.(check int) "empty string" 0 (Wal.crc32 "");
  Alcotest.(check bool) "one-byte difference detected" true
    (Wal.crc32 "framed" <> Wal.crc32 "framee")

let test_frame_roundtrip () =
  let scan = Wal.scan_string sample_image in
  Alcotest.(check (list record_t)) "all records recovered" sample_records
    scan.Wal.records;
  Alcotest.(check bool) "not torn" false scan.Wal.torn;
  Alcotest.(check int) "valid prefix is the whole image"
    (String.length sample_image) scan.Wal.valid_len;
  List.iter2
    (fun r f ->
      Alcotest.(check int) "frame_size matches the frame" (String.length f)
        (Wal.frame_size r))
    sample_records sample_frames

(* Truncate the image at EVERY byte offset: the scan must return
   exactly the wholly-contained records, flag a torn tail iff the cut
   is not a frame boundary, and report the boundary as the valid
   prefix length. *)
let test_torn_tail_every_offset () =
  let hdr = String.length Wal.file_header in
  let boundaries = boundaries_of sample_frames in
  let total = String.length sample_image in
  for cut = 0 to total do
    let scan = Wal.scan_string (String.sub sample_image 0 cut) in
    let ctx = Printf.sprintf "cut at %d:" cut in
    if cut = 0 then begin
      (* an empty file: a crash between creation and the header write
         still recovers (as an empty log, not an error) *)
      Alcotest.(check bool) (ctx ^ " empty not torn") false scan.Wal.torn;
      Alcotest.(check int) (ctx ^ " no records") 0
        (List.length scan.Wal.records)
    end
    else if cut < hdr then begin
      Alcotest.(check bool) (ctx ^ " partial header is torn") true
        scan.Wal.torn;
      Alcotest.(check int) (ctx ^ " no records") 0
        (List.length scan.Wal.records);
      Alcotest.(check int) (ctx ^ " nothing valid") 0 scan.Wal.valid_len
    end
    else begin
      let contained = List.filter (fun b -> b <= cut) boundaries in
      let n = List.length contained - 1 in
      let last_boundary = List.nth contained n in
      Alcotest.(check (list record_t))
        (ctx ^ " wholly-contained records")
        (List.filteri (fun i _ -> i < n) sample_records)
        scan.Wal.records;
      Alcotest.(check bool)
        (ctx ^ " torn iff mid-frame")
        (cut <> last_boundary) scan.Wal.torn;
      Alcotest.(check int) (ctx ^ " valid prefix") last_boundary
        scan.Wal.valid_len
    end
  done

let test_corrupt_frame () =
  let boundaries = boundaries_of sample_frames in
  (* flip the last payload byte of the second frame: its CRC fails, the
     first record survives, the tail is discarded *)
  let b2 = List.nth boundaries 2 in
  let scan = Wal.scan_string (flip_byte sample_image (b2 - 1)) in
  Alcotest.(check (list record_t)) "valid prefix survives corruption"
    [ List.hd sample_records ] scan.Wal.records;
  Alcotest.(check bool) "corruption flagged" true scan.Wal.torn;
  Alcotest.(check int) "valid length stops before the bad frame"
    (List.nth boundaries 1) scan.Wal.valid_len;
  (* break the first frame's magic byte: nothing is readable *)
  let scan = Wal.scan_string (flip_byte sample_image (List.hd boundaries)) in
  Alcotest.(check int) "bad magic reads as empty" 0
    (List.length scan.Wal.records);
  Alcotest.(check bool) "bad magic is torn" true scan.Wal.torn

let test_open_append_truncates_torn_tail () =
  in_dir "append-torn" (fun dir ->
      let r1, r2, r3 =
        match sample_records with
        | [ a; b; c ] -> (a, b, c)
        | _ -> assert false
      in
      let w = Wal.create ~dir ~gen:0 () in
      Wal.append w r1;
      Wal.append w r2;
      Wal.close w;
      (* simulate a crash mid-append: half of the next frame *)
      let half = String.sub (Wal.frame r3) 0 (Wal.frame_size r3 / 2) in
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644
          (Wal.path ~dir ~gen:0)
      in
      output_string oc half;
      close_out oc;
      let scan = Wal.read ~dir ~gen:0 in
      Alcotest.(check bool) "tail is torn" true scan.Wal.torn;
      Alcotest.(check (list record_t)) "records before the tear survive"
        [ r1; r2 ] scan.Wal.records;
      (* reopening truncates the tear and resumes cleanly *)
      let w = Wal.open_append ~dir ~gen:0 () in
      Alcotest.(check int) "writer resumes at the valid prefix"
        scan.Wal.valid_len (Wal.writer_size w);
      Wal.append w r3;
      Wal.close w;
      let scan = Wal.read ~dir ~gen:0 in
      Alcotest.(check bool) "log is whole again" false scan.Wal.torn;
      Alcotest.(check (list record_t)) "all three records readable"
        [ r1; r2; r3 ] scan.Wal.records;
      (* a missing generation reads as empty, not torn *)
      let scan = Wal.read ~dir ~gen:42 in
      Alcotest.(check bool) "missing file not torn" false scan.Wal.torn;
      Alcotest.(check int) "missing file empty" 0
        (List.length scan.Wal.records))

(* ------------------------------------------------------------------ *)
(* Checkpoint store                                                     *)

let test_checkpoint_roundtrip () =
  in_dir "ckpt" (fun dir ->
      Alcotest.(check bool) "missing dir has no generations" true
        (Checkpoint.generations ~dir:(Filename.concat dir "absent") = []);
      Alcotest.(check bool) "empty dir has no latest" true
        (Checkpoint.latest ~dir = None);
      Checkpoint.write ~dir ~gen:1 "payload one";
      Checkpoint.write ~dir ~gen:2 "payload two";
      Alcotest.(check (option string)) "read back" (Some "payload one")
        (Checkpoint.read ~dir ~gen:1);
      Alcotest.(check (list int)) "generations ascending" [ 1; 2 ]
        (Checkpoint.generations ~dir);
      Alcotest.(check (option (pair int string))) "latest wins"
        (Some (2, "payload two"))
        (Checkpoint.latest ~dir);
      (* a stray temp file (crash between write and rename) is ignored *)
      write_file (Filename.concat dir "checkpoint.tmp") "junk";
      Alcotest.(check (list int)) "tmp not a generation" [ 1; 2 ]
        (Checkpoint.generations ~dir);
      (* corrupt the newest: [latest] falls back to the previous one *)
      let p2 = Checkpoint.path ~dir ~gen:2 in
      write_file p2 (flip_byte (read_file p2) (String.length (read_file p2) - 1));
      Alcotest.(check (option string)) "corrupt snapshot unreadable" None
        (Checkpoint.read ~dir ~gen:2);
      Alcotest.(check (option (pair int string)))
        "latest skips the corrupt generation"
        (Some (1, "payload one"))
        (Checkpoint.latest ~dir);
      (* a truncated snapshot is equally invalid *)
      Checkpoint.write ~dir ~gen:3 "payload three";
      let p3 = Checkpoint.path ~dir ~gen:3 in
      let c3 = read_file p3 in
      write_file p3 (String.sub c3 0 (String.length c3 - 1));
      Alcotest.(check (option (pair int string))) "truncation detected"
        (Some (1, "payload one"))
        (Checkpoint.latest ~dir);
      Checkpoint.remove ~dir ~gen:2;
      Checkpoint.remove ~dir ~gen:3;
      Checkpoint.remove ~dir ~gen:3;
      (* removal is idempotent *)
      Alcotest.(check (list int)) "pruned" [ 1 ] (Checkpoint.generations ~dir))

let test_checkpoint_fault_sites () =
  FI.with_faults (fun () ->
      in_dir "ckpt-fault" (fun dir ->
          Checkpoint.write ~dir ~gen:1 "base";
          let tmp = Filename.concat dir "checkpoint.tmp" in
          (* site 1, [Checkpoint_write]: dies before the temp file *)
          Fault.arm 1;
          (match Checkpoint.write ~dir ~gen:2 "next" with
          | () -> Alcotest.fail "expected an injection"
          | exception Fault.Injected Fault.Checkpoint_write -> ()
          | exception Fault.Injected site ->
            Alcotest.failf "wrong site %s" (Fault.site_name site));
          Alcotest.(check bool) "no temp file written" false
            (Sys.file_exists tmp);
          Alcotest.(check (option (pair int string))) "previous still latest"
            (Some (1, "base"))
            (Checkpoint.latest ~dir);
          (* site 2, [Checkpoint_rename]: temp durable but unpublished *)
          Fault.arm 2;
          (match Checkpoint.write ~dir ~gen:2 "next" with
          | () -> Alcotest.fail "expected an injection"
          | exception Fault.Injected Fault.Checkpoint_rename -> ()
          | exception Fault.Injected site ->
            Alcotest.failf "wrong site %s" (Fault.site_name site));
          Alcotest.(check bool) "temp file left behind" true
            (Sys.file_exists tmp);
          Alcotest.(check (option string)) "generation 2 not published" None
            (Checkpoint.read ~dir ~gen:2);
          Alcotest.(check (option (pair int string))) "previous still latest"
            (Some (1, "base"))
            (Checkpoint.latest ~dir);
          (* both sites precede any mutation: the clean retry succeeds,
             overwriting the stale temp file *)
          Fault.disarm ();
          Checkpoint.write ~dir ~gen:2 "next";
          Alcotest.(check (option (pair int string))) "retry published"
            (Some (2, "next"))
            (Checkpoint.latest ~dir)))

(* ------------------------------------------------------------------ *)
(* Targeted durability tests                                            *)

let exact_fp = Recovery.fingerprint ~handles:true
let value_fp = Recovery.fingerprint ~handles:false

let test_restore_equals_live () =
  in_dir "basic" (fun dir ->
      let d, info = Durable.open_dir dir in
      Alcotest.(check int) "fresh dir: generation 0" 0 info.Recovery.ri_gen;
      Alcotest.(check bool) "fresh dir: no checkpoint" false
        info.Recovery.ri_checkpoint_used;
      Alcotest.(check int) "fresh dir: nothing replayed" 0
        info.Recovery.ri_records;
      let s = Durable.system d in
      run s "create table t (a int, b int)";
      run s
        "create rule bump when inserted into t then update t set b = a * 10 \
         where b is null";
      run s "insert into t values (1, null)";
      run s "insert into t values (2, 5)";
      run s "delete from t where a = 0";
      Alcotest.(check int) "rule fired in the live system" 10
        (int_cell s "select b from t where a = 1");
      let live = exact_fp s in
      Durable.close d;
      let sys1, info1 = Recovery.restore dir in
      (* the recovered state is the live state, tuple identity included,
         and the rule's effect was replayed physically — not re-fired *)
      Alcotest.(check string) "recovered equals live, handles included" live
        (exact_fp sys1);
      Alcotest.(check int) "no replay was skipped" 0
        info1.Recovery.ri_skipped_ddl;
      Alcotest.(check bool) "clean shutdown leaves no torn tail" false
        info1.Recovery.ri_torn;
      (* replay idempotence: restoring the same directory twice yields
         indistinguishable states *)
      let sys2, info2 = Recovery.restore dir in
      Alcotest.(check string) "restore is idempotent" (exact_fp sys1)
        (exact_fp sys2);
      Alcotest.(check int) "same records replayed" info1.Recovery.ri_records
        info2.Recovery.ri_records;
      Alcotest.(check int) "same last sequence" info1.Recovery.ri_last_seq
        info2.Recovery.ri_last_seq)

let test_ddl_replay_all_kinds () =
  in_dir "ddl-kinds" (fun dir ->
      let d, _ = Durable.open_dir dir in
      let s = Durable.system d in
      run s "create table t (a int, b int)";
      run s "create table dead (x int)";
      run s "create index t_a on t (a)";
      run s "create index dead_x on dead (x)";
      run s
        "create assertion nonneg check ((select count(*) from t where a < 0) \
         = 0)";
      run s
        "create assertion doomed check ((select count(*) from dead) >= 0)";
      run s
        "create rule fill when inserted into t then update t set b = a where \
         b is null and a in (select a from inserted t)";
      run s
        "create rule audit when inserted into dead then delete from dead \
         where x < 0";
      run s "create rule priority fill before audit";
      run s "deactivate rule audit";
      run s "activate rule audit";
      run s "deactivate rule fill";
      run s "insert into t values (1, null), (2, 5)";
      run s "activate rule fill";
      run s "insert into t values (3, null)";
      run s "drop index dead_x";
      run s "drop rule audit";
      run s "drop assertion doomed";
      run s "drop table dead";
      (* DDL is logged write-ahead, so a statement that failed when
         originally executed is in the log too; its replay fails
         against the identical catalog state and is skipped *)
      expect_error (fun () -> System.exec s "create table t (z int)");
      expect_error (fun () -> System.exec s "drop rule audit");
      let live = exact_fp s in
      Durable.close d;
      let sys_r, info = Recovery.restore dir in
      Alcotest.(check string) "every DDL kind replays" live (exact_fp sys_r);
      Alcotest.(check int)
        "exactly the originally-failing statements skipped" 2
        info.Recovery.ri_skipped_ddl;
      (* the deactivation window was respected: row 1 predates any
         active fill rule, row 3 was filled *)
      Alcotest.(check bool) "row 1 not retro-filled" true
        (int_cell sys_r "select count(*) from t where a = 1 and b is null"
         = 1);
      Alcotest.(check int) "row 3 filled" 3
        (int_cell sys_r "select b from t where a = 3"))

let test_ddl_fault_windows () =
  FI.with_faults (fun () ->
      in_dir "ddl-fault" (fun dir ->
          let d, _ = Durable.open_dir dir in
          let s = Durable.system d in
          run s "create table t (a int)";
          let tables sys = Database.table_names (System.database sys) in
          (* [Wal_append]: dies before any byte reaches the log — the
             statement is neither durable nor applied *)
          Fault.arm 1;
          (match System.exec s "create table u (a int)" with
          | _ -> Alcotest.fail "expected an injection"
          | exception Fault.Injected Fault.Wal_append -> ()
          | exception Fault.Injected site ->
            Alcotest.failf "wrong site %s" (Fault.site_name site));
          Fault.disarm ();
          Alcotest.(check bool) "not applied in memory" false
            (List.mem "u" (tables s));
          let sys_r, _ = Recovery.restore dir in
          Alcotest.(check bool) "not durable either" false
            (List.mem "u" (tables sys_r));
          (* [Wal_fsync]: the record is durable but the process died
             before applying the statement.  DDL is logged write-ahead,
             so recovery resolves in favour of the log. *)
          Fault.arm 2;
          (match System.exec s "create table u (a int)" with
          | _ -> Alcotest.fail "expected an injection"
          | exception Fault.Injected Fault.Wal_fsync -> ()
          | exception Fault.Injected site ->
            Alcotest.failf "wrong site %s" (Fault.site_name site));
          Fault.disarm ();
          Alcotest.(check bool) "the dying process never applied it" false
            (List.mem "u" (tables s));
          Durable.close d;
          let sys_r, info = Recovery.restore dir in
          Alcotest.(check bool) "recovered from the durable record" true
            (List.mem "u" (tables sys_r));
          Alcotest.(check int) "replay succeeded" 0
            info.Recovery.ri_skipped_ddl))

(* Transaction-sensitive DDL (CREATE/DROP TABLE/INDEX) is rejected
   inside a transaction, and must not be logged by the rejection; rule
   DDL is legal inside a transaction and survives rollback (the rule
   catalog is not part of the database state), so it IS logged. *)
let test_txn_ddl_logging () =
  in_dir "txn-ddl" (fun dir ->
      let d, _ = Durable.open_dir dir in
      let s = Durable.system d in
      run s "create table t (a int, b int)";
      run s "begin";
      run s "insert into t values (1, 1)";
      expect_error (fun () -> System.exec s "create table u (x int)");
      run s
        "create rule keep when inserted into t then update t set b = 0 where \
         b is null";
      run s "rollback";
      Alcotest.(check int) "insert rolled back" 0
        (int_cell s "select count(*) from t");
      Alcotest.(check int) "rule survived the rollback" 1
        (List.length
           (List.filter
              (fun r -> r.Rules.Rule.name = "keep")
              (Engine.rules (System.engine s))));
      let live = exact_fp s in
      Durable.close d;
      let sys_r, info = Recovery.restore dir in
      Alcotest.(check string) "recovered equals live" live (exact_fp sys_r);
      Alcotest.(check int) "the rejected statement was never logged" 0
        info.Recovery.ri_skipped_ddl)

let test_checkpoint_in_txn_rejected () =
  in_dir "ckpt-txn" (fun dir ->
      let d, _ = Durable.open_dir ~checkpoint_interval:1 dir in
      (* interval 1: the auto-checkpoint fires after the very first
         record *)
      ignore (Durable.exec d "create table t (a int)");
      Alcotest.(check int) "auto-checkpoint fired" 1 (Durable.generation d);
      ignore (Durable.exec d "begin");
      ignore (Durable.exec d "insert into t values (1)");
      (* an explicit checkpoint inside the transaction is rejected and
         leaves everything untouched *)
      expect_error (fun () -> Durable.checkpoint d);
      Alcotest.(check bool) "transaction still open" true
        (Engine.in_transaction (System.engine (Durable.system d)));
      Alcotest.(check int) "no generation consumed" 1 (Durable.generation d);
      ignore (Durable.exec d "insert into t values (2)");
      (* the overdue auto-checkpoint must also not fire mid-transaction *)
      Alcotest.(check int) "auto-checkpoint deferred in txn" 1
        (Durable.generation d);
      ignore (Durable.exec d "commit");
      (* ... and fires at the first safe point after the commit *)
      Alcotest.(check int) "deferred checkpoint taken after commit" 2
        (Durable.generation d);
      let live = exact_fp (Durable.system d) in
      Durable.close d;
      let sys_r, info = Recovery.restore dir in
      Alcotest.(check bool) "restored from the checkpoint" true
        info.Recovery.ri_checkpoint_used;
      Alcotest.(check int) "restored at the checkpoint generation" 2
        info.Recovery.ri_gen;
      Alcotest.(check string) "recovered equals live" live (exact_fp sys_r);
      (* interval validation *)
      expect_error (fun () ->
          Durable.open_dir ~checkpoint_interval:0 (Filename.concat dir "sub")))

(* ------------------------------------------------------------------ *)
(* The systematic sweep: PR 2's differential workload, durable.         *)

(* Non-vacuity counters, asserted by the coverage test at the end of
   the suite. *)
let rec_blocks_driven = ref 0
let rec_injections_total = ref 0
let rec_injected_at : (Fault.site, int) Hashtbl.t = Hashtbl.create 16

let note_injection site =
  incr rec_injections_total;
  Hashtbl.replace rec_injected_at site
    (1 + Option.value (Hashtbl.find_opt rec_injected_at site) ~default:0)

let open_harness_durable dir =
  let d, info = Durable.open_dir ~config:FI.harness_config dir in
  (* procedures are code, not data: they must be re-registered after
     every (re)open — the rules that call them were rebuilt from the
     log, the OCaml functions were not *)
  System.register_procedure (Durable.system d) "note_u" FI.note_u_proc;
  (d, info)

let setup_durable d =
  let s = Durable.system d in
  run s FI.schema_sql;
  List.iter (run s) FI.rules_sql

(* Drive one transaction on the durable system with a fault injected at
   hit point 1, 2, ... until an attempt runs fault-free.

   - An induced abort (any site up to and including [Wal_append], where
     no byte reached the log) must leave disk describing the
     pre-transaction state: [Recovery.restore] equals the live system
     bit for bit, handles included (checked on a sample of injections —
     each check replays the whole log).  The attempt is retried.

   - An injection at [Wal_fsync] means the record became durable but
     the committing process died before its in-memory commit: disk is
     ahead of memory.  The only consistent continuation is process
     death, so the harness abandons the live system, reopens the
     directory, and does NOT retry — the transaction is committed, and
     retrying would apply it twice.

   A committed block's hit sequence always ends [..., Wal_append,
   Wal_fsync], so a full sweep would close and reopen the store on
   EVERY committed block and never get to compare a cleanly-committed
   result against the oracle.  [kill_fsync] therefore selects a sample
   of blocks for the fsync-death window; the rest stop the sweep after
   the [Wal_append] abort and finish with a clean, comparable commit. *)
let sweep_block ~dir ~kill_fsync d r_oracle block =
  let finish_clean () =
    let r = FI.run_block (Durable.system !d) block in
    FI.check_same_result "durable vs oracle" r_oracle r
  in
  let rec attempt k =
    let live = Durable.system !d in
    Fault.arm k;
    match FI.run_block live block with
    | r ->
      Fault.disarm ();
      FI.check_same_result "durable vs oracle" r_oracle r
    | exception Fault.Injected Fault.Wal_fsync ->
      Fault.disarm ();
      note_injection Fault.Wal_fsync;
      Durable.close !d;
      let d', info = open_harness_durable dir in
      Alcotest.(check bool) "no torn tail after an fsync-point death" false
        info.Recovery.ri_torn;
      d := d'
    | exception Fault.Injected site ->
      Fault.disarm ();
      note_injection site;
      if !rec_injections_total mod 7 = 0 then begin
        let sys_r, _ = Recovery.restore ~config:FI.harness_config dir in
        Alcotest.(check string)
          (Printf.sprintf "restore after an abort at %s equals the live state"
             (Fault.site_name site))
          (exact_fp live) (exact_fp sys_r)
      end;
      if site = Fault.Wal_append && not kill_fsync then finish_clean ()
      else attempt (k + 1)
  in
  attempt 1

(* A systematic sweep over the checkpoint fault sites.  Both precede
   any mutation of the durable store's state, so a failed checkpoint
   changes nothing and the clean retry succeeds. *)
let sweep_checkpoint d dir =
  let fp0 = exact_fp (Durable.system d) in
  let gen0 = Durable.generation d in
  List.iter
    (fun (k, expected_site) ->
      Fault.arm k;
      (match Durable.checkpoint d with
      | () -> Alcotest.fail "expected an injection"
      | exception Fault.Injected site ->
        note_injection site;
        Alcotest.(check string) "checkpoint faulted at the expected site"
          (Fault.site_name expected_site)
          (Fault.site_name site));
      Fault.disarm ();
      Alcotest.(check int) "failed checkpoint left the generation" gen0
        (Durable.generation d);
      let sys_r, _ = Recovery.restore ~config:FI.harness_config dir in
      Alcotest.(check string) "failed checkpoint changed nothing durable" fp0
        (exact_fp sys_r))
    [ (1, Fault.Checkpoint_write); (2, Fault.Checkpoint_rename) ];
  Durable.checkpoint d;
  Alcotest.(check int) "retried checkpoint advanced the generation" (gen0 + 1)
    (Durable.generation d);
  let sys_r, info = Recovery.restore ~config:FI.harness_config dir in
  Alcotest.(check bool) "restores from the new checkpoint" true
    info.Recovery.ri_checkpoint_used;
  Alcotest.(check string) "checkpointed restore equals live"
    (exact_fp (Durable.system d))
    (exact_fp sys_r)

let run_recovery_sweep ~seed ~blocks_n dir =
  FI.with_faults (fun () ->
      let st = Random.State.make [| seed |] in
      let blocks = List.init blocks_n (fun _ -> FI.gen_block st) in
      let oracle = FI.make_system ~config:FI.harness_config () in
      let d = ref (fst (open_harness_durable dir)) in
      setup_durable !d;
      List.iteri
        (fun i block ->
          incr rec_blocks_driven;
          let r_oracle = FI.run_block oracle block in
          sweep_block ~dir ~kill_fsync:((i + 1) mod 10 = 0) d r_oracle block;
          (* after every transaction, disk and the in-memory oracle must
             agree with the durable system's live state *)
          Alcotest.(check string) "durable state tracks the oracle"
            (value_fp oracle)
            (value_fp (Durable.system !d));
          if (i + 1) mod 8 = 0 then sweep_checkpoint !d dir)
        blocks;
      let live = Durable.system !d in
      let sys_r, _ = Recovery.restore ~config:FI.harness_config dir in
      Alcotest.(check string) "final restore equals live, handles included"
        (exact_fp live) (exact_fp sys_r);
      Durable.close !d)

let test_systematic_sweep () =
  List.iter
    (fun seed ->
      with_seed_reported seed (fun () ->
          in_dir
            (Printf.sprintf "sweep-%d" seed)
            (run_recovery_sweep ~seed ~blocks_n:80)))
    (seeds ~default:[ 11; 29; 63; 101 ])

(* ------------------------------------------------------------------ *)
(* The crash harness: SIGKILL at fault sites, truncated-log corpus.     *)

(* The reference run: the same workload executed cleanly on a durable
   system, recording (a) the value fingerprint after the setup and
   after each committed block — [fps.(k)] is the expected state of any
   recovery whose log holds [k] transaction records, because block
   execution is deterministic and every committed block appends exactly
   one [Txn] record — and (b) the cumulative fault-site hit count after
   each block, which locates the WAL sites of a chosen block for
   precise kills. *)
let test_kill_and_truncation () =
  FI.with_faults (fun () ->
      in_dir "crash" (fun root ->
          let seed = seed ~default:1234 and blocks_n = 25 in
          with_seed_reported seed @@ fun () ->
          let st = Random.State.make [| seed |] in
          let blocks = List.init blocks_n (fun _ -> FI.gen_block st) in
          let ref_dir = Filename.concat root "reference" in
          let d, _ = open_harness_durable ref_dir in
          setup_durable d;
          Fault.enable true;
          Fault.disarm ();
          let fps = ref [ value_fp (Durable.system d) ] in
          let commit_hits = ref [] in
          List.iter
            (fun block ->
              (match FI.run_block (Durable.system d) block with
              | Ok (Engine.Committed, _) ->
                fps := value_fp (Durable.system d) :: !fps;
                commit_hits := Fault.observed_hits () :: !commit_hits
              | Ok (Engine.Rolled_back, _) | Error _ -> ()))
            blocks;
          let total_hits = Fault.observed_hits () in
          Fault.reset ();
          Durable.close d;
          let fps = Array.of_list (List.rev !fps) in
          let commit_hits = Array.of_list (List.rev !commit_hits) in
          let n_committed = Array.length commit_hits in
          Alcotest.(check bool)
            (Printf.sprintf "reference run committed blocks (%d)" n_committed)
            true (n_committed >= 5);

          (* ---- SIGKILL sweep ---------------------------------------- *)
          (* A committed block's last three hits are [Commit_point],
             [Wal_append], [Wal_fsync] — so [c-1] kills with the record
             lost and [c] kills with the record durable.  Target those
             windows for three blocks, plus an even spread over the whole
             run. *)
          let targeted =
            List.concat_map
              (fun i -> [ commit_hits.(i) - 1; commit_hits.(i) ])
              [ 0; n_committed / 2; n_committed - 1 ]
          in
          let spread =
            List.init 8 (fun j -> 1 + total_hits * (j + 1) / 10)
          in
          let kill_points = List.sort_uniq compare (targeted @ spread) in
          List.iter
            (fun h ->
              let kdir = Filename.concat root (Printf.sprintf "kill-%d" h) in
              flush stdout;
              flush stderr;
              match Unix.fork () with
              | 0 ->
                (* the child re-runs the deterministic workload and dies
                   by real SIGKILL at the [h]-th fault-site hit: no
                   atexit, no buffer flushing, no unwinding — a crash *)
                (try
                   Fault.reset ();
                   let d, _ = open_harness_durable kdir in
                   setup_durable d;
                   Fault.arm h;
                   List.iter
                     (fun b ->
                       ignore (FI.run_block (Durable.system d) b))
                     blocks
                 with _ -> ());
                Unix.kill (Unix.getpid ()) Sys.sigkill;
                assert false
              | pid ->
                let _, status = Unix.waitpid [] pid in
                (match status with
                | Unix.WSIGNALED s when s = Sys.sigkill -> ()
                | _ -> Alcotest.fail "child did not die by SIGKILL");
                let scan = Wal.read ~dir:kdir ~gen:0 in
                (* a kill between syscalls never tears a frame: writes
                   are atomic; torn tails only come from mid-write
                   crashes, covered by the truncation corpus below *)
                Alcotest.(check bool) "SIGKILL leaves no torn tail" false
                  scan.Wal.torn;
                let k =
                  List.length
                    (List.filter
                       (fun r ->
                         match r.Wal.payload with
                         | Wal.Txn _ | Wal.Batch _ -> true
                         | Wal.Ddl _ -> false)
                       scan.Wal.records)
                in
                Alcotest.(check bool) "durable prefix within the reference"
                  true
                  (k < Array.length fps);
                let sys_r, info = Recovery.restore ~config:FI.harness_config kdir in
                Alcotest.(check int) "no skipped replays" 0
                  info.Recovery.ri_skipped_ddl;
                Alcotest.(check string)
                  (Printf.sprintf
                     "kill at hit %d recovers the committed prefix (%d txns)" h
                     k)
                  fps.(k) (value_fp sys_r))
            kill_points;

          (* ---- truncated-log corpus --------------------------------- *)
          let bytes = read_file (Wal.path ~dir:ref_dir ~gen:0) in
          let full = Wal.scan_string bytes in
          Alcotest.(check bool) "reference log intact" false full.Wal.torn;
          let n_setup =
            List.length
              (List.filter
                 (fun r ->
                   match r.Wal.payload with
                   | Wal.Ddl _ -> true
                   | Wal.Txn _ | Wal.Batch _ -> false)
                 full.Wal.records)
          in
          Alcotest.(check int) "the workload itself produced no DDL"
            (n_setup + n_committed)
            (List.length full.Wal.records);
          let boundaries =
            Array.of_list
              (boundaries_of (List.map Wal.frame full.Wal.records))
          in
          let hdr = String.length Wal.file_header in
          let len = String.length bytes in
          Alcotest.(check int) "boundary arithmetic covers the file" len
            boundaries.(Array.length boundaries - 1);
          (* every frame boundary, every boundary's neighbours, and a
             seeded spray of arbitrary offsets *)
          let rst = Random.State.make [| 987 |] in
          let cuts =
            List.sort_uniq compare
              (List.concat_map
                 (fun b -> [ b - 1; b; b + 1 ])
                 (Array.to_list boundaries)
              @ List.init 150 (fun _ -> Random.State.int rst (len + 1)))
            |> List.filter (fun c -> c >= 0 && c <= len)
          in
          let case = ref 0 in
          let check_image label image expected_frames expected_torn =
            incr case;
            let tdir =
              Filename.concat root (Printf.sprintf "trunc-%04d" !case)
            in
            mkdir_p tdir;
            write_file (Filename.concat tdir (Wal.file_name 0)) image;
            let sys_r, info = Recovery.restore ~config:FI.harness_config tdir in
            Alcotest.(check int) (label ^ ": records replayed") expected_frames
              info.Recovery.ri_records;
            Alcotest.(check bool) (label ^ ": torn flag") expected_torn
              info.Recovery.ri_torn;
            (* the fingerprint is checkable once the whole setup DDL
               prefix is present: then the recovered state must be the
               reference state after the same number of committed
               transactions *)
            if expected_frames >= n_setup then
              Alcotest.(check string)
                (label ^ ": recovers the committed prefix")
                fps.(expected_frames - n_setup)
                (value_fp sys_r);
            (* and every image, however mangled, restores idempotently *)
            let sys_r2, _ = Recovery.restore ~config:FI.harness_config tdir in
            Alcotest.(check string) (label ^ ": restore idempotent")
              (exact_fp sys_r) (exact_fp sys_r2);
            rm_rf tdir
          in
          List.iter
            (fun cut ->
              let frames_in cut =
                let n = ref (-1) in
                Array.iteri (fun i b -> if b <= cut then n := i) boundaries;
                !n
              in
              let label = Printf.sprintf "cut at %d" cut in
              if cut = 0 then
                check_image label (String.sub bytes 0 cut) 0 false
              else if cut < hdr then
                check_image label (String.sub bytes 0 cut) 0 true
              else
                let n = frames_in cut in
                check_image label (String.sub bytes 0 cut) n
                  (cut <> boundaries.(n)))
            cuts;
          (* byte flips: corrupting the last payload byte of frame [f]
             invalidates its CRC, so exactly the first [f] frames
             survive *)
          List.iter
            (fun _ ->
              let f =
                n_setup
                + Random.State.int rst (Array.length boundaries - 1 - n_setup)
              in
              let image = flip_byte bytes (boundaries.(f + 1) - 1) in
              check_image (Printf.sprintf "flip in frame %d" f) image f true)
            (List.init 20 Fun.id)))

(* ------------------------------------------------------------------ *)
(* Coverage: the suite was not vacuous.                                 *)

let test_recovery_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf "enough transactions driven (%d)" !rec_blocks_driven)
    true
    (!rec_blocks_driven >= 300);
  List.iter
    (fun site ->
      let n =
        Option.value (Hashtbl.find_opt rec_injected_at site) ~default:0
      in
      Alcotest.(check bool)
        (Printf.sprintf "site %s was injected (%d injections)"
           (Fault.site_name site) n)
        true (n > 0))
    Fault.all_sites

let suite =
  [
    Alcotest.test_case "crc32 check vector" `Quick test_crc32;
    Alcotest.test_case "frame/scan round trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "torn tail at every truncation offset" `Quick
      test_torn_tail_every_offset;
    Alcotest.test_case "corrupt frames stop the scan" `Quick
      test_corrupt_frame;
    Alcotest.test_case "open_append truncates a torn tail" `Quick
      test_open_append_truncates_torn_tail;
    Alcotest.test_case "checkpoint store round trip" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint fault sites leave no trace" `Quick
      test_checkpoint_fault_sites;
    Alcotest.test_case "recovered state equals live state" `Quick
      test_restore_equals_live;
    Alcotest.test_case "every DDL kind replays" `Quick
      test_ddl_replay_all_kinds;
    Alcotest.test_case "write-ahead DDL fault windows" `Quick
      test_ddl_fault_windows;
    Alcotest.test_case "transaction-sensitive DDL logging" `Quick
      test_txn_ddl_logging;
    Alcotest.test_case "checkpoint rejected inside a transaction" `Quick
      test_checkpoint_in_txn_rejected;
    Alcotest.test_case "systematic sweep (faults at every durable site)" `Slow
      test_systematic_sweep;
    Alcotest.test_case "SIGKILL crashes and truncated logs" `Slow
      test_kill_and_truncation;
    Alcotest.test_case "recovery harness coverage" `Slow
      test_recovery_coverage;
  ]

(* The workload harness: generator distribution properties, scenario
   registry behaviour, and the scenario corpus driven end-to-end.

   Layers:

   - unit tests for the profile/sampler (validation, determinism,
     Zipfian skew, bounds);
   - registry tests (the five built-in scenarios, error behaviour);
   - short mode: every registered scenario through the in-memory
     differential runner (compiled+indexed vs interpreted vs
     index-free twins, invariants checked throughout) — this is the
     [dune runtest] deterministic slice;
   - the rule-density knob: padding rules must be semantically inert;
   - soak mode: every scenario through the durable fault+crash soak.
     The default drives >= 500 transactions per scenario; setting
     SOPR_SOAK=<n> multiplies the stream length for long runs.

   Reproduction: all streams derive from the profile seed, overridable
   with SOPR_SEED (printed on failure by [with_seed_reported]). *)

open Helpers
module Profile = Workload.Profile
module Scenario = Workload.Scenario
module Scenarios = Workload.Scenarios
module Runner = Workload.Runner
module TR = Test_recovery
module Fault = Core.Fault

let () = Scenarios.register_all ()

let soak_scale =
  match Sys.getenv_opt "SOPR_SOAK" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

let base_seed = seed ~default:Profile.default.Profile.seed

(* ------------------------------------------------------------------ *)
(* Profile and sampler units                                           *)

let test_profile_validation () =
  let expect_invalid p =
    match Profile.validate p with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  Profile.validate Profile.default;
  expect_invalid { Profile.default with Profile.keys = 0 };
  expect_invalid { Profile.default with Profile.txns = -1 };
  expect_invalid { Profile.default with Profile.min_ops = 0 };
  expect_invalid { Profile.default with Profile.min_ops = 5; max_ops = 4 };
  expect_invalid { Profile.default with Profile.read_frac = 1.5 };
  expect_invalid { Profile.default with Profile.theta = 1.0 };
  expect_invalid { Profile.default with Profile.rule_density = -2 }

let test_sampler_deterministic () =
  let p = { Profile.default with Profile.seed = base_seed } in
  let draw () =
    let s = Profile.Sampler.create p in
    List.init 200 (fun _ ->
        (Profile.Sampler.key s, Profile.Sampler.txn_size s))
  in
  Alcotest.(check (list (pair int int)))
    "same seed, same stream" (draw ()) (draw ());
  let other =
    let s = Profile.Sampler.create { p with Profile.seed = base_seed + 1 } in
    List.init 200 (fun _ ->
        (Profile.Sampler.key s, Profile.Sampler.txn_size s))
  in
  Alcotest.(check bool) "different seed, different stream" false
    (draw () = other)

let test_sampler_bounds () =
  let p =
    { Profile.default with Profile.keys = 17; min_ops = 2; max_ops = 5 }
  in
  let s = Profile.Sampler.create p in
  for _ = 1 to 2000 do
    let k = Profile.Sampler.key s in
    if k < 0 || k >= 17 then Alcotest.failf "key %d out of [0,17)" k;
    let n = Profile.Sampler.txn_size s in
    if n < 2 || n > 5 then Alcotest.failf "txn size %d out of [2,5]" n
  done

(* Zipfian skew: under strong skew the hottest key absorbs a large
   share of draws; under theta = 0 the distribution is uniform. *)
let test_sampler_zipf_skew () =
  let count_hot theta =
    let p =
      { Profile.default with Profile.keys = 64; theta; seed = base_seed }
    in
    let s = Profile.Sampler.create p in
    let hot = ref 0 in
    for _ = 1 to 2000 do
      if Profile.Sampler.key s = 0 then incr hot
    done;
    !hot
  in
  let skewed = count_hot 0.9 and uniform = count_hot 0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "theta=0.9 concentrates on the hot key (%d vs %d)" skewed
       uniform)
    true
    (skewed > 5 * uniform && skewed > 200);
  Alcotest.(check bool)
    (Printf.sprintf "theta=0 stays near uniform (%d/2000 on one of 64 keys)"
       uniform)
    true
    (uniform < 100)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry () =
  Scenarios.register_all ();
  (* idempotent *)
  Alcotest.(check (list string))
    "the six scenarios, in registration order"
    [
      Scenarios.tenant_quota;
      Scenarios.audit_trail;
      Scenarios.matview;
      Scenarios.ref_cascade;
      Scenarios.repair;
      Scenarios.order_rollup;
    ]
    (Scenario.names ());
  (match Scenario.get "no-such-scenario" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "unknown-scenario error lists the known names" true
      (contains msg Scenarios.matview));
  List.iter
    (fun sc ->
      Alcotest.(check bool)
        (sc.Scenario.sc_name ^ " declares invariants")
        true
        (List.length sc.Scenario.sc_invariants >= 2);
      Alcotest.(check bool)
        (sc.Scenario.sc_name ^ " declares observable tables")
        true
        (List.length sc.Scenario.sc_tables >= 2))
    (Scenario.all ())

(* ------------------------------------------------------------------ *)
(* Short mode: the in-memory differential per scenario                 *)

let short_profile =
  { Profile.default with Profile.seed = base_seed; txns = 120 }

let run_short_scenario name () =
  with_seed_reported short_profile.Profile.seed (fun () ->
      let sc = Scenario.get name in
      let r = Runner.run_short sc short_profile in
      Alcotest.(check int) "all transactions driven" short_profile.Profile.txns
        r.Runner.r_txns;
      Alcotest.(check int) "every transaction accounted for"
        r.Runner.r_txns
        (r.Runner.r_committed + r.Runner.r_rolled_back);
      Alcotest.(check bool) "work actually committed" true
        (r.Runner.r_committed > 0);
      Alcotest.(check bool) "invariants actually checked" true
        (r.Runner.r_checks > 0))

(* The prepared-statement twin: the same stream through
   PREPARE/EXECUTE (literals lifted into parameters, one PREPARE per
   distinct statement shape) must match direct execution transaction
   by transaction, and repeated shapes must be served from the
   prepared-plan cache. *)
let run_prepared_scenario name () =
  with_seed_reported short_profile.Profile.seed (fun () ->
      let sc = Scenario.get name in
      let r = Runner.run_prepared_differential sc short_profile in
      Alcotest.(check int) "all transactions driven" short_profile.Profile.txns
        r.Runner.r_txns;
      Alcotest.(check bool) "work actually committed" true
        (r.Runner.r_committed > 0);
      Alcotest.(check bool) "invariants actually checked" true
        (r.Runner.r_checks > 0))

(* Non-vacuity of the enforcement scenarios: the generated traffic must
   actually trip the rollback-style rules, otherwise the invariants are
   vacuous. *)
let test_enforcement_not_vacuous () =
  with_seed_reported short_profile.Profile.seed (fun () ->
      List.iter
        (fun name ->
          let r = Runner.run_short (Scenario.get name) short_profile in
          Alcotest.(check bool)
            (name ^ " tripped its enforcement rules")
            true
            (r.Runner.r_rolled_back > 0))
        [ Scenarios.tenant_quota; Scenarios.audit_trail; Scenarios.ref_cascade ])

(* The rule-density knob must be semantically inert: the padding rules
   never fire, so the same seed produces the same outcome counts with
   a 25x denser rule set. *)
let test_rule_density_inert () =
  with_seed_reported short_profile.Profile.seed (fun () ->
      let sc = Scenario.get Scenarios.tenant_quota in
      let sparse = Runner.run_short sc short_profile in
      let dense =
        Runner.run_short sc
          { short_profile with Profile.rule_density = 25 }
      in
      Alcotest.(check (pair int int))
        "same commits and rollbacks under a dense rule set"
        (sparse.Runner.r_committed, sparse.Runner.r_rolled_back)
        (dense.Runner.r_committed, dense.Runner.r_rolled_back))

(* ------------------------------------------------------------------ *)
(* Soak mode: durable fault+crash runs per scenario                    *)

let soak_profile =
  (* 260 transactions drive the stream twice (live-fault phase + crash
     reference), >= 500 per scenario; SOPR_SOAK multiplies *)
  {
    Profile.default with
    Profile.seed = base_seed;
    txns = 260 * soak_scale;
    theta = 0.75;
  }

let soak_scenario name () =
  with_seed_reported soak_profile.Profile.seed (fun () ->
      TR.in_dir ("workload-" ^ name) (fun dir ->
          let sc = Scenario.get name in
          let r = Runner.soak ~dir ~kills:3 ~fault_every:5 sc soak_profile in
          Alcotest.(check int) "the stream was driven twice"
            (2 * soak_profile.Profile.txns)
            r.Runner.r_txns;
          Alcotest.(check int) "every transaction accounted for"
            r.Runner.r_txns
            (r.Runner.r_committed + r.Runner.r_rolled_back);
          Alcotest.(check bool) "faults were injected" true
            (r.Runner.r_injections > 0);
          Alcotest.(check bool) "SIGKILL recoveries ran" true
            (r.Runner.r_kills >= 1);
          Alcotest.(check bool) "recoveries differentially checked" true
            (r.Runner.r_recoveries >= r.Runner.r_kills + 1);
          Alcotest.(check bool) "invariants checked throughout" true
            (r.Runner.r_checks > 10)))

(* Coverage: across the whole soak, the armed faults must actually
   exercise both the engine sites and the durability sites.  (The
   scenarios are deliberately procedure-free — recovery replays their
   effects from the WAL, and OCaml procedures cannot be replayed — so
   [Procedure_call] is exactly the site that must NOT appear.) *)
let soak_hits : (Fault.site, int) Hashtbl.t = Hashtbl.create 16

let record_soak_hits () =
  List.iter
    (fun site ->
      let n = Fault.site_count site in
      if n > 0 then
        Hashtbl.replace soak_hits site
          (n + Option.value (Hashtbl.find_opt soak_hits site) ~default:0))
    Fault.all_sites

let soak_scenario_recording name () =
  Fault.reset_site_counts ();
  soak_scenario name ();
  record_soak_hits ()

let test_soak_site_coverage () =
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "site %s exercised during the soak"
           (Fault.site_name site))
        true
        (Hashtbl.mem soak_hits site))
    [
      Fault.Dml_op;
      Fault.Query_eval;
      Fault.Rule_condition;
      Fault.Rule_action;
      Fault.Commit_point;
      Fault.Wal_append;
      Fault.Wal_fsync;
      Fault.Checkpoint_write;
      Fault.Checkpoint_rename;
    ];
  Alcotest.(check int) "procedure-free corpus never passes Procedure_call" 0
    (Option.value (Hashtbl.find_opt soak_hits Fault.Procedure_call) ~default:0)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "profile validation" `Quick test_profile_validation;
    Alcotest.test_case "sampler determinism" `Quick test_sampler_deterministic;
    Alcotest.test_case "sampler bounds" `Quick test_sampler_bounds;
    Alcotest.test_case "zipfian skew" `Quick test_sampler_zipf_skew;
    Alcotest.test_case "scenario registry" `Quick test_registry;
  ]
  @ List.map
      (fun name ->
        Alcotest.test_case ("short: " ^ name) `Quick (run_short_scenario name))
      (Scenario.names ())
  @ List.map
      (fun name ->
        Alcotest.test_case ("prepared: " ^ name) `Quick
          (run_prepared_scenario name))
      (Scenario.names ())
  @ [
      Alcotest.test_case "enforcement rules not vacuous" `Quick
        test_enforcement_not_vacuous;
      Alcotest.test_case "rule-density knob inert" `Quick
        test_rule_density_inert;
    ]
  @ List.map
      (fun name ->
        Alcotest.test_case ("soak: " ^ name) `Slow
          (soak_scenario_recording name))
      (Scenario.names ())
  @ [
      Alcotest.test_case "soak fault-site coverage" `Slow
        test_soak_site_coverage;
    ]

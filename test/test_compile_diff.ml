(* The compiled-vs-interpreted differential oracle.

   lib/sql/compile.ml lowers expressions, predicates and selects to
   positional closures once per statement; the tree-walking evaluator
   in lib/sql/eval.ml is retained as the oracle.  This suite asserts
   the two paths are OBSERVABLY IDENTICAL — same results, same error
   diagnostics (rendered through [Errors.to_string]), same
   three-valued-logic collapse — across a qcheck corpus of randomized
   statements, then again end-to-end through the rules engine.

   Layers:

   - Part A: statement-level differential.  Random SELECTs (joins,
     grouping, compounds, derived tables, subqueries, ORDER BY
     expressions) over a fixed database, evaluated by
     [Eval.eval_select] and [Compile.eval_select] under both caching
     modes.  The generator deliberately produces unknown columns,
     ambiguous references, type errors and misused aggregates, so
     error diagnostics are compared as often as results.

   - Part A2: rule-condition differential.  Random closed predicates
     evaluated by [Eval.eval_predicate] and
     [Compile.compile_predicate]/[run_predicate].

   - Part B: engine-level differential.  Two identical systems (the
     fault-injection harness's schema, rule set and external
     procedure) driven with the same random transaction workload, one
     with [Compile.enabled] on and one with it off, asserting equal
     per-transaction outcomes, select results, error strings, firing
     traces and final table contents.  Occasional CREATE/DROP INDEX
     between transactions exercises the DDL-generation invalidation
     of cached compiled rule forms.

   Non-vacuity is asserted at the end: the corpus must have produced
   both successful evaluations and errors, and Part B must have fired
   rules on both paths. *)

open Core
open Helpers
module Compile = Sqlf.Compile

(* Every test that flips the evaluator must restore it on any exit:
   the compiled path is the default for the rest of the suite. *)
let with_compile flag f =
  let saved = !Compile.enabled in
  Compile.enabled := flag;
  Fun.protect ~finally:(fun () -> Compile.enabled := saved) f

(* ------------------------------------------------------------------ *)
(* Part A: statement-level differential                                *)

(* Non-vacuity counters. *)
let ok_results = ref 0
let error_results = ref 0

let fixture_db =
  let db =
    Database.create_table Database.empty
      (Schema.table "t"
         [
           Schema.column "a" Schema.T_int;
           Schema.column "b" Schema.T_int;
           Schema.column "s" Schema.T_string;
         ])
  in
  let db =
    Database.create_table db
      (Schema.table "u"
         [ Schema.column "a" Schema.T_int; Schema.column "c" Schema.T_int ])
  in
  let ins db tbl row = fst (Database.insert db tbl row) in
  let db = ins db "t" [| vi 1; vi 10; vs "x" |] in
  let db = ins db "t" [| vi 2; vi 20; vs "yy" |] in
  let db = ins db "t" [| vi 2; vnull; vs "x" |] in
  let db = ins db "t" [| vi 3; vi 5; vnull |] in
  let db = ins db "t" [| vnull; vi 7; vs "z" |] in
  let db = ins db "u" [| vi 1; vi 100 |] in
  let db = ins db "u" [| vi 2; vnull |] in
  let db = ins db "u" [| vi 4; vi 7 |] in
  db

(* Random expressions as SQL text (readable counterexamples; exactly
   what the front-end feeds both evaluators).  Terminals include
   unknown and ambiguous references on purpose: in a two-table FROM,
   bare [a] is ambiguous, [z] unknown, [t.q] a known table without
   the column.  Mixed-type arithmetic supplies the type errors. *)
let rec gen_expr depth st =
  let open QCheck.Gen in
  let term () =
    (* weighted: erroneous references ([z] unknown everywhere, [t.q]
       known table without the column) stay rare enough that a useful
       share of whole statements evaluates cleanly *)
    match int_bound 15 st with
    | 0 | 1 | 2 -> string_of_int (int_range (-3) 12 st)
    | 3 -> "null"
    | 4 -> "'x'"
    | 5 -> "'yy'"
    | 6 -> "a"
    | 7 | 8 -> "b"
    | 9 -> "c"
    | 10 -> "s"
    | 11 | 12 -> "t.a"
    | 13 -> "u.c"
    | 14 -> "t.b"
    | _ -> if int_bound 1 st = 0 then "z" else "t.q"
  in
  if depth = 0 then term ()
  else
    let sub () = gen_expr (depth - 1) st in
    match int_bound 16 st with
    | 0 | 1 | 2 -> term ()
    | 3 -> Printf.sprintf "(%s + %s)" (sub ()) (sub ())
    | 4 -> Printf.sprintf "(%s * %s)" (sub ()) (sub ())
    | 5 -> Printf.sprintf "(%s = %s)" (sub ()) (sub ())
    | 6 -> Printf.sprintf "(%s < %s)" (sub ()) (sub ())
    | 7 -> Printf.sprintf "(%s and %s)" (sub ()) (sub ())
    | 8 -> Printf.sprintf "(%s or %s)" (sub ()) (sub ())
    | 9 -> Printf.sprintf "(not %s)" (sub ())
    | 10 -> Printf.sprintf "(%s is null)" (sub ())
    | 11 -> Printf.sprintf "(%s in (%s, %s))" (sub ()) (sub ()) (sub ())
    | 12 -> Printf.sprintf "(%s between %s and %s)" (sub ()) (sub ()) (sub ())
    | 13 ->
      Printf.sprintf "case when %s then %s else %s end" (sub ()) (sub ())
        (sub ())
    | 14 -> Printf.sprintf "(select max(a) from t where b = %s)" (sub ())
    | 15 -> Printf.sprintf "exists (select * from u where u.c = %s)" (sub ())
    | _ -> Printf.sprintf "(%s in (select a from u where c = %s))" (sub ()) (sub ())

(* Valid-by-construction numeric expressions and predicates over the
   given column names: the unrestricted generator's statements usually
   contain at least one erroneous reference, so these arms keep the
   success path of the differential densely covered too.  Numeric-only
   terminals and operators (no division) cannot raise; NULLs
   propagate. *)
let rec gen_safe_num cols depth st =
  let open QCheck.Gen in
  let term () =
    match int_bound 4 st with
    | 0 | 1 -> string_of_int (int_range (-3) 12 st)
    | 2 -> "null"
    | _ -> List.nth cols (int_bound (List.length cols - 1) st)
  in
  if depth = 0 then term ()
  else
    let sub () = gen_safe_num cols (depth - 1) st in
    match int_bound 5 st with
    | 0 | 1 -> term ()
    | 2 -> Printf.sprintf "(%s + %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s * %s)" (sub ()) (sub ())
    | 4 -> Printf.sprintf "(%s - %s)" (sub ()) (sub ())
    | _ ->
      Printf.sprintf "case when %s then %s else %s end"
        (gen_safe_pred cols (depth - 1) st)
        (sub ()) (sub ())

and gen_safe_pred cols depth st =
  let open QCheck.Gen in
  let num () = gen_safe_num cols depth st in
  let atom () =
    match int_bound 4 st with
    | 0 -> Printf.sprintf "(%s = %s)" (num ()) (num ())
    | 1 -> Printf.sprintf "(%s < %s)" (num ()) (num ())
    | 2 -> Printf.sprintf "(%s is null)" (num ())
    | 3 -> Printf.sprintf "(%s in (%s, %s))" (num ()) (num ()) (num ())
    | _ -> Printf.sprintf "(%s between %s and %s)" (num ()) (num ()) (num ())
  in
  if depth = 0 then atom ()
  else
    let sub () = gen_safe_pred cols (depth - 1) st in
    match int_bound 4 st with
    | 0 | 1 -> atom ()
    | 2 -> Printf.sprintf "(%s and %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s or %s)" (sub ()) (sub ())
    | _ -> Printf.sprintf "(not %s)" (sub ())

(* Random SELECT statements covering every compiled shape: plain and
   joined FROMs, grouping (incl. aggregate-only selects over the empty
   grouping), HAVING, DISTINCT/LIMIT, compounds, derived tables,
   subqueries and ORDER BY expressions.  Aggregates in a non-grouped
   WHERE (shape 9) must produce the same misuse error on both paths.
   Shapes 11+ are valid by construction. *)
let gen_select st =
  let open QCheck.Gen in
  let e ?(d = 3) () = gen_expr d st in
  let t_cols = [ "a"; "b"; "t.a"; "t.b" ] in
  let join_cols = [ "t.a"; "t.b"; "u.a"; "u.c"; "b"; "c" ] in
  match int_bound 15 st with
  | 0 -> Printf.sprintf "select a, b, s from t where %s" (e ())
  | 1 -> Printf.sprintf "select t.a, u.c, %s from t, u where %s" (e ()) (e ())
  | 2 ->
    Printf.sprintf "select distinct b from t where %s order by b limit %d"
      (e ()) (int_bound 4 st)
  | 3 ->
    Printf.sprintf
      "select a, count(*) from t where %s group by a having count(*) >= %d \
       order by a"
      (e ()) (int_bound 2 st)
  | 4 -> Printf.sprintf "select max(b), min(a), count(s) from t where %s" (e ())
  | 5 ->
    Printf.sprintf "select a from t where %s union select a from u where %s \
                    order by a"
      (e ()) (e ())
  | 6 ->
    Printf.sprintf
      "select x.a, x.b from (select a, b from t where %s) x where x.a > %d"
      (e ()) (int_bound 4 st)
  | 7 -> Printf.sprintf "select a from t where a in (select a from u where %s)" (e ())
  | 8 -> Printf.sprintf "select s from t order by %s, s" (e ~d:2 ())
  | 9 -> Printf.sprintf "select a from t where %s > count(*)" (e ~d:1 ())
  | 10 -> Printf.sprintf "select * from t, u where %s" (e ())
  | 11 ->
    Printf.sprintf "select a, b, %s from t where %s order by a, b"
      (gen_safe_num t_cols 2 st) (gen_safe_pred t_cols 2 st)
  | 12 ->
    Printf.sprintf "select t.a, u.c from t, u where %s order by t.a, u.c"
      (gen_safe_pred join_cols 2 st)
  | 13 ->
    Printf.sprintf
      "select a, count(*), max(%s) from t where %s group by a having \
       count(*) >= %d order by a"
      (gen_safe_num t_cols 1 st) (gen_safe_pred t_cols 1 st) (int_bound 2 st)
  | 14 ->
    Printf.sprintf "select a from t where b in (select c from u where %s) \
                    order by a"
      (gen_safe_pred [ "a"; "c"; "u.a"; "u.c" ] 1 st)
  | _ ->
    Printf.sprintf "select distinct %s from t where %s order by 1 limit 3"
      (gen_safe_num t_cols 2 st) (gen_safe_pred t_cols 2 st)

(* Observable behaviour of one evaluation: the relation, or the
   rendered diagnostic. *)
let observe f =
  match f () with
  | (rel : Eval.relation) -> Ok (Array.to_list rel.Eval.cols, rel.Eval.rows)
  | exception Errors.Error e -> Error (Errors.to_string e)

let check_observed sql a b =
  (match a with Ok _ -> incr ok_results | Error _ -> incr error_results);
  match a, b with
  | Error ea, Error eb ->
    if ea <> eb then
      QCheck.Test.fail_reportf "%s@.interpreted error: %s@.compiled error: %s"
        sql ea eb
  | Ok (ca, ra), Ok (cb, rb) ->
    if ca <> cb then
      QCheck.Test.fail_reportf "%s@.column mismatch: [%s] vs [%s]" sql
        (String.concat "; " ca) (String.concat "; " cb);
    if not (List.length ra = List.length rb && List.for_all2 Row.equal ra rb)
    then
      QCheck.Test.fail_reportf "%s@.row mismatch:@.%s@.vs@.%s" sql
        (String.concat "\n" (List.map Row.to_string ra))
        (String.concat "\n" (List.map Row.to_string rb))
  | Ok _, Error eb ->
    QCheck.Test.fail_reportf "%s@.interpreter succeeded, compiled errored: %s"
      sql eb
  | Error ea, Ok _ ->
    QCheck.Test.fail_reportf "%s@.interpreter errored (%s), compiled succeeded"
      sql ea

let select_differential =
  QCheck.Test.make ~count:600 ~name:"compiled select = interpreted select"
    (QCheck.make ~print:Fun.id gen_select)
    (fun sql ->
      let s = Parser.parse_select_string sql in
      let resolve = Eval.base_resolver fixture_db in
      (* uncached pairing *)
      check_observed sql
        (observe (fun () -> Eval.eval_select resolve s))
        (observe (fun () -> Compile.eval_select resolve fixture_db s));
      (* cached pairing: both sides memoize uncorrelated subqueries *)
      check_observed sql
        (observe (fun () ->
             Eval.eval_select ~cache:(Eval.make_cache ()) resolve s))
        (observe (fun () ->
             Compile.eval_select ~use_cache:true resolve fixture_db s));
      true)

(* ------------------------------------------------------------------ *)
(* Part A1b: parameterized-statement differential.  The compiled path
   executes a prepared select by reading the EXECUTE frame through
   [Param] closures; the interpreter oracle substitutes the bound
   constants into the tree and evaluates the resulting plain select.
   The two must agree on results AND diagnostics — including type
   errors a badly-typed binding provokes. *)

let param_templates =
  [|
    (1, "select a, b from t where a = ?");
    (2, "select a from t where a > ? and b < ? order by a");
    (1, "select s from t where s = ? order by 1");
    (2, "select a from t where a in (?, ?) order by a");
    (1, "select count(*) from t where b = ?");
    (2, "select t.a, u.c from t, u where t.a = u.a and u.c > ? and t.b <> ?");
    (1, "select a from t where b = ? group by a having count(*) >= 1");
    (1, "select a from t where exists (select * from u where u.a = t.a and \
         u.c = ?)");
    (2, "select a, ? from t where b between ? and 30 order by a");
    (1, "select s || ? from t order by 1");
  |]

let gen_param_value st =
  let open QCheck.Gen in
  match int_bound 5 st with
  | 0 -> Value.Null
  | 1 | 2 -> Value.Int (int_bound 20 st)
  | 3 -> Value.Float (float_of_int (int_bound 30 st) /. 2.0)
  | _ -> Value.Str (oneofl [ "x"; "yy"; "z" ] st)

let gen_param_case st =
  let open QCheck.Gen in
  let nparams, template =
    param_templates.(int_bound (Array.length param_templates - 1) st)
  in
  let args = Array.init nparams (fun _ -> gen_param_value st) in
  (template, args)

let param_differential =
  QCheck.Test.make ~count:400
    ~name:"compiled EXECUTE (frame binding) = interpreted (substitution)"
    (QCheck.make gen_param_case ~print:(fun (tpl, args) ->
         Printf.sprintf "%s / (%s)" tpl
           (String.concat ", "
              (List.map Value.to_string (Array.to_list args)))))
    (fun (template, args) ->
      let sql = Printf.sprintf "%s / (%s)" template
          (String.concat ", "
             (List.map Value.to_string (Array.to_list args)))
      in
      let s =
        match Parser.parse_statement_string ("prepare p as " ^ template) with
        | Ast.Stmt_prepare (_, Ast.Select_op s) -> s
        | _ -> QCheck.Test.fail_reportf "template is not a select: %s" template
      in
      let resolve = Eval.base_resolver fixture_db in
      let substituted =
        match Ast.subst_params_op args (Ast.Select_op s) with
        | Ast.Select_op s' -> s'
        | _ -> assert false
      in
      check_observed sql
        (observe (fun () -> Eval.eval_select resolve substituted))
        (observe (fun () ->
             Compile.eval_select ~params:args resolve fixture_db s));
      true)

(* ------------------------------------------------------------------ *)
(* Part A2: rule-condition differential                                *)

(* Closed predicates, the shape of rule conditions: no outer row, all
   data reached through subqueries. *)
let rec gen_predicate depth st =
  let open QCheck.Gen in
  let atom () =
    match int_bound 5 st with
    | 0 ->
      Printf.sprintf "exists (select * from t where %s)" (gen_expr 2 st)
    | 1 ->
      Printf.sprintf "(select count(*) from u where %s) > %d" (gen_expr 1 st)
        (int_bound 3 st)
    | 2 -> Printf.sprintf "(select max(b) from t) > %d" (int_bound 20 st)
    | 3 -> Printf.sprintf "(%d in (select a from u))" (int_bound 5 st)
    | 4 -> "(select min(c) from u) is null"
    | _ -> Printf.sprintf "exists (select a from t group by a having count(*) > %d)"
             (int_bound 2 st)
  in
  if depth = 0 then atom ()
  else
    let sub () = gen_predicate (depth - 1) st in
    match int_bound 4 st with
    | 0 | 1 -> atom ()
    | 2 -> Printf.sprintf "(%s and %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s or %s)" (sub ()) (sub ())
    | _ -> Printf.sprintf "(not %s)" (sub ())

let observe_bool f =
  match f () with
  | (b : bool) -> Ok b
  | exception Errors.Error e -> Error (Errors.to_string e)

let predicate_differential =
  QCheck.Test.make ~count:300 ~name:"compiled condition = interpreted condition"
    (QCheck.make ~print:Fun.id (gen_predicate 2))
    (fun sql ->
      let e = Parser.parse_expr_string sql in
      let resolve = Eval.base_resolver fixture_db in
      let interp =
        observe_bool (fun () ->
            Eval.eval_predicate ~cache:(Eval.make_cache ()) resolve [] e)
      in
      let compiled =
        observe_bool (fun () ->
            Compile.run_predicate ~use_cache:true resolve
              (Compile.compile_predicate fixture_db e))
      in
      (match interp, compiled with
      | Ok a, Ok b ->
        if a <> b then
          QCheck.Test.fail_reportf "%s@.interpreted %b, compiled %b" sql a b
      | Error a, Error b ->
        if a <> b then
          QCheck.Test.fail_reportf "%s@.interpreted error: %s@.compiled error: %s"
            sql a b
      | Ok _, Error e ->
        QCheck.Test.fail_reportf "%s@.interpreter succeeded, compiled errored: %s"
          sql e
      | Error e, Ok _ ->
        QCheck.Test.fail_reportf "%s@.interpreter errored (%s), compiled \
                                  succeeded" sql e);
      true)

(* ------------------------------------------------------------------ *)
(* Part B: engine-level differential                                   *)

(* The fault-injection harness's workload: a schema, a terminating
   rule set covering every trigger kind and action shape, and an
   external procedure that queries through the engine. *)

let schema_sql =
  "create table t (a int, b int);\n\
   create table u (a int, c int);\n\
   create table log (n int)"

let rules_sql =
  [
    "create rule r1 when inserted into t if exists (select * from inserted t \
     where a = 3) then insert into u values (3, 0)";
    "create rule r2 when deleted from t then delete from u where a in \
     (select a from deleted t)";
    "create rule r3 when updated t.a if (select count(*) from new updated \
     t.a where a = 5) > 0 then update u set c = c + 1 where a = 5";
    "create rule r4 when inserted into u or deleted from u or updated u.c \
     if (select count(*) from u where a = 99) > 3 then delete from u where \
     a = 99";
    "create rule r5 when updated t.b if (select count(*) from new updated \
     t.b where b > 100) > 0 then rollback";
    "create rule r6 when inserted into u then call note_u";
  ]

let note_u_proc ctx =
  let rel =
    ctx.Procedures.query (Parser.parse_select_string "select count(*) from u")
  in
  let n = match rel.Eval.rows with [ [| Value.Int n |] ] -> n | _ -> 0 in
  List.map
    (function
      | Ast.Stmt_op op -> op
      | _ -> Alcotest.fail "expected DML statements")
    (Parser.parse_script (Printf.sprintf "insert into log values (%d)" n))

let gen_small st = QCheck.Gen.int_bound 12 st

let gen_term st =
  let open QCheck.Gen in
  if int_bound 9 st = 0 then "null" else string_of_int (gen_small st)

(* One operation: inserts, deletes, updates and selects over both
   tables, occasionally tripping the rollback rule r5, and rarely a
   genuinely erroneous statement so the two paths must agree on
   diagnostics mid-workload too. *)
let gen_op st =
  let open QCheck.Gen in
  match int_bound 13 st with
  | 0 | 1 ->
    Printf.sprintf "insert into t values (%s, %s)" (gen_term st) (gen_term st)
  | 2 | 3 ->
    Printf.sprintf "insert into u values (%s, %s)" (gen_term st) (gen_term st)
  | 4 -> Printf.sprintf "delete from t where a = %s" (gen_term st)
  | 5 ->
    Printf.sprintf "delete from u where a in (%d, %d)" (gen_small st)
      (gen_small st)
  | 6 -> Printf.sprintf "update t set b = b + 1 where a = %d" (gen_small st)
  | 7 ->
    Printf.sprintf "update t set a = %d where a = %d" (gen_small st)
      (gen_small st)
  | 8 ->
    Printf.sprintf
      "update u set c = c + 1 where a in (select a from t where b = %d)"
      (gen_small st)
  | 9 -> Printf.sprintf "select a, b from t where a = %s" (gen_term st)
  | 10 ->
    Printf.sprintf "select t.a, u.c from t, u where t.a = u.a and u.c > %d"
      (gen_small st)
  | 11 ->
    Printf.sprintf "update t set b = %d where a = %d"
      (if int_bound 3 st = 0 then 200 else gen_small st)
      (gen_small st)
  | 12 ->
    Printf.sprintf "insert into u values (99, %d); insert into u values \
                    (99, %d)" (gen_small st) (gen_small st)
  | _ ->
    Printf.sprintf "insert into t values (%d, %d, %d)" (gen_small st)
      (gen_small st) (gen_small st)

(* A workload: transaction blocks interleaved with occasional DDL that
   bumps the engine's generation counter and must invalidate cached
   compiled rule forms. *)
let gen_step st =
  let open QCheck.Gen in
  match int_bound 15 st with
  | 0 -> `Ddl "create index ix_diff_ta on t (a)"
  | 1 -> `Ddl "drop index ix_diff_ta"
  | _ ->
    let n = 1 + int_bound 3 st in
    `Block (String.concat "; " (List.init n (fun _ -> gen_op st)))

let gen_workload st =
  QCheck.Gen.list_size (QCheck.Gen.int_range 8 20) gen_step st

let print_workload steps =
  String.concat "\n"
    (List.map (function `Ddl s -> "[ddl] " ^ s | `Block s -> s) steps)

let make_system ~config () =
  let s = system ~config schema_sql in
  System.register_procedure s "note_u" note_u_proc;
  List.iter (run s) rules_sql;
  Engine.set_tracing (System.engine s) true;
  s

let run_block s sql =
  match System.exec_block s sql with
  | outcome, rels ->
    Ok (outcome, List.map (fun r -> (Array.to_list r.Eval.cols, r.Eval.rows)) rels)
  | exception Errors.Error e -> Error (Errors.to_string e)

let run_ddl s sql =
  match run s sql with
  | () -> Ok ()
  | exception Errors.Error e -> Error (Errors.to_string e)

let firings_fired = ref 0

let check_same label a b =
  match a, b with
  | Error ea, Error eb ->
    if ea <> eb then
      QCheck.Test.fail_reportf "%s: errors differ:@.%s@.vs@.%s" label ea eb
  | Ok (oa, ra), Ok (ob, rb) ->
    if oa <> ob then QCheck.Test.fail_reportf "%s: outcomes differ" label;
    if List.length ra <> List.length rb then
      QCheck.Test.fail_reportf "%s: result counts differ" label;
    List.iter2
      (fun (ca, rsa) (cb, rsb) ->
        if ca <> cb then QCheck.Test.fail_reportf "%s: columns differ" label;
        if not
             (List.length rsa = List.length rsb
             && List.for_all2 Row.equal rsa rsb)
        then QCheck.Test.fail_reportf "%s: rows differ" label)
      ra rb
  | Ok _, Error e ->
    QCheck.Test.fail_reportf "%s: compiled ok, interpreted errored: %s" label e
  | Error e, Ok _ ->
    QCheck.Test.fail_reportf "%s: compiled errored (%s), interpreted ok" label e

let harness_tables = [ "t"; "u"; "log" ]

(* Rule firings as observable behaviour: name + condition verdict per
   considered rule, in order. *)
let firing_trace s =
  List.filter_map
    (function
      | Engine.Ev_considered { rule; condition_held } ->
        Some (rule, condition_held)
      | Engine.Ev_fired { rule; _ } ->
        incr firings_fired;
        Some (rule, true)
      | _ -> None)
    (Engine.trace (System.engine s))

let engine_differential_once ~config steps =
  let s_compiled = with_compile true (fun () -> make_system ~config ()) in
  let s_interp = with_compile false (fun () -> make_system ~config ()) in
  List.iter
    (fun step ->
      match step with
      | `Ddl sql ->
        let rc = with_compile true (fun () -> run_ddl s_compiled sql) in
        let ri = with_compile false (fun () -> run_ddl s_interp sql) in
        (match rc, ri with
        | Ok (), Ok () | Error _, Error _ -> ()
        | _ -> QCheck.Test.fail_reportf "ddl outcome differs: %s" sql)
      | `Block sql ->
        let rc = with_compile true (fun () -> run_block s_compiled sql) in
        let ri = with_compile false (fun () -> run_block s_interp sql) in
        check_same ("block: " ^ sql) rc ri;
        let tc = firing_trace s_compiled and ti = firing_trace s_interp in
        if tc <> ti then
          QCheck.Test.fail_reportf "firing traces differ after: %s" sql)
    steps;
  (* final states, read through the interpreter on both systems so the
     comparison itself is independent of the compiled path *)
  with_compile false (fun () ->
      List.iter
        (fun tbl ->
          let q = Printf.sprintf "select * from %s" tbl in
          let rc = rows s_compiled q and ri = rows s_interp q in
          if not
               (List.length rc = List.length ri
               && List.for_all2 Row.equal rc ri)
          then QCheck.Test.fail_reportf "final state of %s differs" tbl)
        harness_tables)

let engine_differential =
  QCheck.Test.make ~count:40
    ~name:"engine with compiled evaluators = engine with interpreter"
    (QCheck.make ~print:print_workload gen_workload)
    (fun steps ->
      engine_differential_once ~config:Engine.default_config steps;
      engine_differential_once
        ~config:
          { Engine.default_config with optimize = true; track_selects = true }
        steps;
      true)

(* ------------------------------------------------------------------ *)
(* Non-vacuity: the corpus must actually have exercised both success   *)
(* and error paths, and the engine differential must have fired rules. *)

let test_corpus_not_vacuous () =
  Alcotest.(check bool)
    (Printf.sprintf "successful evaluations seen (%d)" !ok_results)
    true (!ok_results > 100);
  Alcotest.(check bool)
    (Printf.sprintf "error diagnostics compared (%d)" !error_results)
    true (!error_results > 100);
  Alcotest.(check bool)
    (Printf.sprintf "rules fired during engine differential (%d)"
       !firings_fired)
    true
    (!firings_fired > 0)

let suite =
  [
    qtest select_differential;
    qtest param_differential;
    qtest predicate_differential;
    qtest engine_differential;
    Alcotest.test_case "differential corpus is not vacuous" `Quick
      test_corpus_not_vacuous;
  ]

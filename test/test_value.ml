(* Unit and property tests for SQL values and three-valued logic. *)

open Core
open Helpers

let check_value = Alcotest.check value_testable
let check_truth = Alcotest.(check bool)

let test_arithmetic () =
  check_value "int add" (vi 7) (Value.add (vi 3) (vi 4));
  check_value "float add" (vf 7.5) (Value.add (vf 3.5) (vi 4));
  check_value "mixed mul" (vf 2.0) (Value.mul (vf 0.5) (vi 4));
  check_value "sub" (vi (-1)) (Value.sub (vi 3) (vi 4));
  check_value "int div" (vi 2) (Value.div (vi 7) (vi 3));
  check_value "float div" (vf 3.5) (Value.div (vf 7.0) (vi 2));
  check_value "mod" (vi 1) (Value.rem (vi 7) (vi 3));
  check_value "neg" (vi (-5)) (Value.neg (vi 5));
  check_value "neg float" (vf (-2.5)) (Value.neg (vf 2.5))

let test_arithmetic_null () =
  check_value "null + x" vnull (Value.add vnull (vi 1));
  check_value "x + null" vnull (Value.add (vi 1) vnull);
  check_value "null * x" vnull (Value.mul vnull (vf 2.0));
  check_value "null / x" vnull (Value.div vnull (vi 2));
  check_value "neg null" vnull (Value.neg vnull);
  check_value "null concat" vnull (Value.concat vnull (vs "a"))

let test_arithmetic_errors () =
  expect_error (fun () -> Value.add (vs "a") (vi 1));
  expect_error (fun () -> Value.div (vi 1) (vi 0));
  expect_error (fun () -> Value.div (vf 1.0) (vf 0.0));
  expect_error (fun () -> Value.rem (vi 1) (vi 0));
  expect_error (fun () -> Value.rem (vf 1.0) (vf 2.0));
  expect_error (fun () -> Value.neg (vs "x"));
  expect_error (fun () -> Value.concat (vi 1) (vs "a"))

let test_concat () =
  check_value "concat" (vs "ab") (Value.concat (vs "a") (vs "b"))

let test_comparison () =
  let cmp a b = Value.compare_sql a b in
  Alcotest.(check (option int)) "int lt" (Some (-1)) (cmp (vi 1) (vi 2));
  Alcotest.(check (option int)) "mixed eq" (Some 0) (cmp (vi 2) (vf 2.0));
  Alcotest.(check (option int)) "str" (Some 1) (cmp (vs "b") (vs "a"));
  Alcotest.(check (option int)) "null left" None (cmp vnull (vi 1));
  Alcotest.(check (option int)) "null right" None (cmp (vi 1) vnull);
  Alcotest.(check (option int)) "null null" None (cmp vnull vnull);
  expect_error (fun () -> cmp (vi 1) (vs "a"))

let test_three_valued_logic () =
  let open Value in
  (* and *)
  check_truth "T and T" true (truth_and True True = True);
  check_truth "T and U" true (truth_and True Unknown = Unknown);
  check_truth "F and U" true (truth_and False Unknown = False);
  check_truth "U and F" true (truth_and Unknown False = False);
  check_truth "U and U" true (truth_and Unknown Unknown = Unknown);
  (* or *)
  check_truth "T or U" true (truth_or True Unknown = True);
  check_truth "U or T" true (truth_or Unknown True = True);
  check_truth "F or U" true (truth_or False Unknown = Unknown);
  check_truth "F or F" true (truth_or False False = False);
  (* not *)
  check_truth "not U" true (truth_not Unknown = Unknown);
  check_truth "not T" true (truth_not True = False);
  (* holds *)
  check_truth "holds T" true (truth_holds True);
  check_truth "holds U" false (truth_holds Unknown);
  check_truth "holds F" false (truth_holds False)

let test_like () =
  let like s p = Value.like (vs s) (vs p) = Value.True in
  check_truth "exact" true (like "abc" "abc");
  check_truth "pct suffix" true (like "abcdef" "abc%");
  check_truth "pct prefix" true (like "abcdef" "%def");
  check_truth "pct middle" true (like "abcdef" "a%f");
  check_truth "underscore" true (like "abc" "a_c");
  check_truth "underscore fail" false (like "abbc" "a_c");
  check_truth "empty pct" true (like "" "%");
  check_truth "pct only" true (like "anything" "%%");
  check_truth "no match" false (like "abc" "abd");
  check_truth "pct matches empty" true (like "ab" "a%b");
  check_truth "null like" true (Value.like vnull (vs "%") = Value.Unknown);
  expect_error (fun () -> Value.like (vi 1) (vs "%"))

let test_total_order () =
  Alcotest.(check int) "null first" (-1)
    (compare (Value.compare_total vnull (vi 0)) 0);
  Alcotest.(check int) "int/float" 0 (Value.compare_total (vi 2) (vf 2.0));
  Alcotest.(check bool) "str after num" true
    (Value.compare_total (vs "a") (vi 9) > 0);
  Alcotest.(check bool) "bool before num" true
    (Value.compare_total (vb true) (vi 0) < 0)

let test_to_string_round_trip () =
  (* float rendering must parse back as a float *)
  List.iter
    (fun f ->
      let s = Value.to_string (vf f) in
      Alcotest.(check (float 1e-9)) s f (float_of_string s))
    [ 0.0; 1.5; -2.25; 1e10; 0.1 ]

(* Regression: non-finite floats used to print as OCaml's "nan"/"inf",
   which the SQL grammar could not read back (and "inf" is not even a
   valid float literal elsewhere).  They now print as the grammar's
   NAN / INFINITY literal spellings, so any stored value round-trips
   through rendered SQL. *)
let test_non_finite_round_trip () =
  Alcotest.(check string) "nan spelling" "nan" (Value.to_string (vf Float.nan));
  Alcotest.(check string) "infinity spelling" "infinity"
    (Value.to_string (vf Float.infinity));
  Alcotest.(check string) "-infinity spelling" "-infinity"
    (Value.to_string (vf Float.neg_infinity));
  let s = Helpers.system "create table t (f float)" in
  List.iter
    (fun f ->
      let v = vf f in
      let again =
        Helpers.cell s (Printf.sprintf "select %s" (Value.to_string v))
      in
      (* Value.equal is total here: nan = nan under Float.equal *)
      check_value (Value.to_string v) v again)
    [ Float.nan; Float.infinity; Float.neg_infinity; 1.5; -2.25 ]

let test_display () =
  Alcotest.(check string) "str unquoted" "hi" (Value.to_display (vs "hi"));
  Alcotest.(check string) "str quoted" "'it''s'" (Value.to_string (vs "it's"));
  Alcotest.(check string) "null" "NULL" (Value.to_display vnull)

(* property: like_match with a pattern equal to the text always
   matches; '%' always matches. *)
let prop_like_self =
  QCheck.Test.make ~name:"like: text matches itself" ~count:200
    QCheck.(string_small_of (Gen.char_range 'a' 'z'))
    (fun s ->
      Value.like (vs s) (vs s) = Value.True
      && Value.like (vs s) (vs "%") = Value.True)

let prop_compare_total_order =
  let gen_value =
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map (fun n -> Value.Int n) small_signed_int;
          map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
          map (fun s -> Value.Str s) (string_size (int_range 0 5));
          map (fun b -> Value.Bool b) bool;
        ])
  in
  let arb =
    QCheck.make ~print:(fun v -> Value.to_string v) gen_value
  in
  QCheck.Test.make ~name:"compare_total is antisymmetric and transitive-ish"
    ~count:500
    QCheck.(triple arb arb arb)
    (fun (a, b, c) ->
      let ab = Value.compare_total a b and ba = Value.compare_total b a in
      let sign x = compare x 0 in
      sign ab = -sign ba
      &&
      (* transitivity spot check: a<=b<=c implies a<=c *)
      if Value.compare_total a b <= 0 && Value.compare_total b c <= 0 then
        Value.compare_total a c <= 0
      else true)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "arithmetic with null" `Quick test_arithmetic_null;
    Alcotest.test_case "arithmetic errors" `Quick test_arithmetic_errors;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "sql comparison" `Quick test_comparison;
    Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
    Alcotest.test_case "like" `Quick test_like;
    Alcotest.test_case "total order" `Quick test_total_order;
    Alcotest.test_case "to_string round trip" `Quick test_to_string_round_trip;
    Alcotest.test_case "non-finite round trip (regression)" `Quick
      test_non_finite_round_trip;
    Alcotest.test_case "display" `Quick test_display;
    qtest prop_like_self;
    qtest prop_compare_total_order;
  ]

(* EXPLAIN and the observability layer.

   The planner must tell the truth: the access path EXPLAIN names is
   asserted against the executor's own scan/probe statistics, not
   against a parallel re-implementation.  Also covered: EXPLAIN RULE,
   trace timestamps, the JSONL exporter, per-rule metrics, and a qcheck
   round-trip property over whole statements including EXPLAIN forms. *)

open Core
open Helpers

let explained s sql =
  match Parser.parse_statement_string sql with
  | Ast.Stmt_explain (Ast.Explain_op op) ->
    Engine.explain_op (System.engine s) op
  | _ -> Alcotest.failf "expected an EXPLAIN statement: %s" sql

let indexed_system () =
  let s =
    system
      "create table emp (name string, emp_no int, salary float);\n\
       create table audit_log (name string);\n\
       create index emp_no_ix on emp (emp_no);\n\
       create index emp_salary_ix on emp (salary) using ordered"
  in
  run s "insert into emp values ('ada', 1, 100.0), ('bob', 2, 200.0), \
         ('cyd', 3, 300.0)";
  s

(* ---- parsing and printing ---- *)

let test_parse_explain () =
  (match Parser.parse_statement_string "explain select * from emp" with
  | Ast.Stmt_explain (Ast.Explain_op (Ast.Select_op _)) -> ()
  | _ -> Alcotest.fail "explain select parse");
  (match Parser.parse_statement_string "explain delete from emp where a = 1" with
  | Ast.Stmt_explain (Ast.Explain_op (Ast.Delete _)) -> ()
  | _ -> Alcotest.fail "explain delete parse");
  (match Parser.parse_statement_string "explain rule audit" with
  | Ast.Stmt_explain (Ast.Explain_rule "audit") -> ()
  | _ -> Alcotest.fail "explain rule parse");
  (* EXPLAIN is a statement, not an expression: it pretty-prints and
     re-parses *)
  let stmt = Parser.parse_statement_string "explain update emp set a = 1" in
  Alcotest.(check bool) "pretty round trip" true
    (Parser.parse_statement_string (Pretty.statement_str stmt) = stmt)

(* ---- EXPLAIN vs the executor ---- *)

(* Restore the evaluator choice on any exit: the compiled path is the
   default for the rest of the suite. *)
let with_compile flag f =
  let saved = !Sqlf.Compile.enabled in
  Sqlf.Compile.enabled := flag;
  Fun.protect ~finally:(fun () -> Sqlf.Compile.enabled := saved) f

let explain_statements =
  [
    "select * from emp where emp_no = 2";
    "select name from emp where salary > 150.0";
    "select name from emp where salary between 100.0 and 250.0";
    "select name from emp where name like 'a%'";
    "select * from emp e, audit_log a where e.name = a.name";
    "update emp set salary = salary + 1.0 where emp_no = 1";
    "delete from emp where emp_no in (2, 3)";
    "insert into audit_log select name from emp where emp_no = 1";
    "insert into audit_log values ('zed')";
  ]

(* For each statement: EXPLAIN first, count the scan/probe/range-probe
   entries and hash-join annotations in the plan, then execute the real
   statement and compare against the deltas of the engine's own
   counters.  The statements deliberately have no subqueries, so the
   top-level plan accounts for every base-table access the executor
   makes.  Run once per evaluator: the compiled planner must tell the
   truth about the compiled executor exactly as the interpreting
   planner does about the interpreter. *)
let explain_matches_executor ~compiled () =
  with_compile compiled (fun () ->
      let s = indexed_system () in
      let eng = System.engine s in
      List.iter
        (fun sql ->
          let plans = explained s ("explain " ^ sql) in
          let count f = List.length (List.filter f plans) in
          let planned_scans =
            count (fun p ->
                match p.Eval.sp_path with Eval.Seq_scan _ -> true | _ -> false)
          in
          let planned_probes =
            count (fun p ->
                match p.Eval.sp_path with
                | Eval.Index_probe _ -> true
                | _ -> false)
          in
          let planned_ranges =
            count (fun p ->
                match p.Eval.sp_path with
                | Eval.Range_probe _ -> true
                | _ -> false)
          in
          let planned_joins = count (fun p -> p.Eval.sp_join <> None) in
          let st = Engine.stats eng in
          let scans0 = st.Engine.seq_scans
          and probes0 = st.Engine.index_probes
          and ranges0 = st.Engine.range_probes
          and builds0 = st.Engine.hash_join_builds in
          run s sql;
          Alcotest.(check int)
            (sql ^ ": seq scans")
            planned_scans
            (st.Engine.seq_scans - scans0);
          Alcotest.(check int)
            (sql ^ ": index probes")
            planned_probes
            (st.Engine.index_probes - probes0);
          Alcotest.(check int)
            (sql ^ ": range probes")
            planned_ranges
            (st.Engine.range_probes - ranges0);
          Alcotest.(check int)
            (sql ^ ": hash join builds")
            planned_joins
            (st.Engine.hash_join_builds - builds0))
        explain_statements)

(* The two planners must also agree with EACH OTHER, statement by
   statement — including shapes the counter test avoids (subqueries,
   grouping) — and on EXPLAIN RULE output. *)
let test_plans_agree_across_evaluators () =
  let s = indexed_system () in
  run s
    "create rule audit when deleted from emp if exists (select * from \
     deleted emp where salary > 100.0) then insert into audit_log select \
     name from deleted emp";
  let describe plans = List.map Eval.describe_source_plan plans in
  List.iter
    (fun sql ->
      let pc = with_compile true (fun () -> explained s ("explain " ^ sql)) in
      let pi = with_compile false (fun () -> explained s ("explain " ^ sql)) in
      Alcotest.(check (list string)) (sql ^ ": same plan") (describe pi)
        (describe pc))
    (explain_statements
    @ [
        "select * from emp where emp_no in (select emp_no from emp where \
         salary > 150.0)";
        "select name, count(*) from emp group by name";
        "delete from emp where salary = (select 150.0 + 50.0)";
      ]);
  let rc =
    with_compile true (fun () -> Engine.explain_rule (System.engine s) "audit")
  in
  let ri =
    with_compile false (fun () -> Engine.explain_rule (System.engine s) "audit")
  in
  Alcotest.(check (list (pair string (list string))))
    "same rule plan"
    (List.map (fun (sql, ps) -> (sql, describe ps)) ri)
    (List.map (fun (sql, ps) -> (sql, describe ps)) rc)

let test_explain_names_the_index () =
  let s = indexed_system () in
  match explained s "explain select * from emp where emp_no = 2" with
  | [ { Eval.sp_binding = "emp"; sp_path = Eval.Index_probe p; _ } ] ->
    Alcotest.(check (option string)) "index name" (Some "emp_no_ix") p.index;
    Alcotest.(check string) "column" "emp_no" p.column;
    Alcotest.(check int) "matches" 1 p.matches;
    Alcotest.(check (option int)) "estimate" (Some 1) p.est;
    Alcotest.(check (option int)) "cardinality" (Some 3) p.rows;
    Alcotest.(check bool) "conjunct mentions the column" true
      (String.length p.conjunct > 0)
  | plans ->
    Alcotest.failf "expected one index probe, got: %s"
      (String.concat "; " (List.map Eval.describe_source_plan plans))

(* A range predicate over an ordered index plans (and executes) as a
   range probe, with the cost-model estimate reported. *)
let test_explain_range_probe () =
  let s = indexed_system () in
  match
    explained s
      "explain select name from emp where salary between 150.0 and 250.0"
  with
  | [ { Eval.sp_binding = "emp"; sp_path = Eval.Range_probe p; _ } ] ->
    Alcotest.(check (option string))
      "index name" (Some "emp_salary_ix") p.index;
    Alcotest.(check string) "column" "salary" p.column;
    Alcotest.(check int) "matches" 1 p.matches;
    (* est(range) = (nrows + 2) / 3 with nrows = 3 *)
    Alcotest.(check (option int)) "estimate" (Some 1) p.est;
    Alcotest.(check (option int)) "cardinality" (Some 3) p.rows
  | plans ->
    Alcotest.failf "expected one range probe, got: %s"
      (String.concat "; " (List.map Eval.describe_source_plan plans))

(* The hash-join annotation and its executor counters, per evaluator:
   one build for the joined source, one probe per partial row of the
   frame under construction. *)
let test_hash_join_counters ~compiled () =
  with_compile compiled (fun () ->
      let s = indexed_system () in
      let eng = System.engine s in
      run s "insert into audit_log values ('ada'), ('bob')";
      let join_sql = "select * from emp e, audit_log a where e.name = a.name" in
      (match explained s ("explain " ^ join_sql) with
      | [ e_plan; a_plan ] ->
        Alcotest.(check bool)
          "first source joins nothing" true
          (e_plan.Eval.sp_join = None);
        (match a_plan.Eval.sp_join with
        | Some j ->
          Alcotest.(check string) "joined with" "e" j.Eval.jp_with;
          Alcotest.(check bool) "conjunct rendered" true
            (String.length j.Eval.jp_conjunct > 0)
        | None -> Alcotest.fail "expected a hash-join annotation")
      | plans ->
        Alcotest.failf "expected two source plans, got %d" (List.length plans));
      let st = Engine.stats eng in
      let builds0 = st.Engine.hash_join_builds
      and probes0 = st.Engine.hash_join_probes in
      let r = rows s join_sql in
      Alcotest.(check int) "joined rows" 2 (List.length r);
      Alcotest.(check int) "one build" 1 (st.Engine.hash_join_builds - builds0);
      Alcotest.(check int) "one probe per emp row" 3
        (st.Engine.hash_join_probes - probes0))

let test_explain_does_not_execute () =
  let s = indexed_system () in
  let eng = System.engine s in
  let before = rows s "select * from emp order by emp_no" in
  ignore (explained s "explain delete from emp");
  ignore (System.exec s "explain update emp set salary = 0.0");
  let st = Engine.stats eng in
  (* the EXPLAINs themselves perturbed no scan/probe statistics beyond
     the two verification queries above *)
  let scans0 = st.Engine.seq_scans in
  ignore (explained s "explain select * from emp where emp_no = 1");
  Alcotest.(check int) "no stats from planning" scans0 st.Engine.seq_scans;
  Alcotest.check rows_testable "no rows changed" before
    (rows s "select * from emp order by emp_no")

let test_explain_unknown_table () =
  let s = indexed_system () in
  expect_error (fun () -> explained s "explain select * from nosuch")

let test_explain_rule () =
  let s = indexed_system () in
  run s
    "create rule audit when deleted from emp if exists (select * from \
     deleted emp where salary > 100.0) then insert into audit_log select \
     name from deleted emp";
  (match Engine.explain_rule (System.engine s) "audit" with
  | [ (sql, [ { Eval.sp_binding = "emp"; sp_path = Eval.Materialized m; _ } ]) ]
    ->
    Alcotest.(check bool) "condition text" true
      (String.length sql > 0);
    Alcotest.(check int) "empty transition table" 0 m.rows
  | r ->
    Alcotest.failf "unexpected rule plan shape (%d entries)" (List.length r));
  (* a condition that also reads a base table shows its access path *)
  run s
    "create rule cross_check when inserted into emp if exists (select * from \
     emp where emp_no = 1) then insert into audit_log values ('x')";
  (match Engine.explain_rule (System.engine s) "cross_check" with
  | [ (_, [ { Eval.sp_path = Eval.Index_probe p; _ } ]) ] ->
    Alcotest.(check (option string)) "probes via the index" (Some "emp_no_ix")
      p.index
  | r ->
    Alcotest.failf "unexpected cross_check plan shape (%d entries)"
      (List.length r));
  (* condition-less rules have nothing to plan *)
  run s "create rule plain when inserted into emp then insert into audit_log \
         values ('y')";
  Alcotest.(check int) "condition-less rule" 0
    (List.length (Engine.explain_rule (System.engine s) "plain"));
  expect_error (fun () -> Engine.explain_rule (System.engine s) "nosuch")

(* ---- trace, clock, metrics ---- *)

let traced_system () =
  let s = indexed_system () in
  run s
    "create rule audit when deleted from emp then insert into audit_log \
     select name from deleted emp";
  Engine.set_tracing (System.engine s) true;
  s

let test_trace_timestamps () =
  let s = traced_system () in
  let eng = System.engine s in
  run s "delete from emp where emp_no = 3";
  (* no clock installed: every stamp is None *)
  Alcotest.(check bool) "no stamps without a clock" true
    (List.for_all (fun (st, _) -> st = None) (Engine.timed_trace eng));
  Alcotest.(check bool) "has events" true (Engine.timed_trace eng <> []);
  (* install a deterministic clock: stamps appear and are monotone *)
  let t = ref 0.0 in
  Engine.set_clock eng (Some (fun () -> t := !t +. 0.5; !t));
  Alcotest.(check bool) "has_clock" true (Engine.has_clock eng);
  run s "delete from emp where emp_no = 2";
  let stamps = List.map fst (Engine.timed_trace eng) in
  Alcotest.(check bool) "all stamped" true
    (List.for_all Option.is_some stamps);
  let rec monotone = function
    | Some a :: (Some b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone stamps" true (monotone stamps)

let test_trace_jsonl () =
  let s = traced_system () in
  let eng = System.engine s in
  run s "delete from emp where emp_no = 3";
  let jsonl = Engine.trace_jsonl eng in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per event" (List.length (Engine.trace eng))
    (List.length lines);
  List.iteri
    (fun i line ->
      Alcotest.(check bool) "object per line" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      let seq = Printf.sprintf "{\"seq\":%d," i in
      Alcotest.(check bool) "sequential seq field" true
        (String.length line >= String.length seq
        && String.sub line 0 (String.length seq) = seq))
    lines;
  (* clock off: no "t" field anywhere, so the export is deterministic *)
  Alcotest.(check bool) "no timestamps when clock off" false
    (List.exists
       (fun line ->
         let rec contains i =
           i + 5 <= String.length line
           && (String.sub line i 5 = "\"t\":0" || contains (i + 1))
         in
         contains 0)
       lines);
  Alcotest.(check bool) "fired event present" true
    (List.exists
       (fun line ->
         let needle = "\"event\":\"fired\",\"rule\":\"audit\"" in
         let rec contains i =
           i + String.length needle <= String.length line
           && (String.sub line i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0)
       lines)

let test_rule_metrics () =
  let s = traced_system () in
  let eng = System.engine s in
  run s "delete from emp where emp_no = 3";
  run s "delete from emp where emp_no = 2";
  let row name =
    match
      List.find_opt
        (fun r -> r.Engine.rr_rule = name)
        (Engine.rule_report eng)
    with
    | Some r -> r
    | None -> Alcotest.failf "no report row for %s" name
  in
  let audit = row "audit" in
  Alcotest.(check int) "audit considered twice" 2 audit.Engine.rr_considered;
  Alcotest.(check int) "audit fired twice" 2 audit.Engine.rr_fired;
  Alcotest.(check int) "audit effect tuples" 2 audit.Engine.rr_effect_tuples;
  (* counts accumulate without a clock, times stay zero *)
  Alcotest.(check (float 0.0)) "no cond time without clock" 0.0
    audit.Engine.rr_cond_seconds;
  Alcotest.(check (float 0.0)) "no action time without clock" 0.0
    audit.Engine.rr_action_seconds;
  (* with a clock the action time accumulates (deterministic fake
     clock: +0.25s per read, 2 reads per action) *)
  let t = ref 0.0 in
  Engine.set_clock eng (Some (fun () -> t := !t +. 0.25; !t));
  run s "delete from emp where emp_no = 1";
  let audit = row "audit" in
  Alcotest.(check int) "third firing" 3 audit.Engine.rr_fired;
  Alcotest.(check bool) "action time accumulated" true
    (audit.Engine.rr_action_seconds > 0.0);
  (* dropped rules leave the report *)
  run s "drop rule audit";
  Alcotest.(check bool) "dropped rule gone" true
    (List.for_all
       (fun r -> r.Engine.rr_rule <> "audit")
       (Engine.rule_report eng))

(* ---- statement round-trip property ---- *)

(* Generators for printable-and-reparsable statements.  Numeric
   literals are non-negative (negation is a separate AST node) and
   floats are quarters so "%.12g" reproduces them exactly; identifiers
   come from fixed keyword-free lists; nan/infinity literals are
   included to pin the non-finite spellings. *)
module Gen = struct
  open QCheck.Gen

  let ident = oneofl [ "emp"; "dept"; "t"; "u" ]
  let col = oneofl [ "a"; "b"; "c" ]

  let lit =
    oneof
      [
        map (fun n -> Value.Int n) (int_bound 1000);
        map (fun k -> Value.Float (float_of_int k /. 4.0)) (int_bound 400);
        map (fun s -> Value.Str s) (oneofl [ ""; "x"; "o'k"; "per cent%" ]);
        oneofl [ Value.Null; Value.Bool true; Value.Bool false ];
        (* no neg_infinity here: as with "-2.5", a leading minus parses
           as a separate Neg node, the grammar's convention for every
           negative literal *)
        oneofl [ Value.Float Float.nan; Value.Float Float.infinity ];
      ]

  let rec expr n =
    if n <= 0 then
      oneof
        [
          map (fun v -> Ast.Lit v) lit;
          map (fun c -> Ast.Col { qualifier = None; column = c }) col;
          map2
            (fun q c -> Ast.Col { qualifier = Some q; column = c })
            ident col;
        ]
    else
      let sub = expr (n / 2) in
      oneof
        [
          map (fun v -> Ast.Lit v) lit;
          map (fun c -> Ast.Col { qualifier = None; column = c }) col;
          map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) sub sub;
          map2 (fun a b -> Ast.Cmp (Ast.Le, a, b)) sub sub;
          map2 (fun a b -> Ast.And (a, b)) sub sub;
          map2 (fun a b -> Ast.Or (a, b)) sub sub;
          map (fun a -> Ast.Not a) sub;
          map (fun a -> Ast.Neg a) sub;
          map (fun a -> Ast.Is_null a) sub;
          map2 (fun a b -> Ast.In_list (a, [ b ])) sub sub;
          map2 (fun a b -> Ast.Fn ("coalesce", [ a; b ])) sub sub;
        ]

  let proj =
    oneof
      [
        return Ast.Star;
        map (fun t -> Ast.Table_star t) ident;
        map2 (fun e a -> Ast.Proj (e, a)) (expr 2)
          (oneofl [ None; Some "x"; Some "y" ]);
      ]

  let from_item =
    map2
      (fun t a -> { Ast.source = Ast.Base t; alias = a })
      ident
      (oneofl [ None; Some "x"; Some "y" ])

  let select_core =
    let* distinct = bool in
    let* projections = list_size (int_range 1 3) proj in
    let* from = list_size (int_range 0 2) from_item in
    let* where = opt (expr 3) in
    return
      {
        Ast.distinct;
        projections;
        from;
        where;
        group_by = [];
        having = None;
        compounds = [];
        order_by = [];
        limit = None;
      }

  let select =
    let* core = select_core in
    let* compounds =
      list_size (int_range 0 1)
        (pair (oneofl [ Ast.Union; Ast.Union_all; Ast.Except ]) select_core)
    in
    let* order_by =
      list_size (int_range 0 2) (pair (expr 1) (oneofl [ `Asc; `Desc ]))
    in
    let* limit = opt (int_bound 50) in
    return { core with Ast.compounds; order_by; limit }

  let op =
    oneof
      [
        map (fun s -> Ast.Select_op s) select;
        (let* table = ident in
         let* columns = opt (list_size (int_range 1 2) col) in
         let* source =
           oneof
             [
               map
                 (fun rows -> `Values rows)
                 (list_size (int_range 1 2)
                    (list_size (int_range 1 2) (map (fun v -> Ast.Lit v) lit)));
               map (fun s -> `Select s) select;
             ]
         in
         return (Ast.Insert { table; columns; source }));
        (let* table = ident in
         let* where = opt (expr 3) in
         return (Ast.Delete { table; where }));
        (let* table = ident in
         let* sets = list_size (int_range 1 2) (pair col (expr 2)) in
         let* where = opt (expr 3) in
         return (Ast.Update { table; sets; where }));
      ]

  let statement =
    oneof
      [
        map (fun o -> Ast.Stmt_op o) op;
        map (fun o -> Ast.Stmt_explain (Ast.Explain_op o)) op;
        map (fun r -> Ast.Stmt_explain (Ast.Explain_rule r)) ident;
      ]
end

let prop_statement_round_trip =
  let arb =
    QCheck.make ~print:Pretty.statement_str Gen.statement
  in
  QCheck.Test.make ~name:"parse (pretty stmt) = stmt" ~count:500 arb
    (fun stmt ->
      let printed = Pretty.statement_str stmt in
      match Parser.parse_statement_string printed with
      | reparsed ->
        (* structural compare is nan-safe, unlike (=) *)
        compare reparsed stmt = 0
        || QCheck.Test.fail_reportf "printed %S\nreparsed as %S" printed
             (Pretty.statement_str reparsed)
      | exception Errors.Error e ->
        QCheck.Test.fail_reportf "printed %S\nfailed to parse: %s" printed
          (Errors.to_string e))

let suite =
  [
    Alcotest.test_case "parse explain" `Quick test_parse_explain;
    Alcotest.test_case "explain matches the executor (compiled)" `Quick
      (explain_matches_executor ~compiled:true);
    Alcotest.test_case "explain matches the executor (interpreted)" `Quick
      (explain_matches_executor ~compiled:false);
    Alcotest.test_case "planners agree across evaluators" `Quick
      test_plans_agree_across_evaluators;
    Alcotest.test_case "explain names the index" `Quick
      test_explain_names_the_index;
    Alcotest.test_case "explain range probe" `Quick test_explain_range_probe;
    Alcotest.test_case "hash join counters (compiled)" `Quick
      (test_hash_join_counters ~compiled:true);
    Alcotest.test_case "hash join counters (interpreted)" `Quick
      (test_hash_join_counters ~compiled:false);
    Alcotest.test_case "explain does not execute" `Quick
      test_explain_does_not_execute;
    Alcotest.test_case "explain unknown table" `Quick test_explain_unknown_table;
    Alcotest.test_case "explain rule" `Quick test_explain_rule;
    Alcotest.test_case "trace timestamps" `Quick test_trace_timestamps;
    Alcotest.test_case "trace jsonl export" `Quick test_trace_jsonl;
    Alcotest.test_case "rule metrics report" `Quick test_rule_metrics;
    qtest prop_statement_round_trip;
  ]

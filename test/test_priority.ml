(* Priority graph: ordering semantics plus the diamond-DAG regression.

   [Priority.find_path]'s DFS used to copy its visited set into every
   fold branch instead of threading it through, so on a layered diamond
   DAG (each node pointing to both nodes of the next layer) a failing
   search re-explored each layer's subgraph twice per node — 2^layers
   node expansions overall.  The fix threads the visited set; the
   [search_steps] counter proves each node is expanded at most once.
   The guard is a step counter, not wall time, so the test is
   deterministic under load. *)

open Core

let node layer pos = Printf.sprintf "r_%d_%d" layer pos

(* A layered diamond DAG: [layers] layers of 2 nodes; every node of
   layer i is higher-priority than both nodes of layer i+1. *)
let diamond layers =
  let t = ref Priority.empty in
  for layer = 0 to layers - 2 do
    for pos = 0 to 1 do
      for pos' = 0 to 1 do
        t := Priority.declare !t ~high:(node layer pos) ~low:(node (layer + 1) pos')
      done
    done
  done;
  !t

let test_order () =
  let t =
    Priority.declare
      (Priority.declare Priority.empty ~high:"a" ~low:"b")
      ~high:"b" ~low:"c"
  in
  Alcotest.(check bool) "a > c transitively" true (Priority.higher t "a" "c");
  Alcotest.(check bool) "c > a is false" false (Priority.higher t "c" "a");
  Alcotest.(check bool) "a > a is false" false (Priority.higher t "a" "a")

let test_cycle_rejected () =
  let t = diamond 3 in
  Helpers.expect_error (fun () ->
      Priority.declare t ~high:(node 2 0) ~low:(node 0 0))

(* The regression proper: a 20-layer diamond has 40 nodes and 76 edges.
   Pre-fix, the failing bottom-to-top search took ~2^19 expansions (it
   was effectively unfinishable at this size); post-fix every search is
   bounded by nodes + edges. *)
let test_diamond_linear () =
  let layers = 20 in
  let t = diamond layers in
  let bound = (2 * layers) + (4 * (layers - 1)) + 8 in
  Alcotest.(check bool)
    "top > bottom" true
    (Priority.higher t (node 0 0) (node (layers - 1) 1));
  Alcotest.(check bool)
    "successful search is linear" true
    (!Priority.search_steps <= bound);
  (* the exponential pre-fix case: a failing search from the top must
     visit the whole DAG exactly once, not once per path *)
  Alcotest.(check bool)
    "no path to an absent node" false
    (Priority.higher t (node 0 0) "absent");
  Alcotest.(check bool)
    (Printf.sprintf "failing search took %d steps (bound %d)"
       !Priority.search_steps bound)
    true
    (!Priority.search_steps <= bound)

(* Declaring runs the cycle check (a path search from [low] to [high]);
   when [low] is the top of the diamond the check explores the whole
   DAG before concluding there is no cycle — exactly the pre-fix
   exponential case. *)
let test_declare_scales () =
  let t = diamond 20 in
  ignore (Priority.declare t ~high:"fresh_top" ~low:(node 0 0));
  Alcotest.(check bool)
    "cycle check on declare is linear" true
    (!Priority.search_steps <= 200)

let suite =
  [
    Alcotest.test_case "transitive order" `Quick test_order;
    Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "diamond DAG search is linear (regression)" `Quick
      test_diamond_linear;
    Alcotest.test_case "declare cycle-check is linear" `Quick
      test_declare_scales;
  ]
